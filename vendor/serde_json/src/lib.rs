//! Vendored, minimal `serde_json`: JSON text ⇄ `serde::Value` ⇄ typed
//! values, covering the entry points this workspace uses
//! (`to_string`, `to_string_pretty`, `from_str`, `Error`).

use serde::{DeError, Deserialize, Serialize, Value};
use std::fmt;

/// JSON serialization / deserialization error.
#[derive(Debug, Clone)]
pub struct Error {
    msg: String,
}

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error { msg: msg.into() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<DeError> for Error {
    fn from(e: DeError) -> Error {
        Error::new(e.0)
    }
}

/// Serialize a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None, 0)?;
    Ok(out)
}

/// Serialize a value to 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(2), 0)?;
    Ok(out)
}

/// Serialize a value to its intermediate tree.
pub fn to_value<T: Serialize + ?Sized>(value: &T) -> Result<Value, Error> {
    Ok(value.to_value())
}

/// Deserialize a typed value from JSON text.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let value = parse(s)?;
    Ok(T::from_value(&value)?)
}

/// Deserialize from an intermediate tree.
pub fn from_value<T: Deserialize>(v: &Value) -> Result<T, Error> {
    Ok(T::from_value(v)?)
}

// ---- writer ----------------------------------------------------------

fn write_value(
    out: &mut String,
    v: &Value,
    indent: Option<usize>,
    level: usize,
) -> Result<(), Error> {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if !x.is_finite() {
                return Err(Error::new("cannot serialize non-finite float"));
            }
            out.push_str(&x.to_string());
        }
        Value::Str(s) => write_string(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return Ok(());
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_value(out, item, indent, level + 1)?;
            }
            newline_indent(out, indent, level);
            out.push(']');
        }
        Value::Object(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return Ok(());
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, level + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1)?;
            }
            newline_indent(out, indent, level);
            out.push('}');
        }
    }
    Ok(())
}

fn newline_indent(out: &mut String, indent: Option<usize>, level: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * level {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---- parser ----------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse(s: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at offset {}",
            p.pos
        )));
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at offset {}",
                b as char, self.pos
            )))
        }
    }

    fn eat_keyword(&mut self, kw: &str) -> bool {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            true
        } else {
            false
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'n') if self.eat_keyword("null") => Ok(Value::Null),
            Some(b't') if self.eat_keyword("true") => Ok(Value::Bool(true)),
            Some(b'f') if self.eat_keyword("false") => Ok(Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(Error::new(format!(
                "unexpected input at offset {}",
                self.pos
            ))),
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `]` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(entries));
                }
                _ => {
                    return Err(Error::new(format!(
                        "expected `,` or `}}` at offset {}",
                        self.pos
                    )))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| Error::new("unterminated string"))?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hi = self.hex4()?;
                            let c = if (0xD800..0xDC00).contains(&hi) {
                                // Surrogate pair.
                                if !self.eat_keyword("\\u") {
                                    return Err(Error::new("lone leading surrogate"));
                                }
                                let lo = self.hex4()?;
                                let c = 0x10000
                                    + ((hi - 0xD800) << 10)
                                    + (lo.wrapping_sub(0xDC00) & 0x3FF);
                                char::from_u32(c)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| Error::new("invalid \\u escape"))?);
                        }
                        other => {
                            return Err(Error::new(format!("invalid escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => {
                    // Re-decode UTF-8 from the original bytes.
                    let start = self.pos - 1;
                    let mut end = self.pos;
                    while end < self.bytes.len() && (self.bytes[end] & 0xC0) == 0x80 {
                        end += 1;
                    }
                    let chunk = std::str::from_utf8(&self.bytes[start..end])
                        .map_err(|_| Error::new("invalid UTF-8 in string"))?;
                    out.push_str(chunk);
                    self.pos = end;
                }
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::new("truncated \\u escape"));
        }
        let s = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::new("invalid \\u escape"))?;
        let v = u32::from_str_radix(s, 16).map_err(|_| Error::new("invalid \\u escape"))?;
        self.pos += 4;
        Ok(v)
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        let mut is_float = false;
        if self.peek() == Some(b'.') {
            is_float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            is_float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::new(format!("invalid number `{text}`")))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_nested() {
        let v = Value::Object(vec![
            (
                "a".into(),
                Value::Array(vec![Value::U64(1), Value::I64(-2)]),
            ),
            ("b".into(), Value::Str("x\"y\n".into())),
            ("c".into(), Value::F64(1.5)),
            ("d".into(), Value::Null),
            ("e".into(), Value::Bool(true)),
        ]);
        let compact = {
            let mut s = String::new();
            write_value(&mut s, &v, None, 0).unwrap();
            s
        };
        assert_eq!(parse(&compact).unwrap(), v);
        let pretty = {
            let mut s = String::new();
            write_value(&mut s, &v, Some(2), 0).unwrap();
            s
        };
        assert_eq!(parse(&pretty).unwrap(), v);
    }

    #[test]
    fn typed_roundtrip() {
        let xs: Vec<(u32, String)> = vec![(1, "one".into()), (2, "two".into())];
        let text = to_string(&xs).unwrap();
        let back: Vec<(u32, String)> = from_str(&text).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("{,}").is_err());
        assert!(parse("[1 2]").is_err());
        assert!(parse("tru").is_err());
        assert!(parse("1 1").is_err());
    }
}
