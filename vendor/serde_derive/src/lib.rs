//! Vendored, minimal `serde_derive`: hand-rolled token parsing (no
//! `syn`/`quote`, since the build is offline) generating impls of the
//! vendored `serde::Serialize`/`serde::Deserialize` traits.
//!
//! Supports non-generic structs (named, tuple, unit) and enums (unit,
//! tuple, struct variants) with external tagging, plus the container
//! attribute `#[serde(transparent)]` and field attributes
//! `#[serde(skip)]` / `#[serde(default)]` — the full inventory used by
//! this workspace.

use proc_macro::{Delimiter, TokenStream, TokenTree};

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item).parse().unwrap()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item).parse().unwrap()
}

// ---- model -----------------------------------------------------------

struct Item {
    name: String,
    transparent: bool,
    data: Data,
}

enum Data {
    Named(Vec<Field>),
    Tuple(usize),
    Unit,
    Enum(Vec<Variant>),
}

struct Field {
    name: String,
    skip: bool,
    default: bool,
}

struct Variant {
    name: String,
    shape: Shape,
}

enum Shape {
    Unit,
    Tuple(usize),
    Named(Vec<Field>),
}

// ---- parsing ---------------------------------------------------------

/// serde idents mentioned in `#[serde(...)]` attribute groups.
fn attr_flags(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) -> Vec<String> {
    // Caller consumed `#`; next is the bracket group.
    let mut flags = Vec::new();
    if let Some(TokenTree::Group(g)) = tokens.next() {
        let mut inner = g.stream().into_iter();
        if let Some(TokenTree::Ident(id)) = inner.next() {
            if id.to_string() == "serde" {
                if let Some(TokenTree::Group(args)) = inner.next() {
                    for t in args.stream() {
                        if let TokenTree::Ident(flag) = t {
                            flags.push(flag.to_string());
                        }
                    }
                }
            }
        }
    }
    flags
}

fn skip_visibility(tokens: &mut std::iter::Peekable<proc_macro::token_stream::IntoIter>) {
    if matches!(tokens.peek(), Some(TokenTree::Ident(id)) if id.to_string() == "pub") {
        tokens.next();
        if matches!(
            tokens.peek(),
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
        ) {
            tokens.next();
        }
    }
}

fn parse_item(input: TokenStream) -> Item {
    let mut tokens = input.into_iter().peekable();
    let mut transparent = false;
    loop {
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                if attr_flags(&mut tokens).iter().any(|f| f == "transparent") {
                    transparent = true;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                if matches!(
                    tokens.peek(),
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis
                ) {
                    tokens.next();
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {
                let name = expect_ident(tokens.next());
                reject_generics(tokens.peek());
                let data = match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Data::Named(parse_fields(g.stream()))
                    }
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                        Data::Tuple(count_tuple_fields(g.stream()))
                    }
                    Some(TokenTree::Punct(p)) if p.as_char() == ';' => Data::Unit,
                    other => panic!("serde_derive: unexpected struct body: {other:?}"),
                };
                return Item {
                    name,
                    transparent,
                    data,
                };
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "enum" => {
                let name = expect_ident(tokens.next());
                reject_generics(tokens.peek());
                let data = match tokens.next() {
                    Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                        Data::Enum(parse_variants(g.stream()))
                    }
                    other => panic!("serde_derive: unexpected enum body: {other:?}"),
                };
                return Item {
                    name,
                    transparent,
                    data,
                };
            }
            Some(_) => continue,
            None => panic!("serde_derive: no struct or enum found"),
        }
    }
}

fn expect_ident(t: Option<TokenTree>) -> String {
    match t {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected identifier, found {other:?}"),
    }
}

fn reject_generics(t: Option<&TokenTree>) {
    if matches!(t, Some(TokenTree::Punct(p)) if p.as_char() == '<') {
        panic!("serde_derive (vendored): generic types are not supported");
    }
}

fn parse_fields(stream: TokenStream) -> Vec<Field> {
    let mut tokens = stream.into_iter().peekable();
    let mut fields = Vec::new();
    loop {
        let mut skip = false;
        let mut default = false;
        // Field attributes.
        while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            tokens.next();
            for flag in attr_flags(&mut tokens) {
                match flag.as_str() {
                    "skip" | "skip_serializing" | "skip_deserializing" => skip = true,
                    "default" => default = true,
                    _ => {}
                }
            }
        }
        skip_visibility(&mut tokens);
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected field name, found {other:?}"),
        };
        match tokens.next() {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => {}
            other => panic!("serde_derive: expected `:` after field `{name}`, found {other:?}"),
        }
        // Consume the type: commas nested in angle brackets don't end the
        // field (`BTreeMap<LinkId, Vec<Asn>>`); groups are atomic tokens.
        let mut depth = 0i32;
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    tokens.next();
                    break;
                }
                None => break,
                _ => {}
            }
            tokens.next();
        }
        fields.push(Field {
            name,
            skip,
            default,
        });
    }
    fields
}

fn count_tuple_fields(stream: TokenStream) -> usize {
    let mut depth = 0i32;
    let mut commas = 0usize;
    let mut any = false;
    let mut trailing_comma = false;
    for t in stream {
        any = true;
        trailing_comma = false;
        match t {
            TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
            TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
            TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => {
                commas += 1;
                trailing_comma = true;
            }
            _ => {}
        }
    }
    if !any {
        0
    } else if trailing_comma {
        commas
    } else {
        commas + 1
    }
}

fn parse_variants(stream: TokenStream) -> Vec<Variant> {
    let mut tokens = stream.into_iter().peekable();
    let mut variants = Vec::new();
    loop {
        while matches!(tokens.peek(), Some(TokenTree::Punct(p)) if p.as_char() == '#') {
            tokens.next();
            attr_flags(&mut tokens);
        }
        let name = match tokens.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            None => break,
            other => panic!("serde_derive: expected variant name, found {other:?}"),
        };
        let shape = match tokens.peek() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                let n = count_tuple_fields(g.stream());
                tokens.next();
                Shape::Tuple(n)
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                let fields = parse_fields(g.stream());
                tokens.next();
                Shape::Named(fields)
            }
            _ => Shape::Unit,
        };
        // Consume to the next top-level comma (skips discriminants).
        let mut depth = 0i32;
        loop {
            match tokens.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '<' => depth += 1,
                Some(TokenTree::Punct(p)) if p.as_char() == '>' => depth -= 1,
                Some(TokenTree::Punct(p)) if p.as_char() == ',' && depth == 0 => {
                    tokens.next();
                    break;
                }
                None => break,
                _ => {}
            }
            tokens.next();
        }
        variants.push(Variant { name, shape });
    }
    variants
}

// ---- codegen: Serialize ----------------------------------------------

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.data {
        Data::Named(fields) => {
            let active: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            if item.transparent {
                assert!(
                    active.len() == 1,
                    "serde_derive: transparent requires exactly one field"
                );
                format!("serde::Serialize::to_value(&self.{})", active[0].name)
            } else {
                let mut pushes = String::new();
                for f in &active {
                    pushes.push_str(&format!(
                        "__obj.push((String::from(\"{n}\"), serde::Serialize::to_value(&self.{n})));\n",
                        n = f.name
                    ));
                }
                format!(
                    "let mut __obj: Vec<(String, serde::Value)> = Vec::new();\n{pushes}serde::Value::Object(__obj)"
                )
            }
        }
        Data::Tuple(1) => "serde::Serialize::to_value(&self.0)".to_string(),
        Data::Tuple(n) => {
            let items: Vec<String> = (0..*n)
                .map(|i| format!("serde::Serialize::to_value(&self.{i})"))
                .collect();
            format!("serde::Value::Array(vec![{}])", items.join(", "))
        }
        Data::Unit => "serde::Value::Null".to_string(),
        Data::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => arms.push_str(&format!(
                        "{name}::{vn} => serde::Value::Str(String::from(\"{vn}\")),\n"
                    )),
                    Shape::Tuple(1) => arms.push_str(&format!(
                        "{name}::{vn}(__f0) => serde::Value::Object(vec![(String::from(\"{vn}\"), serde::Serialize::to_value(__f0))]),\n"
                    )),
                    Shape::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("__f{i}")).collect();
                        let vals: Vec<String> = binds
                            .iter()
                            .map(|b| format!("serde::Serialize::to_value({b})"))
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => serde::Value::Object(vec![(String::from(\"{vn}\"), serde::Value::Array(vec![{vals}]))]),\n",
                            binds = binds.join(", "),
                            vals = vals.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let active: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
                        let binds: Vec<String> =
                            fields.iter().map(|f| f.name.clone()).collect();
                        let entries: Vec<String> = active
                            .iter()
                            .map(|f| {
                                format!(
                                    "(String::from(\"{n}\"), serde::Serialize::to_value({n}))",
                                    n = f.name
                                )
                            })
                            .collect();
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => serde::Value::Object(vec![(String::from(\"{vn}\"), serde::Value::Object(vec![{entries}]))]),\n",
                            binds = binds.join(", "),
                            entries = entries.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{\n{arms}}}")
        }
    };
    format!(
        "#[automatically_derived]\nimpl serde::Serialize for {name} {{\n    fn to_value(&self) -> serde::Value {{\n{body}\n    }}\n}}\n"
    )
}

// ---- codegen: Deserialize --------------------------------------------

fn named_fields_ctor(path: &str, fields: &[Field], obj_expr: &str, err_ctx: &str) -> String {
    let mut inits = String::new();
    for f in fields {
        if f.skip {
            inits.push_str(&format!("{n}: Default::default(),\n", n = f.name));
            continue;
        }
        let missing = if f.default {
            "Default::default()".to_string()
        } else {
            format!(
                "return Err(serde::DeError::custom(\"{err_ctx}: missing field `{n}`\"))",
                n = f.name
            )
        };
        inits.push_str(&format!(
            "{n}: match serde::obj_get({obj_expr}, \"{n}\") {{ Some(__x) => serde::Deserialize::from_value(__x)?, None => {missing} }},\n",
            n = f.name
        ));
    }
    format!("{path} {{ {inits} }}")
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.data {
        Data::Named(fields) => {
            let active: Vec<&Field> = fields.iter().filter(|f| !f.skip).collect();
            if item.transparent {
                assert!(
                    active.len() == 1,
                    "serde_derive: transparent requires exactly one field"
                );
                let mut inits = String::new();
                for f in fields {
                    if f.skip {
                        inits.push_str(&format!("{n}: Default::default(),\n", n = f.name));
                    } else {
                        inits.push_str(&format!(
                            "{n}: serde::Deserialize::from_value(__v)?,\n",
                            n = f.name
                        ));
                    }
                }
                format!("Ok({name} {{ {inits} }})")
            } else {
                let ctor = named_fields_ctor(name, fields, "__obj", name);
                format!(
                    "let __obj = __v.as_object().ok_or_else(|| serde::DeError::custom(format!(\"{name}: expected object, found {{__v:?}}\")))?;\nOk({ctor})"
                )
            }
        }
        Data::Tuple(1) => format!("Ok({name}(serde::Deserialize::from_value(__v)?))"),
        Data::Tuple(n) => {
            let gets: Vec<String> = (0..*n)
                .map(|i| format!("serde::Deserialize::from_value(&__arr[{i}])?"))
                .collect();
            format!(
                "let __arr = __v.as_array().ok_or_else(|| serde::DeError::custom(\"{name}: expected array\"))?;\nif __arr.len() != {n} {{ return Err(serde::DeError::custom(\"{name}: wrong tuple arity\")); }}\nOk({name}({gets}))",
                gets = gets.join(", ")
            )
        }
        Data::Unit => format!("Ok({name})"),
        Data::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut content_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.shape {
                    Shape::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                        // Tolerate `{"Variant": null}` too.
                        content_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),\n"));
                    }
                    Shape::Tuple(1) => content_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(serde::Deserialize::from_value(__content)?)),\n"
                    )),
                    Shape::Tuple(n) => {
                        let gets: Vec<String> = (0..*n)
                            .map(|i| format!("serde::Deserialize::from_value(&__arr[{i}])?"))
                            .collect();
                        content_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __arr = __content.as_array().ok_or_else(|| serde::DeError::custom(\"{name}::{vn}: expected array\"))?; if __arr.len() != {n} {{ return Err(serde::DeError::custom(\"{name}::{vn}: wrong arity\")); }} Ok({name}::{vn}({gets})) }}\n",
                            gets = gets.join(", ")
                        ));
                    }
                    Shape::Named(fields) => {
                        let ctor = named_fields_ctor(
                            &format!("{name}::{vn}"),
                            fields,
                            "__obj",
                            &format!("{name}::{vn}"),
                        );
                        content_arms.push_str(&format!(
                            "\"{vn}\" => {{ let __obj = __content.as_object().ok_or_else(|| serde::DeError::custom(\"{name}::{vn}: expected object\"))?; Ok({ctor}) }}\n"
                        ));
                    }
                }
            }
            format!(
                "match __v {{\n\
                 serde::Value::Str(__s) => match __s.as_str() {{\n{unit_arms}\
                 __other => Err(serde::DeError::custom(format!(\"{name}: unknown variant `{{__other}}`\"))),\n}},\n\
                 serde::Value::Object(__o) if __o.len() == 1 => {{\n\
                 let (__tag, __content) = &__o[0];\n\
                 match __tag.as_str() {{\n{content_arms}\
                 __other => Err(serde::DeError::custom(format!(\"{name}: unknown variant `{{__other}}`\"))),\n}}\n}},\n\
                 __other => Err(serde::DeError::custom(format!(\"{name}: expected externally-tagged variant, found {{__other:?}}\"))),\n}}"
            )
        }
    };
    format!(
        "#[automatically_derived]\nimpl serde::Deserialize for {name} {{\n    fn from_value(__v: &serde::Value) -> Result<Self, serde::DeError> {{\n{body}\n    }}\n}}\n"
    )
}
