//! Vendored, minimal stand-in for the `rand` crate.
//!
//! Provides the subset of the rand API this workspace consumes:
//! [`Rng`] (the core word source), [`RngExt`] (`random`, `random_range`,
//! `random_bool`), and [`SeedableRng`] with `seed_from_u64`. The streams
//! are deterministic but are NOT guaranteed to match upstream `rand`;
//! golden test constants are pinned against these implementations.

use std::ops::{Range, RangeInclusive};

/// Core random word source.
pub trait Rng {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

impl<R: Rng + ?Sized> Rng for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Extension methods for random value generation.
pub trait RngExt: Rng {
    /// Sample a value of `T` from the standard distribution
    /// (`f64`/`f32` uniform in `[0, 1)`, integers uniform over the type).
    fn random<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Sample uniformly from a range (`low..high` or `low..=high`).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        Self: Sized,
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// Bernoulli sample: `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        f64::sample(self) < p
    }
}

impl<R: Rng + ?Sized> RngExt for R {}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Construct from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Construct from a `u64`, expanding it with splitmix64 like upstream.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Standard-distribution sampling for primitive types.
pub trait Standard: Sized {
    /// Sample one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> bool {
        rng.next_u32() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty : $src:ident),*) => {$(
        impl Standard for $t {
            fn sample<R: Rng + ?Sized>(rng: &mut R) -> $t {
                rng.$src() as $t
            }
        }
    )*};
}
impl_standard_int!(u8: next_u32, u16: next_u32, u32: next_u32, u64: next_u64, usize: next_u64,
                   i8: next_u32, i16: next_u32, i32: next_u32, i64: next_u64, isize: next_u64);

/// Uniform sampling over integer spans, shared by `Range`/`RangeInclusive`.
pub trait UniformInt: Copy + PartialOrd {
    /// Widen to i128 for span arithmetic.
    fn to_i128(self) -> i128;
    /// Narrow back (value is guaranteed in range).
    fn from_i128(v: i128) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),*) => {$(
        impl UniformInt for $t {
            fn to_i128(self) -> i128 { self as i128 }
            fn from_i128(v: i128) -> $t { v as $t }
        }
    )*};
}
impl_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

fn sample_span<T: UniformInt, R: Rng + ?Sized>(rng: &mut R, low: T, high_incl: T) -> T {
    let lo = low.to_i128();
    let hi = high_incl.to_i128();
    assert!(lo <= hi, "random_range: empty range");
    let span = (hi - lo + 1) as u128;
    if span == 0 {
        // Full 128-bit span cannot occur for our 64-bit-max types.
        unreachable!()
    }
    let v = rng.next_u64() as u128 % span;
    T::from_i128(lo + v as i128)
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draw one value from the range.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for Range<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        let hi = self.end.to_i128() - 1;
        sample_span(rng, self.start, T::from_i128(hi))
    }
}

impl<T: UniformInt> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> T {
        sample_span(rng, *self.start(), *self.end())
    }
}

impl SampleRange<f64> for Range<f64> {
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl Rng for Counter {
        fn next_u32(&mut self) -> u32 {
            self.0 = self.0.wrapping_add(0x1234_5678_9ABC_DEF1);
            (self.0 >> 16) as u32
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let a: usize = rng.random_range(0..13);
            assert!(a < 13);
            let b: u8 = rng.random_range(1u8..=255);
            assert!(b >= 1);
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
        }
    }
}
