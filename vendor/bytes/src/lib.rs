//! Vendored, minimal stand-in for the `bytes` crate: cheap-to-clone
//! immutable byte buffers ([`Bytes`]), growable builders ([`BytesMut`]),
//! and the [`Buf`]/[`BufMut`] cursor traits — covering the packet codec's
//! usage. Clones share the backing allocation via `Arc` (no copy), like
//! upstream.

use std::fmt;
use std::ops::{Bound, Deref, DerefMut, RangeBounds};
use std::sync::Arc;

/// A cheaply cloneable, immutable slice of bytes.
#[derive(Clone, Default)]
pub struct Bytes {
    data: Arc<Vec<u8>>,
    start: usize,
    end: usize,
}

impl Bytes {
    /// An empty buffer.
    pub fn new() -> Bytes {
        Bytes::default()
    }

    /// Wrap a static slice (copies into an owned allocation — the
    /// upstream zero-copy optimization is irrelevant at these sizes).
    pub fn from_static(bytes: &'static [u8]) -> Bytes {
        Bytes::from(bytes.to_vec())
    }

    /// Copy a slice into a new buffer.
    pub fn copy_from_slice(data: &[u8]) -> Bytes {
        Bytes::from(data.to_vec())
    }

    /// A sub-slice sharing the same backing storage.
    pub fn slice(&self, range: impl RangeBounds<usize>) -> Bytes {
        let len = self.len();
        let start = match range.start_bound() {
            Bound::Included(&n) => n,
            Bound::Excluded(&n) => n + 1,
            Bound::Unbounded => 0,
        };
        let end = match range.end_bound() {
            Bound::Included(&n) => n + 1,
            Bound::Excluded(&n) => n,
            Bound::Unbounded => len,
        };
        assert!(start <= end && end <= len, "slice out of bounds");
        Bytes {
            data: Arc::clone(&self.data),
            start: self.start + start,
            end: self.start + end,
        }
    }

    /// Length in bytes.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.end - self.start
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.start == self.end
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.data[self.start..self.end]
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        self
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Bytes {
        let end = v.len();
        Bytes {
            data: Arc::new(v),
            start: 0,
            end,
        }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Bytes {
        Bytes::from(v.to_vec())
    }
}

impl PartialEq for Bytes {
    fn eq(&self, other: &Bytes) -> bool {
        self[..] == other[..]
    }
}
impl Eq for Bytes {}

impl PartialEq<[u8]> for Bytes {
    fn eq(&self, other: &[u8]) -> bool {
        &self[..] == other
    }
}

impl std::hash::Hash for Bytes {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self[..].hash(state)
    }
}

impl fmt::Debug for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b\"")?;
        for &b in self.iter() {
            for c in std::ascii::escape_default(b) {
                write!(f, "{}", c as char)?;
            }
        }
        write!(f, "\"")
    }
}

/// Read cursor over a byte source; integer reads are big-endian.
pub trait Buf {
    /// Bytes remaining to read.
    fn remaining(&self) -> usize;

    /// The unread bytes.
    fn chunk(&self) -> &[u8];

    /// Skip `n` bytes.
    fn advance(&mut self, n: usize);

    /// Read one byte.
    fn get_u8(&mut self) -> u8 {
        let v = self.chunk()[0];
        self.advance(1);
        v
    }

    /// Read a big-endian u16.
    fn get_u16(&mut self) -> u16 {
        let c = self.chunk();
        let v = u16::from_be_bytes([c[0], c[1]]);
        self.advance(2);
        v
    }

    /// Read a big-endian u32.
    fn get_u32(&mut self) -> u32 {
        let c = self.chunk();
        let v = u32::from_be_bytes([c[0], c[1], c[2], c[3]]);
        self.advance(4);
        v
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.len()
    }

    fn chunk(&self) -> &[u8] {
        self
    }

    fn advance(&mut self, n: usize) {
        assert!(n <= self.len(), "advance past end of buffer");
        self.start += n;
    }
}

/// A growable byte builder.
#[derive(Clone, Default, Debug, PartialEq, Eq)]
pub struct BytesMut {
    v: Vec<u8>,
}

impl BytesMut {
    /// An empty builder.
    pub fn new() -> BytesMut {
        BytesMut::default()
    }

    /// An empty builder with preallocated capacity.
    pub fn with_capacity(cap: usize) -> BytesMut {
        BytesMut {
            v: Vec::with_capacity(cap),
        }
    }

    /// Current length.
    #[allow(clippy::len_without_is_empty)]
    pub fn len(&self) -> usize {
        self.v.len()
    }

    /// True when empty.
    pub fn is_empty(&self) -> bool {
        self.v.is_empty()
    }

    /// Freeze into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes::from(self.v)
    }
}

impl Deref for BytesMut {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.v
    }
}

impl DerefMut for BytesMut {
    fn deref_mut(&mut self) -> &mut [u8] {
        &mut self.v
    }
}

/// Write cursor; integer writes are big-endian.
pub trait BufMut {
    /// Append raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Append one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Append a big-endian u16.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u32.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Append a big-endian u64.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.v.extend_from_slice(src);
    }
}

impl BufMut for Vec<u8> {
    fn put_slice(&mut self, src: &[u8]) {
        self.extend_from_slice(src);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_freeze_read() {
        let mut b = BytesMut::with_capacity(16);
        b.put_u8(1);
        b.put_u16(0x0203);
        b.put_u32(0x0405_0607);
        b.put_slice(b"xy");
        b[0] = 0xFF;
        let mut frozen = b.freeze();
        assert_eq!(frozen.len(), 9);
        assert_eq!(frozen.get_u8(), 0xFF);
        assert_eq!(frozen.get_u16(), 0x0203);
        assert_eq!(frozen.get_u32(), 0x0405_0607);
        assert_eq!(&frozen[..], b"xy");
        assert_eq!(frozen.slice(1..), Bytes::from_static(b"y"));
    }

    #[test]
    fn clones_share_storage() {
        let a = Bytes::from(vec![1, 2, 3, 4]);
        let b = a.clone();
        let c = a.slice(1..3);
        assert_eq!(&c[..], &[2, 3]);
        assert_eq!(a, b);
    }
}
