//! Vendored ChaCha8-based RNG implementing the vendored `rand` traits.
//!
//! A real ChaCha8 block function drives the stream, but the word order
//! is not guaranteed to match upstream `rand_chacha`; golden constants
//! in this workspace are pinned against this implementation.

use rand::{Rng, SeedableRng};

/// ChaCha stream cipher RNG with 8 rounds.
#[derive(Debug, Clone)]
pub struct ChaCha8Rng {
    key: [u32; 8],
    counter: u64,
    buf: [u32; 16],
    idx: usize,
}

const CHACHA_CONST: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

impl ChaCha8Rng {
    fn refill(&mut self) {
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONST);
        state[4..12].copy_from_slice(&self.key);
        state[12] = self.counter as u32;
        state[13] = (self.counter >> 32) as u32;
        state[14] = 0;
        state[15] = 0;
        let mut work = state;
        for _ in 0..4 {
            // Column round.
            quarter(&mut work, 0, 4, 8, 12);
            quarter(&mut work, 1, 5, 9, 13);
            quarter(&mut work, 2, 6, 10, 14);
            quarter(&mut work, 3, 7, 11, 15);
            // Diagonal round.
            quarter(&mut work, 0, 5, 10, 15);
            quarter(&mut work, 1, 6, 11, 12);
            quarter(&mut work, 2, 7, 8, 13);
            quarter(&mut work, 3, 4, 9, 14);
        }
        for i in 0..16 {
            self.buf[i] = work[i].wrapping_add(state[i]);
        }
        self.counter = self.counter.wrapping_add(1);
        self.idx = 0;
    }
}

#[inline]
fn quarter(s: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(16);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(12);
    s[a] = s[a].wrapping_add(s[b]);
    s[d] = (s[d] ^ s[a]).rotate_left(8);
    s[c] = s[c].wrapping_add(s[d]);
    s[b] = (s[b] ^ s[c]).rotate_left(7);
}

impl SeedableRng for ChaCha8Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> ChaCha8Rng {
        let mut key = [0u32; 8];
        for (i, chunk) in seed.chunks_exact(4).enumerate() {
            key[i] = u32::from_le_bytes(chunk.try_into().unwrap());
        }
        ChaCha8Rng {
            key,
            counter: 0,
            buf: [0; 16],
            idx: 16,
        }
    }
}

impl Rng for ChaCha8Rng {
    fn next_u32(&mut self) -> u32 {
        if self.idx >= 16 {
            self.refill();
        }
        let w = self.buf[self.idx];
        self.idx += 1;
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngExt;

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = ChaCha8Rng::seed_from_u64(1);
        let mut b = ChaCha8Rng::seed_from_u64(1);
        let mut c = ChaCha8Rng::seed_from_u64(2);
        let xs: Vec<u32> = (0..64).map(|_| a.next_u32()).collect();
        let ys: Vec<u32> = (0..64).map(|_| b.next_u32()).collect();
        let zs: Vec<u32> = (0..64).map(|_| c.next_u32()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn f64_is_roughly_uniform() {
        let mut rng = ChaCha8Rng::seed_from_u64(42);
        let n = 10_000;
        let mean: f64 = (0..n).map(|_| rng.random::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }
}
