//! Vendored, minimal stand-in for the `serde` crate.
//!
//! The build environment has no network access and no registry cache, so
//! the workspace vendors a JSON-oriented subset of serde's surface: the
//! `Serialize`/`Deserialize` traits (routed through an intermediate
//! [`Value`] tree rather than serde's visitor machinery), derive macros,
//! and impls for the primitive / std types this workspace serializes.
//!
//! Supported derive attributes: `#[serde(transparent)]`,
//! `#[serde(skip)]`, `#[serde(default)]`. Enums use serde's external
//! tagging. Map keys round-trip through strings the way `serde_json`
//! stringifies integer keys.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::fmt;

/// A JSON-shaped data tree: the interchange format between `Serialize`
/// implementations and concrete formats (`serde_json`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Negative integers.
    I64(i64),
    /// Non-negative integers.
    U64(u64),
    /// Floating point numbers.
    F64(f64),
    /// Strings.
    Str(String),
    /// Arrays.
    Array(Vec<Value>),
    /// Objects, preserving insertion order like `serde_json`'s
    /// `preserve_order` feature (and keeping duplicate detection simple).
    Object(Vec<(String, Value)>),
}

impl Value {
    /// Borrow as an object if this is one.
    pub fn as_object(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Object(o) => Some(o),
            _ => None,
        }
    }

    /// Borrow as an array if this is one.
    pub fn as_array(&self) -> Option<&[Value]> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// Borrow as a string if this is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// Find a key in an object body (first match wins, like serde_json).
pub fn obj_get<'a>(obj: &'a [(String, Value)], key: &str) -> Option<&'a Value> {
    obj.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

/// Deserialization error with a human-readable message.
#[derive(Debug, Clone)]
pub struct DeError(pub String);

impl DeError {
    /// Build an error from any displayable message.
    pub fn custom(msg: impl fmt::Display) -> DeError {
        DeError(msg.to_string())
    }
}

impl fmt::Display for DeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl std::error::Error for DeError {}

/// Types that can be converted into a [`Value`] tree.
pub trait Serialize {
    /// Serialize `self` into the intermediate value tree.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`] tree.
pub trait Deserialize: Sized {
    /// Deserialize from the intermediate value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

// ---- primitive impls -------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                Value::U64(*self as u64)
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!(
                            "integer {n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!(
                            "integer {n} out of range for {}", stringify!($t)))),
                    other => Err(DeError::custom(format!(
                        "expected {}, found {other:?}", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n < 0 { Value::I64(n) } else { Value::U64(n as u64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!(
                            "integer {n} out of range for {}", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!(
                            "integer {n} out of range for {}", stringify!($t)))),
                    other => Err(DeError::custom(format!(
                        "expected {}, found {other:?}", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(x) => Ok(*x),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(DeError::custom(format!("expected f64, found {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        f64::from_value(v).map(|x| x as f32)
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, found {other:?}"))),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}
impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let s = v
            .as_str()
            .ok_or_else(|| DeError::custom("expected single-char string"))?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(DeError::custom("expected single-char string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| DeError::custom(format!("expected string, found {v:?}")))
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}
impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        T::from_value(v).map(Box::new)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            None => Value::Null,
            Some(x) => x.to_value(),
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

// ---- sequences -------------------------------------------------------

fn seq_to_value<'a, T: Serialize + 'a>(items: impl Iterator<Item = &'a T>) -> Value {
    Value::Array(items.map(Serialize::to_value).collect())
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_array()
            .ok_or_else(|| DeError::custom(format!("expected array, found {v:?}")))?
            .iter()
            .map(T::from_value)
            .collect()
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}
impl<T: Deserialize + fmt::Debug, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        let items: Vec<T> = Vec::from_value(v)?;
        <[T; N]>::try_from(items).map_err(|items| {
            DeError::custom(format!("expected {N} elements, found {}", items.len()))
        })
    }
}

impl<T: Serialize> Serialize for VecDeque<T> {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}
impl<T: Deserialize> Deserialize for VecDeque<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::from_value(v)
            .map(Vec::into_iter)
            .map(Iterator::collect)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn to_value(&self) -> Value {
        seq_to_value(self.iter())
    }
}
impl<T: Deserialize + Ord> Deserialize for BTreeSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::from_value(v)
            .map(Vec::into_iter)
            .map(Iterator::collect)
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn to_value(&self) -> Value {
        // Sort the rendered values for deterministic output.
        let mut vals: Vec<Value> = self.iter().map(Serialize::to_value).collect();
        vals.sort_by(|a, b| format!("{a:?}").cmp(&format!("{b:?}")));
        Value::Array(vals)
    }
}
impl<T: Deserialize + Eq + std::hash::Hash> Deserialize for HashSet<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Vec::from_value(v)
            .map(Vec::into_iter)
            .map(Iterator::collect)
    }
}

// ---- tuples ----------------------------------------------------------

macro_rules! impl_tuple {
    ($(($($t:ident : $idx:tt),+ ; $len:expr)),*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Array(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let arr = v.as_array()
                    .ok_or_else(|| DeError::custom("expected tuple array"))?;
                if arr.len() != $len {
                    return Err(DeError::custom(format!(
                        "expected {}-tuple, found {} elements", $len, arr.len())));
                }
                Ok(($($t::from_value(&arr[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple!(
    (A:0; 1),
    (A:0, B:1; 2),
    (A:0, B:1, C:2; 3),
    (A:0, B:1, C:2, D:3; 4),
    (A:0, B:1, C:2, D:3, E:4; 5)
);

// ---- maps ------------------------------------------------------------

fn map_key_to_string(v: &Value) -> String {
    match v {
        Value::Str(s) => s.clone(),
        Value::U64(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => panic!("unsupported map key: {other:?}"),
    }
}

fn map_key_from_string<K: Deserialize>(s: &str) -> Result<K, DeError> {
    if let Ok(u) = s.parse::<u64>() {
        if let Ok(k) = K::from_value(&Value::U64(u)) {
            return Ok(k);
        }
    }
    if let Ok(i) = s.parse::<i64>() {
        if let Ok(k) = K::from_value(&Value::I64(i)) {
            return Ok(k);
        }
    }
    if s == "true" || s == "false" {
        if let Ok(k) = K::from_value(&Value::Bool(s == "true")) {
            return Ok(k);
        }
    }
    K::from_value(&Value::Str(s.to_string()))
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Object(
            self.iter()
                .map(|(k, v)| (map_key_to_string(&k.to_value()), v.to_value()))
                .collect(),
        )
    }
}
impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::custom(format!("expected object, found {v:?}")))?
            .iter()
            .map(|(k, v)| Ok((map_key_from_string(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> = self
            .iter()
            .map(|(k, v)| (map_key_to_string(&k.to_value()), v.to_value()))
            .collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Object(entries)
    }
}
impl<K: Deserialize + Eq + std::hash::Hash, V: Deserialize> Deserialize for HashMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        v.as_object()
            .ok_or_else(|| DeError::custom(format!("expected object, found {v:?}")))?
            .iter()
            .map(|(k, v)| Ok((map_key_from_string(k)?, V::from_value(v)?)))
            .collect()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        Ok(v.clone())
    }
}

impl Serialize for () {
    fn to_value(&self) -> Value {
        Value::Null
    }
}
impl Deserialize for () {
    fn from_value(_: &Value) -> Result<Self, DeError> {
        Ok(())
    }
}
