//! Vendored, minimal property-testing harness exposing the subset of the
//! `proptest` API this workspace uses: the [`Strategy`] trait with
//! `prop_map`, range / tuple / collection / option strategies, `any`,
//! `ProptestConfig`, and the `proptest!` / `prop_assert*` macros.
//!
//! Cases are generated from a deterministic per-test RNG (seeded from the
//! test name), so failures reproduce exactly. There is no shrinking —
//! a failing case panics with the generated inputs left to the assert
//! message.

use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

pub mod test_runner {
    //! Deterministic RNG driving case generation.

    /// Splitmix64-based generator, seeded per test.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed deterministically from the test name.
        pub fn deterministic(name: &str) -> TestRng {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform f64 in [0, 1).
        pub fn next_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }

        /// Uniform usize in [0, bound).
        pub fn below(&mut self, bound: usize) -> usize {
            assert!(bound > 0);
            (self.next_u64() % bound as u64) as usize
        }
    }
}

use test_runner::TestRng;

/// Test-runner configuration (`cases` is the only supported knob).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases per property.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` random cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Lighter than upstream's 256: several properties here run full
        // BGP propagations per case. Override with PROPTEST_CASES.
        let cases = std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(32);
        ProptestConfig { cases }
    }
}

/// A generator of random values.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generate one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Always-the-same-value strategy.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as u128) - (self.start as u128);
                (self.start as u128 + (rng.next_u64() as u128 % span)) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start() as u128, *self.end() as u128);
                assert!(lo <= hi, "empty range strategy");
                let span = hi - lo + 1;
                (lo + (rng.next_u64() as u128 % span)) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_tuple_strategy {
    ($(($($s:ident : $idx:tt),+)),*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy!(
    (A:0, B:1),
    (A:0, B:1, C:2),
    (A:0, B:1, C:2, D:3),
    (A:0, B:1, C:2, D:3, E:4),
    (A:0, B:1, C:2, D:3, E:4, F:5)
);

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Generate an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        rng.next_f64()
    }
}

/// Strategy produced by [`any`].
#[derive(Debug, Clone)]
pub struct Any<T>(PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Unconstrained values of `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Length specification for [`vec`]: a fixed size or a half-open range.
    #[derive(Debug, Clone, Copy)]
    pub struct SizeRange {
        lo: usize,
        hi: usize, // exclusive
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    /// Strategy generating vectors of `element` with lengths in `size`.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = self.size.hi - self.size.lo;
            let len = self.size.lo + rng.below(span.max(1));
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// `Vec<T>` strategy with element strategy and size range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }
}

pub mod option {
    //! `Option<T>` strategies.

    use super::{Strategy, TestRng};

    /// Strategy generating `Option` of the inner strategy's values.
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
        p_some: f64,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.next_f64() < self.p_some {
                Some(self.inner.generate(rng))
            } else {
                None
            }
        }
    }

    /// `Some` with probability 0.5.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        weighted(0.5, inner)
    }

    /// `Some` with probability `p_some`.
    pub fn weighted<S: Strategy>(p_some: f64, inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner, p_some }
    }
}

pub mod prelude {
    //! The usual imports for property tests.
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Any, Arbitrary, Just,
        ProptestConfig, Strategy,
    };
}

/// Assert within a property (no shrinking; panics like `assert!`).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => { assert!($cond) };
    ($cond:expr, $($fmt:tt)*) => { assert!($cond, $($fmt)*) };
}

/// Equality assert within a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => { assert_eq!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_eq!($a, $b, $($fmt)*) };
}

/// Inequality assert within a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => { assert_ne!($a, $b) };
    ($a:expr, $b:expr, $($fmt:tt)*) => { assert_ne!($a, $b, $($fmt)*) };
}

/// Define property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! { ($crate::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(concat!(module_path!(), "::", stringify!($name)));
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::generate(&$strat, &mut __rng);)+
                // Inner closure so `?`-free bodies and early `return`s
                // behave per-case, not per-test.
                let __run = || { $body };
                __run();
                let _ = __case;
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_in_bounds(x in 3u32..17, y in 1u8..=9) {
            prop_assert!((3..17).contains(&x));
            prop_assert!((1..=9).contains(&y));
        }

        #[test]
        fn combinators_compose(
            v in crate::collection::vec(crate::option::of(0u8..4), 0..6),
            pair in (0usize..5, (1u32..10).prop_map(|n| n * 2)),
        ) {
            prop_assert!(v.len() < 6);
            for x in v.into_iter().flatten() {
                prop_assert!(x < 4);
            }
            prop_assert!(pair.1 % 2 == 0);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_runner::TestRng::deterministic("t");
        let mut b = crate::test_runner::TestRng::deterministic("t");
        let xs: Vec<u64> = (0..10).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..10).map(|_| b.next_u64()).collect();
        assert_eq!(xs, ys);
    }
}
