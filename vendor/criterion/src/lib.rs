//! Vendored, minimal benchmarking harness with a criterion-compatible
//! API surface (`Criterion`, `benchmark_group`, `bench_with_input`,
//! `BenchmarkId`, `criterion_group!`/`criterion_main!`).
//!
//! Each benchmark is timed for real: a warmup call, then repeated timed
//! iterations until a wall-clock budget is spent, reporting the mean
//! time per iteration. Results print to stdout; there is no HTML report
//! or statistical regression machinery.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Wall-clock budget spent measuring each benchmark (after warmup).
fn measure_budget() -> Duration {
    let ms = std::env::var("BENCH_BUDGET_MS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1000u64);
    Duration::from_millis(ms)
}

/// Benchmark identifier: `function_name/parameter`.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Compose from a function name and a parameter value.
    pub fn new(function: impl Display, parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: format!("{function}/{parameter}"),
        }
    }

    /// A parameter-only id.
    pub fn from_parameter(parameter: impl Display) -> BenchmarkId {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.id)
    }
}

/// Per-benchmark timing driver passed to the closure.
pub struct Bencher {
    /// Mean time per iteration of the last `iter` call.
    mean: Duration,
    /// Iterations actually run.
    iters: u64,
}

impl Bencher {
    /// Time `f`, storing the mean per-iteration duration.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warmup (also primes caches / lazy statics).
        black_box(f());
        let budget = measure_budget();
        let start = Instant::now();
        let mut iters = 0u64;
        loop {
            black_box(f());
            iters += 1;
            if start.elapsed() >= budget || iters >= 1_000_000 {
                break;
            }
        }
        self.mean = start.elapsed() / iters.max(1) as u32;
        self.iters = iters;
    }
}

fn run_one(name: &str, mut f: impl FnMut(&mut Bencher)) {
    let mut b = Bencher {
        mean: Duration::ZERO,
        iters: 0,
    };
    f(&mut b);
    println!(
        "{name:<56} {:>14} /iter  ({} iters)",
        format_duration(b.mean),
        b.iters
    );
}

fn format_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns >= 1_000_000_000 {
        format!("{:.3} s", ns as f64 / 1e9)
    } else if ns >= 1_000_000 {
        format!("{:.3} ms", ns as f64 / 1e6)
    } else if ns >= 1_000 {
        format!("{:.3} µs", ns as f64 / 1e3)
    } else {
        format!("{ns} ns")
    }
}

/// Top-level benchmark registry.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Run a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: F) -> &mut Self {
        run_one(name, f);
        self
    }

    /// Open a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; sampling is time-budgeted here.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Accepted for API compatibility.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Run a benchmark inside the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Display, f: F) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), f);
        self
    }

    /// Run a benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        run_one(&format!("{}/{}", self.name, id), |b| f(b, input));
        self
    }

    /// Finish the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Group benchmark functions under one registry entry point.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
    ($name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        $crate::criterion_group!($name, $($target),+);
    };
}

/// Entry point running every group passed to it.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
