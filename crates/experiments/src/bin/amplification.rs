//! Reflection-attack traceback scenario (§VII-a): the victim only ever
//! sees reflector ASes, so attribution runs from the origin network's
//! vantage — its honeypot attracts the pre-reflection queries and the
//! campaign names the true origin cluster behind the reflector hop.
//!
//! Accepts the shared experiment flags plus `--sketch WIDTHxDEPTH` to
//! route the flows through the count-min accumulator instead of exact
//! counters. With `--check`, exits non-zero unless the origin stays
//! invisible to the victim *and* ≥90% of the baseline-observable origin
//! ASes are recovered (the CI smoke contract, on either accumulator).

use trackdown_experiments::{scenarios, Options};

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let opts = Options::from_args_filtered(&["--check"]);

    let outcome = scenarios::amplification(&opts);
    println!(
        "victim view: {} reflector ASes, {:.0}x amplification, true origin visible: {}",
        outcome.victim_reflector_ases,
        outcome.victim_amplification,
        outcome.origin_visible_to_victim,
    );
    println!(
        "origin view: {} origin ASes ({} observable at baseline), {}/{} recovered; \
         {} ASes named; error bound {}; ranking stable: {}",
        outcome.origin_ases.len(),
        outcome.observable,
        outcome.recovered,
        outcome.observable,
        outcome.named_ases.len(),
        outcome.error_bound,
        outcome.ranking_stable,
    );

    if check {
        if let Some(violation) = outcome.check() {
            eprintln!("amplification check FAILED: {violation}");
            std::process::exit(1);
        }
        eprintln!(
            "amplification check passed: {}/{} origins recovered behind the reflector hop",
            outcome.recovered, outcome.observable
        );
    }
}
