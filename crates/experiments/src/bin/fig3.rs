//! Regenerate Figure 3: CCDF of cluster sizes after each phase.
use trackdown_experiments::{figures, report_stats, Options, Scenario};

fn main() {
    let scenario = Scenario::build(Options::from_args());
    scenario.announce();
    let campaign = scenario.run();
    report_stats(&campaign);
    print!("{}", figures::fig3(&scenario, &campaign));
}
