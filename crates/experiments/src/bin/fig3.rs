//! Regenerate Figure 3: CCDF of cluster sizes after each phase.
use trackdown_experiments::{figures, Options, Scenario};

fn main() {
    let scenario = Scenario::build(Options::from_args());
    eprintln!("# {}", scenario.describe());
    let campaign = scenario.run();
    print!("{}", figures::fig3(&scenario, &campaign));
}
