//! Partial source-address-validation scenario: SAV is deployed everywhere
//! except a seeded 20% pocket of stub ASes, and every spoofing source
//! lives in that pocket — the Spoofer-project picture of the real edge.
//! Localization must concentrate the suspect volume on clusters holding
//! spoof-capable stubs, not the compliant remainder.
//!
//! Accepts the shared experiment flags plus `--sketch WIDTHxDEPTH` to
//! route the flows through the count-min accumulator instead of exact
//! counters. With `--check`, exits non-zero unless ≥90% of the suspect
//! volume lands on spoof-capable pockets (the CI smoke contract, on
//! either accumulator).

use trackdown_experiments::{scenarios, Options};

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let opts = Options::from_args_filtered(&["--check"]);

    let outcome = scenarios::partial_sav(&opts);
    println!(
        "partial SAV: {}/{} stubs spoof-capable; {} suspect clusters; \
         {:.1}% of suspect volume on spoof-capable pockets; error bound {}; \
         ranking stable: {}",
        outcome.spoof_capable,
        outcome.stubs,
        outcome.suspect_clusters,
        outcome.volume_on_spoofers * 100.0,
        outcome.error_bound,
        outcome.ranking_stable,
    );

    if check {
        if let Some(violation) = outcome.check() {
            eprintln!("partial-sav check FAILED: {violation}");
            std::process::exit(1);
        }
        eprintln!(
            "partial-sav check passed: {:.1}% of suspect volume on spoof-capable stubs",
            outcome.volume_on_spoofers * 100.0
        );
    }
}
