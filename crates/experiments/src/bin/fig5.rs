//! Regenerate Figure 5: mean cluster size when removing peering locations.
use trackdown_experiments::{figures, Options, Scenario};

fn main() {
    let scenario = Scenario::build(Options::from_args());
    eprintln!("# {}", scenario.describe());
    let campaign = scenario.run();
    print!("{}", figures::fig5(&scenario, &campaign));
}
