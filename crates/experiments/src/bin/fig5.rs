//! Regenerate Figure 5: mean cluster size when removing peering locations.
use trackdown_experiments::{figures, report_stats, Options, Scenario};

fn main() {
    let scenario = Scenario::build(Options::from_args());
    scenario.announce();
    let campaign = scenario.run();
    report_stats(&campaign);
    print!("{}", figures::fig5(&scenario, &campaign));
}
