//! Run every experiment and write the reports to `results/`.
//!
//! The campaign (propagation + clustering) is shared across the figures
//! that consume it; Figure 9 runs its own propagation pass to collect
//! candidate routes.
use std::fs;
use std::time::Instant;
use trackdown_experiments::{figures, Options, Scale, Scenario};

fn main() {
    let opts = Options::from_args();
    let scenario = Scenario::build(opts);
    println!("{}", scenario.describe());
    fs::create_dir_all("results").expect("create results dir");

    let t0 = Instant::now();
    let campaign = scenario.run();
    println!(
        "campaign: {} configs deployed in {:.1?}; final mean cluster size {:.3}",
        campaign.configs.len(),
        t0.elapsed(),
        campaign.clustering.mean_size()
    );

    let (samples, steps, placements) = match opts.scale {
        Scale::Small => (100, 20, 100),
        Scale::Medium => (200, 30, 300),
        Scale::Full => (300, 40, 1000),
    };

    let jobs: Vec<(&str, String)> = vec![
        ("table1.txt", figures::table1(&scenario)),
        ("fig3.txt", figures::fig3(&scenario, &campaign)),
        ("fig4.txt", figures::fig4(&campaign)),
        ("fig5.txt", figures::fig5(&scenario, &campaign)),
        ("fig6.txt", figures::fig6(&scenario, &campaign)),
        ("fig7.txt", figures::fig7(&scenario, &campaign)),
        (
            "fig8.txt",
            figures::fig8(&campaign, samples, steps, opts.seed ^ 0xF18),
        ),
        ("fig9.txt", figures::fig9(&scenario)),
        (
            "fig10.txt",
            figures::fig10(&scenario, &campaign, placements),
        ),
        ("table2.txt", figures::table2()),
    ];
    for (file, content) in jobs {
        let path = format!("results/{file}");
        fs::write(&path, &content).expect("write result");
        let first = content.lines().next().unwrap_or("");
        println!("wrote {path}  ({first})");
    }
    println!("total {:.1?}", t0.elapsed());
    println!(
        "extension studies (ablation, staleness, online, convergence) are separate \
         binaries; run e.g. `cargo run --release -p trackdown-experiments --bin ablation`"
    );
}
