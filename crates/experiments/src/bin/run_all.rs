//! Run every experiment and write the reports to `results/`.
//!
//! The campaign (propagation + clustering) is shared across the figures
//! that consume it; Figure 9 runs its own propagation pass to collect
//! candidate routes.
use std::fs;
use std::time::Instant;
use trackdown_experiments::{figures, report_stats, Options, Scale, Scenario};
use trackdown_obs::progress;

fn main() {
    let opts = Options::from_args();
    let scenario = Scenario::build(opts);
    scenario.announce();
    fs::create_dir_all("results").expect("create results dir");

    let t0 = Instant::now();
    let campaign = scenario.run();
    report_stats(&campaign);
    progress::emit(
        "campaign.done",
        &[
            ("configs", campaign.configs.len().to_string()),
            ("elapsed_ms", t0.elapsed().as_millis().to_string()),
            (
                "mean_cluster_size",
                format!("{:.3}", campaign.clustering.mean_size()),
            ),
        ],
    );

    let (samples, steps, placements) = match scenario.scale {
        Scale::Small => (100, 20, 100),
        Scale::Medium => (200, 30, 300),
        Scale::Full | Scale::Large | Scale::Internet => (300, 40, 1000),
    };

    let jobs: Vec<(&str, String)> = vec![
        ("table1.txt", figures::table1(&scenario)),
        ("fig3.txt", figures::fig3(&scenario, &campaign)),
        ("fig4.txt", figures::fig4(&campaign)),
        ("fig5.txt", figures::fig5(&scenario, &campaign)),
        ("fig6.txt", figures::fig6(&scenario, &campaign)),
        ("fig7.txt", figures::fig7(&scenario, &campaign)),
        (
            "fig8.txt",
            figures::fig8(&campaign, samples, steps, scenario.seed ^ 0xF18),
        ),
        ("fig9.txt", figures::fig9(&scenario)),
        (
            "fig10.txt",
            figures::fig10(&scenario, &campaign, placements),
        ),
        ("table2.txt", figures::table2()),
    ];
    for (file, content) in jobs {
        let path = format!("results/{file}");
        fs::write(&path, &content).expect("write result");
        let first = content.lines().next().unwrap_or("");
        progress::emit(
            "artifact.written",
            &[("path", path.clone()), ("head", first.to_string())],
        );
    }
    progress::emit(
        "run_all.done",
        &[("elapsed_ms", t0.elapsed().as_millis().to_string())],
    );
    eprintln!(
        "extension studies (ablation, staleness, online, convergence, defense) are \
         separate binaries; run e.g. `cargo run --release -p trackdown-experiments --bin ablation`"
    );
}
