//! Regenerate Figure 4: cluster sizes vs number of configurations.
use trackdown_experiments::{figures, report_stats, Options, Scenario};

fn main() {
    let scenario = Scenario::build(Options::from_args());
    scenario.announce();
    let campaign = scenario.run();
    report_stats(&campaign);
    print!("{}", figures::fig4(&campaign));
}
