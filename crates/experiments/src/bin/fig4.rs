//! Regenerate Figure 4: cluster sizes vs number of configurations.
use trackdown_experiments::{figures, Options, Scenario};

fn main() {
    let scenario = Scenario::build(Options::from_args());
    eprintln!("# {}", scenario.describe());
    let campaign = scenario.run();
    print!("{}", figures::fig4(&campaign));
}
