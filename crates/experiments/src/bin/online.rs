//! Time-to-localize during an ongoing attack (§V-C operationalized):
//! how many configurations does the online loop need to reduce the
//! suspect set to a handful of ASes, with and without greedy selection?

use trackdown_core::localize::{run_campaign, CatchmentSource};
use trackdown_core::online::{simulate_online_attack, OnlineOptions};
use trackdown_experiments::{report_stats, Options, Scenario};

fn main() {
    let opts = Options::from_args();
    let scenario = Scenario::build(opts);
    scenario.announce();
    let engine = scenario.engine();
    let schedule = scenario.schedule();
    let campaign = run_campaign(
        &engine,
        &scenario.origin,
        &schedule,
        CatchmentSource::ControlPlane,
        None,
        200,
    );
    report_stats(&campaign);

    let trials = 40usize;
    println!("# Online localization: configurations needed to reach the attacker's");
    println!("# minimal suspect set (its cluster under the full schedule, +1 slack)");
    println!(
        "# ({} single-source trials, budget 40 configurations)\n",
        trials
    );
    for greedy in [true, false] {
        let mut used = Vec::new();
        let mut localized = 0usize;
        for t in 0..trials {
            let attacker = campaign.tracked[(t * 41 + 7) % campaign.tracked.len()];
            // Best achievable: the attacker's cluster size after every
            // configuration — the online loop cannot do better.
            let optimal = campaign.clustering.cluster_size_of(attacker).unwrap_or(1);
            let mut vol = vec![0u64; scenario.gen.topology.num_ases()];
            vol[attacker.us()] = 1_000_000;
            let result = simulate_online_attack(
                &engine,
                &scenario.origin,
                &schedule,
                Some(&campaign.catchments),
                &campaign.tracked,
                &vol,
                OnlineOptions {
                    max_configs: 40,
                    target_suspects: optimal + 1,
                    greedy,
                    prefixes: 1,
                },
            );
            if result.localized {
                localized += 1;
            }
            used.push(result.deployed.len());
        }
        used.sort_unstable();
        let mean: f64 = used.iter().sum::<usize>() as f64 / used.len() as f64;
        println!(
            "{}: localized {}/{} trials; configs used mean {:.1}, median {}, p90 {}",
            if greedy { "greedy  " } else { "in-order" },
            localized,
            trials,
            mean,
            used[used.len() / 2],
            used[(used.len() * 9) / 10],
        );
    }
    println!("\n# each configuration costs ~70 minutes in deployment (convergence +");
    println!("# measurement), so halving the configuration count halves wall-clock");
    println!("# time to actionable attribution.");
}
