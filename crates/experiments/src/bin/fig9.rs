//! Regenerate Figure 9: ASes following well-known routing policies.
use trackdown_experiments::{figures, Options, Scenario};

fn main() {
    let scenario = Scenario::build(Options::from_args());
    scenario.announce();
    print!("{}", figures::fig9(&scenario));
}
