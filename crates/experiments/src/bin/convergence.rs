//! Convergence depth per announcement configuration: the simulator's
//! proxy for the convergence-time bound the paper leans on (§IV-a cites
//! convergence under 2.5 minutes 99% of the time; each configuration is
//! kept active 70 minutes to be safe).

use trackdown_experiments::{Options, Scenario};

fn main() {
    let opts = Options::from_args();
    let scenario = Scenario::build(opts);
    scenario.announce();
    let engine = scenario.engine();
    let schedule = scenario.schedule();
    let mut rounds: Vec<u32> = Vec::with_capacity(schedule.len());
    let mut events: Vec<usize> = Vec::with_capacity(schedule.len());
    // Deploy the schedule as real transitions (warm start from the
    // previous configuration) and count the route changes collectors
    // would log — the paper's dataset-scale churn (§VI).
    let mut transition_changes = 0usize;
    let mut transition_rounds: Vec<u32> = Vec::new();
    let mut prev = schedule[0].to_link_announcements();
    for (k, cfg) in schedule.iter().enumerate() {
        let anns = cfg.to_link_announcements();
        let out = engine
            .propagate_config(&scenario.origin, &anns, 200)
            .unwrap();
        assert!(out.converged, "configuration failed to converge");
        rounds.push(out.rounds);
        events.push(out.events);
        if k > 0 {
            let warm = engine
                .transition_config(&scenario.origin, &prev, &anns, 200)
                .unwrap();
            transition_changes += warm.changes.len();
            transition_rounds.push(warm.rounds);
            prev = anns;
        }
    }
    rounds.sort_unstable();
    events.sort_unstable();
    let pct = |v: &[u32], p: f64| v[((v.len() - 1) as f64 * p) as usize];
    println!(
        "# Convergence depth across {} configurations",
        schedule.len()
    );
    println!(
        "rounds: median {}, p90 {}, p99 {}, max {}",
        pct(&rounds, 0.5),
        pct(&rounds, 0.9),
        pct(&rounds, 0.99),
        rounds.last().unwrap()
    );
    println!(
        "decision events: median {}, max {} ({} ASes)",
        events[events.len() / 2],
        events.last().unwrap(),
        scenario.gen.topology.num_ases()
    );
    transition_rounds.sort_unstable();
    if !transition_rounds.is_empty() {
        println!(
            "\nconfiguration transitions (warm start): {} route changes across {} \
             transitions; rounds median {}, p99 {}",
            transition_changes,
            transition_rounds.len(),
            pct(&transition_rounds, 0.5),
            pct(&transition_rounds, 0.99),
        );
    }
    println!(
        "\n# one round ~ one MRAI batch (~30s): p99 of {} rounds stays well",
        pct(&rounds, 0.99)
    );
    println!("# inside the paper's 2.5-minute p99 convergence citation, supporting");
    println!("# its 70-minute per-configuration dwell time as very conservative.");
    println!("# the transition churn total is the \"thousands of route changes\"");
    println!("# the paper's public dataset advertises (§VI).");
}
