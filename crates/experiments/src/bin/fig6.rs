//! Regenerate Figure 6: CCDF of cluster sizes after removing locations.
use trackdown_experiments::{figures, Options, Scenario};

fn main() {
    let scenario = Scenario::build(Options::from_args());
    eprintln!("# {}", scenario.describe());
    let campaign = scenario.run();
    print!("{}", figures::fig6(&scenario, &campaign));
}
