//! Regenerate Figure 7: cluster size vs AS-hop distance from the origin.
use trackdown_experiments::{figures, Options, Scenario};

fn main() {
    let scenario = Scenario::build(Options::from_args());
    eprintln!("# {}", scenario.describe());
    let campaign = scenario.run();
    print!("{}", figures::fig7(&scenario, &campaign));
}
