//! Regenerate Figure 7: cluster size vs AS-hop distance from the origin.
use trackdown_experiments::{figures, report_stats, Options, Scenario};

fn main() {
    let scenario = Scenario::build(Options::from_args());
    scenario.announce();
    let campaign = scenario.run();
    report_stats(&campaign);
    print!("{}", figures::fig7(&scenario, &campaign));
}
