//! Regenerate Figure 8: random vs greedy announcement schedules.
use trackdown_experiments::{figures, report_stats, Options, Scale, Scenario};

fn main() {
    let opts = Options::from_args();
    let scenario = Scenario::build(opts);
    scenario.announce();
    let campaign = scenario.run();
    report_stats(&campaign);
    let (samples, steps) = match scenario.scale {
        Scale::Small => (100, 20),
        Scale::Medium => (200, 30),
        Scale::Full | Scale::Large | Scale::Internet => (300, 40),
    };
    print!(
        "{}",
        figures::fig8(&campaign, samples, steps, scenario.seed ^ 0xF18)
    );
}
