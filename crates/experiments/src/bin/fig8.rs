//! Regenerate Figure 8: random vs greedy announcement schedules.
use trackdown_experiments::{figures, Options, Scale, Scenario};

fn main() {
    let opts = Options::from_args();
    let scenario = Scenario::build(opts);
    eprintln!("# {}", scenario.describe());
    let campaign = scenario.run();
    let (samples, steps) = match opts.scale {
        Scale::Small => (100, 20),
        Scale::Medium => (200, 30),
        Scale::Full => (300, 40),
    };
    print!(
        "{}",
        figures::fig8(&campaign, samples, steps, opts.seed ^ 0xF18)
    );
}
