//! The §V-C trade-off: reusing catchments measured *before* an attack is
//! fast but risks errors from route changes. This experiment quantifies
//! it: catchments are measured under one routing regime, the attack
//! happens after IGP-like tie-break churn (same policies, different
//! tiebreaks), and we compare the brittle exoneration filter against the
//! churn-robust match-fraction scorer.

use trackdown_bgp::{BgpEngine, Catchments, EngineConfig, PolicyConfig};
use trackdown_core::localize::{
    fit_link_volumes, match_fraction_scores, rank_suspects, run_campaign, CatchmentSource,
};
use trackdown_experiments::{report_stats, Options, Scenario};

fn main() {
    let opts = Options::from_args();
    let scenario = Scenario::build(opts);
    scenario.announce();
    let schedule = scenario.schedule();

    // Pre-attack measurement under the original routing.
    let engine = scenario.engine();
    let campaign = run_campaign(
        &engine,
        &scenario.origin,
        &schedule,
        CatchmentSource::ControlPlane,
        None,
        200,
    );
    report_stats(&campaign);

    println!("# Staleness study: localization with pre-attack catchments");
    println!("# churn = fraction of (source, config) assignments that changed");
    println!("# strict = rank_suspects recall; robust = attacker cluster in top-5 match scores\n");
    println!(
        "{:>12} {:>8} {:>14} {:>14}",
        "tiebreak", "churn", "strict recall", "robust recall"
    );
    for (label, seed_offset) in [("unchanged", 0u64), ("churned-1", 101), ("churned-2", 202)] {
        // The attack-time world: identical policies, different tiebreak
        // salts (IGP re-optimizations, router swaps).
        let attack_cfg = EngineConfig {
            policy: PolicyConfig {
                seed: scenario.engine_cfg.policy.seed ^ seed_offset,
                ..scenario.engine_cfg.policy.clone()
            },
            ..scenario.engine_cfg.clone()
        };
        let attack_engine = BgpEngine::new(&scenario.gen.topology, &attack_cfg);

        // The per-config catchments traffic ACTUALLY follows at attack time.
        let mut actual = Vec::with_capacity(schedule.len());
        let mut churn_acc = 0.0;
        for cfg in &schedule {
            let out = attack_engine
                .propagate_config(&scenario.origin, &cfg.to_link_announcements(), 200)
                .unwrap();
            let cat = Catchments::from_control_plane(&out);
            churn_acc += campaign.catchments[actual.len()].divergence(&cat);
            actual.push(cat);
        }
        let churn = churn_acc / schedule.len() as f64;

        // Plant attackers; volumes are observed under ACTUAL routing but
        // correlated against the STALE clustering.
        let trials = 60usize;
        let mut strict = 0usize;
        let mut robust = 0usize;
        for t in 0..trials {
            let attacker = campaign.tracked[(t * 17 + 3) % campaign.tracked.len()];
            let mut volume = vec![0u64; scenario.gen.topology.num_ases()];
            volume[attacker.us()] = 1_000_000;
            // Honeypot-shaped rows (origin width) trimmed to the
            // attribution plane's exact width contract.
            let vols: Vec<Vec<u64>> = fit_link_volumes(
                &campaign,
                actual
                    .iter()
                    .map(|c| {
                        trackdown_traffic::volume_per_link(c, &volume, scenario.origin.num_links())
                    })
                    .collect(),
            );
            let suspects = rank_suspects(&campaign, &vols);
            if suspects.iter().any(|s| s.members.contains(&attacker)) {
                strict += 1;
            }
            let scores = match_fraction_scores(&campaign, &vols);
            if scores
                .iter()
                .take(5)
                .any(|(_, members, _)| members.contains(&attacker))
            {
                robust += 1;
            }
        }
        println!(
            "{:>12} {:>7.2}% {:>13.1}% {:>13.1}%",
            label,
            churn * 100.0,
            strict as f64 / trials as f64 * 100.0,
            robust as f64 / trials as f64 * 100.0,
        );
    }
    println!("\n# reading: the churned rows model a worst case — a full IGP/tiebreak");
    println!("# reshuffle moving ~20% of every configuration's assignments. Strict");
    println!("# exoneration collapses (one changed route hides the attacker); the");
    println!("# match-fraction scorer degrades gracefully instead. Day-scale churn");
    println!("# in practice is far smaller, sitting between the rows — the");
    println!("# accuracy-vs-delay trade-off the paper describes.");
}
