//! Regenerate Table I: PoPs and providers of the simulated platform.
use trackdown_experiments::{figures, Options, Scenario};

fn main() {
    let scenario = Scenario::build(Options::from_args());
    print!("{}", figures::table1(&scenario));
}
