//! Regenerate Table II: qualitative comparison of traceback approaches.
use trackdown_experiments::figures;

fn main() {
    print!("{}", figures::table2());
}
