//! Defense-degradation study: how do deployed routing-security policy
//! extensions (ROV, ASPA, peerlock-lite, AS-path edge filtering) degrade
//! the paper's poisoning-based source localization?
//!
//! Sweeps each defense over deployment fractions (tier-biased toward the
//! core) and reruns the full campaign, reporting the final clustering and
//! suspect-set quality at each point. With `--check`, additionally
//! asserts the degradation direction — mean cluster size monotone
//! non-decreasing in deployment, and strictly worse at full deployment
//! for the sandwich-dropping defenses — exiting non-zero on a violation
//! (the CI smoke contract).

use trackdown_bgp::PolicyExtension;
use trackdown_experiments::{figures, Options, Scale};

fn main() {
    let check = std::env::args().any(|a| a == "--check");
    let mut base = Options::from_args_filtered(&["--check"]);
    // The sweep controls deployments itself; any --defense flags passed
    // through would double-deploy.
    base.defenses.clear();

    let fractions: &[f64] = match base.scale {
        Scale::Small | Scale::Medium => &[0.0, 0.5, 1.0],
        _ => &[0.0, 0.25, 0.5, 0.75, 1.0],
    };
    // Sandwich-dropping defenses degrade localization; ROV is the flat
    // control (origin validation passes the origin's own poisons).
    let breaking = [
        PolicyExtension::Aspa,
        PolicyExtension::PeerlockLite,
        PolicyExtension::EdgeFilter,
    ];
    let control = [PolicyExtension::Rov];

    let defenses: Vec<PolicyExtension> = breaking.iter().chain(control.iter()).copied().collect();
    let points = figures::defense_sweep(&base, &defenses, fractions);
    let desc = format!(
        "scale={} seed={:#x} fractions={fractions:?} bias=core",
        base.scale.label(),
        base.seed
    );
    print!("{}", figures::render_defense_sweep(&desc, &points));

    if check {
        let mut failed = false;
        for d in defenses {
            let series: Vec<_> = points.iter().filter(|p| p.defense == d).cloned().collect();
            let expect_breaks = breaking.contains(&d);
            if let Some(violation) = figures::check_degradation(&series, expect_breaks) {
                eprintln!("degradation check FAILED: {violation}");
                failed = true;
            }
        }
        if failed {
            std::process::exit(1);
        }
        eprintln!(
            "degradation check passed: {} defenses x {} fractions",
            4,
            fractions.len()
        );
    }
}
