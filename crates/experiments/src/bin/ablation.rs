//! Ablation of the two extension techniques on top of the paper's
//! schedule: BGP action communities (§VIII future work) and targeted
//! poisoning of distant ASes (§V-B future work). Reports the mean cluster
//! size after the paper schedule, after adding each extension alone, and
//! after both.

use trackdown_bgp::Catchments;
use trackdown_core::generator::community_phase;
use trackdown_core::localize::{run_campaign, CatchmentSource};
use trackdown_core::targeting::{evaluate_proposals, propose_targeted_poisons};
use trackdown_experiments::{report_stats, Options, Scenario};

fn main() {
    let opts = Options::from_args();
    let scenario = Scenario::build(opts);
    scenario.announce();
    let engine = scenario.engine();
    // Two bases: a budget-limited schedule (locations only — an operator
    // early in a deployment) and the paper's full schedule. Extensions
    // have the most room on the former; on the latter the residual
    // clusters are mostly inseparable single-homed blocks.
    let loc_only = trackdown_core::generator::location_phase(
        scenario.origin.num_links(),
        scenario.params.max_removals,
    );
    let full = scenario.schedule();
    for (base_label, schedule) in [("locations-only", loc_only), ("paper schedule", full)] {
        run_base(&scenario, &engine, base_label, &schedule);
        println!();
    }
}

fn run_base(
    scenario: &Scenario,
    engine: &trackdown_bgp::BgpEngine<'_>,
    base_label: &str,
    schedule: &[trackdown_core::AnnouncementConfig],
) {
    let campaign = run_campaign(
        engine,
        &scenario.origin,
        schedule,
        CatchmentSource::ControlPlane,
        None,
        200,
    );
    report_stats(&campaign);
    println!("# Ablation on base: {base_label}\n");
    println!(
        "base ({} configs):               mean cluster size {:.3}",
        schedule.len(),
        campaign.clustering.mean_size()
    );

    // Extension A: community phase.
    let communities = community_phase(&scenario.origin);
    let mut with_comm = campaign.clustering.clone();
    for cfg in &communities {
        let out = engine
            .propagate_config(&scenario.origin, &cfg.to_link_announcements(), 200)
            .unwrap();
        with_comm.refine(&Catchments::from_control_plane(&out));
    }
    println!(
        "+ communities ({} configs):                 mean cluster size {:.3}",
        communities.len(),
        with_comm.mean_size()
    );

    // Extension B: targeted poisoning.
    let proposals = propose_targeted_poisons(engine, &scenario.origin, &campaign, 20, 10, 20);
    let (before, after) = evaluate_proposals(engine, &scenario.origin, &campaign, &proposals);
    println!(
        "+ targeted poisons ({} configs):            mean cluster size {:.3} (from {:.3})",
        proposals.len(),
        after,
        before
    );

    // Both.
    let mut both = with_comm.clone();
    for p in &proposals {
        let out = engine
            .propagate_config(&scenario.origin, &p.config.to_link_announcements(), 200)
            .unwrap();
        both.refine(&Catchments::from_control_plane(&out));
    }
    println!(
        "+ both extensions:                          mean cluster size {:.3}",
        both.mean_size()
    );
    println!(
        "singleton clusters: base {:.1}% -> both extensions {:.1}%",
        campaign.clustering.singleton_fraction() * 100.0,
        both.singleton_fraction() * 100.0
    );
}
