//! Regenerate Figure 10: traffic volume vs cluster size per distribution.
use trackdown_experiments::{figures, Options, Scale, Scenario};

fn main() {
    let opts = Options::from_args();
    let scenario = Scenario::build(opts);
    eprintln!("# {}", scenario.describe());
    let campaign = scenario.run();
    let placements = match opts.scale {
        Scale::Small => 100,
        Scale::Medium => 300,
        Scale::Full => 1000,
    };
    print!("{}", figures::fig10(&scenario, &campaign, placements));
}
