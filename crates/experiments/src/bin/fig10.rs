//! Regenerate Figure 10: traffic volume vs cluster size per distribution.
use trackdown_experiments::{figures, report_stats, Options, Scale, Scenario};

fn main() {
    let opts = Options::from_args();
    let scenario = Scenario::build(opts);
    scenario.announce();
    let campaign = scenario.run();
    report_stats(&campaign);
    let placements = match scenario.scale {
        Scale::Small => 100,
        Scale::Medium => 300,
        Scale::Full | Scale::Large | Scale::Internet => 1000,
    };
    print!("{}", figures::fig10(&scenario, &campaign, placements));
}
