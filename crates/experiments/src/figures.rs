//! Per-figure experiment implementations, shared by the individual
//! binaries and `run_all`. Each function returns a printable report.

use crate::{phase_prefixes, phase_summary, print_series, Options, Scenario};
use std::collections::BTreeMap;
use trackdown_bgp::{DeploymentBias, ExtensionDeployment, PolicyExtension, SnapshotDetail};
use trackdown_core::cluster::Clustering;
use trackdown_core::compliance::{config_compliance, fraction_cdf};
use trackdown_core::distance::cluster_size_by_distance;
use trackdown_core::footprint::{footprint_clustering, footprint_trajectory, footprints_removing};
use trackdown_core::localize::{link_volume_matrix, rank_suspects, Campaign};
use trackdown_core::report::{render_table, Series};
use trackdown_core::schedule::{greedy_schedule, mean_size_objective, random_schedule_stats};
use trackdown_core::Phase;
use trackdown_topology::cone::ConeInfo;
use trackdown_traffic::{
    cumulative_volume_by_cluster_slices, pareto_shape_80_20, place_sources, SourcePlacement,
};

/// Table I: PoPs and providers of the simulated platform.
pub fn table1(scenario: &Scenario) -> String {
    let topo = &scenario.gen.topology;
    let cones = ConeInfo::compute(topo);
    let rows: Vec<Vec<String>> = scenario
        .origin
        .links
        .iter()
        .map(|l| {
            let i = topo.index_of(l.provider).expect("provider in topology");
            vec![
                l.pop.clone(),
                format!(
                    "{} ({})",
                    l.provider,
                    format!("{:?}", cones.tier(i)).to_lowercase()
                ),
                topo.customers(i).count().to_string(),
                cones.cone_size(i).to_string(),
                scenario.gen.region(i).to_string(),
            ]
        })
        .collect();
    let mut out = String::from("# Table I: PoPs and transit providers\n");
    out.push_str(&format!("# {}\n\n", scenario.describe()));
    out.push_str(&render_table(
        &["Mux", "Transit Provider", "customers", "cone", "region"],
        &rows,
    ));
    out
}

/// Figure 3: CCDF of cluster sizes after each phase.
pub fn fig3(scenario: &Scenario, campaign: &Campaign) -> String {
    let mut clustering = Clustering::single(campaign.tracked.clone());
    let bounds = phase_prefixes(&campaign.configs);
    let mut series = Vec::new();
    let mut deployed = 0usize;
    let mut summary_rows = Vec::new();
    for (phase, end) in bounds {
        for cat in &campaign.catchments[deployed..end] {
            clustering.refine(cat);
        }
        deployed = end;
        let label = match phase {
            Phase::Location => "locations".to_string(),
            Phase::Prepend => "locations+prepending".to_string(),
            Phase::Poison => "locations+prepending+poisoning".to_string(),
            Phase::Community => "all techniques+communities".to_string(),
        };
        let ccdf: Vec<(f64, f64)> = clustering
            .size_ccdf()
            .into_iter()
            .map(|(s, f)| (s as f64, f))
            .collect();
        series.push(Series {
            name: format!("{label} ({end} configs)"),
            points: ccdf,
        });
        summary_rows.push(vec![
            label,
            end.to_string(),
            format!("{:.3}", clustering.mean_size()),
            format!("{:.1}%", clustering.singleton_fraction() * 100.0),
            clustering
                .sizes()
                .iter()
                .filter(|&&s| s > 5)
                .count()
                .to_string(),
        ]);
    }
    let mut out = String::from("# Figure 3: CCDF of cluster sizes after each phase\n\n");
    out.push_str(&render_table(
        &[
            "phase",
            "configs",
            "mean size",
            "singleton clusters",
            "clusters >5 ASes",
        ],
        &summary_rows,
    ));
    // Sensitivity: single-homed stubs under one provider are provably
    // inseparable (identical catchment histories by construction), so the
    // route-diverse subset shows what the techniques achieve where any
    // separation is possible — the population the paper's feed-visible
    // dataset is biased toward.
    let topo = &scenario.gen.topology;
    let diverse: Vec<bool> = campaign
        .tracked
        .iter()
        .map(|&s| topo.degree(s) >= 2)
        .collect();
    let mut diverse_sizes: std::collections::HashMap<u32, usize> = std::collections::HashMap::new();
    for (k, &s) in campaign.tracked.iter().enumerate() {
        if diverse[k] {
            if let Some(id) = clustering.cluster_of(s) {
                *diverse_sizes.entry(id).or_insert(0) += 1;
            }
        }
    }
    let sizes: Vec<usize> = diverse_sizes.values().copied().collect();
    if !sizes.is_empty() {
        let singles = sizes.iter().filter(|&&x| x == 1).count();
        let mean: f64 = sizes.iter().sum::<usize>() as f64 / sizes.len() as f64;
        out.push_str(&format!(
            "\nroute-diverse sources only (degree >= 2): {} sources, mean cluster size {:.3}, {:.1}% singleton clusters\n",
            sizes.iter().sum::<usize>(),
            mean,
            singles as f64 / sizes.len() as f64 * 100.0,
        ));
    }
    out.push('\n');
    out.push_str(&print_series(
        "CCDF (x=cluster size, y=frac clusters >= x)",
        &series,
    ));
    out
}

/// Figure 4: mean and 90th-percentile cluster size vs configurations.
pub fn fig4(campaign: &Campaign) -> String {
    let mean: Vec<(f64, f64)> = campaign
        .records
        .iter()
        .enumerate()
        .map(|(k, r)| ((k + 1) as f64, r.mean_cluster_size))
        .collect();
    let p90: Vec<(f64, f64)> = campaign
        .records
        .iter()
        .enumerate()
        .map(|(k, r)| ((k + 1) as f64, r.p90_cluster_size as f64))
        .collect();
    let mut out =
        String::from("# Figure 4: cluster sizes as a function of number of configurations\n\n");
    out.push_str(&phase_summary(campaign));
    out.push('\n');
    out.push_str(&print_series(
        "cluster size vs configs (x=configs deployed)",
        &[
            Series {
                name: "mean".into(),
                points: mean,
            },
            Series {
                name: "p90".into(),
                points: p90,
            },
        ],
    ));
    out
}

/// Pointwise mean/min/max across equal-length trajectories.
fn band(trajs: &[Vec<f64>]) -> (Vec<f64>, Vec<f64>, Vec<f64>) {
    let len = trajs.iter().map(|t| t.len()).min().unwrap_or(0);
    let mut mean = Vec::with_capacity(len);
    let mut lo = Vec::with_capacity(len);
    let mut hi = Vec::with_capacity(len);
    for k in 0..len {
        let vals: Vec<f64> = trajs.iter().map(|t| t[k]).collect();
        mean.push(vals.iter().sum::<f64>() / vals.len() as f64);
        lo.push(vals.iter().cloned().fold(f64::INFINITY, f64::min));
        hi.push(vals.iter().cloned().fold(f64::NEG_INFINITY, f64::max));
    }
    (mean, lo, hi)
}

/// Figure 5: mean cluster size when removing peering locations.
pub fn fig5(scenario: &Scenario, campaign: &Campaign) -> String {
    let n = scenario.origin.num_links();
    let mut series = Vec::new();
    let mut rows = Vec::new();
    for removed in 0..=2usize.min(n - 1) {
        let label = match removed {
            0 => "all locations".to_string(),
            r => format!("{} locations", n - r),
        };
        let mut trajs = Vec::new();
        for keep in footprints_removing(n, removed) {
            let (_, means) = footprint_trajectory(
                &campaign.configs,
                &campaign.catchments,
                &campaign.tracked,
                &keep,
            );
            trajs.push(means);
        }
        let (mean, lo, hi) = band(&trajs);
        let to_pts = |v: &[f64]| -> Vec<(f64, f64)> {
            v.iter()
                .enumerate()
                .map(|(k, &y)| ((k + 1) as f64, y))
                .collect()
        };
        rows.push(vec![
            label.clone(),
            mean.len().to_string(),
            format!("{:.3}", mean.last().copied().unwrap_or(0.0)),
            format!("{:.3}", lo.last().copied().unwrap_or(0.0)),
            format!("{:.3}", hi.last().copied().unwrap_or(0.0)),
        ]);
        series.push(Series {
            name: format!("{label} (mean)"),
            points: to_pts(&mean),
        });
        if removed > 0 {
            series.push(Series {
                name: format!("{label} (min)"),
                points: to_pts(&lo),
            });
            series.push(Series {
                name: format!("{label} (max)"),
                points: to_pts(&hi),
            });
        }
    }
    let mut out = String::from("# Figure 5: mean cluster size when removing peering locations\n\n");
    out.push_str(&render_table(
        &["footprint", "configs", "final mean", "min", "max"],
        &rows,
    ));
    out.push('\n');
    out.push_str(&print_series(
        "mean cluster size vs configs deployed",
        &series,
    ));
    out
}

/// Figure 6: CCDF of cluster sizes after removing locations.
pub fn fig6(scenario: &Scenario, campaign: &Campaign) -> String {
    let n = scenario.origin.num_links();
    let mut series = Vec::new();
    let mut rows = Vec::new();
    for removed in 0..=2usize.min(n - 1) {
        let label = match removed {
            0 => "all locations".to_string(),
            r => format!("{} locations", n - r),
        };
        // CCDF fractions per subset, merged on the union of sizes.
        let mut per_subset: Vec<BTreeMap<usize, f64>> = Vec::new();
        let mut tail_counts = Vec::new();
        for keep in footprints_removing(n, removed) {
            let clustering = footprint_clustering(
                &campaign.configs,
                &campaign.catchments,
                &campaign.tracked,
                &keep,
            );
            let ccdf: BTreeMap<usize, f64> = clustering.size_ccdf().into_iter().collect();
            tail_counts.push(
                clustering.sizes().iter().filter(|&&s| s > 25).count() as f64
                    / clustering.num_clusters().max(1) as f64,
            );
            per_subset.push(ccdf);
        }
        // Evaluate each subset's step CCDF on the union grid and average.
        let mut grid: Vec<usize> = per_subset.iter().flat_map(|m| m.keys().copied()).collect();
        grid.sort_unstable();
        grid.dedup();
        let eval = |m: &BTreeMap<usize, f64>, x: usize| -> f64 {
            // CCDF at x = fraction of clusters with size >= x: the value
            // of the next key >= x, or 0 beyond the maximum.
            m.range(x..).next().map(|(_, &f)| f).unwrap_or(0.0)
        };
        let pts: Vec<(f64, f64)> = grid
            .iter()
            .map(|&x| {
                let avg: f64 =
                    per_subset.iter().map(|m| eval(m, x)).sum::<f64>() / per_subset.len() as f64;
                (x as f64, avg)
            })
            .collect();
        let tail_avg = tail_counts.iter().sum::<f64>() / tail_counts.len() as f64;
        rows.push(vec![
            label.clone(),
            per_subset.len().to_string(),
            format!("{:.3}%", tail_avg * 100.0),
        ]);
        series.push(Series {
            name: label,
            points: pts,
        });
    }
    let mut out =
        String::from("# Figure 6: distribution of cluster sizes after removing locations\n\n");
    out.push_str(&render_table(
        &["footprint", "subsets", "clusters >25 ASes (avg)"],
        &rows,
    ));
    out.push('\n');
    out.push_str(&print_series(
        "CCDF of cluster sizes (x=size, y=frac clusters >= x)",
        &series,
    ));
    out
}

/// Figure 7: cluster size as a function of AS-hop distance.
pub fn fig7(scenario: &Scenario, campaign: &Campaign) -> String {
    let groups = cluster_size_by_distance(
        &scenario.gen.topology,
        &scenario.origin,
        &campaign.clustering,
        4,
    );
    let rows: Vec<Vec<String>> = groups
        .iter()
        .map(|g| {
            vec![
                if g.open_ended {
                    format!("{}+", g.hops)
                } else {
                    g.hops.to_string()
                },
                g.ases.to_string(),
                format!("{:.3}", g.mean_cluster_size),
            ]
        })
        .collect();
    let series: Vec<Series> = groups
        .iter()
        .map(|g| Series {
            name: format!(
                "ASes {} hop{} from origin",
                if g.open_ended {
                    format!("{}+", g.hops)
                } else {
                    g.hops.to_string()
                },
                if g.hops == 1 && !g.open_ended {
                    ""
                } else {
                    "s"
                },
            ),
            points: g.cdf.iter().map(|&(s, f)| (s as f64, f)).collect(),
        })
        .collect();
    let mut out =
        String::from("# Figure 7: cluster size as function of AS-hop distance from origin\n\n");
    out.push_str(&render_table(&["hops", "ASes", "mean cluster size"], &rows));
    out.push('\n');
    out.push_str(&print_series(
        "cumulative fraction of ASes vs cluster size",
        &series,
    ));
    out
}

/// Figure 8: random vs greedy configuration schedules.
pub fn fig8(campaign: &Campaign, random_samples: usize, greedy_steps: usize, seed: u64) -> String {
    let rnd = random_schedule_stats(
        &campaign.catchments,
        &campaign.tracked,
        random_samples,
        seed,
    );
    let steps = greedy_steps.min(campaign.catchments.len());
    let (_, greedy) = greedy_schedule(
        &campaign.catchments,
        &campaign.tracked,
        steps,
        mean_size_objective,
    );
    let to_pts = |v: &[f64]| -> Vec<(f64, f64)> {
        v.iter()
            .enumerate()
            .map(|(k, &y)| ((k + 1) as f64, y))
            .collect()
    };
    let at10 = 9.min(greedy.len().saturating_sub(1));
    let mut out = String::from("# Figure 8: mean cluster size vs announcement schedule\n\n");
    out.push_str(&format!(
        "after 10 configurations: random median = {:.2} ASes, greedy = {:.2} ASes\n",
        rnd.median.get(at10).copied().unwrap_or(f64::NAN),
        greedy.get(at10).copied().unwrap_or(f64::NAN),
    ));
    out.push_str(&format!(
        "({random_samples} random sequences; greedy evaluated for {steps} steps)\n\n",
    ));
    out.push_str(&print_series(
        "mean cluster size vs configs deployed",
        &[
            Series {
                name: "random q25".into(),
                points: to_pts(&rnd.q25),
            },
            Series {
                name: "random median".into(),
                points: to_pts(&rnd.median),
            },
            Series {
                name: "random q75".into(),
                points: to_pts(&rnd.q75),
            },
            Series {
                name: "greedy".into(),
                points: to_pts(&greedy),
            },
        ],
    ));
    out
}

/// Figure 9: fraction of ASes following well-known routing policies.
pub fn fig9(scenario: &Scenario) -> String {
    let engine = scenario.engine();
    let schedule = scenario.schedule();
    let mut best_rel = Vec::with_capacity(schedule.len());
    let mut both = Vec::with_capacity(schedule.len());
    for cfg in &schedule {
        let outcome = engine
            .propagate_config_detailed(
                &scenario.origin,
                &cfg.to_link_announcements(),
                scenario.engine_cfg.max_events_factor,
                SnapshotDetail::Full,
            )
            .expect("valid configuration");
        let sample = config_compliance(&outcome);
        best_rel.push(sample.best_relationship);
        both.push(sample.both);
    }
    let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
    let mut out =
        String::from("# Figure 9: ASes following well-known routing policies across configs\n\n");
    out.push_str(&format!(
        "mean fraction best-relationship = {:.4}; best-relationship & shortest = {:.4}\n\n",
        avg(&best_rel),
        avg(&both),
    ));
    out.push_str(&print_series(
        "CDF over configurations (x=fraction of ASes, y=cum frac of configs)",
        &[
            Series {
                name: "best relationship".into(),
                points: fraction_cdf(best_rel),
            },
            Series {
                name: "best relationship & shortest".into(),
                points: fraction_cdf(both),
            },
        ],
    ));
    out
}

/// Figure 10: traffic volume vs cluster size per source distribution.
pub fn fig10(scenario: &Scenario, campaign: &Campaign, placements: usize) -> String {
    let n = scenario.gen.topology.num_ases();
    let clustering = &campaign.clustering;
    let scenarios: [(&str, SourcePlacement); 3] = [
        ("uniform", SourcePlacement::Uniform { total: 100 }),
        (
            "pareto",
            SourcePlacement::Pareto {
                total: 100,
                alpha: pareto_shape_80_20(),
            },
        ),
        ("single source", SourcePlacement::Single),
    ];
    let mut series = Vec::new();
    let mut rows = Vec::new();
    for (name, placement) in scenarios {
        // Average the cumulative step functions over many placements.
        let mut grid: Vec<usize> = clustering.sizes();
        grid.sort_unstable();
        grid.dedup();
        let mut acc: Vec<f64> = vec![0.0; grid.len()];
        for p in 0..placements {
            let placed = place_sources(n, &campaign.tracked, placement, 0xF16_0000 + p as u64);
            let vols = placed.volume_per_as(1_000);
            let curve = cumulative_volume_by_cluster_slices(clustering.iter_clusters(), &vols);
            let step = |x: usize| -> f64 {
                // Cumulative fraction at size <= x.
                let mut last = 0.0;
                for &(s, f) in &curve {
                    if s > x {
                        break;
                    }
                    last = f;
                }
                last
            };
            for (gi, &x) in grid.iter().enumerate() {
                acc[gi] += step(x);
            }
        }
        let pts: Vec<(f64, f64)> = grid
            .iter()
            .zip(&acc)
            .map(|(&x, &a)| (x as f64, a / placements as f64))
            .collect();
        // Volume fraction inside clusters of size <= 5.
        let at5 = pts
            .iter()
            .filter(|p| p.0 <= 5.0)
            .map(|p| p.1)
            .fold(0.0, f64::max);
        rows.push(vec![
            name.to_string(),
            placements.to_string(),
            format!("{:.3}", at5),
        ]);
        series.push(Series {
            name: name.to_string(),
            points: pts,
        });
    }
    let mut out = String::from(
        "# Figure 10: cluster size as function of traffic volume per source distribution\n\n",
    );
    out.push_str(&render_table(
        &[
            "distribution",
            "placements",
            "volume frac in clusters <=5 ASes",
        ],
        &rows,
    ));
    out.push('\n');
    out.push_str(&print_series(
        "cumulative fraction of spoofed volume vs cluster size",
        &series,
    ));
    out
}

/// Table II: qualitative comparison of traceback approaches (static
/// content from the paper, §VII).
pub fn table2() -> String {
    let rows: Vec<Vec<String>> = [
        [
            "Manual",
            "Logs/monitoring",
            "Required",
            "No",
            "No",
            "Path prefix",
            "Long",
        ],
        [
            "Flooding",
            "Packet loss",
            "Required",
            "No",
            "High",
            "Path prefix",
            "Moderate",
        ],
        [
            "Marking",
            "IP ID field",
            "Deployment",
            "Yes",
            "Low",
            "Closest router",
            "~sampling",
        ],
        [
            "Out-of-band",
            "-",
            "Deployment",
            "Yes",
            "High",
            "Closest router",
            "~sampling",
        ],
        [
            "Digest-based",
            "Router state",
            "Deployment",
            "Yes",
            "High",
            "Closest router",
            "Low",
        ],
        [
            "Routing (this work)",
            "Routes",
            "No",
            "No",
            "No",
            "AS",
            "Long",
        ],
    ]
    .iter()
    .map(|r| r.iter().map(|s| s.to_string()).collect())
    .collect();
    let mut out = String::from("# Table II: summary of proposals for IP traceback\n\n");
    out.push_str(&render_table(
        &[
            "Approach",
            "Manipulates",
            "Cooperation",
            "Router updates",
            "Overhead",
            "Precision",
            "Delay",
        ],
        &rows,
    ));
    out
}

/// One measured point of the defense-degradation sweep: one extension at
/// one deployment fraction, with the clustering and suspect-ranking
/// quality the full campaign achieves against it.
#[derive(Debug, Clone)]
pub struct DefensePoint {
    /// The policy extension being swept.
    pub defense: PolicyExtension,
    /// Requested deployment fraction.
    pub fraction: f64,
    /// ASes the seeded assignment actually selected.
    pub deployers: usize,
    /// Final cluster count over the tracked set.
    pub clusters: usize,
    /// Mean final cluster size (higher = worse disambiguation).
    pub mean_cluster: f64,
    /// Largest final cluster.
    pub max_cluster: usize,
    /// Suspect clusters surviving volume correlation.
    pub suspects: usize,
    /// ASes inside the surviving suspect clusters (the operator's
    /// worklist; higher = worse localization).
    pub suspect_ases: usize,
}

/// Defense-degradation experiment: rerun the full campaign with one
/// policy extension deployed at each fraction (tier-biased toward the
/// core, seeded from the scenario seed) and measure how clustering and
/// suspect ranking degrade.
///
/// Extensions that drop poison sandwiches (ASPA, peerlock-lite, edge
/// filtering) disable the poisoning phase's catchment manipulation, so
/// clusters stop splitting and the suspect set coarsens as deployment
/// grows; origin validation alone (ROV) passes the origin's own
/// announcements and stays flat — it is the control series.
pub fn defense_sweep(
    base: &Options,
    defenses: &[PolicyExtension],
    fractions: &[f64],
) -> Vec<DefensePoint> {
    let mut out = Vec::new();
    for &defense in defenses {
        for &fraction in fractions {
            let mut opts = base.clone();
            opts.metrics_out = None;
            opts.defenses = vec![ExtensionDeployment {
                extension: defense,
                fraction,
                bias: DeploymentBias::Core,
            }];
            let scenario = Scenario::build(opts);
            let deployers = scenario.engine().policy().num_deployers(defense);
            let campaign = scenario.run();
            // Deterministic synthetic per-AS volume (every tracked AS
            // spoofs) so the suspect set measures routing-side
            // degradation, not traffic randomness.
            let n = scenario.gen.topology.num_ases();
            let volume: Vec<u64> = (0..n as u64).map(|i| 1 + i % 7).collect();
            let vols = link_volume_matrix(&campaign, &volume);
            let suspects = rank_suspects(&campaign, &vols);
            let sizes = campaign.clustering.sizes();
            out.push(DefensePoint {
                defense,
                fraction,
                deployers,
                clusters: campaign.clustering.num_clusters(),
                mean_cluster: campaign.clustering.mean_size(),
                max_cluster: sizes.iter().copied().max().unwrap_or(0),
                suspects: suspects.len(),
                suspect_ases: suspects.iter().map(|s| s.members.len()).sum(),
            });
        }
    }
    out
}

/// Render the defense sweep as the fig-style degradation table.
pub fn render_defense_sweep(scenario_desc: &str, points: &[DefensePoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            vec![
                p.defense.label().to_string(),
                format!("{:.0}%", p.fraction * 100.0),
                p.deployers.to_string(),
                p.clusters.to_string(),
                format!("{:.3}", p.mean_cluster),
                p.max_cluster.to_string(),
                p.suspects.to_string(),
                p.suspect_ases.to_string(),
            ]
        })
        .collect();
    let mut out =
        String::from("# Defense degradation: clustering vs. policy-extension deployment\n");
    out.push_str(&format!("# {scenario_desc}\n\n"));
    out.push_str(&render_table(
        &[
            "defense",
            "deployed",
            "deployers",
            "clusters",
            "mean size",
            "max size",
            "suspect clusters",
            "suspect ASes",
        ],
        &rows,
    ));
    out
}

/// Check the degradation direction for one defense's series (points for
/// ascending fractions): mean cluster size must never *improve* as
/// deployment grows, and a defense expected to break poisoning must
/// strictly degrade clustering by full deployment. Returns a
/// human-readable violation, or `None` when the series is consistent.
pub fn check_degradation(series: &[DefensePoint], expect_breaks: bool) -> Option<String> {
    for w in series.windows(2) {
        if w[1].mean_cluster < w[0].mean_cluster - 1e-9 {
            return Some(format!(
                "{} at {:.0}% deployment improved clustering (mean {:.3} -> {:.3}); \
                 degradation must be monotone",
                w[1].defense.label(),
                w[1].fraction * 100.0,
                w[0].mean_cluster,
                w[1].mean_cluster,
            ));
        }
    }
    if expect_breaks {
        let (first, last) = (series.first()?, series.last()?);
        if last.mean_cluster <= first.mean_cluster + 1e-9 {
            return Some(format!(
                "{} deployed at {:.0}% should break poisoning-based disambiguation \
                 but mean cluster size stayed at {:.3}",
                last.defense.label(),
                last.fraction * 100.0,
                last.mean_cluster,
            ));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use crate::{Options, Scale, Scenario};

    #[test]
    fn all_figures_render_at_small_scale() {
        let scenario = Scenario::build(Options {
            scale: Scale::Small,
            seed: 5,
            ..Options::default()
        });
        let campaign = scenario.run();
        let t1 = super::table1(&scenario);
        assert!(t1.contains("AMS-IX"));
        let f3 = super::fig3(&scenario, &campaign);
        assert!(f3.contains("poisoning"));
        let f4 = super::fig4(&campaign);
        assert!(f4.contains("p90"));
        let f5 = super::fig5(&scenario, &campaign);
        assert!(f5.contains("all locations"));
        let f6 = super::fig6(&scenario, &campaign);
        assert!(f6.contains("3 locations"));
        let f7 = super::fig7(&scenario, &campaign);
        assert!(f7.contains("hops"));
        let f8 = super::fig8(&campaign, 10, 5, 1);
        assert!(f8.contains("greedy"));
        let f9 = super::fig9(&scenario);
        assert!(f9.contains("best relationship"));
        let f10 = super::fig10(&scenario, &campaign, 5);
        assert!(f10.contains("pareto"));
        let t2 = super::table2();
        assert!(t2.contains("Routing (this work)"));
    }
}
