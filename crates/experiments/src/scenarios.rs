//! Adversarial-traffic scenarios: attack shapes designed to stress the
//! attribution plane from directions the evaluation figures do not.
//!
//! * [`amplification`] — the reflection-attack triangle (§VII-a): the
//!   victim only ever sees reflector ASes, so traceback must run from the
//!   *origin network's* vantage, attributing the pre-reflection queries
//!   the honeypot attracts back to the true origin cluster.
//! * [`partial_sav`] — source-address validation deployed everywhere
//!   *except* a seeded pocket of stub ASes (the real Internet per the
//!   Spoofer project: SAV is partial, and spoofing capability clusters).
//!   Attribution must concentrate the suspect volume on the pockets that
//!   can actually spoof.
//!
//! Both scenarios stream flows through a [`VolumeAccumulator`] — the
//! exact [`BatchedDenseAccumulator`] by default, or a count-min
//! [`SketchAccumulator`] under `--sketch WIDTHxDEPTH` — so the binaries
//! double as end-to-end checks of the approximate path: the `--check`
//! contract must hold on either accumulator.

use crate::{Options, Scenario};
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use trackdown_core::localize::{
    estimate_cluster_volumes_acc, rank_suspects_acc, suspect_ases, Campaign, RankedSuspects,
};
use trackdown_topology::AsIndex;
use trackdown_traffic::{
    ingest_stream, place_sources, scatter_reflectors, spoofed_flows, BatchedDenseAccumulator, Flow,
    FlowConfig, Honeypot, HoneypotConfig, ReflectorKind, SketchAccumulator, SourcePlacement,
    VolumeAccumulator, DEFAULT_FLOW_BATCH,
};

/// Stream the scenario's flows into the accumulator the options select:
/// exact batched-dense counters, or a count-min sketch under `--sketch`.
/// One accumulator configuration per campaign configuration, exactly the
/// attribution plane's width.
fn accumulate_flows(
    campaign: &Campaign,
    flows: &[Flow],
    sketch: Option<(usize, usize)>,
    seed: u64,
) -> Box<dyn VolumeAccumulator> {
    let configs = campaign.catchments.len();
    let width = campaign.attribution.num_links();
    let mut acc: Box<dyn VolumeAccumulator> = match sketch {
        Some((w, d)) => Box::new(SketchAccumulator::new(configs, width, w, d, seed)),
        None => Box::new(BatchedDenseAccumulator::new(configs, width)),
    };
    for (c, cat) in campaign.catchments.iter().enumerate() {
        ingest_stream(acc.as_mut(), c, cat, flows, DEFAULT_FLOW_BATCH);
    }
    acc
}

/// What the amplification scenario measured, from both corners of the
/// attack triangle.
#[derive(Debug, Clone)]
pub struct AmplificationOutcome {
    /// Distinct reflector ASes the victim logged (its *apparent* sources).
    pub victim_reflector_ases: usize,
    /// Overall bandwidth amplification the victim experienced.
    pub victim_amplification: f64,
    /// Whether any true origin AS leaked into the victim's logs (must
    /// never happen — that is the point of reflection).
    pub origin_visible_to_victim: bool,
    /// The true origin ASes (hosting the spoofing sources).
    pub origin_ases: Vec<AsIndex>,
    /// Origin ASes observable at the baseline configuration (the ones the
    /// campaign can possibly name).
    pub observable: usize,
    /// Of the observable origin ASes, how many the suspect set names.
    pub recovered: usize,
    /// ASes named by the ranked suspect clusters.
    pub named_ases: Vec<AsIndex>,
    /// The accumulator's worst-case overestimation bound (0 when exact).
    pub error_bound: u64,
    /// Whether every adjacent suspect gap exceeds the error bound.
    pub ranking_stable: bool,
}

impl AmplificationOutcome {
    /// The `--check` contract; `Some(violation)` on failure.
    pub fn check(&self) -> Option<String> {
        if self.origin_visible_to_victim {
            return Some("a true origin AS leaked into the victim's reflector logs".into());
        }
        if self.victim_amplification < 2.0 {
            return Some(format!(
                "victim saw amplification {:.1}x; the reflection hop is not amplifying",
                self.victim_amplification
            ));
        }
        if self.observable == 0 {
            return Some("no origin AS observable at baseline; scenario is vacuous".into());
        }
        // The paper's promise: traceback from the origin vantage names the
        // true sources the victim could never see. Require ≥90% of the
        // baseline-observable origins (measurement-free campaign at these
        // scales recovers all of them; the slack covers cluster ties).
        if self.recovered * 10 < self.observable * 9 {
            return Some(format!(
                "only {}/{} observable origin ASes recovered behind the reflector hop",
                self.recovered, self.observable
            ));
        }
        None
    }
}

/// Run the reflection-attack scenario: a handful of Pareto-placed origins
/// spray spoofed queries off open reflectors at a victim; the origin
/// network's honeypot attracts the same queries and the campaign
/// attributes them back through the selected accumulator.
pub fn amplification(opts: &Options) -> AmplificationOutcome {
    let scenario = Scenario::build(opts.clone());
    let topo = &scenario.gen.topology;
    let all: Vec<AsIndex> = topo.indices().collect();

    // Amplification attacks usually originate from few sources (AmpPot,
    // §I) — the regime the paper's techniques target.
    let placed = place_sources(
        topo.num_ases(),
        &all,
        SourcePlacement::Pareto {
            total: 8,
            alpha: trackdown_traffic::pareto_shape_80_20(),
        },
        opts.seed ^ 0xA3F1,
    );
    let origin_ases: Vec<AsIndex> = placed.source_ases().collect();

    // The victim's corner of the triangle: amplified responses arrive
    // from reflector ASes only. Reflectors are open services *elsewhere* —
    // an origin bouncing traffic off itself would defeat the indirection.
    let reflector_pool: Vec<AsIndex> = all
        .iter()
        .copied()
        .filter(|a| !origin_ases.contains(a))
        .collect();
    let reflectors = scatter_reflectors(
        &reflector_pool,
        32,
        &[
            ReflectorKind::Ntp,
            ReflectorKind::Dns,
            ReflectorKind::Memcached,
        ],
        opts.seed ^ 0x4EF1,
    );
    let victim_ip = u32::from_be_bytes([203, 0, 113, 80]);
    let (victim, _queries) =
        trackdown_traffic::reflect_attack(&placed, &reflectors, victim_ip, 50_000_000, opts.seed);
    let origin_visible_to_victim = victim
        .per_reflector_as
        .iter()
        .any(|(a, _)| origin_ases.contains(a));

    // The origin network's corner: its honeypot prefix looks like one
    // more reflector to the attacker, so the same origins' queries land
    // on it; deploy the schedule and attribute.
    let campaign = scenario.run();
    let honeypot = Honeypot::new(HoneypotConfig::default());
    let flows = spoofed_flows(
        &placed,
        victim_ip,
        honeypot.config().prefix,
        &FlowConfig::default(),
    );
    let acc = accumulate_flows(&campaign, &flows, opts.sketch, opts.seed ^ 0x5CE7);
    let ranked: RankedSuspects = rank_suspects_acc(&campaign, acc.as_ref());
    let named = suspect_ases(&ranked.suspects, 1.0);

    let baseline = &campaign.catchments[0];
    let observable: Vec<AsIndex> = origin_ases
        .iter()
        .copied()
        .filter(|&a| a.us() < topo.num_ases() && baseline.get(a).is_some())
        .collect();
    let recovered = observable.iter().filter(|a| named.contains(a)).count();

    AmplificationOutcome {
        victim_reflector_ases: victim.per_reflector_as.len(),
        victim_amplification: victim.overall_amplification(),
        origin_visible_to_victim,
        origin_ases,
        observable: observable.len(),
        recovered,
        named_ases: named,
        error_bound: ranked.error_bound,
        ranking_stable: ranked.stable,
    }
}

/// What the partial-SAV scenario measured.
#[derive(Debug, Clone)]
pub struct PartialSavOutcome {
    /// Stub ASes in the topology.
    pub stubs: usize,
    /// Stubs in the spoof-capable pocket (SAV not deployed).
    pub spoof_capable: usize,
    /// Ranked suspect clusters the accumulator produced.
    pub suspect_clusters: usize,
    /// Fraction of total suspect volume (upper bounds) sitting on
    /// clusters that contain at least one spoof-capable stub.
    pub volume_on_spoofers: f64,
    /// The accumulator's worst-case overestimation bound (0 when exact).
    pub error_bound: u64,
    /// Whether every adjacent suspect gap exceeds the error bound.
    pub ranking_stable: bool,
}

impl PartialSavOutcome {
    /// The `--check` contract; `Some(violation)` on failure.
    pub fn check(&self) -> Option<String> {
        if self.spoof_capable == 0 || self.spoof_capable >= self.stubs {
            return Some(format!(
                "degenerate SAV deployment: {}/{} stubs spoof-capable",
                self.spoof_capable, self.stubs
            ));
        }
        if self.suspect_clusters == 0 {
            return Some("no suspect clusters; the spoofed volume vanished".into());
        }
        if self.volume_on_spoofers < 0.9 {
            return Some(format!(
                "only {:.1}% of suspect volume concentrates on spoof-capable stubs",
                self.volume_on_spoofers * 100.0
            ));
        }
        None
    }
}

/// Run the partial-SAV scenario: a seeded 20% pocket of stub ASes lacks
/// source-address validation; every spoofing source lives there. The
/// campaign's suspect volume must concentrate on clusters containing
/// spoof-capable stubs — localization finds the pockets, not the
/// SAV-compliant remainder of the edge.
pub fn partial_sav(opts: &Options) -> PartialSavOutcome {
    let scenario = Scenario::build(opts.clone());
    let topo = &scenario.gen.topology;
    let stubs: Vec<AsIndex> = scenario
        .gen
        .stubs
        .iter()
        .filter_map(|&asn| topo.index_of(asn))
        .collect();
    assert!(!stubs.is_empty(), "topology has no stub ASes");

    // The spoof-capable pocket: a seeded 20% of stubs (at least one).
    let mut rng = ChaCha8Rng::seed_from_u64(opts.seed ^ 0x0005_AF0D);
    let mut pool = stubs.clone();
    let take = (pool.len() / 5).max(1);
    let mut spoof_capable = Vec::with_capacity(take);
    for _ in 0..take {
        let k = rng.random_range(0..pool.len());
        spoof_capable.push(pool.swap_remove(k));
    }
    spoof_capable.sort_unstable();

    let placed = place_sources(
        topo.num_ases(),
        &spoof_capable,
        SourcePlacement::Uniform { total: 12 },
        opts.seed ^ 0xB0B,
    );
    let honeypot = Honeypot::new(HoneypotConfig::default());
    let flows = spoofed_flows(
        &placed,
        u32::from_be_bytes([203, 0, 113, 50]),
        honeypot.config().prefix,
        &FlowConfig::default(),
    );

    let campaign = scenario.run();
    let acc = accumulate_flows(&campaign, &flows, opts.sketch, opts.seed ^ 0x5CE7);
    let ranked = rank_suspects_acc(&campaign, acc.as_ref());
    // The min-bound filter keeps any cluster sharing a link with real
    // volume; attribute mass by the *refined* uppers from interval
    // constraint propagation, which squeezes non-originating clusters
    // toward zero through volume conservation.
    let estimates = estimate_cluster_volumes_acc(&campaign, acc.as_ref(), 10);

    let total: u128 = estimates.iter().map(|e| e.upper as u128).sum();
    let on_spoofers: u128 = estimates
        .iter()
        .filter(|e| {
            e.members
                .iter()
                .any(|m| spoof_capable.binary_search(m).is_ok())
        })
        .map(|e| e.upper as u128)
        .sum();
    let volume_on_spoofers = if total == 0 {
        0.0
    } else {
        on_spoofers as f64 / total as f64
    };

    PartialSavOutcome {
        stubs: stubs.len(),
        spoof_capable: spoof_capable.len(),
        suspect_clusters: estimates.len(),
        volume_on_spoofers,
        error_bound: ranked.error_bound,
        ranking_stable: ranked.stable,
    }
}
