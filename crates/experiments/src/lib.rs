//! # trackdown-experiments
//!
//! Reproduction harnesses for every table and figure in the paper's
//! evaluation (§V). Each binary regenerates one artifact:
//!
//! | binary   | artifact  | content |
//! |----------|-----------|---------|
//! | `table1` | Table I   | PoPs and providers of the (simulated) platform |
//! | `fig3`   | Figure 3  | CCDF of cluster sizes after each phase |
//! | `fig4`   | Figure 4  | mean/p90 cluster size vs number of configurations |
//! | `fig5`   | Figure 5  | mean cluster size when removing peering locations |
//! | `fig6`   | Figure 6  | CCDF of cluster sizes after removing locations |
//! | `fig7`   | Figure 7  | cluster size vs AS-hop distance from the origin |
//! | `fig8`   | Figure 8  | random vs greedy configuration schedules |
//! | `fig9`   | Figure 9  | fraction of ASes following known routing policies |
//! | `fig10`  | Figure 10 | traffic volume vs cluster size per source distribution |
//! | `table2` | Table II  | qualitative comparison of traceback approaches |
//! | `run_all`| all       | everything above, written to `results/` |
//!
//! Absolute values differ from the paper (the substrate is a synthetic
//! Internet, not PEERING + RouteViews + Atlas); the *shapes* are the
//! reproduction target. Every binary accepts `--scale
//! small|medium|full|large|internet` (default `full`), `--seed <u64>`,
//! and `--shards <n|auto>` (sharded catchment extraction for the larger
//! scales). The `internet` scale loads a real CAIDA `as-rel` snapshot
//! from the path in `TRACKDOWN_AS_REL` when that variable is set, and
//! falls back to a deterministic 80 000-AS power-law graph otherwise.

use std::collections::BTreeSet;
use trackdown_bgp::{
    BgpEngine, DeploymentBias, EngineConfig, ExtensionDeployment, LinkId, OriginAs, PolicyConfig,
    PolicyExtension,
};
use trackdown_core::generator::{full_schedule, phase_boundaries, GeneratorParams};
use trackdown_core::localize::{
    run_campaign_recorded, run_campaign_sharded_recorded, Campaign, CampaignMode, CatchmentSource,
};
use trackdown_core::report::{downsample, render_table, Series};
use trackdown_core::{AnnouncementConfig, Phase};
use trackdown_measure::{MeasurementConfig, MeasurementPlane};
use trackdown_obs::{progress, CampaignRecorder, RunInfo};
use trackdown_topology::cone::ConeInfo;
use trackdown_topology::gen::{generate, GeneratedTopology, TopologyConfig};

pub mod figures;
pub mod scenarios;

/// Experiment scale: trades fidelity for runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// ≈120 ASes, 4 PoPs — smoke-test scale (seconds).
    Small,
    /// ≈600 ASes, 5 PoPs — development scale.
    Medium,
    /// ≈2000 ASes, 7 PoPs — the paper-like scale (default).
    Full,
    /// ≈12 000 ASes (power-law generator), 7 PoPs — the paper-scale
    /// workload the sharded batch-catchment engine targets. The schedule
    /// is trimmed (one-removal locations, capped poisons) so runtime is
    /// dominated by propagation + extraction over the large graph.
    Large,
    /// 80 000 ASes, 7 PoPs — real-Internet scale, the size of the CAIDA
    /// as-rel snapshots the paper consumes \[28\]. Loads the snapshot at
    /// `TRACKDOWN_AS_REL` when set (tiers/regions classified from the
    /// link structure), else generates a deterministic power-law graph.
    /// The schedule is trimmed harder than `large` so runtime stays
    /// dominated by per-configuration propagation over the huge graph.
    Internet,
}

impl Scale {
    /// Parse from a `--scale` argument value.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "full" => Some(Scale::Full),
            "large" => Some(Scale::Large),
            "internet" => Some(Scale::Internet),
            _ => None,
        }
    }

    /// The `--scale` argument spelling (manifest `scale` field).
    pub fn label(&self) -> &'static str {
        match self {
            Scale::Small => "small",
            Scale::Medium => "medium",
            Scale::Full => "full",
            Scale::Large => "large",
            Scale::Internet => "internet",
        }
    }
}

/// Command-line options shared by every experiment binary.
#[derive(Debug, Clone)]
pub struct Options {
    /// Experiment scale.
    pub scale: Scale,
    /// Topology seed.
    pub seed: u64,
    /// Obtain catchments through the simulated observation plane (BGP
    /// feeds + noisy traceroutes + visibility imputation) instead of the
    /// control-plane oracle — closest to the paper's §IV pipeline, where
    /// only feed/probe-visible sources enter the analysis.
    pub measured: bool,
    /// Cold-start every configuration from scratch instead of the default
    /// warm-start epoch reuse. Slower; kept as the reference oracle.
    pub cold: bool,
    /// Delta-propagate epoch transitions: diff each configuration against
    /// the previous one, seed only changed providers, and schedule the
    /// queue in customer-cone rank order. Identical results to warm/cold
    /// (enforced by `tests/delta_differential.rs`), least work per epoch.
    pub delta: bool,
    /// Catchment-extraction shards per configuration (`--shards <n|auto>`,
    /// default `auto`). Shards split each fixpoint's extraction into
    /// AS-index ranges processed as a work-stealing batch; results are
    /// identical for every value — this is purely a load-balancing knob
    /// for large topologies. `0` (the `auto` spelling) tunes the count
    /// from the worker-thread count and topology size.
    pub shards: usize,
    /// Worker-thread override (`--threads`). Defaults to the machine's
    /// available parallelism. Results are thread-count-invariant; this
    /// pins the executor shape for profiling and benches.
    pub threads: Option<usize>,
    /// Write a JSONL run manifest (run header, one epoch line per
    /// configuration, metrics snapshot) to this path after each campaign.
    pub metrics_out: Option<String>,
    /// Suppress every wall-clock-derived manifest field so two runs of
    /// the same campaign produce byte-identical manifests.
    pub metrics_deterministic: bool,
    /// Defense-policy extensions to deploy (`--defense
    /// <name>=<fraction>[:<bias>]`, repeatable). Empty reproduces the
    /// extension-free engine bit-for-bit.
    pub defenses: Vec<ExtensionDeployment>,
    /// Streaming-sketch geometry (`--sketch WIDTHxDEPTH`): attribute
    /// volumes through a count-min sketch of this shape instead of exact
    /// dense counters. `None` keeps the exact path.
    pub sketch: Option<(usize, usize)>,
}

impl Default for Options {
    fn default() -> Options {
        Options {
            scale: Scale::Full,
            seed: 0x5eed_0001,
            measured: false,
            cold: false,
            delta: false,
            shards: 0,
            threads: None,
            metrics_out: None,
            metrics_deterministic: false,
            defenses: Vec::new(),
            sketch: None,
        }
    }
}

/// Parse one `--sketch` operand: `WIDTHxDEPTH` (e.g. `64x4`), both
/// positive.
pub fn parse_sketch(s: &str) -> Option<(usize, usize)> {
    let (w, d) = s.split_once('x')?;
    let width: usize = w.parse().ok().filter(|&v| v >= 1)?;
    let depth: usize = d.parse().ok().filter(|&v| v >= 1)?;
    Some((width, depth))
}

/// Parse one `--defense` operand: `<name>=<fraction>[:<bias>]` with
/// `name` a [`PolicyExtension`] label (e.g. `aspa`, `peerlock-lite`),
/// `fraction` in `[0, 1]`, and `bias` one of `uniform|core|stub`
/// (default `core`).
pub fn parse_defense(s: &str) -> Option<ExtensionDeployment> {
    let (name, rest) = s.split_once('=')?;
    let extension = PolicyExtension::parse(name)?;
    let (frac, bias) = match rest.split_once(':') {
        Some((f, b)) => (f, Some(b)),
        None => (rest, None),
    };
    let fraction: f64 = frac.parse().ok().filter(|f| (0.0..=1.0).contains(f))?;
    let bias = match bias {
        None => DeploymentBias::default(),
        Some("uniform") => DeploymentBias::Uniform,
        Some("core") => DeploymentBias::Core,
        Some("stub") => DeploymentBias::Stub,
        Some(_) => return None,
    };
    Some(ExtensionDeployment {
        extension,
        fraction,
        bias,
    })
}

impl Options {
    /// Parse `--scale` and `--seed` from process arguments; exits with a
    /// usage message on malformed input.
    pub fn from_args() -> Options {
        Options::from_args_filtered(&[])
    }

    /// [`Options::from_args`], skipping any flag named in `ignore` —
    /// binaries with extra flags (e.g. `defense --check`) parse those
    /// themselves and pass the rest through here. A plain entry skips one
    /// boolean flag; an entry ending in `=` (e.g. `"--fraction="`) skips
    /// the flag *and* its value token.
    pub fn from_args_filtered(ignore: &[&str]) -> Options {
        let mut opts = Options::default();
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < args.len() {
            if ignore.contains(&args[i].as_str()) {
                i += 1;
                continue;
            }
            if ignore
                .iter()
                .any(|ig| ig.strip_suffix('=') == Some(args[i].as_str()))
            {
                i += 2; // value flag: skip the flag and its operand
                continue;
            }
            match args[i].as_str() {
                "--scale" => {
                    i += 1;
                    opts.scale = args
                        .get(i)
                        .and_then(|v| Scale::parse(v))
                        .unwrap_or_else(|| usage());
                }
                "--seed" => {
                    i += 1;
                    opts.seed = args
                        .get(i)
                        .and_then(|v| v.parse().ok())
                        .unwrap_or_else(|| usage());
                }
                "--measured" => opts.measured = true,
                "--cold" => opts.cold = true,
                "--delta" => opts.delta = true,
                "--shards" => {
                    i += 1;
                    opts.shards = match args.get(i).map(String::as_str) {
                        Some("auto") => 0,
                        Some(v) => v.parse().ok().unwrap_or_else(|| usage()),
                        None => usage(),
                    };
                }
                "--threads" => {
                    i += 1;
                    opts.threads = Some(
                        args.get(i)
                            .and_then(|v| v.parse().ok())
                            .filter(|&s| s >= 1)
                            .unwrap_or_else(|| usage()),
                    );
                }
                "--metrics-out" => {
                    i += 1;
                    opts.metrics_out = Some(args.get(i).cloned().unwrap_or_else(|| usage()));
                }
                "--metrics-deterministic" => opts.metrics_deterministic = true,
                "--sketch" => {
                    i += 1;
                    opts.sketch = Some(
                        args.get(i)
                            .and_then(|v| parse_sketch(v))
                            .unwrap_or_else(|| usage()),
                    );
                }
                "--defense" => {
                    i += 1;
                    let d = args
                        .get(i)
                        .and_then(|v| parse_defense(v))
                        .unwrap_or_else(|| usage());
                    opts.defenses.push(d);
                }
                "--help" | "-h" => usage(),
                other => {
                    eprintln!("unknown argument: {other}");
                    usage()
                }
            }
            i += 1;
        }
        // Span timing is opt-in via TRACKDOWN_SPANS=1 (stderr sink).
        trackdown_obs::init_spans_from_env();
        opts
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: <experiment> [--scale small|medium|full|large|internet] [--seed <u64>] \
         [--measured] [--cold] [--delta] [--shards <n|auto>] [--threads <n>] \
         [--metrics-out FILE] [--metrics-deterministic] [--sketch WIDTHxDEPTH] \
         [--defense <name>=<fraction>[:<bias>]]...\n\
         defenses: rov, peer-rov, aspa, peerlock-lite, only-to-customers, \
         enforce-first-as, edge-filter; bias: uniform|core|stub (default core)"
    );
    std::process::exit(2)
}

/// Build the `internet`-scale topology: the CAIDA `as-rel` snapshot at
/// `TRACKDOWN_AS_REL` when that variable is set and non-empty (tiers and
/// regions classified from the link structure), otherwise the
/// deterministic 80k-AS power-law fallback in `fallback`. Exits with a
/// diagnostic when the file cannot be read or parsed — a half-loaded
/// Internet is worse than none.
fn internet_topology(fallback: &TopologyConfig) -> GeneratedTopology {
    match std::env::var("TRACKDOWN_AS_REL") {
        Ok(path) if !path.is_empty() => {
            let text = std::fs::read_to_string(&path).unwrap_or_else(|e| {
                eprintln!("error: reading TRACKDOWN_AS_REL file {path}: {e}");
                std::process::exit(1);
            });
            let topo = trackdown_topology::serfmt::parse_as_rel(&text).unwrap_or_else(|e| {
                eprintln!("error: parsing TRACKDOWN_AS_REL file {path}: {e}");
                std::process::exit(1);
            });
            progress::emit(
                "topology.as_rel_loaded",
                &[
                    ("path", path.clone()),
                    ("ases", topo.num_ases().to_string()),
                ],
            );
            GeneratedTopology::from_topology(topo, fallback.num_regions)
        }
        _ => generate(fallback),
    }
}

/// Stem of the running executable (manifest `name` field).
fn program_name() -> String {
    std::env::args()
        .next()
        .and_then(|a| {
            std::path::Path::new(&a)
                .file_stem()
                .and_then(|s| s.to_str())
                .map(str::to_string)
        })
        .unwrap_or_else(|| "trackdown".into())
}

/// A fully-built experiment scenario: topology, origin, engine
/// configuration, and schedule parameters.
pub struct Scenario {
    /// The generated topology and metadata.
    pub gen: GeneratedTopology,
    /// The multi-PoP origin.
    pub origin: OriginAs,
    /// Engine (policy) configuration.
    pub engine_cfg: EngineConfig,
    /// Schedule generation parameters.
    pub params: GeneratorParams,
    /// Scale this scenario was built at.
    pub scale: Scale,
    /// Topology seed the scenario was built from.
    pub seed: u64,
    /// Whether campaigns run through the measurement plane.
    pub measured: bool,
    /// Whether campaigns cold-start every configuration (reference oracle).
    pub cold: bool,
    /// Whether campaigns delta-propagate epoch transitions.
    pub delta: bool,
    /// Catchment-extraction shards per configuration.
    pub shards: usize,
    /// Worker-thread override (`None` = available parallelism).
    pub threads: Option<usize>,
    /// Run-manifest output path ([`Scenario::run`] writes it when set).
    pub metrics_out: Option<String>,
    /// Whether manifests suppress wall-clock fields.
    pub metrics_deterministic: bool,
}

impl Scenario {
    /// Build the scenario for the given options.
    pub fn build(opts: Options) -> Scenario {
        let (topo_cfg, pops, params) = match opts.scale {
            Scale::Small => (
                TopologyConfig::small(opts.seed),
                4,
                GeneratorParams {
                    max_removals: 2,
                    max_poison_configs: Some(20),
                },
            ),
            Scale::Medium => (
                TopologyConfig::medium(opts.seed),
                5,
                GeneratorParams {
                    max_removals: 2,
                    max_poison_configs: Some(60),
                },
            ),
            Scale::Full => (
                TopologyConfig {
                    seed: opts.seed,
                    ..TopologyConfig::default()
                },
                7,
                GeneratorParams {
                    max_removals: 3,
                    max_poison_configs: None,
                },
            ),
            Scale::Large => (
                TopologyConfig::large(opts.seed),
                7,
                GeneratorParams {
                    max_removals: 1,
                    max_poison_configs: Some(24),
                },
            ),
            Scale::Internet => (
                TopologyConfig::internet(opts.seed),
                7,
                GeneratorParams {
                    max_removals: 1,
                    max_poison_configs: Some(8),
                },
            ),
        };
        let gen = if opts.scale == Scale::Internet {
            internet_topology(&topo_cfg)
        } else {
            generate(&topo_cfg)
        };
        let origin = OriginAs::peering_style(&gen, pops);
        let mut policy = PolicyConfig {
            seed: opts.seed ^ 0x9_11C7,
            ..PolicyConfig::default()
        };
        policy.extensions.deployments = opts.defenses.clone();
        let engine_cfg = EngineConfig {
            policy,
            ..EngineConfig::default()
        };
        Scenario {
            gen,
            origin,
            engine_cfg,
            params,
            scale: opts.scale,
            seed: opts.seed,
            measured: opts.measured,
            cold: opts.cold,
            delta: opts.delta,
            shards: opts.shards,
            threads: opts.threads,
            metrics_out: opts.metrics_out,
            metrics_deterministic: opts.metrics_deterministic,
        }
    }

    /// Build the BGP engine (borrows the scenario's topology).
    pub fn engine(&self) -> BgpEngine<'_> {
        BgpEngine::new(&self.gen.topology, &self.engine_cfg)
    }

    /// The full three-phase schedule.
    pub fn schedule(&self) -> Vec<AnnouncementConfig> {
        full_schedule(&self.gen.topology, &self.origin, &self.params)
    }

    /// Deploy the full schedule. By default, catchments are ground-truth
    /// control plane; with `--measured` they pass through the simulated
    /// observation plane (the paper's §IV pipeline), which restricts the
    /// tracked set to feed/probe-visible sources and adds measurement
    /// noise. Campaigns warm-start each configuration from the previous
    /// converged routing state unless `--cold` forces per-configuration
    /// cold starts (the slower reference oracle).
    pub fn run(&self) -> Campaign {
        // Attach a recorder only when a manifest was requested; with
        // `None` the executors skip all instrumentation work.
        let recorder = self
            .metrics_out
            .as_ref()
            .map(|_| CampaignRecorder::new(self.metrics_deterministic));
        let campaign = self.run_recorded(recorder.as_ref());
        if let (Some(path), Some(rec)) = (&self.metrics_out, &recorder) {
            match self.write_manifest(path, rec, &campaign) {
                Ok(()) => progress::emit("manifest.written", &[("path", path.clone())]),
                Err(e) => {
                    eprintln!("error: writing metrics manifest {path}: {e}");
                    std::process::exit(1);
                }
            }
        }
        campaign
    }

    /// [`Scenario::run`] with an explicit (optional) epoch recorder and
    /// no manifest writing — the building block `run` wraps.
    pub fn run_recorded(&self, recorder: Option<&CampaignRecorder>) -> Campaign {
        let engine = self.engine();
        let schedule = self.schedule();
        let mode = if self.cold {
            CampaignMode::Cold
        } else if self.delta {
            CampaignMode::Delta
        } else {
            CampaignMode::Warm
        };
        if self.measured {
            let cones = ConeInfo::compute(&self.gen.topology);
            let plane =
                MeasurementPlane::new(&self.gen.topology, &cones, &MeasurementConfig::default());
            run_campaign_recorded(
                &engine,
                &self.origin,
                &schedule,
                CatchmentSource::Measured,
                Some(&plane),
                self.engine_cfg.max_events_factor,
                mode,
                recorder,
            )
        } else {
            // Independent configurations propagate in parallel — the
            // simulation analog of deploying on multiple prefixes
            // concurrently (§V-C) — and each fixpoint's catchment
            // extraction is sharded into a work-stealing batch
            // (`--shards`; 1 keeps whole-topology extraction).
            let threads = self.threads.unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|n| n.get())
                    .unwrap_or(1)
            });
            run_campaign_sharded_recorded(
                &engine,
                &self.origin,
                &schedule,
                CatchmentSource::ControlPlane,
                self.engine_cfg.max_events_factor,
                threads,
                self.shards,
                mode,
                recorder,
            )
        }
    }

    /// The manifest run header for a finished campaign of this scenario.
    pub fn run_info(&self, campaign: &Campaign) -> RunInfo {
        RunInfo {
            name: program_name(),
            seed: self.seed,
            policy_seed: self.engine_cfg.policy.seed,
            scale: self.scale.label().into(),
            mode: if self.cold {
                "cold"
            } else if self.delta {
                "delta"
            } else {
                "warm"
            }
            .into(),
            threads: campaign.stats.threads,
            shards: campaign.stats.shards,
            trace: trackdown_obs::trace_config_label(),
            schedule_len: campaign.configs.len(),
            deterministic: self.metrics_deterministic,
        }
    }

    /// Write the JSONL run manifest for a finished campaign.
    pub fn write_manifest(
        &self,
        path: &str,
        recorder: &CampaignRecorder,
        campaign: &Campaign,
    ) -> std::io::Result<()> {
        trackdown_obs::write_manifest(
            path,
            &self.run_info(campaign),
            &recorder.take_records(),
            Some(&trackdown_obs::global().snapshot()),
        )
    }

    /// Emit the uniform `obs scenario ...` header event (replaces the
    /// old ad-hoc `eprintln!("# ...")` prints in the binaries).
    pub fn announce(&self) {
        trackdown_obs::progress!(
            "scenario",
            name = program_name(),
            scale = self.scale.label(),
            seed = self.seed,
            ases = self.gen.topology.num_ases(),
            links = self.gen.topology.num_links(),
            origin = self.origin.asn,
            pops = self.origin.num_links(),
            measured = self.measured,
            cold = self.cold,
            delta = self.delta
        );
    }

    /// Footprint link-id set covering all links.
    pub fn all_links(&self) -> BTreeSet<LinkId> {
        self.origin.link_ids().collect()
    }

    /// Human description for report headers.
    pub fn describe(&self) -> String {
        format!(
            "{:?} scale: {} ASes, {} links, origin {} with {} PoPs",
            self.scale,
            self.gen.topology.num_ases(),
            self.gen.topology.num_links(),
            self.origin.asn,
            self.origin.num_links(),
        )
    }
}

/// Emit the uniform `obs campaign.stats ...` event for a finished
/// campaign: execution counters plus localization quality headline.
pub fn report_stats(campaign: &Campaign) {
    trackdown_obs::progress!(
        "campaign.stats",
        mode = format!("{:?}", campaign.stats.mode).to_lowercase(),
        configs = campaign.configs.len(),
        tracked = campaign.tracked.len(),
        propagations = campaign.stats.propagations,
        memo_hits = campaign.stats.memo_hits,
        cold_restarts = campaign.stats.cold_restarts,
        threads = campaign.stats.threads,
        shards = campaign.stats.shards,
        mean_cluster_size = format!("{:.3}", campaign.clustering.mean_size())
    );
}

/// Render a campaign's phase boundaries as text (used by several figures).
pub fn phase_summary(campaign: &Campaign) -> String {
    let bounds = phase_boundaries(&campaign.configs);
    let rows: Vec<Vec<String>> = bounds
        .iter()
        .map(|(phase, end)| {
            let idx = end - 1;
            vec![
                phase.to_string(),
                end.to_string(),
                format!("{:.3}", campaign.records[idx].mean_cluster_size),
                campaign.records[idx].p90_cluster_size.to_string(),
                campaign.records[idx].num_clusters.to_string(),
            ]
        })
        .collect();
    render_table(&["phase", "configs", "mean size", "p90", "clusters"], &rows)
}

/// Format `(x, y)` series for terminal output: an ASCII sketch of the
/// curves followed by a downsampled CSV block.
pub fn print_series(title: &str, series: &[Series]) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    let compact: Vec<Series> = series
        .iter()
        .map(|s| Series {
            name: s.name.clone(),
            points: downsample(&s.points, 40),
        })
        .collect();
    out.push_str(&trackdown_core::report::ascii_plot(&compact, 64, 16));
    out.push('\n');
    out.push_str(&trackdown_core::report::to_csv(&compact));
    out
}

/// Phase boundary prefixes (Figure 3's three distributions).
pub fn phase_prefixes(configs: &[AnnouncementConfig]) -> Vec<(Phase, usize)> {
    phase_boundaries(configs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_scenario_builds_and_runs() {
        let opts = Options {
            scale: Scale::Small,
            seed: 3,
            ..Options::default()
        };
        let s = Scenario::build(opts);
        assert_eq!(s.origin.num_links(), 4);
        let campaign = s.run();
        assert!(!campaign.records.is_empty());
        assert!(campaign.clustering.mean_size() >= 1.0);
        let summary = phase_summary(&campaign);
        assert!(summary.contains("location"));
        assert!(summary.contains("poisoning"));
    }

    #[test]
    fn defense_parsing() {
        let d = parse_defense("aspa=0.5").expect("valid");
        assert_eq!(d.extension, PolicyExtension::Aspa);
        assert_eq!(d.fraction, 0.5);
        assert_eq!(d.bias, DeploymentBias::Core);
        let d = parse_defense("peerlock-lite=1.0:stub").expect("valid");
        assert_eq!(d.extension, PolicyExtension::PeerlockLite);
        assert_eq!(d.bias, DeploymentBias::Stub);
        let d = parse_defense("rov=0:uniform").expect("valid");
        assert_eq!(d.bias, DeploymentBias::Uniform);
        assert!(parse_defense("aspa").is_none(), "missing fraction");
        assert!(parse_defense("bgpsec=0.5").is_none(), "unknown extension");
        assert!(parse_defense("aspa=1.5").is_none(), "fraction out of range");
        assert!(parse_defense("aspa=0.5:everywhere").is_none(), "bad bias");
    }

    #[test]
    fn defenses_reach_the_engine_policy() {
        let mut opts = Options {
            scale: Scale::Small,
            seed: 3,
            ..Options::default()
        };
        opts.defenses = vec![parse_defense("edge-filter=1.0").expect("valid")];
        let s = Scenario::build(opts);
        let n = s.gen.topology.num_ases();
        let table = s.engine();
        assert_eq!(
            table.policy().num_deployers(PolicyExtension::EdgeFilter),
            n,
            "fraction 1.0 must deploy universally"
        );
        assert_eq!(table.policy().num_deployers(PolicyExtension::Aspa), 0);
    }

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("medium"), Some(Scale::Medium));
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("large"), Some(Scale::Large));
        assert_eq!(Scale::parse("internet"), Some(Scale::Internet));
        assert_eq!(Scale::parse("x"), None);
        for s in [
            Scale::Small,
            Scale::Medium,
            Scale::Full,
            Scale::Large,
            Scale::Internet,
        ] {
            assert_eq!(Scale::parse(s.label()), Some(s));
        }
    }

    #[test]
    fn sharded_scenario_matches_unsharded() {
        let base = Options {
            scale: Scale::Small,
            seed: 3,
            ..Options::default()
        };
        let unsharded = Scenario::build(Options {
            shards: 1,
            ..base.clone()
        })
        .run();
        let scenario = Scenario::build(Options {
            shards: 8,
            ..base.clone()
        });
        let n = scenario.gen.topology.num_ases();
        let sharded = scenario.run();
        assert_eq!(sharded.catchments, unsharded.catchments);
        assert_eq!(sharded.tracked, unsharded.tracked);
        assert_eq!(sharded.records, unsharded.records);
        assert_eq!(
            sharded.stats.shards,
            trackdown_core::localize::ShardPlan::new(n, 8).num_shards()
        );
        // The default (`--shards auto`) resolves to ≥ 1 shard and is
        // result-identical too.
        let auto = Scenario::build(base).run();
        assert!(auto.stats.shards >= 1);
        assert_eq!(auto.catchments, unsharded.catchments);
        assert_eq!(auto.records, unsharded.records);
    }
}
