//! Targeted poisoning of distant ASes (§V-B future work).
//!
//! The paper observes that large clusters sit far from the origin and
//! proposes "targeted poisoning of distant ASes to induce route changes
//! specific to split these large distant clusters". This module implements
//! that idea: take the largest clusters of a finished campaign, look at
//! the (predicted) forwarding paths of their members, and propose poison
//! configurations for the transit ASes those paths share — evaluated with
//! the catchment predictor so only configurations *predicted* to split a
//! cluster are proposed.

use crate::cluster::Clustering;
use crate::config::AnnouncementConfig;
use crate::localize::Campaign;
use crate::predict::CatchmentPredictor;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use trackdown_bgp::{BgpEngine, Catchments, OriginAs};
use trackdown_topology::{AsIndex, Asn, Topology};

/// A proposed targeted-poison configuration with its predicted effect.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TargetedProposal {
    /// The configuration to deploy.
    pub config: AnnouncementConfig,
    /// The AS being poisoned.
    pub target: Asn,
    /// Index of the cluster this proposal aims to split.
    pub cluster: usize,
    /// Predicted number of sub-clusters the target cluster breaks into
    /// (≥ 2 for every returned proposal).
    pub predicted_parts: usize,
}

/// Transit ASes shared by the forwarding paths of a cluster's members,
/// ranked by how many members traverse them (descending), excluding the
/// origin's own providers (already covered by the standard poison phase).
fn shared_transits(
    topo: &Topology,
    origin: &OriginAs,
    members: &[AsIndex],
    outcome: &trackdown_bgp::RoutingOutcome,
) -> Vec<(AsIndex, usize)> {
    let provider_asns: Vec<Asn> = origin.links.iter().map(|l| l.provider).collect();
    let mut counts: HashMap<AsIndex, usize> = HashMap::new();
    let mut walker = trackdown_bgp::ForwardingWalker::new();
    for &m in members {
        let Some(walk) = walker.walk(outcome, m) else {
            continue;
        };
        for &hop in &walk.hops {
            if hop == m {
                continue;
            }
            let asn = topo.asn_of(hop);
            if asn == origin.asn || provider_asns.contains(&asn) {
                continue;
            }
            *counts.entry(hop).or_insert(0) += 1;
        }
    }
    let mut out: Vec<(AsIndex, usize)> = counts.into_iter().collect();
    // Most-shared first; ties toward the lower index for determinism.
    out.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    out
}

/// How many parts a cluster splits into under a predicted catchment map.
fn predicted_parts(members: &[AsIndex], predicted: &Catchments) -> usize {
    let mut links: Vec<_> = members.iter().map(|&m| predicted.get(m)).collect();
    links.sort_unstable();
    links.dedup();
    links.len()
}

/// Propose up to `max_proposals` targeted-poison configurations for the
/// `top_clusters` largest clusters of a finished campaign.
///
/// `engine` provides ground-truth forwarding paths for the baseline
/// configuration (in deployment these come from the measured traceroute
/// corpus); the [`CatchmentPredictor`] screens candidate poisons so only
/// configurations predicted to split their cluster are returned.
pub fn propose_targeted_poisons(
    engine: &BgpEngine<'_>,
    origin: &OriginAs,
    campaign: &Campaign,
    top_clusters: usize,
    candidates_per_cluster: usize,
    max_proposals: usize,
) -> Vec<TargetedProposal> {
    let topo = engine.topology();
    let baseline = &campaign.configs[0];
    let outcome = engine
        .propagate_config(origin, &baseline.to_link_announcements(), 200)
        .expect("baseline valid");
    let predictor = CatchmentPredictor::new(topo);

    // Largest clusters first (CSR slices; no membership materialization).
    let clustering = &campaign.clustering;
    let mut order: Vec<usize> = (0..clustering.num_clusters()).collect();
    order.sort_by_key(|&k| usize::MAX - clustering.cluster_size(k as u32));

    let mut proposals = Vec::new();
    for &cluster_idx in order.iter().take(top_clusters) {
        let members = clustering.cluster_members(cluster_idx as u32);
        if members.len() < 2 {
            continue; // nothing to split
        }
        // The link the cluster currently uses in the baseline.
        let Some(current_link) = campaign.catchments[0].get(members[0]) else {
            continue;
        };
        for (transit, _shared_by) in shared_transits(topo, origin, members, &outcome)
            .into_iter()
            .take(candidates_per_cluster)
        {
            let target = topo.asn_of(transit);
            let config = AnnouncementConfig::anycast(origin.link_ids())
                .with_poison(current_link, vec![target]);
            if config.validate(origin).is_err() {
                continue;
            }
            let predicted = predictor.predict(origin, &config);
            let parts = predicted_parts(members, &predicted);
            if parts >= 2 {
                proposals.push(TargetedProposal {
                    config,
                    target,
                    cluster: cluster_idx,
                    predicted_parts: parts,
                });
                break; // one proposal per cluster is enough
            }
        }
        if proposals.len() >= max_proposals {
            break;
        }
    }
    proposals
}

/// Deploy proposals on top of an existing clustering and report the mean
/// cluster size before/after — the ablation number for this strategy.
pub fn evaluate_proposals(
    engine: &BgpEngine<'_>,
    origin: &OriginAs,
    campaign: &Campaign,
    proposals: &[TargetedProposal],
) -> (f64, f64) {
    let before = campaign.clustering.mean_size();
    let mut clustering: Clustering = campaign.clustering.clone();
    for p in proposals {
        let outcome = engine
            .propagate_config(origin, &p.config.to_link_announcements(), 200)
            .expect("proposal valid");
        clustering.refine(&Catchments::from_control_plane(&outcome));
    }
    (before, clustering.mean_size())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{full_schedule, GeneratorParams};
    use crate::localize::{run_campaign, CatchmentSource};
    use trackdown_bgp::{EngineConfig, PolicyConfig};
    use trackdown_topology::gen::{generate, TopologyConfig};

    fn setup() -> (
        trackdown_topology::gen::GeneratedTopology,
        OriginAs,
        EngineConfig,
    ) {
        let g = generate(&TopologyConfig::medium(61));
        let origin = OriginAs::peering_style(&g, 5);
        let cfg = EngineConfig {
            policy: PolicyConfig {
                seed: 8,
                violator_fraction: 0.05,
                no_loop_prevention_fraction: 0.02,
                tier1_poison_filtering: true,
                extensions: Default::default(),
            },
            ..EngineConfig::default()
        };
        (g, origin, cfg)
    }

    #[test]
    fn proposals_target_shared_transits_and_predict_splits() {
        let (g, origin, cfg) = setup();
        let engine = BgpEngine::new(&g.topology, &cfg);
        // A deliberately small schedule so large clusters remain.
        let schedule = full_schedule(
            &g.topology,
            &origin,
            &GeneratorParams {
                max_removals: 1,
                max_poison_configs: Some(0),
            },
        );
        let campaign = run_campaign(
            &engine,
            &origin,
            &schedule,
            CatchmentSource::ControlPlane,
            None,
            200,
        );
        let proposals = propose_targeted_poisons(&engine, &origin, &campaign, 10, 8, 5);
        assert!(!proposals.is_empty(), "no targeted proposals found");
        let provider_asns: Vec<Asn> = origin.links.iter().map(|l| l.provider).collect();
        for p in &proposals {
            assert!(p.predicted_parts >= 2);
            assert_ne!(p.target, origin.asn);
            assert!(!provider_asns.contains(&p.target));
            p.config.validate(&origin).unwrap();
        }
    }

    #[test]
    fn deploying_proposals_reduces_mean_cluster_size() {
        let (g, origin, cfg) = setup();
        let engine = BgpEngine::new(&g.topology, &cfg);
        let schedule = full_schedule(
            &g.topology,
            &origin,
            &GeneratorParams {
                max_removals: 1,
                max_poison_configs: Some(0),
            },
        );
        let campaign = run_campaign(
            &engine,
            &origin,
            &schedule,
            CatchmentSource::ControlPlane,
            None,
            200,
        );
        let proposals = propose_targeted_poisons(&engine, &origin, &campaign, 10, 8, 5);
        let (before, after) = evaluate_proposals(&engine, &origin, &campaign, &proposals);
        assert!(
            after < before,
            "targeted poisoning did not help: {before} -> {after}"
        );
    }

    #[test]
    fn singleton_clusters_are_skipped() {
        let (g, origin, cfg) = setup();
        let engine = BgpEngine::new(&g.topology, &cfg);
        // A rich schedule leaves mostly singletons; proposals may be empty
        // but must never target a singleton cluster.
        let schedule = full_schedule(
            &g.topology,
            &origin,
            &GeneratorParams {
                max_removals: 2,
                max_poison_configs: Some(40),
            },
        );
        let campaign = run_campaign(
            &engine,
            &origin,
            &schedule,
            CatchmentSource::ControlPlane,
            None,
            200,
        );
        let clusters = campaign.clustering.clusters();
        let proposals = propose_targeted_poisons(&engine, &origin, &campaign, 5, 4, 5);
        for p in &proposals {
            assert!(clusters[p.cluster].len() >= 2);
        }
    }
}
