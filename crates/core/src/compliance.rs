//! Routing-policy compliance analysis (§V-C, Figure 9).
//!
//! For each configuration, the fraction of ASes whose observed choice
//! follows (i) the best-relationship criterion and (ii) additionally the
//! shortest-path criterion — the Gao-Rexford model. The paper uses this to
//! argue catchment *prediction* is feasible; high compliance means a clean
//! policy model predicts most routing choices.

use serde::{Deserialize, Serialize};
use trackdown_bgp::{policy::compliance_of, RoutingOutcome};

/// Per-configuration compliance fractions.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ComplianceSample {
    /// Fraction of decided ASes following best-relationship.
    pub best_relationship: f64,
    /// Fraction following best-relationship *and* shortest-path.
    pub both: f64,
    /// ASes with at least one candidate route (the denominator).
    pub decided: usize,
}

/// Evaluate one configuration's routing outcome. Only ASes with a best
/// route and at least two candidates are informative; ASes with a single
/// candidate comply trivially and are counted as such (they had no
/// choice), matching how path observations work in the paper's dataset.
pub fn config_compliance(outcome: &RoutingOutcome) -> ComplianceSample {
    let mut decided = 0usize;
    let mut best_rel = 0usize;
    let mut both = 0usize;
    for (best, cands) in outcome.best.iter().zip(outcome.candidates()) {
        let Some(best) = best else { continue };
        if cands.is_empty() {
            continue;
        }
        decided += 1;
        let refs: Vec<&trackdown_bgp::Route> = cands.iter().collect();
        let flags = compliance_of(best, &refs);
        if flags.best_relationship {
            best_rel += 1;
        }
        if flags.best_relationship && flags.shortest_path {
            both += 1;
        }
    }
    let frac = |x: usize| {
        if decided == 0 {
            0.0
        } else {
            x as f64 / decided as f64
        }
    };
    ComplianceSample {
        best_relationship: frac(best_rel),
        both: frac(both),
        decided,
    }
}

/// Empirical CDF over a set of fractions: ascending `(value, F(value))`
/// points — Figure 9's axes ("cumulative fraction of configurations" vs
/// "percentage of ASes").
pub fn fraction_cdf(mut values: Vec<f64>) -> Vec<(f64, f64)> {
    if values.is_empty() {
        return Vec::new();
    }
    values.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    let n = values.len() as f64;
    let mut out: Vec<(f64, f64)> = Vec::new();
    for (i, v) in values.iter().enumerate() {
        let point = (*v, (i + 1) as f64 / n);
        match out.last_mut() {
            Some(last) if (last.0 - *v).abs() < f64::EPSILON => last.1 = point.1,
            _ => out.push(point),
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use trackdown_bgp::{
        BgpEngine, EngineConfig, LinkAnnouncement, OriginAs, PolicyConfig, SnapshotDetail,
    };
    use trackdown_topology::gen::{generate, TopologyConfig};

    fn run(violators: f64) -> ComplianceSample {
        let g = generate(&TopologyConfig::small(31));
        let origin = OriginAs::peering_style(&g, 4);
        let cfg = EngineConfig {
            policy: PolicyConfig {
                seed: 11,
                violator_fraction: violators,
                no_loop_prevention_fraction: 0.0,
                tier1_poison_filtering: false,
                extensions: Default::default(),
            },
            ..EngineConfig::default()
        };
        let engine = BgpEngine::new(&g.topology, &cfg);
        let anns: Vec<_> = origin.link_ids().map(LinkAnnouncement::plain).collect();
        let out = engine
            .propagate_config_detailed(&origin, &anns, 200, SnapshotDetail::Full)
            .unwrap();
        config_compliance(&out)
    }

    #[test]
    fn clean_policies_fully_compliant() {
        let s = run(0.0);
        assert!(s.decided > 0);
        assert_eq!(s.best_relationship, 1.0);
        assert_eq!(s.both, 1.0);
    }

    #[test]
    fn violators_reduce_compliance() {
        let dirty = run(0.5);
        assert!(
            dirty.best_relationship < 1.0,
            "got {}",
            dirty.best_relationship
        );
        // `both` is a subset of `best_relationship`.
        assert!(dirty.both <= dirty.best_relationship);
        // Still most ASes comply: violators only matter when they actually
        // invert an available choice.
        assert!(dirty.best_relationship > 0.5);
    }

    #[test]
    fn cdf_shape() {
        let c = fraction_cdf(vec![0.5, 0.9, 0.9, 1.0]);
        assert_eq!(c, vec![(0.5, 0.25), (0.9, 0.75), (1.0, 1.0)]);
        assert!(fraction_cdf(vec![]).is_empty());
        // Monotone.
        for w in c.windows(2) {
            assert!(w[0].0 < w[1].0 && w[0].1 < w[1].1);
        }
    }
}
