//! The public dataset format (§VI).
//!
//! The paper releases its measurement dataset — announcement
//! configurations and the catchments observed under each — for reuse by
//! routing research ("our dataset contains at least four alternate routes
//! towards PEERING for each observed AS \[and\] thousands of route
//! changes"). This module defines the equivalent serialized artifact for
//! campaigns run on this stack: a self-contained JSON document from which
//! the clustering (and any downstream analysis) can be rebuilt without
//! rerunning BGP propagation.

use crate::cluster::Clustering;
use crate::config::AnnouncementConfig;
use crate::localize::Campaign;
use serde::{Deserialize, Serialize};
use std::fmt;
use trackdown_bgp::{Catchments, OriginAs};
use trackdown_topology::{AsIndex, Asn, Topology};

/// Current dataset format version.
pub const FORMAT_VERSION: u32 = 1;

/// Errors raised when loading a dataset.
#[derive(Debug)]
pub enum DatasetError {
    /// JSON (de)serialization failed.
    Json(serde_json::Error),
    /// The format version is unknown.
    UnsupportedVersion(u32),
    /// Internal inconsistency (counts disagree).
    Inconsistent(String),
}

impl fmt::Display for DatasetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DatasetError::Json(e) => write!(f, "dataset JSON error: {e}"),
            DatasetError::UnsupportedVersion(v) => {
                write!(f, "unsupported dataset version {v}")
            }
            DatasetError::Inconsistent(msg) => write!(f, "inconsistent dataset: {msg}"),
        }
    }
}

impl std::error::Error for DatasetError {}

impl From<serde_json::Error> for DatasetError {
    fn from(e: serde_json::Error) -> Self {
        DatasetError::Json(e)
    }
}

/// A self-contained campaign dataset.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Format version ([`FORMAT_VERSION`]).
    pub version: u32,
    /// The origin network (links, prefix, platform limits).
    pub origin: OriginAs,
    /// ASN of every source index used by `catchments`/`tracked`.
    pub asns: Vec<Asn>,
    /// The deployed configurations, in order.
    pub configs: Vec<AnnouncementConfig>,
    /// Per-configuration catchments, indexed like `asns`.
    pub catchments: Vec<Catchments>,
    /// The tracked (analysis-set) sources, as indices into `asns`.
    pub tracked: Vec<AsIndex>,
}

impl Dataset {
    /// Capture a finished campaign.
    pub fn from_campaign(topo: &Topology, origin: &OriginAs, campaign: &Campaign) -> Dataset {
        Dataset {
            version: FORMAT_VERSION,
            origin: origin.clone(),
            asns: topo.asns().to_vec(),
            configs: campaign.configs.clone(),
            catchments: campaign.catchments.clone(),
            tracked: campaign.tracked.clone(),
        }
    }

    /// Serialize to pretty JSON.
    pub fn to_json(&self) -> Result<String, DatasetError> {
        Ok(serde_json::to_string_pretty(self)?)
    }

    /// Load and validate from JSON.
    pub fn from_json(text: &str) -> Result<Dataset, DatasetError> {
        let ds: Dataset = serde_json::from_str(text)?;
        ds.validate()?;
        Ok(ds)
    }

    /// Internal consistency checks.
    pub fn validate(&self) -> Result<(), DatasetError> {
        if self.version != FORMAT_VERSION {
            return Err(DatasetError::UnsupportedVersion(self.version));
        }
        if self.configs.len() != self.catchments.len() {
            return Err(DatasetError::Inconsistent(format!(
                "{} configs but {} catchment maps",
                self.configs.len(),
                self.catchments.len()
            )));
        }
        for (k, c) in self.catchments.iter().enumerate() {
            if c.len() != self.asns.len() {
                return Err(DatasetError::Inconsistent(format!(
                    "catchment map {k} covers {} sources, expected {}",
                    c.len(),
                    self.asns.len()
                )));
            }
        }
        for &t in &self.tracked {
            if t.us() >= self.asns.len() {
                return Err(DatasetError::Inconsistent(format!(
                    "tracked index {t:?} out of range"
                )));
            }
        }
        Ok(())
    }

    /// Number of deployed configurations.
    pub fn num_configs(&self) -> usize {
        self.configs.len()
    }

    /// Rebuild the clustering from the stored catchments — the downstream
    /// analysis entry point.
    pub fn rebuild_clustering(&self) -> Clustering {
        self.rebuild_attribution().0
    }

    /// Rebuild the clustering *and* its attribution index (refinement
    /// deltas, split log) from the stored catchments — what a [`Campaign`]
    /// reassembled from a dataset needs for incremental suspect ranking
    /// and volume estimation.
    pub fn rebuild_attribution(&self) -> (Clustering, crate::localize::AttributionIndex) {
        crate::localize::AttributionIndex::build(self.tracked.clone(), &self.catchments)
    }

    /// Number of distinct routes (catchment assignments) observed per
    /// tracked source — the paper advertises "at least four alternate
    /// routes towards PEERING for each observed AS".
    pub fn distinct_catchments_per_source(&self) -> Vec<usize> {
        self.tracked
            .iter()
            .map(|&s| {
                let mut links: Vec<_> = self.catchments.iter().filter_map(|c| c.get(s)).collect();
                links.sort_unstable();
                links.dedup();
                links.len()
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{full_schedule, GeneratorParams};
    use crate::localize::{run_campaign, CatchmentSource};
    use trackdown_bgp::{BgpEngine, EngineConfig};
    use trackdown_topology::gen::{generate, TopologyConfig};

    fn small_dataset() -> (Dataset, Campaign) {
        let g = generate(&TopologyConfig::small(81));
        let origin = OriginAs::peering_style(&g, 4);
        let engine = BgpEngine::new(&g.topology, &EngineConfig::default());
        let schedule = full_schedule(
            &g.topology,
            &origin,
            &GeneratorParams {
                max_removals: 2,
                max_poison_configs: Some(8),
            },
        );
        let campaign = run_campaign(
            &engine,
            &origin,
            &schedule,
            CatchmentSource::ControlPlane,
            None,
            200,
        );
        (
            Dataset::from_campaign(&g.topology, &origin, &campaign),
            campaign,
        )
    }

    #[test]
    fn json_roundtrip_preserves_everything() {
        let (ds, _) = small_dataset();
        let json = ds.to_json().unwrap();
        let back = Dataset::from_json(&json).unwrap();
        assert_eq!(ds, back);
    }

    #[test]
    fn rebuilt_clustering_matches_campaign() {
        let (ds, campaign) = small_dataset();
        let rebuilt = ds.rebuild_clustering();
        assert_eq!(rebuilt.num_clusters(), campaign.clustering.num_clusters());
        assert_eq!(rebuilt.mean_size(), campaign.clustering.mean_size());
        for &s in &campaign.tracked {
            for &t in &campaign.tracked {
                assert_eq!(
                    rebuilt.cluster_of(s) == rebuilt.cluster_of(t),
                    campaign.clustering.cluster_of(s) == campaign.clustering.cluster_of(t),
                );
            }
        }
    }

    #[test]
    fn route_diversity_guarantee() {
        // With max_removals = 2 the location phase alone guarantees at
        // least 3 distinct routes per source; count distinct catchments.
        let (ds, _) = small_dataset();
        let diversity = ds.distinct_catchments_per_source();
        assert!(!diversity.is_empty());
        let min = diversity.iter().min().copied().unwrap();
        assert!(min >= 2, "some source saw only {min} distinct catchments");
    }

    #[test]
    fn validation_catches_corruption() {
        let (ds, _) = small_dataset();
        let mut bad = ds.clone();
        bad.version = 99;
        assert!(matches!(
            bad.validate(),
            Err(DatasetError::UnsupportedVersion(99))
        ));
        let mut bad = ds.clone();
        bad.catchments.pop();
        assert!(matches!(bad.validate(), Err(DatasetError::Inconsistent(_))));
        let mut bad = ds;
        bad.tracked.push(AsIndex(1_000_000));
        assert!(matches!(bad.validate(), Err(DatasetError::Inconsistent(_))));
    }
}
