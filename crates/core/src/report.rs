//! Rendering helpers for the experiment harnesses: named series, aligned
//! text tables, and CSV export, so every figure binary prints the same
//! rows/axes the paper reports.

use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// A named (x, y) series, one figure line.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Data points in plot order.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Build from anything convertible to `f64` pairs.
    pub fn new<X: Into<f64> + Copy, Y: Into<f64> + Copy>(name: &str, points: &[(X, Y)]) -> Series {
        Series {
            name: name.to_string(),
            points: points.iter().map(|&(x, y)| (x.into(), y.into())).collect(),
        }
    }
}

/// Render series as CSV: `x,<name1>,<name2>,…` with one row per distinct
/// x value (missing values empty). Series need not share x grids.
pub fn to_csv(series: &[Series]) -> String {
    let mut xs: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.0))
        .collect();
    xs.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
    xs.dedup();
    let mut out = String::new();
    out.push('x');
    for s in series {
        out.push(',');
        out.push_str(&s.name.replace(',', ";"));
    }
    out.push('\n');
    for &x in &xs {
        let _ = write!(out, "{x}");
        for s in series {
            out.push(',');
            if let Some(p) = s.points.iter().find(|p| p.0 == x) {
                let _ = write!(out, "{}", p.1);
            }
        }
        out.push('\n');
    }
    out
}

/// Render an aligned text table with a header row.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let cols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (c, cell) in row.iter().enumerate().take(cols) {
            widths[c] = widths[c].max(cell.chars().count());
        }
    }
    let mut out = String::new();
    let render_row = |out: &mut String, cells: &[String]| {
        for (c, cell) in cells.iter().enumerate().take(cols) {
            if c > 0 {
                out.push_str("  ");
            }
            let _ = write!(out, "{:<width$}", cell, width = widths[c]);
        }
        while out.ends_with(' ') {
            out.pop();
        }
        out.push('\n');
    };
    render_row(
        &mut out,
        &headers.iter().map(|h| h.to_string()).collect::<Vec<_>>(),
    );
    let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
    render_row(&mut out, &sep);
    for row in rows {
        render_row(&mut out, row);
    }
    out
}

/// Render series as a fixed-size ASCII plot (rows × cols characters plus
/// axes), mapping each series to its own glyph. Intended for terminal
/// experiment output; log-scale the inputs yourself if needed.
pub fn ascii_plot(series: &[Series], cols: usize, rows: usize) -> String {
    const GLYPHS: [char; 8] = ['*', '+', 'o', 'x', '#', '@', '%', '&'];
    let points: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if points.is_empty() || cols < 2 || rows < 2 {
        return String::from("(no data)\n");
    }
    let (mut xmin, mut xmax) = (f64::INFINITY, f64::NEG_INFINITY);
    let (mut ymin, mut ymax) = (f64::INFINITY, f64::NEG_INFINITY);
    for &(x, y) in &points {
        xmin = xmin.min(x);
        xmax = xmax.max(x);
        ymin = ymin.min(y);
        ymax = ymax.max(y);
    }
    if xmax == xmin {
        xmax = xmin + 1.0;
    }
    if ymax == ymin {
        ymax = ymin + 1.0;
    }
    let mut grid = vec![vec![' '; cols]; rows];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            let cx = (((x - xmin) / (xmax - xmin)) * (cols - 1) as f64).round() as usize;
            let cy = (((y - ymin) / (ymax - ymin)) * (rows - 1) as f64).round() as usize;
            let row = rows - 1 - cy.min(rows - 1);
            grid[row][cx.min(cols - 1)] = glyph;
        }
    }
    let mut out = String::new();
    for (r, row) in grid.iter().enumerate() {
        if r == 0 {
            let _ = write!(out, "{:>10.3} |", ymax);
        } else if r == rows - 1 {
            let _ = write!(out, "{:>10.3} |", ymin);
        } else {
            out.push_str("           |");
        }
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str("           +");
    out.push_str(&"-".repeat(cols));
    out.push('\n');
    let _ = writeln!(
        out,
        "            {:<10.3}{:>width$.3}",
        xmin,
        xmax,
        width = cols.saturating_sub(10)
    );
    for (si, s) in series.iter().enumerate() {
        let _ = writeln!(out, "            {} {}", GLYPHS[si % GLYPHS.len()], s.name);
    }
    out
}

/// Downsample a long series to roughly `max_points` points, always keeping
/// the first and last (keeps figure output readable in a terminal).
pub fn downsample(points: &[(f64, f64)], max_points: usize) -> Vec<(f64, f64)> {
    if points.len() <= max_points || max_points < 2 {
        return points.to_vec();
    }
    let mut out = Vec::with_capacity(max_points);
    let step = (points.len() - 1) as f64 / (max_points - 1) as f64;
    for k in 0..max_points {
        let idx = (k as f64 * step).round() as usize;
        out.push(points[idx.min(points.len() - 1)]);
    }
    out.dedup_by(|a, b| a.0 == b.0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn csv_merges_x_grids() {
        let a = Series::new("a", &[(1.0, 10.0), (2.0, 20.0)]);
        let b = Series::new("b", &[(2.0, 200.0), (3.0, 300.0)]);
        let csv = to_csv(&[a, b]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "x,a,b");
        assert_eq!(lines[1], "1,10,");
        assert_eq!(lines[2], "2,20,200");
        assert_eq!(lines[3], "3,,300");
    }

    #[test]
    fn csv_escapes_commas_in_names() {
        let s = Series::new("a,b", &[(1.0, 1.0)]);
        assert!(to_csv(&[s]).starts_with("x,a;b\n"));
    }

    #[test]
    fn table_alignment() {
        let t = render_table(
            &["name", "count"],
            &[
                vec!["alpha".into(), "1".into()],
                vec!["b".into(), "10000".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines[0], "name   count");
        assert_eq!(lines[1], "-----  -----");
        assert_eq!(lines[2], "alpha  1");
        assert_eq!(lines[3], "b      10000");
    }

    #[test]
    fn downsample_keeps_endpoints() {
        let pts: Vec<(f64, f64)> = (0..100).map(|i| (i as f64, i as f64 * 2.0)).collect();
        let d = downsample(&pts, 10);
        assert!(d.len() <= 10);
        assert_eq!(d[0], (0.0, 0.0));
        assert_eq!(*d.last().unwrap(), (99.0, 198.0));
        // Short series pass through.
        assert_eq!(downsample(&pts[..5], 10), pts[..5].to_vec());
    }

    #[test]
    fn ascii_plot_renders_axes_and_legend() {
        let s = vec![
            Series::new("up", &[(0.0, 0.0), (10.0, 10.0)]),
            Series::new("flat", &[(0.0, 5.0), (10.0, 5.0)]),
        ];
        let plot = ascii_plot(&s, 40, 10);
        assert!(plot.contains('*'));
        assert!(plot.contains('+'));
        assert!(plot.contains("* up"));
        assert!(plot.contains("+ flat"));
        assert!(plot.contains("+----"));
        // 10 grid rows + axis + x labels + 2 legend lines.
        assert_eq!(plot.lines().count(), 14);
    }

    #[test]
    fn ascii_plot_degenerate_inputs() {
        assert_eq!(ascii_plot(&[], 40, 10), "(no data)\n");
        let s = vec![Series::new("dot", &[(1.0, 1.0)])];
        let plot = ascii_plot(&s, 20, 5);
        assert!(plot.contains('*'));
    }

    #[test]
    fn series_new_converts_ints() {
        let s = Series::new("n", &[(1u32, 2u32)]);
        assert_eq!(s.points, vec![(1.0, 2.0)]);
    }
}
