//! Prefix-hijack scenario analysis — the §VI application.
//!
//! "Our technique to generate configurations varying announcement
//! locations generates all possible scenarios of prefix hijacking from a
//! predefined set of announcement locations. Consider a configuration
//! announcing from n locations: each location can be considered a
//! legitimate announcement or an attempted hijack. Under this view, a
//! configuration announcing from n locations covers 2^n possible hijack
//! scenarios."
//!
//! Given the measured catchments of one configuration, this module
//! evaluates every assignment of announcement locations to
//! {legitimate, hijacker} and reports the fraction of the Internet the
//! hijacker would capture — the quantity same-prefix-length hijack studies
//! need.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use trackdown_bgp::{Catchments, LinkId};
use trackdown_topology::AsIndex;

/// One hijack scenario: which announcing links belong to the hijacker.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HijackScenario {
    /// Links announced by the legitimate origin.
    pub legitimate: BTreeSet<LinkId>,
    /// Links announced by the hijacker.
    pub hijacker: BTreeSet<LinkId>,
}

/// The impact of one scenario under one configuration's catchments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HijackImpact {
    /// The scenario evaluated.
    pub scenario: HijackScenario,
    /// Sources routed to hijacker links.
    pub captured: usize,
    /// Sources routed to legitimate links.
    pub retained: usize,
    /// Fraction of assigned sources captured by the hijacker.
    pub capture_fraction: f64,
}

/// Enumerate the `2^n − 2` non-trivial scenarios of a configuration
/// announcing from `links` (the all-legitimate and all-hijacker
/// assignments carry no information).
pub fn enumerate_scenarios(links: &BTreeSet<LinkId>) -> Vec<HijackScenario> {
    let ordered: Vec<LinkId> = links.iter().copied().collect();
    let n = ordered.len();
    assert!(n <= 16, "scenario enumeration limited to 16 links");
    let mut out = Vec::with_capacity((1usize << n).saturating_sub(2));
    for mask in 1..(1u32 << n) - 1 {
        let mut hijacker = BTreeSet::new();
        let mut legitimate = BTreeSet::new();
        for (bit, &l) in ordered.iter().enumerate() {
            if mask & (1 << bit) != 0 {
                hijacker.insert(l);
            } else {
                legitimate.insert(l);
            }
        }
        out.push(HijackScenario {
            legitimate,
            hijacker,
        });
    }
    out
}

/// Evaluate one scenario against measured catchments, optionally
/// restricted to a tracked source set (`None` = all assigned sources).
pub fn hijack_impact(
    catchments: &Catchments,
    scenario: &HijackScenario,
    tracked: Option<&[AsIndex]>,
) -> HijackImpact {
    let mut captured = 0usize;
    let mut retained = 0usize;
    let mut count = |link: LinkId| {
        if scenario.hijacker.contains(&link) {
            captured += 1;
        } else if scenario.legitimate.contains(&link) {
            retained += 1;
        }
    };
    match tracked {
        Some(set) => {
            for &s in set {
                if let Some(l) = catchments.get(s) {
                    count(l);
                }
            }
        }
        None => {
            for l in catchments.active_links() {
                let members = catchments.members(l).count();
                if scenario.hijacker.contains(&l) {
                    captured += members;
                } else if scenario.legitimate.contains(&l) {
                    retained += members;
                }
            }
        }
    }
    let total = captured + retained;
    HijackImpact {
        scenario: scenario.clone(),
        captured,
        retained,
        capture_fraction: if total == 0 {
            0.0
        } else {
            captured as f64 / total as f64
        },
    }
}

/// Longest-prefix-matching semantics for *sub-prefix* hijacks (§VI).
///
/// "This scenario, however, has a predictable outcome: the hijack is
/// guaranteed to attract all traffic as Internet routing follows
/// longest-prefix matching. A partial mitigation to subprefix hijacks is
/// to announce more specific routes."
///
/// Given the legitimate covering announcement's catchments and, when the
/// defender answers with an equally specific prefix, the competing
/// same-length catchments, compute the hijacker's capture fraction.
pub fn subprefix_hijack_impact(
    covering: &Catchments,
    defender_more_specific: Option<&Catchments>,
    scenario: &HijackScenario,
    tracked: Option<&[AsIndex]>,
) -> HijackImpact {
    match defender_more_specific {
        // Defender did not announce the /24-equivalent: LPM sends every
        // assigned source to the hijacker, regardless of catchments.
        None => {
            let assigned = match tracked {
                Some(set) => set.iter().filter(|&&s| covering.get(s).is_some()).count(),
                None => covering.assigned_count(),
            };
            HijackImpact {
                scenario: scenario.clone(),
                captured: assigned,
                retained: 0,
                capture_fraction: if assigned == 0 { 0.0 } else { 1.0 },
            }
        }
        // Defender matched the prefix length: competition reverts to
        // plain catchment competition on the more-specific prefix.
        Some(competing) => hijack_impact(competing, scenario, tracked),
    }
}

/// Evaluate every scenario of a configuration; returns impacts sorted by
/// capture fraction descending (worst case first).
pub fn all_impacts(
    catchments: &Catchments,
    links: &BTreeSet<LinkId>,
    tracked: Option<&[AsIndex]>,
) -> Vec<HijackImpact> {
    let mut out: Vec<HijackImpact> = enumerate_scenarios(links)
        .iter()
        .map(|s| hijack_impact(catchments, s, tracked))
        .collect();
    out.sort_by(|a, b| {
        b.capture_fraction
            .partial_cmp(&a.capture_fraction)
            .expect("no NaN")
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catchments(assignment: &[u8]) -> Catchments {
        let mut c = Catchments::unassigned(assignment.len());
        for (i, &l) in assignment.iter().enumerate() {
            c.set(AsIndex(i as u32), Some(LinkId(l)));
        }
        c
    }

    fn links(n: u8) -> BTreeSet<LinkId> {
        (0..n).map(LinkId).collect()
    }

    #[test]
    fn scenario_enumeration_counts() {
        assert_eq!(enumerate_scenarios(&links(2)).len(), 2);
        assert_eq!(enumerate_scenarios(&links(3)).len(), 6);
        assert_eq!(enumerate_scenarios(&links(4)).len(), 14);
        for s in enumerate_scenarios(&links(3)) {
            assert!(!s.hijacker.is_empty());
            assert!(!s.legitimate.is_empty());
            assert_eq!(s.hijacker.len() + s.legitimate.len(), 3);
        }
    }

    #[test]
    fn impact_counts_catchment_members() {
        // 6 sources: 3 on link 0, 2 on link 1, 1 on link 2.
        let c = catchments(&[0, 0, 0, 1, 1, 2]);
        let scenario = HijackScenario {
            legitimate: [LinkId(0)].into_iter().collect(),
            hijacker: [LinkId(1), LinkId(2)].into_iter().collect(),
        };
        let impact = hijack_impact(&c, &scenario, None);
        assert_eq!(impact.captured, 3);
        assert_eq!(impact.retained, 3);
        assert!((impact.capture_fraction - 0.5).abs() < 1e-9);
    }

    #[test]
    fn tracked_restriction() {
        let c = catchments(&[0, 0, 1, 1]);
        let scenario = HijackScenario {
            legitimate: [LinkId(0)].into_iter().collect(),
            hijacker: [LinkId(1)].into_iter().collect(),
        };
        let tracked = [AsIndex(0), AsIndex(2)];
        let impact = hijack_impact(&c, &scenario, Some(&tracked));
        assert_eq!(impact.captured, 1);
        assert_eq!(impact.retained, 1);
    }

    #[test]
    fn worst_case_first() {
        let c = catchments(&[0, 1, 1, 1]);
        let impacts = all_impacts(&c, &links(2), None);
        assert_eq!(impacts.len(), 2);
        // Hijacking link 1 captures 3/4; hijacking link 0 captures 1/4.
        assert!((impacts[0].capture_fraction - 0.75).abs() < 1e-9);
        assert!(impacts[0].scenario.hijacker.contains(&LinkId(1)));
        assert!((impacts[1].capture_fraction - 0.25).abs() < 1e-9);
    }

    #[test]
    fn empty_catchments_zero_impact() {
        let c = Catchments::unassigned(4);
        let scenario = HijackScenario {
            legitimate: [LinkId(0)].into_iter().collect(),
            hijacker: [LinkId(1)].into_iter().collect(),
        };
        let impact = hijack_impact(&c, &scenario, None);
        assert_eq!(impact.capture_fraction, 0.0);
        assert_eq!(impact.captured + impact.retained, 0);
    }

    #[test]
    fn subprefix_hijack_lpm_semantics() {
        let covering = catchments(&[0, 0, 1, 1]);
        let scenario = HijackScenario {
            legitimate: [LinkId(0)].into_iter().collect(),
            hijacker: [LinkId(1)].into_iter().collect(),
        };
        // Without a defensive more-specific, LPM gives the hijacker 100%.
        let unmitigated = subprefix_hijack_impact(&covering, None, &scenario, None);
        assert_eq!(unmitigated.capture_fraction, 1.0);
        assert_eq!(unmitigated.captured, 4);
        // With the defender matching the prefix length, the outcome is the
        // ordinary catchment competition again.
        let competing = catchments(&[0, 0, 0, 1]);
        let mitigated = subprefix_hijack_impact(&covering, Some(&competing), &scenario, None);
        assert!((mitigated.capture_fraction - 0.25).abs() < 1e-9);
        // Tracked restriction applies to the unmitigated case too.
        let tracked = [AsIndex(0)];
        let small = subprefix_hijack_impact(&covering, None, &scenario, Some(&tracked));
        assert_eq!(small.captured, 1);
        // Degenerate: nothing assigned.
        let empty = Catchments::unassigned(4);
        let none = subprefix_hijack_impact(&empty, None, &scenario, None);
        assert_eq!(none.capture_fraction, 0.0);
    }

    #[test]
    fn end_to_end_hijack_study() {
        use trackdown_bgp::{BgpEngine, EngineConfig, LinkAnnouncement, OriginAs};
        use trackdown_topology::gen::{generate, TopologyConfig};
        let g = generate(&TopologyConfig::small(71));
        let origin = OriginAs::peering_style(&g, 4);
        let engine = BgpEngine::new(&g.topology, &EngineConfig::default());
        let anns: Vec<_> = origin.link_ids().map(LinkAnnouncement::plain).collect();
        let out = engine.propagate_config(&origin, &anns, 200).unwrap();
        let cat = trackdown_bgp::Catchments::from_control_plane(&out);
        let all: BTreeSet<LinkId> = origin.link_ids().collect();
        let impacts = all_impacts(&cat, &all, None);
        assert_eq!(impacts.len(), 14); // 2^4 - 2
                                       // Capture fractions are complementary for complementary scenarios.
        let total: f64 = impacts.iter().map(|i| i.capture_fraction).sum();
        assert!(
            (total - 7.0).abs() < 1e-6,
            "pairs must sum to 1 each: {total}"
        );
    }
}
