//! The end-to-end localization pipeline: deploy configurations, obtain
//! catchments (true or measured), refine clusters, and correlate spoofed
//! traffic volumes to rank suspect clusters.

use crate::cluster::{ClusterSplit, Clustering, RefineDelta};
use crate::config::AnnouncementConfig;
use crate::schedule::warm_start_order;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use trackdown_bgp::{BgpEngine, Catchments, LinkId, OriginAs, RoutingOutcome, SnapshotDetail};
use trackdown_measure::{
    analysis_set, impute_visibility, ImputationStats, MeasuredCatchments, MeasurementPlane,
};
use trackdown_obs::{CampaignRecorder, EpochMode, EpochRecord};
use trackdown_topology::AsIndex;
use trackdown_traffic::VolumeAccumulator;

/// How catchments are obtained for each configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CatchmentSource {
    /// Ground-truth control-plane catchments (oracle; isolates the
    /// algorithms from measurement noise).
    ControlPlane,
    /// Ground-truth data-plane catchments (what traffic actually does).
    DataPlane,
    /// Measured through the observation plane with §IV-d visibility
    /// imputation.
    Measured,
}

/// How the campaign executor drives the BGP engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum CampaignMode {
    /// Warm-start epoch reuse: one persistent routing session per worker
    /// deploys configurations as epoch transitions in footprint-distance
    /// order, with a memo cache that skips duplicate footprints. Results
    /// are identical to [`CampaignMode::Cold`]: Gao-Rexford fixpoints are
    /// unique, and on engines with policy violators (where stable states
    /// are *not* unique) the session transparently cold-starts each
    /// deployment instead of reusing the epoch — see
    /// [`trackdown_bgp::CampaignSession::warm_reuse`]. Only wall-clock
    /// time may differ from `Cold`, never the campaign.
    Warm,
    /// Cold start: every configuration propagates from empty RIBs in
    /// schedule order — the original executor, kept as the oracle the
    /// differential tests compare against.
    Cold,
    /// Delta propagation: like [`CampaignMode::Warm`] (same deployment
    /// order, memo cache, and violator gate), but each epoch transition
    /// diffs the incoming announcement against the previous one, seeds
    /// only providers whose injection changed, and propagates with
    /// rank-ordered scheduling — epoch cost tracks routes actually
    /// disturbed instead of topology size. Control-plane catchments are
    /// patched incrementally from the epoch's change log. Results are
    /// identical to `Warm` and `Cold` (the three-way differential suite
    /// in `tests/delta_differential.rs` is the proof obligation).
    Delta,
}

/// Executor counters reported alongside a [`Campaign`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CampaignStats {
    /// Which executor produced the campaign.
    pub mode: CampaignMode,
    /// Fixpoint computations actually run (≤ number of configurations
    /// when the memo cache hits).
    pub propagations: usize,
    /// Configurations served from the footprint memo cache without
    /// touching the engine.
    pub memo_hits: usize,
    /// Warm epochs that hit the event cap and were redone cold.
    pub cold_restarts: usize,
    /// Worker threads used.
    pub threads: usize,
    /// High-water node count of the interned path arena (max over
    /// workers): the steady-state memory footprint of warm reuse.
    pub peak_arena_nodes: usize,
    /// Catchment-extraction shards used (1 = whole-topology extraction).
    pub shards: usize,
    /// Node count of the canonical arena obtained by merging every
    /// worker's path arena after a sharded campaign (0 for the other
    /// executors). Shared AS-path prefixes intern to the same node, so
    /// this stays close to `peak_arena_nodes` rather than growing with
    /// the worker count — the memory bound DESIGN.md §4f relies on.
    pub merged_arena_nodes: usize,
    /// Sum over deployed epochs of the ASes whose best route differs from
    /// the previous epoch's fixpoint (memo hits contribute 0) — the
    /// workload [`CampaignMode::Delta`] makes epoch cost proportional to.
    pub routes_disturbed: usize,
    /// Total propagation events (per-AS decide/export activations) across
    /// every deployed epoch. Deterministic for a fixed scenario and mode,
    /// so warm/delta event ratios are comparable across machines — the
    /// work-unit metric the bench snapshot's `delta_speedup` reports.
    pub events: usize,
    /// Steal attempts by the sharded executor that found the queue empty
    /// (0 for the other executors). A high count relative to
    /// `campaign.shard_steals` means workers spin on an empty queue —
    /// the contention signature behind `large_shard_speedup < 1`.
    pub shard_steal_fails: usize,
    /// Per-worker busy time (µs inside produce/extract/steal/merge work)
    /// for the sharded executor; empty for the other executors and in
    /// deterministic runs (wall-clock must not leak there).
    pub worker_busy_us: Vec<u64>,
    /// Per-worker idle time (µs spent waiting on the task queue);
    /// parallel to `worker_busy_us`.
    pub worker_idle_us: Vec<u64>,
}

impl Default for CampaignStats {
    fn default() -> CampaignStats {
        CampaignStats {
            mode: CampaignMode::Warm,
            propagations: 0,
            memo_hits: 0,
            cold_restarts: 0,
            threads: 1,
            peak_arena_nodes: 0,
            shards: 1,
            merged_arena_nodes: 0,
            routes_disturbed: 0,
            events: 0,
            shard_steal_fails: 0,
            worker_busy_us: Vec::new(),
            worker_idle_us: Vec::new(),
        }
    }
}

/// Per-configuration snapshot recorded while a campaign runs.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ConfigRecord {
    /// Mean cluster size after this configuration.
    pub mean_cluster_size: f64,
    /// 90th-percentile cluster size after this configuration.
    pub p90_cluster_size: usize,
    /// Number of clusters after this configuration.
    pub num_clusters: usize,
    /// Whether propagation converged.
    pub converged: bool,
}

/// The refinement history of a campaign, indexed for incremental
/// attribution: one [`RefineDelta`] per configuration, recording how the
/// partition evolved (old→new cluster mapping, per-cluster catchment
/// link, split log).
///
/// This is what lets [`rank_suspects`], [`estimate_cluster_volumes`] and
/// [`match_fraction_scores`] walk cluster *lineages* — inheriting each
/// parent's accumulated volume bound across splits — instead of rescanning
/// every catchment per final cluster the way the `*_rescan` references do.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct AttributionIndex {
    /// Clusters before the first refinement (1, or 0 when nothing is
    /// tracked).
    initial_clusters: u32,
    /// One delta per configuration, in schedule order.
    deltas: Vec<RefineDelta>,
    /// `1 + max(link id)` over every catchment link a tracked cluster
    /// landed on — the minimum width a per-configuration volume vector
    /// must have for attribution to read it without fabricating zeros.
    num_links: usize,
}

impl AttributionIndex {
    /// Assemble an index from the deltas of a refinement run.
    pub fn new(initial_clusters: u32, deltas: Vec<RefineDelta>) -> AttributionIndex {
        let num_links = deltas
            .iter()
            .flat_map(|d| d.link_of.iter().flatten())
            .map(|l| l.us() + 1)
            .max()
            .unwrap_or(0);
        AttributionIndex {
            initial_clusters,
            deltas,
            num_links,
        }
    }

    /// Refine `tracked` over `catchments` in schedule order, returning the
    /// final partition together with its attribution index — the
    /// standalone analog of what campaign assembly does.
    pub fn build(
        tracked: Vec<AsIndex>,
        catchments: &[Catchments],
    ) -> (Clustering, AttributionIndex) {
        let mut clustering = Clustering::single(tracked);
        let initial = clustering.num_clusters() as u32;
        let deltas = catchments
            .iter()
            .map(|cat| clustering.refine_logged(cat))
            .collect();
        (clustering, AttributionIndex::new(initial, deltas))
    }

    /// Number of configurations indexed.
    pub fn num_configs(&self) -> usize {
        self.deltas.len()
    }

    /// Minimum width of a per-configuration link-volume vector: one entry
    /// per link id up to the largest any tracked cluster was routed to.
    pub fn num_links(&self) -> usize {
        self.num_links
    }

    /// Number of clusters after the final configuration.
    pub fn final_num_clusters(&self) -> usize {
        self.deltas
            .last()
            .map(|d| d.num_clusters())
            .unwrap_or(self.initial_clusters as usize)
    }

    /// The full delta of configuration `k`.
    pub fn delta(&self, k: usize) -> &RefineDelta {
        &self.deltas[k]
    }

    /// The split log of configuration `k`: which clusters split, into
    /// what.
    pub fn split_log(&self, k: usize) -> &[ClusterSplit] {
        &self.deltas[k].splits
    }

    /// Total number of splits across the whole campaign.
    pub fn total_splits(&self) -> usize {
        self.deltas.iter().map(|d| d.splits.len()).sum()
    }

    /// Reconstruct, for every *final* cluster, the catchment link it (that
    /// is, its ancestor at the time) was routed to in each configuration —
    /// by walking parent chains backward through the deltas. O(final
    /// clusters × configurations), no catchment lookups.
    pub fn final_links(&self) -> Vec<Vec<Option<LinkId>>> {
        let kk = self.deltas.len();
        let final_n = self.final_num_clusters();
        let mut rows: Vec<Vec<Option<LinkId>>> = vec![vec![None; kk]; final_n];
        let mut anc: Vec<u32> = (0..final_n as u32).collect();
        for k in (0..kk).rev() {
            let d = &self.deltas[k];
            for (c, row) in rows.iter_mut().enumerate() {
                let a = anc[c] as usize;
                row[k] = d.link_of[a];
                anc[c] = d.parent_of[a];
            }
        }
        rows
    }
}

/// The result of deploying a configuration schedule.
#[derive(Debug, Clone)]
pub struct Campaign {
    /// The deployed configurations, in order.
    pub configs: Vec<AnnouncementConfig>,
    /// Catchments per configuration (over all ASes; restricted to the
    /// tracked set during clustering).
    pub catchments: Vec<Catchments>,
    /// The tracked sources (everything reachable/observed at baseline).
    pub tracked: Vec<AsIndex>,
    /// Final clustering.
    pub clustering: Clustering,
    /// Refinement history indexed for incremental attribution.
    pub attribution: AttributionIndex,
    /// Per-configuration progress (Figure 4's series).
    pub records: Vec<ConfigRecord>,
    /// Visibility-imputation statistics (measured campaigns only).
    pub imputation: Option<ImputationStats>,
    /// Executor counters (mode, propagations, memo hits).
    pub stats: CampaignStats,
}

/// Deploy every configuration and cluster the catchments.
///
/// The tracked-source rule follows §IV-d: sources covered by the *first*
/// configuration (the full anycast baseline) are tracked; for measured
/// campaigns, missing observations in later configurations are imputed
/// via `smax` before clustering.
pub fn run_campaign(
    engine: &BgpEngine<'_>,
    origin: &OriginAs,
    configs: &[AnnouncementConfig],
    source: CatchmentSource,
    plane: Option<&MeasurementPlane>,
    max_events_factor: usize,
) -> Campaign {
    run_campaign_mode(
        engine,
        origin,
        configs,
        source,
        plane,
        max_events_factor,
        CampaignMode::Warm,
    )
}

/// Extract the requested ground-truth catchments from a routing outcome.
fn extract_catchments(source: CatchmentSource, outcome: &RoutingOutcome) -> Catchments {
    match source {
        CatchmentSource::ControlPlane => Catchments::from_control_plane(outcome),
        CatchmentSource::DataPlane => Catchments::from_data_plane(outcome),
        CatchmentSource::Measured => {
            unreachable!("measured catchments come from the observation plane")
        }
    }
}

/// Cluster the catchments and assemble the final [`Campaign`] — the tail
/// shared by every executor. Refinement runs in schedule (index) order,
/// so campaigns are identical however the executor ordered deployments.
fn assemble_campaign(
    configs: &[AnnouncementConfig],
    catchments: Vec<Catchments>,
    converged: Vec<bool>,
    tracked: Vec<AsIndex>,
    imputation: Option<ImputationStats>,
    stats: CampaignStats,
) -> Campaign {
    let _span = trackdown_obs::span("campaign.cluster");
    trackdown_obs::counter!("campaign.runs").inc();
    trackdown_obs::counter!("campaign.propagations").add(stats.propagations as u64);
    trackdown_obs::counter!("campaign.memo_hits").add(stats.memo_hits as u64);
    trackdown_obs::counter!("campaign.cold_restarts").add(stats.cold_restarts as u64);
    let mut clustering = Clustering::single(tracked.clone());
    let initial_clusters = clustering.num_clusters() as u32;
    let mut deltas = Vec::with_capacity(configs.len());
    let mut records = Vec::with_capacity(configs.len());
    for (k, cat) in catchments.iter().enumerate() {
        deltas.push(clustering.refine_logged(cat));
        let cstats = clustering.stats();
        records.push(ConfigRecord {
            mean_cluster_size: clustering.mean_size(),
            p90_cluster_size: cstats.p90,
            num_clusters: clustering.num_clusters(),
            converged: converged[k],
        });
    }
    Campaign {
        configs: configs.to_vec(),
        catchments,
        tracked,
        clustering,
        attribution: AttributionIndex::new(initial_clusters, deltas),
        records,
        imputation,
        stats,
    }
}

/// [`run_campaign`] with an explicit executor mode.
///
/// `Warm` deploys through one persistent [`trackdown_bgp::CampaignSession`]
/// in [`warm_start_order`] (greedy footprint-distance chaining), skipping
/// duplicate footprints via a memo cache keyed by the canonical ⟨A;P;Q⟩
/// footprint. `Cold` propagates every configuration from empty RIBs in
/// schedule order. Both produce byte-identical campaigns: catchments and
/// convergence flags depend only on each configuration's fixpoint (the
/// session cold-starts internally on violator engines, where fixpoints
/// are history-dependent), results are stored by schedule index, and
/// clustering always refines in schedule order. The memo cache is sound
/// either way — identical footprints lower to identical injections, and
/// each deployment's outcome is a pure function of its injections.
/// The memo cache is disabled for `Measured` campaigns
/// (the observation plane salts its noise by schedule index, so duplicate
/// footprints still measure differently), but the warm session still
/// skips most convergence work.
pub fn run_campaign_mode(
    engine: &BgpEngine<'_>,
    origin: &OriginAs,
    configs: &[AnnouncementConfig],
    source: CatchmentSource,
    plane: Option<&MeasurementPlane>,
    max_events_factor: usize,
    mode: CampaignMode,
) -> Campaign {
    run_campaign_recorded(
        engine,
        origin,
        configs,
        source,
        plane,
        max_events_factor,
        mode,
        None,
    )
}

/// [`run_campaign_mode`] with an optional [`CampaignRecorder`] collecting
/// one [`EpochRecord`] per configuration for the JSONL run manifest. The
/// recorder only *reads* each deployment's outcome after the fact, so it
/// cannot perturb the campaign; with `None` it costs nothing.
#[allow(clippy::too_many_arguments)]
pub fn run_campaign_recorded(
    engine: &BgpEngine<'_>,
    origin: &OriginAs,
    configs: &[AnnouncementConfig],
    source: CatchmentSource,
    plane: Option<&MeasurementPlane>,
    max_events_factor: usize,
    mode: CampaignMode,
    recorder: Option<&CampaignRecorder>,
) -> Campaign {
    assert!(!configs.is_empty(), "empty schedule");
    let _span = trackdown_obs::span("campaign.run");
    let topo = engine.topology();
    let n = configs.len();
    let mut catchments_by_k: Vec<Option<Catchments>> = vec![None; n];
    let mut converged_by_k: Vec<Option<bool>> = vec![None; n];
    let mut measured_by_k: Vec<Option<MeasuredCatchments>> = (0..n).map(|_| None).collect();
    let order = match mode {
        CampaignMode::Warm | CampaignMode::Delta => warm_start_order(configs),
        CampaignMode::Cold => (0..n).collect(),
    };
    let mut session = engine.session();
    let mut memo: HashMap<String, usize> = HashMap::new();
    let mut stats = CampaignStats {
        mode,
        ..CampaignStats::default()
    };
    // Delta mode patches control-plane catchments from the epoch change
    // log instead of re-extracting: index of the last *deployed* (not
    // memo-replayed) epoch whose catchments can serve as the patch base.
    let mut last_deployed: Option<usize> = None;
    for &k in &order {
        let cfg = &configs[k];
        cfg.validate(origin).expect("invalid configuration");
        let memo_key = match (mode, source) {
            (
                CampaignMode::Warm | CampaignMode::Delta,
                CatchmentSource::ControlPlane | CatchmentSource::DataPlane,
            ) => Some(cfg.footprint_key()),
            _ => None,
        };
        if let Some(key) = &memo_key {
            if let Some(&j) = memo.get(key) {
                stats.memo_hits += 1;
                catchments_by_k[k] = catchments_by_k[j].clone();
                converged_by_k[k] = converged_by_k[j];
                if let Some(rec) = recorder {
                    rec.record(EpochRecord {
                        epoch: k,
                        footprint: key.clone(),
                        mode: EpochMode::Memo,
                        thread: 0,
                        events: 0,
                        rounds: 0,
                        changes: 0,
                        routes_disturbed: 0,
                        converged: converged_by_k[k].expect("memo entry deployed"),
                        wall_us: None,
                    });
                }
                continue;
            }
        }
        let timer = recorder.and_then(|r| r.start_timer());
        // Only measured campaigns read path contents (BGP feed collection);
        // everything else gets the cheap Catchments-detail snapshot.
        let detail = match source {
            CatchmentSource::Measured => SnapshotDetail::Full,
            _ => SnapshotDetail::Catchments,
        };
        let outcome = match mode {
            CampaignMode::Warm => session.deploy_config_detailed(
                origin,
                &cfg.to_link_announcements(),
                max_events_factor,
                detail,
            ),
            CampaignMode::Delta => session.deploy_config_delta_detailed(
                origin,
                &cfg.to_link_announcements(),
                max_events_factor,
                detail,
            ),
            CampaignMode::Cold => engine.propagate_config_detailed(
                origin,
                &cfg.to_link_announcements(),
                max_events_factor,
                detail,
            ),
        }
        .expect("validated configuration");
        if let Some(rec) = recorder {
            let epoch_mode = match mode {
                CampaignMode::Warm if session.last_deploy_warm() => EpochMode::Warm,
                CampaignMode::Delta if session.last_deploy_warm() => EpochMode::Delta,
                _ => EpochMode::Cold,
            };
            rec.record(EpochRecord {
                epoch: k,
                footprint: memo_key.clone().unwrap_or_else(|| cfg.footprint_key()),
                mode: epoch_mode,
                thread: 0,
                events: outcome.events,
                rounds: outcome.rounds,
                changes: outcome.changes.len(),
                routes_disturbed: outcome.routes_disturbed,
                converged: outcome.converged,
                wall_us: rec.elapsed_us(timer),
            });
        }
        stats.propagations += 1;
        stats.routes_disturbed += outcome.routes_disturbed;
        stats.events += outcome.events;
        converged_by_k[k] = Some(outcome.converged);
        match source {
            CatchmentSource::Measured => {
                let plane = plane.expect("Measured campaigns need a MeasurementPlane");
                measured_by_k[k] = Some(plane.measure(topo, &outcome, origin.asn, k as u64));
            }
            _ => {
                // A delta epoch's change log lists exactly the ASes whose
                // best route moved, so the previous control-plane
                // catchments patch forward in O(changes). Data-plane
                // catchments still need a full walk: a hop change can
                // reroute sources whose own best route is untouched.
                let patched = if mode == CampaignMode::Delta
                    && source == CatchmentSource::ControlPlane
                    && session.last_deploy_warm()
                {
                    last_deployed.map(|j| {
                        let mut c = catchments_by_k[j]
                            .clone()
                            .expect("deployed epoch extracted");
                        for ch in &outcome.changes {
                            c.set(ch.at, ch.ingress);
                        }
                        c
                    })
                } else {
                    None
                };
                catchments_by_k[k] =
                    Some(patched.unwrap_or_else(|| extract_catchments(source, &outcome)));
                last_deployed = Some(k);
            }
        }
        if let Some(key) = memo_key {
            memo.insert(key, k);
        }
    }
    stats.cold_restarts = session.cold_restarts();
    stats.peak_arena_nodes = session.peak_arena_nodes();
    let converged: Vec<bool> = converged_by_k
        .into_iter()
        .map(|c| c.expect("every configuration deployed"))
        .collect();
    let (catchments, tracked, imputation) = match source {
        CatchmentSource::Measured => {
            let mut measured: Vec<MeasuredCatchments> = measured_by_k
                .into_iter()
                .map(|m| m.expect("every configuration measured"))
                .collect();
            let istats = impute_visibility(&mut measured, 0);
            let tracked = analysis_set(&measured, 0);
            let catchments = measured.into_iter().map(|m| m.catchments).collect();
            (catchments, tracked, Some(istats))
        }
        _ => {
            let catchments: Vec<Catchments> = catchments_by_k
                .into_iter()
                .map(|c| c.expect("every configuration deployed"))
                .collect();
            // Track every source the baseline reaches.
            let tracked: Vec<AsIndex> = topo
                .indices()
                .filter(|&i| catchments[0].is_assigned(i))
                .collect();
            (catchments, tracked, None)
        }
    };
    assemble_campaign(configs, catchments, converged, tracked, imputation, stats)
}

/// Parallel variant of [`run_campaign`]: configurations are independent,
/// so their propagations run on `threads` OS threads (scoped; no
/// dependencies beyond the shared read-only engine). Results are
/// identical to the sequential version — order, catchments, clustering —
/// because outputs are collected by configuration index.
///
/// This is also the simulation analog of the paper's §V-C speed-up of
/// deploying multiple configurations *concurrently on multiple prefixes*:
/// wall-clock time divides by the number of prefixes (threads) while the
/// information gathered is unchanged.
pub fn run_campaign_parallel(
    engine: &BgpEngine<'_>,
    origin: &OriginAs,
    configs: &[AnnouncementConfig],
    source: CatchmentSource,
    max_events_factor: usize,
    threads: usize,
) -> Campaign {
    run_campaign_parallel_mode(
        engine,
        origin,
        configs,
        source,
        max_events_factor,
        threads,
        CampaignMode::Warm,
    )
}

/// [`run_campaign_parallel`] with an explicit executor mode.
///
/// Each worker owns one persistent warm session (and its own memo cache)
/// over one contiguous chunk of the schedule, reordering deployments
/// *within the chunk* by footprint distance. Chunk boundaries, the
/// stored-by-index results, and the schedule-order clustering make the
/// campaign independent of the thread count and identical to the
/// sequential executors — only `stats` (per-worker counters summed) can
/// differ across thread counts, because memo hits do not cross chunks.
pub fn run_campaign_parallel_mode(
    engine: &BgpEngine<'_>,
    origin: &OriginAs,
    configs: &[AnnouncementConfig],
    source: CatchmentSource,
    max_events_factor: usize,
    threads: usize,
    mode: CampaignMode,
) -> Campaign {
    run_campaign_parallel_recorded(
        engine,
        origin,
        configs,
        source,
        max_events_factor,
        threads,
        mode,
        None,
    )
}

/// [`run_campaign_parallel_mode`] with an optional [`CampaignRecorder`].
///
/// Workers record epochs in completion order from their own threads;
/// the recorder re-sorts by schedule index on
/// [`CampaignRecorder::take_records`], and no instrumentation value
/// flows back into the campaign, so results stay identical across
/// thread counts with or without a recorder attached (the 1/2/8-thread
/// invariance golden runs with one attached). Per-epoch counters
/// (`events`, `rounds`, `changes`) describe each worker's *own* warm
/// chain and therefore legitimately vary with the chunking — only the
/// campaign itself is thread-invariant.
#[allow(clippy::too_many_arguments)]
pub fn run_campaign_parallel_recorded(
    engine: &BgpEngine<'_>,
    origin: &OriginAs,
    configs: &[AnnouncementConfig],
    source: CatchmentSource,
    max_events_factor: usize,
    threads: usize,
    mode: CampaignMode,
    recorder: Option<&CampaignRecorder>,
) -> Campaign {
    assert!(!configs.is_empty(), "empty schedule");
    assert!(
        source != CatchmentSource::Measured,
        "measured campaigns are sequential (the observation plane salts by deployment order)"
    );
    let _span = trackdown_obs::span("campaign.run");
    let topo = engine.topology();
    let threads = threads.max(1);
    let chunk_size = configs.len().div_ceil(threads);
    let mut results: Vec<Option<(Catchments, bool)>> = vec![None; configs.len()];
    let mut stats = CampaignStats {
        mode,
        threads: configs.chunks(chunk_size).len(),
        ..CampaignStats::default()
    };
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (t, chunk) in configs.chunks(chunk_size).enumerate() {
            let base = t * chunk_size;
            handles.push(scope.spawn(move || {
                let order: Vec<usize> = match mode {
                    CampaignMode::Warm | CampaignMode::Delta => warm_start_order(chunk),
                    CampaignMode::Cold => (0..chunk.len()).collect(),
                };
                let mut session = engine.session();
                let mut memo: HashMap<String, usize> = HashMap::new();
                let mut local: Vec<Option<(Catchments, bool)>> = vec![None; chunk.len()];
                let mut propagations = 0usize;
                let mut memo_hits = 0usize;
                let mut disturbed = 0usize;
                let mut events = 0usize;
                // Patch base for delta control-plane extraction: the last
                // epoch this worker actually deployed (memo hits replay).
                let mut last_deployed: Option<usize> = None;
                for &off in &order {
                    let cfg = &chunk[off];
                    cfg.validate(origin).expect("invalid configuration");
                    if matches!(mode, CampaignMode::Warm | CampaignMode::Delta) {
                        let key = cfg.footprint_key();
                        if let Some(&j) = memo.get(&key) {
                            memo_hits += 1;
                            local[off] = local[j].clone();
                            if let Some(rec) = recorder {
                                rec.record(EpochRecord {
                                    epoch: base + off,
                                    footprint: key,
                                    mode: EpochMode::Memo,
                                    thread: t,
                                    events: 0,
                                    rounds: 0,
                                    changes: 0,
                                    routes_disturbed: 0,
                                    converged: local[off].as_ref().expect("memo entry deployed").1,
                                    wall_us: None,
                                });
                            }
                            continue;
                        }
                        memo.insert(key, off);
                    }
                    let timer = recorder.and_then(|r| r.start_timer());
                    let outcome = match mode {
                        CampaignMode::Warm => session.deploy_config(
                            origin,
                            &cfg.to_link_announcements(),
                            max_events_factor,
                        ),
                        CampaignMode::Delta => session.deploy_config_delta(
                            origin,
                            &cfg.to_link_announcements(),
                            max_events_factor,
                        ),
                        CampaignMode::Cold => engine.propagate_config(
                            origin,
                            &cfg.to_link_announcements(),
                            max_events_factor,
                        ),
                    }
                    .expect("validated configuration");
                    if let Some(rec) = recorder {
                        let epoch_mode = match mode {
                            CampaignMode::Warm if session.last_deploy_warm() => EpochMode::Warm,
                            CampaignMode::Delta if session.last_deploy_warm() => EpochMode::Delta,
                            _ => EpochMode::Cold,
                        };
                        rec.record(EpochRecord {
                            epoch: base + off,
                            footprint: cfg.footprint_key(),
                            mode: epoch_mode,
                            thread: t,
                            events: outcome.events,
                            rounds: outcome.rounds,
                            changes: outcome.changes.len(),
                            routes_disturbed: outcome.routes_disturbed,
                            converged: outcome.converged,
                            wall_us: rec.elapsed_us(timer),
                        });
                    }
                    propagations += 1;
                    disturbed += outcome.routes_disturbed;
                    events += outcome.events;
                    // Same incremental patch as the sequential executor:
                    // the change log is exactly the set of moved routes.
                    let patched = if mode == CampaignMode::Delta
                        && source == CatchmentSource::ControlPlane
                        && session.last_deploy_warm()
                    {
                        last_deployed.map(|j| {
                            let mut c = local[j].clone().expect("deployed epoch extracted").0;
                            for ch in &outcome.changes {
                                c.set(ch.at, ch.ingress);
                            }
                            c
                        })
                    } else {
                        None
                    };
                    local[off] = Some((
                        patched.unwrap_or_else(|| extract_catchments(source, &outcome)),
                        outcome.converged,
                    ));
                    last_deployed = Some(off);
                }
                (
                    base,
                    local,
                    propagations,
                    memo_hits,
                    disturbed,
                    events,
                    session.cold_restarts(),
                    session.peak_arena_nodes(),
                )
            }));
        }
        for h in handles {
            let (
                base,
                local,
                propagations,
                memo_hits,
                disturbed,
                events,
                cold_restarts,
                peak_arena,
            ) = h.join().expect("worker panicked");
            for (off, r) in local.into_iter().enumerate() {
                results[base + off] = r;
            }
            stats.propagations += propagations;
            stats.memo_hits += memo_hits;
            stats.routes_disturbed += disturbed;
            stats.events += events;
            stats.cold_restarts += cold_restarts;
            // Per-worker arenas: the campaign's footprint is the largest
            // single arena, not the sum.
            stats.peak_arena_nodes = stats.peak_arena_nodes.max(peak_arena);
        }
    });
    let mut catchments = Vec::with_capacity(configs.len());
    let mut converged = Vec::with_capacity(configs.len());
    for r in results {
        let (cat, conv) = r.expect("every configuration processed");
        catchments.push(cat);
        converged.push(conv);
    }
    let tracked: Vec<AsIndex> = topo
        .indices()
        .filter(|&i| catchments[0].is_assigned(i))
        .collect();
    assemble_campaign(configs, catchments, converged, tracked, None, stats)
}

/// Partition of the AS index space into contiguous, equal-width shards
/// for catchment extraction.
///
/// The plan is a pure function of `(num_ases, num_shards)`: the chunk
/// width is `⌈n/k⌉` rounded up to a multiple of 64 so every shard
/// boundary is u64-word-aligned in the bitset catchment rows (the
/// [`trackdown_bgp::Catchments::assemble`] merge then ORs whole words
/// instead of shifting across word boundaries). The effective shard
/// count is recomputed from the rounded chunk, so no shard is ever
/// empty. Because shards slice the *extraction* of each configuration's
/// fixpoint — never the propagation itself — the assembled catchments
/// are bit-identical for every shard count, which is what lets the
/// sharded executor promise manifest byte-identity across `--shards`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardPlan {
    num_ases: usize,
    chunk: usize,
    num_shards: usize,
}

impl ShardPlan {
    /// Smallest AS span worth a dedicated extraction task: below this,
    /// per-task overhead (queue round-trip, slot bookkeeping) rivals the
    /// scan itself, so [`ShardPlan::auto`] refuses to split further.
    const MIN_SPAN: usize = 4096;

    /// Plan `num_shards` shards over `num_ases` ASes. The request is
    /// clamped to `1..=num_ases` and the chunk is rounded up to a
    /// 64-AS multiple, so the effective [`Self::num_shards`] may be
    /// smaller than requested but never yields an empty shard.
    pub fn new(num_ases: usize, num_shards: usize) -> ShardPlan {
        let requested = num_shards.clamp(1, num_ases.max(1));
        let chunk = num_ases.div_ceil(requested).next_multiple_of(64).max(64);
        ShardPlan {
            num_ases,
            chunk,
            num_shards: num_ases.div_ceil(chunk).max(1),
        }
    }

    /// Auto-tune the shard count from the worker-thread count: enough
    /// shards that every thread can drain roughly two extraction tasks
    /// per epoch (hiding producer/stealer imbalance), but never so many
    /// that a shard spans fewer than [`Self::MIN_SPAN`] ASes — per-shard
    /// extraction work is proportional to its AS span, so tiny shards
    /// are pure queue overhead. Single-threaded runs get one shard:
    /// there is nobody to share the extraction with.
    pub fn auto(num_ases: usize, threads: usize) -> ShardPlan {
        if threads <= 1 {
            return ShardPlan::new(num_ases, 1);
        }
        let cap = num_ases.div_ceil(Self::MIN_SPAN).max(1);
        ShardPlan::new(num_ases, (threads * 2).min(cap))
    }

    /// Number of shards after clamping and 64-alignment.
    pub fn num_shards(&self) -> usize {
        self.num_shards
    }

    /// The AS-index range shard `s` covers.
    pub fn range(&self, shard: usize) -> std::ops::Range<usize> {
        (shard * self.chunk).min(self.num_ases)..((shard + 1) * self.chunk).min(self.num_ases)
    }

    /// All shard ranges, in order; they tile `0..num_ases` exactly.
    pub fn ranges(&self) -> impl Iterator<Item = std::ops::Range<usize>> + '_ {
        (0..self.num_shards).map(|s| self.range(s))
    }
}

/// Extract one shard's slice of the requested ground-truth catchments.
fn extract_shard(
    source: CatchmentSource,
    outcome: &RoutingOutcome,
    range: std::ops::Range<usize>,
) -> trackdown_bgp::ShardCatchments {
    match source {
        CatchmentSource::ControlPlane => {
            trackdown_bgp::ShardCatchments::from_control_plane(outcome, range)
        }
        CatchmentSource::DataPlane => {
            trackdown_bgp::ShardCatchments::from_data_plane(outcome, range)
        }
        CatchmentSource::Measured => {
            unreachable!("measured catchments come from the observation plane")
        }
    }
}

/// Sharded batch-catchment executor: [`run_campaign_parallel`] with the
/// per-configuration catchment extraction additionally split into
/// [`ShardPlan`] AS-ranges that are processed as a work-stealing batch.
pub fn run_campaign_sharded(
    engine: &BgpEngine<'_>,
    origin: &OriginAs,
    configs: &[AnnouncementConfig],
    source: CatchmentSource,
    max_events_factor: usize,
    threads: usize,
    shards: usize,
) -> Campaign {
    run_campaign_sharded_recorded(
        engine,
        origin,
        configs,
        source,
        max_events_factor,
        threads,
        shards,
        CampaignMode::Warm,
        None,
    )
}

/// [`run_campaign_sharded`] with an explicit executor mode.
#[allow(clippy::too_many_arguments)]
pub fn run_campaign_sharded_mode(
    engine: &BgpEngine<'_>,
    origin: &OriginAs,
    configs: &[AnnouncementConfig],
    source: CatchmentSource,
    max_events_factor: usize,
    threads: usize,
    shards: usize,
    mode: CampaignMode,
) -> Campaign {
    run_campaign_sharded_recorded(
        engine,
        origin,
        configs,
        source,
        max_events_factor,
        threads,
        shards,
        mode,
        None,
    )
}

/// The sharded batch-catchment executor.
///
/// **Propagation** is identical to [`run_campaign_parallel_recorded`]:
/// contiguous schedule chunks per worker, one persistent warm session and
/// footprint memo per worker, epochs recorded with the same thread ids.
/// The shard count therefore cannot perturb propagation, epoch records,
/// or deterministic manifests — only how extraction work is scheduled.
///
/// **Extraction** is the sharded part: after each fixpoint, the producing
/// worker enqueues one `(epoch, shard)` task per [`ShardPlan`] range onto
/// a shared work-stealing queue, sharing the outcome behind an [`Arc`].
/// Any worker may pop any task (workers that finish their propagation
/// chunk early drain the queue instead of idling; a producer also drains
/// opportunistically after enqueuing, which bounds the queue — and the
/// retained outcomes — to the shards of in-flight epochs). Results land
/// in `(epoch, shard)`-keyed slots, so completion order is irrelevant:
/// per-epoch slices reassemble with [`Catchments::assemble`] into exactly
/// the whole-topology extraction, in schedule order.
///
/// **Memory** stays bounded per the tentpole contract: right after each
/// deployment every worker absorbs only the paths its changed routes
/// actually reference into a private collector arena (incremental rooted
/// absorption via [`trackdown_bgp::PathArena::absorb_rooted_cached`],
/// taken before any event-cap cold restart can truncate the session
/// arena), and at join
/// the collectors merge through canonical interning —
/// `stats.merged_arena_nodes` is the size of that union arena, which
/// root filtering plus shared prefixes keep near the *referenced* path
/// set instead of `threads ×` the full per-worker arenas.
///
/// Passing `shards == 0` auto-tunes the shard count from the thread
/// count via [`ShardPlan::auto`].
#[allow(clippy::too_many_arguments)]
pub fn run_campaign_sharded_recorded(
    engine: &BgpEngine<'_>,
    origin: &OriginAs,
    configs: &[AnnouncementConfig],
    source: CatchmentSource,
    max_events_factor: usize,
    threads: usize,
    shards: usize,
    mode: CampaignMode,
    recorder: Option<&CampaignRecorder>,
) -> Campaign {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Mutex};

    assert!(!configs.is_empty(), "empty schedule");
    assert!(
        source != CatchmentSource::Measured,
        "measured campaigns are sequential (the observation plane salts by deployment order)"
    );
    let _span = trackdown_obs::span("campaign.run");
    let topo = engine.topology();
    let threads = threads.max(1);
    let plan = if shards == 0 {
        ShardPlan::auto(topo.num_ases(), threads)
    } else {
        ShardPlan::new(topo.num_ases(), shards)
    };
    let num_shards = plan.num_shards();
    let chunk_size = configs.len().div_ceil(threads);
    let num_workers = configs.chunks(chunk_size).len();

    /// One unit of extraction work: slice `shard` of epoch `epoch`'s
    /// routing outcome.
    struct ExtractTask {
        epoch: usize,
        shard: usize,
        producer: usize,
        outcome: Arc<RoutingOutcome>,
    }

    let queue: Mutex<VecDeque<ExtractTask>> = Mutex::new(VecDeque::new());
    // Producers still propagating; stealers spin until this hits zero.
    let producers = AtomicUsize::new(num_workers);
    let parts: Mutex<Vec<Option<trackdown_bgp::ShardCatchments>>> =
        Mutex::new(vec![None; configs.len() * num_shards]);

    // Pop-and-extract one task. Returns false when the queue was empty.
    let steal_one = |t: usize| -> bool {
        let Some(task) = queue.lock().expect("queue poisoned").pop_front() else {
            return false;
        };
        // Own-epoch pops and cross-worker steals get distinct trace
        // phases: a steal-heavy timeline means producers can't keep the
        // queue fed.
        let stolen = task.producer != t;
        let mut span = trackdown_obs::span(if stolen {
            "worker.steal"
        } else {
            "worker.extract"
        });
        span.set_attr("epoch", task.epoch as u64);
        span.set_attr("shard", task.shard as u64);
        trackdown_obs::counter!("campaign.shard_tasks").inc();
        if stolen {
            trackdown_obs::counter!("campaign.shard_steals").inc();
        }
        let part = extract_shard(source, &task.outcome, plan.range(task.shard));
        parts.lock().expect("parts poisoned")[task.epoch * num_shards + task.shard] = Some(part);
        true
    };

    let mut stats = CampaignStats {
        mode,
        threads: num_workers,
        shards: num_shards,
        ..CampaignStats::default()
    };
    let mut converged_by_k: Vec<Option<bool>> = vec![None; configs.len()];
    let mut memo_pairs: Vec<(usize, usize)> = Vec::new();
    let mut merged = trackdown_bgp::PathArena::new();
    std::thread::scope(|scope| {
        let mut handles = Vec::new();
        for (t, chunk) in configs.chunks(chunk_size).enumerate() {
            let base = t * chunk_size;
            let (queue, producers, steal_one) = (&queue, &producers, &steal_one);
            handles.push(scope.spawn(move || {
                let order: Vec<usize> = match mode {
                    CampaignMode::Warm | CampaignMode::Delta => warm_start_order(chunk),
                    CampaignMode::Cold => (0..chunk.len()).collect(),
                };
                let mut session = engine.session();
                // Per-worker path collector: right after each deployment
                // the ancestor chains of routes the epoch actually
                // selected are absorbed here (rooted, so candidate-only
                // paths never leave the session arena, and a later
                // event-cap cold restart cannot dangle the ids).
                // Warm/Delta only — cold epochs propagate in a per-call
                // simulation whose arena is gone once the outcome returns.
                let mut collector = trackdown_bgp::PathArena::new();
                // Session-arena → collector id cache for the incremental
                // absorb; valid only while the session arena is
                // append-only, so it resets whenever the session
                // cold-restarted (the sole truncation point).
                let mut absorb_remap: Vec<trackdown_bgp::PathId> = Vec::new();
                let mut absorbed_restarts = 0usize;
                let mut roots: Vec<trackdown_bgp::PathId> = Vec::new();
                let mut memo: HashMap<String, usize> = HashMap::new();
                let mut converged: Vec<Option<bool>> = vec![None; chunk.len()];
                let mut pairs: Vec<(usize, usize)> = Vec::new();
                let mut propagations = 0usize;
                let mut memo_hits = 0usize;
                let mut disturbed = 0usize;
                let mut events = 0usize;
                // Utilization accounting, accumulated worker-locally so
                // the drain spin loop touches no shared cache lines.
                let worker_start = std::time::Instant::now();
                let mut idle_us = 0u64;
                let mut steal_fails = 0u64;
                for &off in &order {
                    let cfg = &chunk[off];
                    cfg.validate(origin).expect("invalid configuration");
                    if matches!(mode, CampaignMode::Warm | CampaignMode::Delta) {
                        let key = cfg.footprint_key();
                        if let Some(&j) = memo.get(&key) {
                            memo_hits += 1;
                            converged[off] = converged[j];
                            // Reuse epoch j's assembled catchments after the
                            // batch instead of re-extracting its shards.
                            pairs.push((base + off, base + j));
                            if let Some(rec) = recorder {
                                rec.record(EpochRecord {
                                    epoch: base + off,
                                    footprint: key,
                                    mode: EpochMode::Memo,
                                    thread: t,
                                    events: 0,
                                    rounds: 0,
                                    changes: 0,
                                    routes_disturbed: 0,
                                    converged: converged[off].expect("memo entry deployed"),
                                    wall_us: None,
                                });
                            }
                            continue;
                        }
                        memo.insert(key, off);
                    }
                    // Produce segment: deploy + record + enqueue. The
                    // help-first drain that follows is traced as
                    // extract/steal time, so the timeline separates the
                    // two costs per worker.
                    let mut produce = trackdown_obs::span("worker.produce");
                    produce.set_attr("epoch", (base + off) as u64);
                    let timer = recorder.and_then(|r| r.start_timer());
                    let outcome = match mode {
                        CampaignMode::Warm => session.deploy_config(
                            origin,
                            &cfg.to_link_announcements(),
                            max_events_factor,
                        ),
                        CampaignMode::Delta => session.deploy_config_delta(
                            origin,
                            &cfg.to_link_announcements(),
                            max_events_factor,
                        ),
                        CampaignMode::Cold => engine.propagate_config(
                            origin,
                            &cfg.to_link_announcements(),
                            max_events_factor,
                        ),
                    }
                    .expect("validated configuration");
                    produce.set_attr("events", outcome.events as u64);
                    if let Some(rec) = recorder {
                        let epoch_mode = match mode {
                            CampaignMode::Warm if session.last_deploy_warm() => EpochMode::Warm,
                            CampaignMode::Delta if session.last_deploy_warm() => EpochMode::Delta,
                            _ => EpochMode::Cold,
                        };
                        rec.record(EpochRecord {
                            epoch: base + off,
                            footprint: cfg.footprint_key(),
                            mode: epoch_mode,
                            thread: t,
                            events: outcome.events,
                            rounds: outcome.rounds,
                            changes: outcome.changes.len(),
                            routes_disturbed: outcome.routes_disturbed,
                            converged: outcome.converged,
                            wall_us: rec.elapsed_us(timer),
                        });
                    }
                    propagations += 1;
                    disturbed += outcome.routes_disturbed;
                    events += outcome.events;
                    converged[off] = Some(outcome.converged);
                    if matches!(mode, CampaignMode::Warm | CampaignMode::Delta) {
                        roots.clear();
                        roots.extend(
                            outcome
                                .changes
                                .iter()
                                .filter_map(|ch| outcome.best[ch.at.us()].map(|r| r.path_id)),
                        );
                        if session.cold_restarts() != absorbed_restarts {
                            absorbed_restarts = session.cold_restarts();
                            absorb_remap.clear();
                        }
                        session.absorb_paths_rooted_cached(
                            &mut collector,
                            &roots,
                            &mut absorb_remap,
                        );
                    }
                    let outcome = Arc::new(outcome);
                    {
                        let mut q = queue.lock().expect("queue poisoned");
                        for shard in 0..num_shards {
                            q.push_back(ExtractTask {
                                epoch: base + off,
                                shard,
                                producer: t,
                                outcome: Arc::clone(&outcome),
                            });
                        }
                        trackdown_obs::counter_sample("campaign.queue_depth", q.len() as u64);
                    }
                    drop(produce);
                    // Help-first draining: keep the queue (and the routing
                    // outcomes it retains) bounded by in-flight epochs.
                    while steal_one(t) {}
                    steal_fails += 1; // the drain exits on an empty pop
                }
                producers.fetch_sub(1, Ordering::AcqRel);
                // Chunk done: steal until every producer has finished and
                // the queue is drained. Idle stretches (empty-queue spins
                // between successful steals) are timed worker-locally and
                // recorded as `worker.idle` trace spans.
                let mut idle_since: Option<std::time::Instant> = None;
                let close_idle = |idle_since: &mut Option<std::time::Instant>,
                                  idle_us: &mut u64| {
                    if let Some(since) = idle_since.take() {
                        let now = std::time::Instant::now();
                        *idle_us += now
                            .checked_duration_since(since)
                            .map(|d| d.as_micros() as u64)
                            .unwrap_or(0);
                        trackdown_obs::record_span("worker.idle", since, now);
                    }
                };
                loop {
                    let mut worked = steal_one(t);
                    if !worked {
                        steal_fails += 1;
                        if producers.load(Ordering::Acquire) == 0 {
                            // Producers all done: one confirming pop
                            // guards against tasks enqueued between our
                            // failed pop and the producer count reaching
                            // zero.
                            if steal_one(t) {
                                worked = true;
                            } else {
                                steal_fails += 1;
                                break;
                            }
                        }
                    }
                    if worked {
                        close_idle(&mut idle_since, &mut idle_us);
                        continue;
                    }
                    if idle_since.is_none() {
                        idle_since = Some(std::time::Instant::now());
                    }
                    std::thread::yield_now();
                }
                close_idle(&mut idle_since, &mut idle_us);
                trackdown_obs::counter!("campaign.shard_steal_fails").add(steal_fails);
                let total_us = worker_start.elapsed().as_micros() as u64;
                (
                    base,
                    converged,
                    pairs,
                    propagations,
                    (memo_hits, disturbed, events),
                    session.cold_restarts(),
                    session.peak_arena_nodes(),
                    collector.store(),
                    (total_us.saturating_sub(idle_us), idle_us, steal_fails),
                )
            }));
        }
        for h in handles {
            let (base, converged, pairs, propagations, counts, cold_restarts, peak, store, util) =
                h.join().expect("worker panicked");
            for (off, c) in converged.into_iter().enumerate() {
                converged_by_k[base + off] = c;
            }
            memo_pairs.extend(pairs);
            stats.propagations += propagations;
            stats.memo_hits += counts.0;
            stats.routes_disturbed += counts.1;
            stats.events += counts.2;
            stats.cold_restarts += cold_restarts;
            stats.peak_arena_nodes = stats.peak_arena_nodes.max(peak);
            stats.worker_busy_us.push(util.0);
            stats.worker_idle_us.push(util.1);
            stats.shard_steal_fails += util.2 as usize;
            // Canonical-interning merge of the rooted collectors: shared
            // path prefixes across workers collapse to single nodes, and
            // only paths some epoch actually selected are present at all.
            if !store.is_empty() {
                let _span = trackdown_obs::span("worker.merge").attr("nodes", store.len() as u64);
                merged.absorb_store(&store);
            }
        }
    });
    stats.merged_arena_nodes = merged.num_nodes();

    let parts = parts.into_inner().expect("parts poisoned");
    let mut catchments_by_k: Vec<Option<Catchments>> = parts
        .chunks(num_shards)
        .map(|epoch_parts| {
            if epoch_parts.iter().all(|p| p.is_some()) {
                Some(Catchments::assemble(
                    topo.num_ases(),
                    epoch_parts.iter().flatten(),
                ))
            } else {
                None // memo epoch: filled from its source below
            }
        })
        .collect();
    for &(k, j) in &memo_pairs {
        catchments_by_k[k] = Some(
            catchments_by_k[j]
                .clone()
                .expect("memo source epoch deployed and assembled"),
        );
    }
    let catchments: Vec<Catchments> = catchments_by_k
        .into_iter()
        .map(|c| c.expect("every configuration extracted"))
        .collect();
    let converged: Vec<bool> = converged_by_k
        .into_iter()
        .map(|c| c.expect("every configuration deployed"))
        .collect();
    let tracked: Vec<AsIndex> = topo
        .indices()
        .filter(|&i| catchments[0].is_assigned(i))
        .collect();
    assemble_campaign(configs, catchments, converged, tracked, None, stats)
}

/// A cluster ranked by how much spoofed volume it can explain.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SuspectCluster {
    /// Index into `Campaign::clustering.clusters()`.
    pub cluster: usize,
    /// Member sources.
    pub members: Vec<AsIndex>,
    /// Upper bound on the spoofed volume this cluster can originate: the
    /// minimum, over configurations, of the volume observed on the link
    /// the cluster was routed to. Clusters whose link saw zero volume in
    /// any configuration cannot contain sources and are excluded.
    pub volume_upper_bound: u64,
}

/// Check the volume matrix against the campaign's shape: one row per
/// configuration, each row *exactly* as wide as the attribution plane —
/// every link a tracked cluster was routed to, and nothing more. Short
/// rows would otherwise read as zero volume and silently *exonerate*
/// clusters on missing data; over-wide rows carry entries no tracked
/// cluster can ever be matched against, which almost always means the
/// caller built the matrix against the wrong width (e.g. the origin's
/// full link count) and the surplus volume would be silently dropped.
fn validate_link_volumes(campaign: &Campaign, link_volumes: &[Vec<u64>]) {
    assert_eq!(
        link_volumes.len(),
        campaign.catchments.len(),
        "one volume vector per configuration"
    );
    let need = campaign.attribution.num_links();
    for (k, row) in link_volumes.iter().enumerate() {
        assert!(
            row.len() >= need,
            "link_volumes[{k}] covers {} links but the campaign routed tracked \
             clusters to links up to id {}; missing entries would read as zero \
             volume and silently exonerate clusters",
            row.len(),
            need - 1
        );
        assert!(
            row.len() == need,
            "link_volumes[{k}] covers {} links but the campaign's attribution \
             plane spans exactly {need}; the extra entries belong to no tracked \
             cluster and would be silently ignored — trim the rows with \
             fit_link_volumes or build them with link_volume_matrix",
            row.len()
        );
    }
}

/// Check an accumulator's shape against the campaign: same contract as the
/// dense-matrix validation — one configuration per campaign configuration
/// and exactly the attribution plane's link width.
fn validate_accumulator<A: VolumeAccumulator + ?Sized>(campaign: &Campaign, acc: &A) {
    assert_eq!(
        acc.num_configs(),
        campaign.catchments.len(),
        "one accumulator configuration per campaign configuration"
    );
    let need = campaign.attribution.num_links();
    assert!(
        acc.num_links() >= need,
        "accumulator covers {} links but the campaign routed tracked clusters \
         to links up to id {}; missing counters would read as zero volume and \
         silently exonerate clusters",
        acc.num_links(),
        need - 1
    );
    assert!(
        acc.num_links() == need,
        "accumulator covers {} links but the campaign's attribution plane \
         spans exactly {need}; the extra counters belong to no tracked cluster \
         and would be silently ignored",
        acc.num_links()
    );
}

/// Adapt honeypot-shaped volume rows (width = the origin's full link
/// count) to the attribution plane's exact width contract: rows are
/// truncated to [`AttributionIndex::num_links`]. The dropped tail entries
/// are links no tracked cluster was ever routed to, so they can never
/// constrain (or exonerate) any cluster.
///
/// # Panics
/// If a row is *narrower* than the attribution width (the silent-
/// exoneration hazard — see [`rank_suspects`]), or the row count does not
/// match the campaign's configuration count.
pub fn fit_link_volumes(campaign: &Campaign, mut rows: Vec<Vec<u64>>) -> Vec<Vec<u64>> {
    assert_eq!(
        rows.len(),
        campaign.catchments.len(),
        "one volume vector per configuration"
    );
    let need = campaign.attribution.num_links();
    for (k, row) in rows.iter_mut().enumerate() {
        assert!(
            row.len() >= need,
            "link_volumes[{k}] covers {} links but the campaign routed tracked \
             clusters to links up to id {}; missing entries would read as zero \
             volume and silently exonerate clusters",
            row.len(),
            need - 1
        );
        row.truncate(need);
    }
    rows
}

/// Correlate per-configuration, per-link spoofed volumes (honeypot
/// reports) with the clustering to rank suspect clusters (§I's Figure 1
/// narrative, generalized to simultaneous sources).
///
/// `link_volumes[k][l]` = spoofed bytes on link `l` during configuration
/// `k`. Requires the same configuration order as the campaign.
///
/// Bounds are maintained *incrementally* along the campaign's
/// [`AttributionIndex`]: one forward pass over the refinement deltas, with
/// each split's children inheriting the parent's accumulated min-bound
/// (valid because a child's catchment history is its parent's history
/// extended by one configuration). Output is identical to the from-scratch
/// [`rank_suspects_rescan`] reference — proven by the differential suite —
/// without materializing `clusters()` or scanning catchments per cluster.
///
/// # Panics
/// If `link_volumes` does not have exactly one row per configuration, or
/// any row is narrower than [`AttributionIndex::num_links`] — every link a
/// tracked cluster landed on needs an entry (zero means "measured silent",
/// absence is a caller bug; see the width contract in DESIGN.md).
pub fn rank_suspects(campaign: &Campaign, link_volumes: &[Vec<u64>]) -> Vec<SuspectCluster> {
    let _span = trackdown_obs::span("attr.rank").attr("configs", link_volumes.len() as u64);
    validate_link_volumes(campaign, link_volumes);
    rank_suspects_core(campaign, |k, l| link_volumes[k][l.us()])
}

/// The incremental min-bound pass shared by the dense and accumulator
/// entry points: `vol(k, l)` reads the spoofed volume on link `l` during
/// configuration `k` from whatever store the caller has.
fn rank_suspects_core(
    campaign: &Campaign,
    vol: impl Fn(usize, LinkId) -> u64,
) -> Vec<SuspectCluster> {
    let idx = &campaign.attribution;
    // Per-cluster state, re-keyed through every delta: the running
    // min-bound and whether any silent link has exonerated the lineage.
    let mut bound: Vec<u64> = vec![u64::MAX; idx.initial_clusters as usize];
    let mut alive: Vec<bool> = vec![true; idx.initial_clusters as usize];
    for (k, delta) in idx.deltas.iter().enumerate() {
        let mut next_bound = Vec::with_capacity(delta.num_clusters());
        let mut next_alive = Vec::with_capacity(delta.num_clusters());
        for (c, &parent) in delta.parent_of.iter().enumerate() {
            let mut b = bound[parent as usize];
            let mut a = alive[parent as usize];
            if let Some(link) = delta.link_of[c] {
                let v = vol(k, link);
                if v == 0 {
                    a = false; // a silent link exonerates the lineage
                } else {
                    b = b.min(v);
                }
            }
            next_bound.push(b);
            next_alive.push(a);
        }
        bound = next_bound;
        alive = next_alive;
    }
    let mut out = Vec::new();
    for c in 0..idx.final_num_clusters() {
        // bound == MAX: never constrained, no evidence at all.
        if !alive[c] || bound[c] == u64::MAX {
            continue;
        }
        out.push(SuspectCluster {
            cluster: c,
            members: campaign.clustering.cluster_members(c as u32).to_vec(),
            volume_upper_bound: bound[c],
        });
    }
    out.sort_by(|a, b| {
        b.volume_upper_bound
            .cmp(&a.volume_upper_bound)
            .then(a.cluster.cmp(&b.cluster))
    });
    out
}

/// The pre-index implementation of [`rank_suspects`]: materializes
/// `clusters()` and rescans every catchment per cluster, reading absent
/// volume entries as zero. Kept as the from-scratch reference the
/// differential suite and the scan-vs-indexed benchmarks compare against.
pub fn rank_suspects_rescan(campaign: &Campaign, link_volumes: &[Vec<u64>]) -> Vec<SuspectCluster> {
    assert_eq!(
        link_volumes.len(),
        campaign.catchments.len(),
        "one volume vector per configuration"
    );
    let clusters = campaign.clustering.clusters();
    let mut out = Vec::new();
    'cluster: for (idx, members) in clusters.iter().enumerate() {
        // All members share catchments; use the first as representative.
        let rep = members[0];
        let mut bound = u64::MAX;
        for (cat, vols) in campaign.catchments.iter().zip(link_volumes) {
            let Some(link) = cat.get(rep) else {
                // Unobserved in this configuration: no constraint.
                continue;
            };
            let v = vols.get(link.us()).copied().unwrap_or(0);
            if v == 0 {
                continue 'cluster; // a silent link exonerates the cluster
            }
            bound = bound.min(v);
        }
        if bound == u64::MAX {
            continue; // never constrained: no evidence at all
        }
        out.push(SuspectCluster {
            cluster: idx,
            members: members.clone(),
            volume_upper_bound: bound,
        });
    }
    out.sort_by(|a, b| {
        b.volume_upper_bound
            .cmp(&a.volume_upper_bound)
            .then(a.cluster.cmp(&b.cluster))
    });
    out
}

/// Suspect ranking produced from a (possibly approximate) streaming
/// accumulator by [`rank_suspects_acc`], annotated with the accumulator's
/// error bound and whether the ordering is provably stable under it.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RankedSuspects {
    /// Ranked suspects, exactly as [`rank_suspects`] would order them on
    /// the accumulator's volumes.
    pub suspects: Vec<SuspectCluster>,
    /// The accumulator's deterministic one-sided overestimate bound `B`:
    /// every reported volume is within `[true, true + B]`.
    pub error_bound: u64,
    /// Whether the ranking could *not* flip within the error bound: true
    /// iff every adjacent pair of suspects is separated by at least
    /// `error_bound`. With one-sided error, two suspects whose reported
    /// bounds differ by `g >= B` cannot swap under any true volumes
    /// consistent with the sketch; a smaller gap might.
    pub stable: bool,
}

/// [`rank_suspects`] over a streaming [`VolumeAccumulator`] instead of
/// exact dense rows — the line-rate entry point.
///
/// Because approximate accumulators are one-sided (never *under* the true
/// volume), the zero-volume exoneration rule stays sound: a sketch can
/// never report zero for a link that actually carried spoofed bytes, so
/// the returned suspect set is always a superset of the exact one, and the
/// extra suspects' bounds are within [`RankedSuspects::error_bound`] of
/// zero-evidence. [`RankedSuspects::stable`] reports whether the ordering
/// itself is trustworthy at the current sketch resolution.
///
/// # Panics
/// If the accumulator's shape does not match the campaign: one
/// configuration per campaign configuration, and exactly
/// [`AttributionIndex::num_links`] link counters (same width contract as
/// [`rank_suspects`]).
pub fn rank_suspects_acc<A: VolumeAccumulator + ?Sized>(
    campaign: &Campaign,
    acc: &A,
) -> RankedSuspects {
    let _span =
        trackdown_obs::span("attr.rank_acc").attr("configs", campaign.catchments.len() as u64);
    validate_accumulator(campaign, acc);
    let suspects = rank_suspects_core(campaign, |k, l| acc.volume(k, l));
    let error_bound = acc.error_bound();
    let stable = suspects
        .windows(2)
        .all(|w| w[0].volume_upper_bound - w[1].volume_upper_bound >= error_bound);
    RankedSuspects {
        suspects,
        error_bound,
        stable,
    }
}

/// Volume bounds for one cluster produced by
/// [`estimate_cluster_volumes`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VolumeEstimate {
    /// Index into `Campaign::clustering.clusters()`.
    pub cluster: usize,
    /// Member sources.
    pub members: Vec<AsIndex>,
    /// Proven minimum spoofed volume originated by this cluster.
    pub lower: u64,
    /// Proven maximum spoofed volume originated by this cluster.
    pub upper: u64,
}

/// Multi-source volume estimation by interval constraint propagation.
///
/// Per configuration `c` and link `l`, volume conservation says
/// `Σ_{clusters k routed to l at c} v_k = V[c][l]`. Starting from the
/// simple min-bound upper bounds of [`rank_suspects`], the propagation
/// alternately tightens lower bounds (`v_k ≥ V − Σ_{j≠k} upper_j`) and
/// upper bounds (`v_k ≤ V − Σ_{j≠k} lower_j`) until a fixpoint (or
/// `max_rounds`). Clusters whose upper bound reaches zero are exonerated —
/// far more of them than the min-bound alone manages when several sources
/// are active at once (an instance of the paper's future-work direction of
/// jointly reasoning about cluster sizes and traffic volumes).
///
/// Soundness assumes the per-AS volumes are stable across configurations
/// and every source is tracked; both hold for honeypot traffic from the
/// campaign's tracked set.
///
/// The per-cluster link matrix comes from the campaign's
/// [`AttributionIndex`] (ancestor chains walked backward through the
/// refinement deltas) rather than per-cluster catchment rescans; output is
/// identical to [`estimate_cluster_volumes_rescan`].
///
/// # Panics
/// Same volume-matrix width contract as [`rank_suspects`].
pub fn estimate_cluster_volumes(
    campaign: &Campaign,
    link_volumes: &[Vec<u64>],
    max_rounds: usize,
) -> Vec<VolumeEstimate> {
    let _span = trackdown_obs::span("attr.estimate").attr("configs", link_volumes.len() as u64);
    validate_link_volumes(campaign, link_volumes);
    let num_links = campaign.attribution.num_links();
    // Link of each cluster per configuration (None = unobserved),
    // reconstructed from the refinement deltas.
    let links = campaign.attribution.final_links();
    let vol = |c: usize, l: LinkId| -> u64 { link_volumes[c][l.us()] };
    estimate_from_links(
        campaign,
        link_volumes.len(),
        max_rounds,
        num_links,
        &links,
        vol,
        0,
    )
}

/// [`estimate_cluster_volumes`] over a streaming [`VolumeAccumulator`].
///
/// One-sided overestimates need one adaptation to stay *sound* (never
/// excluding the true volume from a cluster's interval): lower-bound
/// updates are relaxed by the accumulator's error bound. Conservation on
/// link `l` says `v_k >= V_true − Σ_{j≠k} upper_j`, but the accumulator
/// only knows `V' ∈ [V_true, V_true + B]` — so the proven floor becomes
/// `(V' − B) − Σ upper_j`. Upper bounds need no slack: `V' >= V_true`
/// already makes them conservative. Consequently every interval this
/// returns *contains* the interval the exact pipeline would prove, and a
/// cluster with true volume > 0 is never exonerated.
///
/// # Panics
/// Same shape contract as [`rank_suspects_acc`].
pub fn estimate_cluster_volumes_acc<A: VolumeAccumulator + ?Sized>(
    campaign: &Campaign,
    acc: &A,
    max_rounds: usize,
) -> Vec<VolumeEstimate> {
    let _span =
        trackdown_obs::span("attr.estimate_acc").attr("configs", campaign.catchments.len() as u64);
    validate_accumulator(campaign, acc);
    let num_links = campaign.attribution.num_links();
    let links = campaign.attribution.final_links();
    estimate_from_links(
        campaign,
        campaign.catchments.len(),
        max_rounds,
        num_links,
        &links,
        |c, l| acc.volume(c, l),
        acc.error_bound(),
    )
}

/// The pre-index implementation of [`estimate_cluster_volumes`]:
/// materializes `clusters()`, rescans every catchment per cluster for the
/// link matrix, and reads absent volume entries as zero. Kept as the
/// from-scratch reference for the differential suite and benchmarks.
pub fn estimate_cluster_volumes_rescan(
    campaign: &Campaign,
    link_volumes: &[Vec<u64>],
    max_rounds: usize,
) -> Vec<VolumeEstimate> {
    assert_eq!(link_volumes.len(), campaign.catchments.len());
    let clusters = campaign.clustering.clusters();
    let num_links = link_volumes.iter().map(|v| v.len()).max().unwrap_or(0);
    // Link of each cluster per configuration (None = unobserved).
    let links: Vec<Vec<Option<LinkId>>> = clusters
        .iter()
        .map(|members| {
            campaign
                .catchments
                .iter()
                .map(|cat| cat.get(members[0]))
                .collect()
        })
        .collect();
    let vol = |c: usize, l: LinkId| -> u64 { link_volumes[c].get(l.us()).copied().unwrap_or(0) };
    estimate_from_links(
        campaign,
        link_volumes.len(),
        max_rounds,
        num_links,
        &links,
        vol,
        0,
    )
}

/// Interval constraint propagation shared by the indexed, rescan, and
/// accumulator estimators: everything after the per-cluster link matrix is
/// obtained. `slack` is the volume store's one-sided overestimate bound
/// (0 for exact stores); lower-bound updates subtract it so a possibly
/// inflated link reading never proves a floor the true volumes could not.
fn estimate_from_links(
    campaign: &Campaign,
    num_configs: usize,
    max_rounds: usize,
    num_links: usize,
    links: &[Vec<Option<LinkId>>],
    vol: impl Fn(usize, LinkId) -> u64,
    slack: u64,
) -> Vec<VolumeEstimate> {
    // Initial bounds.
    let mut upper: Vec<u64> = links
        .iter()
        .map(|per_cfg| {
            per_cfg
                .iter()
                .enumerate()
                .filter_map(|(c, l)| l.map(|l| vol(c, l)))
                .min()
                .unwrap_or(0)
        })
        .collect();
    let mut lower = vec![0u64; links.len()];
    for _ in 0..max_rounds {
        let mut changed = false;
        for c in 0..num_configs {
            // Per-link sums of current bounds over clusters on that link.
            let mut sum_upper = vec![0u128; num_links];
            let mut sum_lower = vec![0u128; num_links];
            for (k, per_cfg) in links.iter().enumerate() {
                if let Some(l) = per_cfg[c] {
                    sum_upper[l.us()] += upper[k] as u128;
                    sum_lower[l.us()] += lower[k] as u128;
                }
            }
            for (k, per_cfg) in links.iter().enumerate() {
                let Some(l) = per_cfg[c] else { continue };
                let v = vol(c, l) as u128;
                // Lower: what the others cannot explain.
                // `saturating_sub`: bounds updated earlier in this pass
                // leave the per-link sums slightly stale; saturation keeps
                // the estimates conservative (sound) either way. `slack`
                // discounts a possibly overestimated link reading before
                // it can prove anything.
                let others_upper = sum_upper[l.us()].saturating_sub(upper[k] as u128);
                let new_lower = v.saturating_sub(slack as u128).saturating_sub(others_upper) as u64;
                if new_lower > lower[k] {
                    lower[k] = new_lower;
                    changed = true;
                }
                // Upper: what remains after the others' proven minimums.
                let others_lower = sum_lower[l.us()].saturating_sub(lower[k] as u128);
                let new_upper = v.saturating_sub(others_lower) as u64;
                if new_upper < upper[k] {
                    upper[k] = new_upper;
                    changed = true;
                }
            }
        }
        // Keep intervals well-formed.
        for k in 0..links.len() {
            if lower[k] > upper[k] {
                lower[k] = upper[k];
            }
        }
        if !changed {
            break;
        }
    }
    let mut out: Vec<VolumeEstimate> = (0..links.len())
        .filter(|&k| upper[k] > 0)
        .map(|k| VolumeEstimate {
            cluster: k,
            members: campaign.clustering.cluster_members(k as u32).to_vec(),
            lower: lower[k],
            upper: upper[k],
        })
        .collect();
    out.sort_by(|a, b| {
        b.lower
            .cmp(&a.lower)
            .then(b.upper.cmp(&a.upper))
            .then(a.cluster.cmp(&b.cluster))
    });
    out
}

/// Robust suspect scoring for *stale* catchments (§V-C: reusing
/// pre-attack measurements risks errors from route changes).
///
/// [`rank_suspects`] exonerates a cluster the moment its link carries zero
/// volume in a single configuration — correct when catchments are fresh,
/// brittle when they are stale (one changed route hides the attacker).
/// This scorer instead ranks clusters by the *fraction of configurations*
/// in which their (possibly stale) link carried volume, degrading
/// gracefully with routing churn.
///
/// Returns `(cluster_index, members, match_fraction)` sorted descending.
///
/// Counters are maintained incrementally along the campaign's
/// [`AttributionIndex`] (children inherit their parent's observed/matched
/// counts at each split); output is identical to
/// [`match_fraction_scores_rescan`].
///
/// # Panics
/// Same volume-matrix width contract as [`rank_suspects`].
pub fn match_fraction_scores(
    campaign: &Campaign,
    link_volumes: &[Vec<u64>],
) -> Vec<(usize, Vec<AsIndex>, f64)> {
    validate_link_volumes(campaign, link_volumes);
    let idx = &campaign.attribution;
    let mut observed: Vec<u32> = vec![0; idx.initial_clusters as usize];
    let mut matched: Vec<u32> = vec![0; idx.initial_clusters as usize];
    for (k, delta) in idx.deltas.iter().enumerate() {
        let vols = &link_volumes[k];
        let mut next_observed = Vec::with_capacity(delta.num_clusters());
        let mut next_matched = Vec::with_capacity(delta.num_clusters());
        for (c, &parent) in delta.parent_of.iter().enumerate() {
            let mut o = observed[parent as usize];
            let mut m = matched[parent as usize];
            if let Some(link) = delta.link_of[c] {
                o += 1;
                if vols[link.us()] > 0 {
                    m += 1;
                }
            }
            next_observed.push(o);
            next_matched.push(m);
        }
        observed = next_observed;
        matched = next_matched;
    }
    let mut out = Vec::with_capacity(idx.final_num_clusters());
    for c in 0..idx.final_num_clusters() {
        if observed[c] == 0 {
            continue;
        }
        out.push((
            c,
            campaign.clustering.cluster_members(c as u32).to_vec(),
            matched[c] as f64 / observed[c] as f64,
        ));
    }
    out.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("no NaN").then(a.0.cmp(&b.0)));
    out
}

/// The pre-index implementation of [`match_fraction_scores`]: materializes
/// `clusters()` and rescans every catchment per cluster. Kept as the
/// from-scratch reference for the differential suite.
pub fn match_fraction_scores_rescan(
    campaign: &Campaign,
    link_volumes: &[Vec<u64>],
) -> Vec<(usize, Vec<AsIndex>, f64)> {
    assert_eq!(link_volumes.len(), campaign.catchments.len());
    let clusters = campaign.clustering.clusters();
    let mut out = Vec::with_capacity(clusters.len());
    for (idx, members) in clusters.into_iter().enumerate() {
        let rep = members[0];
        let mut observed = 0usize;
        let mut matched = 0usize;
        for (cat, vols) in campaign.catchments.iter().zip(link_volumes) {
            let Some(link) = cat.get(rep) else { continue };
            observed += 1;
            if vols.get(link.us()).copied().unwrap_or(0) > 0 {
                matched += 1;
            }
        }
        if observed == 0 {
            continue;
        }
        out.push((idx, members, matched as f64 / observed as f64));
    }
    out.sort_by(|a, b| b.2.partial_cmp(&a.2).expect("no NaN").then(a.0.cmp(&b.0)));
    out
}

/// Convenience: the set of ASes named by the top suspect clusters covering
/// at least `coverage` (0–1] of the total suspect volume bound.
pub fn suspect_ases(suspects: &[SuspectCluster], coverage: f64) -> Vec<AsIndex> {
    let total: u64 = suspects.iter().map(|s| s.volume_upper_bound).sum();
    if total == 0 {
        return Vec::new();
    }
    let mut acc = 0u64;
    let mut out = Vec::new();
    for s in suspects {
        out.extend(s.members.iter().copied());
        acc += s.volume_upper_bound;
        if acc as f64 / total as f64 >= coverage {
            break;
        }
    }
    out
}

/// Compute per-configuration per-link volumes for a set of per-AS volumes
/// under the campaign's catchments — the honeypot-report matrix an origin
/// would have recorded if those sources had been active throughout.
///
/// Rows come out exactly [`AttributionIndex::num_links`] wide, satisfying
/// the attribution plane's width contract by construction. Volume from
/// ASes routed to links beyond that width is dropped: no tracked cluster
/// ever landed there, so those bytes can neither constrain nor exonerate
/// any cluster.
pub fn link_volume_matrix(campaign: &Campaign, volume_per_as: &[u64]) -> Vec<Vec<u64>> {
    let width = campaign.attribution.num_links();
    campaign
        .catchments
        .iter()
        .map(|cat| {
            let mut out = vec![0u64; width];
            for (i, &v) in volume_per_as.iter().enumerate() {
                if v == 0 || i >= cat.len() {
                    continue;
                }
                if let Some(link) = cat.get(AsIndex(i as u32)) {
                    if link.us() < width {
                        out[link.us()] += v;
                    }
                }
            }
            out
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{full_schedule, GeneratorParams};
    use trackdown_bgp::{EngineConfig, PolicyConfig};
    use trackdown_topology::gen::{generate, TopologyConfig};

    fn setup() -> (
        trackdown_topology::gen::GeneratedTopology,
        OriginAs,
        EngineConfig,
    ) {
        let g = generate(&TopologyConfig::small(23));
        let origin = OriginAs::peering_style(&g, 4);
        let cfg = EngineConfig {
            policy: PolicyConfig {
                seed: 5,
                violator_fraction: 0.05,
                no_loop_prevention_fraction: 0.02,
                tier1_poison_filtering: true,
                extensions: Default::default(),
            },
            ..EngineConfig::default()
        };
        (g, origin, cfg)
    }

    #[test]
    fn campaign_reduces_cluster_sizes() {
        let (g, origin, cfg) = setup();
        let engine = BgpEngine::new(&g.topology, &cfg);
        let schedule = full_schedule(
            &g.topology,
            &origin,
            &GeneratorParams {
                max_removals: 2,
                max_poison_configs: Some(10),
            },
        );
        let campaign = run_campaign(
            &engine,
            &origin,
            &schedule,
            CatchmentSource::ControlPlane,
            None,
            200,
        );
        assert_eq!(campaign.records.len(), schedule.len());
        let first = campaign.records.first().unwrap();
        let last = campaign.records.last().unwrap();
        assert!(last.mean_cluster_size < first.mean_cluster_size);
        assert!(
            last.mean_cluster_size < 5.0,
            "mean={}",
            last.mean_cluster_size
        );
        // Mean sizes never increase as configurations accumulate.
        for w in campaign.records.windows(2) {
            assert!(w[1].mean_cluster_size <= w[0].mean_cluster_size + 1e-9);
        }
        // All tracked sources partitioned.
        let total: usize = campaign.clustering.sizes().iter().sum();
        assert_eq!(total, campaign.tracked.len());
    }

    #[test]
    fn single_source_is_localized() {
        let (g, origin, cfg) = setup();
        let engine = BgpEngine::new(&g.topology, &cfg);
        let schedule = full_schedule(
            &g.topology,
            &origin,
            &GeneratorParams {
                max_removals: 2,
                max_poison_configs: Some(10),
            },
        );
        let campaign = run_campaign(
            &engine,
            &origin,
            &schedule,
            CatchmentSource::ControlPlane,
            None,
            200,
        );
        // Plant a single attacker in a tracked AS.
        let attacker = campaign.tracked[campaign.tracked.len() / 2];
        let mut volume = vec![0u64; g.topology.num_ases()];
        volume[attacker.us()] = 1_000_000;
        let vols = link_volume_matrix(&campaign, &volume);
        let suspects = rank_suspects(&campaign, &vols);
        assert!(!suspects.is_empty());
        // The attacker's cluster must rank first.
        assert!(
            suspects[0].members.contains(&attacker),
            "attacker not in top suspect cluster"
        );
        // And every suspect cluster member shares the attacker's catchment
        // history, so the suspect list is exactly one cluster.
        assert_eq!(suspects.len(), 1);
        let named = suspect_ases(&suspects, 1.0);
        assert!(named.contains(&attacker));
    }

    #[test]
    fn two_sources_both_found() {
        let (g, origin, cfg) = setup();
        let engine = BgpEngine::new(&g.topology, &cfg);
        let schedule = full_schedule(
            &g.topology,
            &origin,
            &GeneratorParams {
                max_removals: 2,
                max_poison_configs: Some(10),
            },
        );
        let campaign = run_campaign(
            &engine,
            &origin,
            &schedule,
            CatchmentSource::ControlPlane,
            None,
            200,
        );
        let a = campaign.tracked[3];
        let b = campaign.tracked[campaign.tracked.len() - 4];
        let mut volume = vec![0u64; g.topology.num_ases()];
        volume[a.us()] = 500_000;
        volume[b.us()] = 400_000;
        let vols = link_volume_matrix(&campaign, &volume);
        let suspects = rank_suspects(&campaign, &vols);
        let named = suspect_ases(&suspects, 1.0);
        assert!(named.contains(&a), "source a missed");
        assert!(named.contains(&b), "source b missed");
    }

    #[test]
    fn constraint_propagation_tightens_multi_source_bounds() {
        let (g, origin, cfg) = setup();
        let engine = BgpEngine::new(&g.topology, &cfg);
        let schedule = full_schedule(
            &g.topology,
            &origin,
            &GeneratorParams {
                max_removals: 2,
                max_poison_configs: Some(10),
            },
        );
        let campaign = run_campaign(
            &engine,
            &origin,
            &schedule,
            CatchmentSource::ControlPlane,
            None,
            200,
        );
        // Several simultaneous sources.
        let sources = [
            campaign.tracked[2],
            campaign.tracked[campaign.tracked.len() / 2],
            campaign.tracked[campaign.tracked.len() - 3],
        ];
        let mut volume = vec![0u64; g.topology.num_ases()];
        for (i, s) in sources.iter().enumerate() {
            volume[s.us()] = 100_000 * (i as u64 + 1);
        }
        let vols = link_volume_matrix(&campaign, &volume);

        let simple = rank_suspects(&campaign, &vols);
        let refined = estimate_cluster_volumes(&campaign, &vols, 10);
        // Refinement never names more clusters than the simple bound.
        assert!(refined.len() <= simple.len());
        // Bounds are well-formed and every true source cluster survives
        // with an upper bound covering its real volume.
        for s in &sources {
            let real = volume[s.us()];
            let est = refined
                .iter()
                .find(|e| e.members.contains(s))
                .expect("true source exonerated");
            assert!(est.lower <= real, "lower {} > real {real}", est.lower);
            assert!(est.upper >= real, "upper {} < real {real}", est.upper);
        }
        // And all bounds are ordered.
        for e in &refined {
            assert!(e.lower <= e.upper);
        }
    }

    #[test]
    fn constraint_propagation_single_source_is_tight() {
        let (g, origin, cfg) = setup();
        let engine = BgpEngine::new(&g.topology, &cfg);
        let schedule = full_schedule(
            &g.topology,
            &origin,
            &GeneratorParams {
                max_removals: 2,
                max_poison_configs: Some(10),
            },
        );
        let campaign = run_campaign(
            &engine,
            &origin,
            &schedule,
            CatchmentSource::ControlPlane,
            None,
            200,
        );
        let attacker = campaign.tracked[campaign.tracked.len() / 2];
        let mut volume = vec![0u64; g.topology.num_ases()];
        volume[attacker.us()] = 777_000;
        let vols = link_volume_matrix(&campaign, &volume);
        let refined = estimate_cluster_volumes(&campaign, &vols, 10);
        // Exactly one cluster survives, with exact bounds.
        assert_eq!(refined.len(), 1);
        assert!(refined[0].members.contains(&attacker));
        assert_eq!(refined[0].lower, 777_000);
        assert_eq!(refined[0].upper, 777_000);
    }

    #[test]
    fn parallel_campaign_equals_sequential() {
        let (g, origin, cfg) = setup();
        let engine = BgpEngine::new(&g.topology, &cfg);
        let schedule = full_schedule(
            &g.topology,
            &origin,
            &GeneratorParams {
                max_removals: 2,
                max_poison_configs: Some(10),
            },
        );
        let seq = run_campaign(
            &engine,
            &origin,
            &schedule,
            CatchmentSource::ControlPlane,
            None,
            200,
        );
        for threads in [1usize, 3, 8, 64] {
            let par = run_campaign_parallel(
                &engine,
                &origin,
                &schedule,
                CatchmentSource::ControlPlane,
                200,
                threads,
            );
            assert_eq!(par.catchments, seq.catchments, "threads={threads}");
            assert_eq!(par.tracked, seq.tracked);
            assert_eq!(par.clustering.num_clusters(), seq.clustering.num_clusters());
            assert_eq!(par.records, seq.records);
        }
    }

    #[test]
    fn sharded_campaign_equals_parallel_for_every_shard_count() {
        let (g, origin, cfg) = setup();
        let engine = BgpEngine::new(&g.topology, &cfg);
        let schedule = full_schedule(
            &g.topology,
            &origin,
            &GeneratorParams {
                max_removals: 2,
                max_poison_configs: Some(10),
            },
        );
        for source in [CatchmentSource::ControlPlane, CatchmentSource::DataPlane] {
            let seq = run_campaign_mode(
                &engine,
                &origin,
                &schedule,
                source,
                None,
                200,
                CampaignMode::Warm,
            );
            for (threads, shards) in [(1, 1), (1, 4), (3, 2), (4, 8), (2, 64)] {
                let sharded =
                    run_campaign_sharded(&engine, &origin, &schedule, source, 200, threads, shards);
                assert_eq!(
                    sharded.catchments, seq.catchments,
                    "threads={threads} shards={shards}"
                );
                assert_eq!(sharded.tracked, seq.tracked);
                assert_eq!(sharded.clustering.clusters(), seq.clustering.clusters());
                assert_eq!(sharded.attribution, seq.attribution);
                assert_eq!(sharded.records, seq.records);
                assert_eq!(
                    sharded.stats.shards,
                    ShardPlan::new(g.topology.num_ases(), shards).num_shards()
                );
                // The canonical merge produced a non-trivial union arena
                // (final session arenas can sit below the high-water mark
                // after cold restarts, so `peak` is not a lower bound).
                assert!(sharded.stats.merged_arena_nodes > 0);
            }
        }
    }

    #[test]
    fn shard_plan_tiles_the_index_space() {
        for (n, k) in [
            (10, 3),
            (10, 1),
            (7, 7),
            (5, 9),
            (1, 4),
            (100, 8),
            (12_000, 8),
            (80_000, 16),
        ] {
            let plan = ShardPlan::new(n, k);
            assert!(plan.num_shards() >= 1 && plan.num_shards() <= n.max(1));
            let mut covered = 0usize;
            let mut next = 0usize;
            for r in plan.ranges() {
                assert_eq!(r.start, next, "ranges must tile contiguously");
                assert!(!r.is_empty(), "no empty shards after clamping");
                assert_eq!(
                    r.start % 64,
                    0,
                    "shard boundaries are u64-word-aligned for the bitset merge"
                );
                covered += r.len();
                next = r.end;
            }
            assert_eq!(covered, n);
            assert_eq!(next, n);
        }
    }

    #[test]
    fn shard_plan_auto_scales_with_threads_but_respects_min_span() {
        // Single-threaded: one shard, nothing to share.
        assert_eq!(ShardPlan::auto(80_000, 1).num_shards(), 1);
        // Multicore at scale: two tasks per thread.
        assert_eq!(ShardPlan::auto(80_000, 8).num_shards(), 16);
        // Small topology: the MIN_SPAN cap wins over thread count.
        let small = ShardPlan::auto(100, 8);
        assert_eq!(small.num_shards(), 1);
        // Mid-size: capped at ⌈n / MIN_SPAN⌉ shards, never below MIN_SPAN
        // per shard (modulo the final partial shard).
        let mid = ShardPlan::auto(12_000, 8);
        assert!(mid.num_shards() <= 3);
        for r in mid.ranges() {
            assert_eq!(r.start % 64, 0);
        }
    }

    #[test]
    fn match_fraction_ranks_attacker_first_with_fresh_catchments() {
        let (g, origin, cfg) = setup();
        let engine = BgpEngine::new(&g.topology, &cfg);
        let schedule = full_schedule(
            &g.topology,
            &origin,
            &GeneratorParams {
                max_removals: 2,
                max_poison_configs: Some(10),
            },
        );
        let campaign = run_campaign(
            &engine,
            &origin,
            &schedule,
            CatchmentSource::ControlPlane,
            None,
            200,
        );
        let attacker = campaign.tracked[campaign.tracked.len() / 3];
        let mut volume = vec![0u64; g.topology.num_ases()];
        volume[attacker.us()] = 1_000;
        let vols = link_volume_matrix(&campaign, &volume);
        let scores = match_fraction_scores(&campaign, &vols);
        // The attacker's cluster scores a perfect 1.0 and ranks first.
        assert!((scores[0].2 - 1.0).abs() < 1e-12);
        assert!(scores[0].1.contains(&attacker));
        // Scores are sorted descending.
        for w in scores.windows(2) {
            assert!(w[0].2 >= w[1].2);
        }
    }

    #[test]
    fn measured_campaign_runs_and_imputes() {
        let (g, origin, cfg) = setup();
        let engine = BgpEngine::new(&g.topology, &cfg);
        let cones = trackdown_topology::cone::ConeInfo::compute(&g.topology);
        let plane = MeasurementPlane::new(
            &g.topology,
            &cones,
            &trackdown_measure::MeasurementConfig::default(),
        );
        let schedule = full_schedule(
            &g.topology,
            &origin,
            &GeneratorParams {
                max_removals: 1,
                max_poison_configs: Some(5),
            },
        );
        let campaign = run_campaign(
            &engine,
            &origin,
            &schedule,
            CatchmentSource::Measured,
            Some(&plane),
            200,
        );
        let stats = campaign.imputation.unwrap();
        assert_eq!(stats.analysis_sources, campaign.tracked.len());
        assert!(!campaign.tracked.is_empty());
        assert!(campaign.clustering.num_clusters() > 1);
    }

    /// Inline differential: the indexed attribution functions agree with
    /// their rescan references on a real campaign with several attackers.
    /// (The heavy proptest version lives in tests/attribution_differential.)
    #[test]
    fn indexed_attribution_matches_rescan_references() {
        let (g, origin, cfg) = setup();
        let engine = BgpEngine::new(&g.topology, &cfg);
        let schedule = full_schedule(
            &g.topology,
            &origin,
            &GeneratorParams {
                max_removals: 2,
                max_poison_configs: Some(10),
            },
        );
        let campaign = run_campaign(
            &engine,
            &origin,
            &schedule,
            CatchmentSource::ControlPlane,
            None,
            200,
        );
        let mut volume = vec![0u64; g.topology.num_ases()];
        for (i, s) in campaign.tracked.iter().step_by(7).enumerate() {
            volume[s.us()] = 10_000 * (i as u64 + 1);
        }
        let vols = link_volume_matrix(&campaign, &volume);
        assert_eq!(
            rank_suspects(&campaign, &vols),
            rank_suspects_rescan(&campaign, &vols)
        );
        assert_eq!(
            estimate_cluster_volumes(&campaign, &vols, 10),
            estimate_cluster_volumes_rescan(&campaign, &vols, 10)
        );
        assert_eq!(
            match_fraction_scores(&campaign, &vols),
            match_fraction_scores_rescan(&campaign, &vols)
        );
    }

    /// The attribution index reconstructs exactly the per-cluster link
    /// matrix the rescan path reads off representative catchments.
    #[test]
    fn final_links_matches_representative_catchments() {
        let (g, origin, cfg) = setup();
        let engine = BgpEngine::new(&g.topology, &cfg);
        let schedule = full_schedule(
            &g.topology,
            &origin,
            &GeneratorParams {
                max_removals: 1,
                max_poison_configs: Some(6),
            },
        );
        let campaign = run_campaign(
            &engine,
            &origin,
            &schedule,
            CatchmentSource::ControlPlane,
            None,
            200,
        );
        let links = campaign.attribution.final_links();
        assert_eq!(links.len(), campaign.clustering.num_clusters());
        assert_eq!(
            campaign.attribution.num_configs(),
            campaign.catchments.len()
        );
        for (c, row) in links.iter().enumerate() {
            let rep = campaign.clustering.cluster_members(c as u32)[0];
            for (k, cat) in campaign.catchments.iter().enumerate() {
                assert_eq!(row[k], cat.get(rep), "cluster {c} config {k}");
            }
        }
        // The split log accounts for all cluster growth.
        let grown: usize = (0..campaign.attribution.num_configs())
            .flat_map(|k| campaign.attribution.split_log(k))
            .map(|s| s.children.len() - 1)
            .sum();
        assert_eq!(grown + 1, campaign.clustering.num_clusters());
    }

    /// A short volume row is a caller bug, not zero volume (the old
    /// `unwrap_or(0)` silently exonerated clusters on missing data).
    #[test]
    #[should_panic(expected = "silently exonerate")]
    fn short_volume_rows_rejected() {
        let (g, origin, cfg) = setup();
        let engine = BgpEngine::new(&g.topology, &cfg);
        let schedule = full_schedule(
            &g.topology,
            &origin,
            &GeneratorParams {
                max_removals: 1,
                max_poison_configs: Some(4),
            },
        );
        let campaign = run_campaign(
            &engine,
            &origin,
            &schedule,
            CatchmentSource::ControlPlane,
            None,
            200,
        );
        let mut vols = link_volume_matrix(&campaign, &vec![1u64; g.topology.num_ases()]);
        vols[0].truncate(campaign.attribution.num_links().saturating_sub(1));
        let _ = rank_suspects(&campaign, &vols);
    }

    /// An over-wide volume row is equally a caller bug: the extra entries
    /// can never be matched against any tracked cluster, so accepting them
    /// would silently drop whatever volume the caller put there.
    #[test]
    #[should_panic(expected = "silently ignored")]
    fn wide_volume_rows_rejected() {
        let (g, origin, cfg) = setup();
        let engine = BgpEngine::new(&g.topology, &cfg);
        let schedule = full_schedule(
            &g.topology,
            &origin,
            &GeneratorParams {
                max_removals: 1,
                max_poison_configs: Some(4),
            },
        );
        let campaign = run_campaign(
            &engine,
            &origin,
            &schedule,
            CatchmentSource::ControlPlane,
            None,
            200,
        );
        let mut vols = link_volume_matrix(&campaign, &vec![1u64; g.topology.num_ases()]);
        vols[0].push(77); // one entry past the attribution width
        let _ = estimate_cluster_volumes(&campaign, &vols, 10);
    }

    /// `fit_link_volumes` adapts honeypot-shaped rows (the origin's full
    /// link count) to the exact width contract without changing any
    /// volume a tracked cluster can see.
    #[test]
    fn fit_link_volumes_trims_to_the_attribution_width() {
        let (g, origin, cfg) = setup();
        let engine = BgpEngine::new(&g.topology, &cfg);
        let schedule = full_schedule(
            &g.topology,
            &origin,
            &GeneratorParams {
                max_removals: 1,
                max_poison_configs: Some(4),
            },
        );
        let campaign = run_campaign(
            &engine,
            &origin,
            &schedule,
            CatchmentSource::ControlPlane,
            None,
            200,
        );
        let volume = vec![3u64; g.topology.num_ases()];
        let exact = link_volume_matrix(&campaign, &volume);
        // Honeypot-shaped rows: origin width, possibly wider than the
        // attribution plane.
        let wide: Vec<Vec<u64>> = campaign
            .catchments
            .iter()
            .map(|cat| trackdown_traffic::volume_per_link(cat, &volume, origin.num_links()))
            .collect();
        let fitted = fit_link_volumes(&campaign, wide);
        assert_eq!(
            rank_suspects(&campaign, &fitted),
            rank_suspects(&campaign, &exact)
        );
        for row in &fitted {
            assert_eq!(row.len(), campaign.attribution.num_links());
        }
    }

    #[test]
    #[should_panic(expected = "empty schedule")]
    fn empty_schedule_rejected() {
        let (g, origin, cfg) = setup();
        let engine = BgpEngine::new(&g.topology, &cfg);
        let _ = run_campaign(
            &engine,
            &origin,
            &[],
            CatchmentSource::ControlPlane,
            None,
            200,
        );
    }
}
