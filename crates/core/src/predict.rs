//! Catchment prediction (§V-C and future-work item (ii)).
//!
//! Measuring catchments takes tens of minutes per configuration (BGP
//! convergence plus traceroute rounds). If catchments can be *predicted*
//! from a routing-policy model, the origin can pre-rank configurations and
//! deploy only the most informative ones. Figure 9 shows most ASes follow
//! the Gao-Rexford model, so a clean-policy simulation is a natural
//! predictor; this module implements it and scores its accuracy.

use crate::config::AnnouncementConfig;
use serde::{Deserialize, Serialize};
use trackdown_bgp::{BgpEngine, Catchments, EngineConfig, OriginAs, PolicyConfig};
use trackdown_topology::{AsIndex, Topology};

/// Accuracy of a prediction against observed catchments.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct PredictionReport {
    /// Sources where both prediction and observation assign a link.
    pub evaluated: usize,
    /// Sources where the predicted link matches the observed one.
    pub correct: usize,
    /// Sources observed but not predicted (or vice versa).
    pub coverage_gaps: usize,
}

impl PredictionReport {
    /// Fraction of evaluated sources predicted correctly.
    pub fn accuracy(&self) -> f64 {
        if self.evaluated == 0 {
            1.0
        } else {
            self.correct as f64 / self.evaluated as f64
        }
    }
}

/// A catchment predictor: a clean Gao-Rexford model of the topology
/// (no violators, loop prevention everywhere, no tier-1 filtering) —
/// everything an outside observer could assume without measurements.
pub struct CatchmentPredictor<'t> {
    engine: BgpEngine<'t>,
    max_events_factor: usize,
}

impl<'t> CatchmentPredictor<'t> {
    /// Build the predictor over a topology.
    pub fn new(topo: &'t Topology) -> CatchmentPredictor<'t> {
        let cfg = EngineConfig {
            policy: PolicyConfig {
                seed: 0,
                violator_fraction: 0.0,
                no_loop_prevention_fraction: 0.0,
                tier1_poison_filtering: false,
                extensions: Default::default(),
            },
            max_events_factor: 200,
        };
        CatchmentPredictor {
            engine: BgpEngine::new(topo, &cfg),
            max_events_factor: 200,
        }
    }

    /// Predict the catchments of one configuration.
    pub fn predict(&self, origin: &OriginAs, config: &AnnouncementConfig) -> Catchments {
        let outcome = self
            .engine
            .propagate_config(
                origin,
                &config.to_link_announcements(),
                self.max_events_factor,
            )
            .expect("valid configuration");
        Catchments::from_control_plane(&outcome)
    }

    /// Score a prediction against observed catchments over a tracked set.
    pub fn score(
        predicted: &Catchments,
        observed: &Catchments,
        tracked: &[AsIndex],
    ) -> PredictionReport {
        let mut r = PredictionReport::default();
        for &s in tracked {
            match (predicted.get(s), observed.get(s)) {
                (Some(p), Some(o)) => {
                    r.evaluated += 1;
                    if p == o {
                        r.correct += 1;
                    }
                }
                (None, None) => {}
                _ => r.coverage_gaps += 1,
            }
        }
        r
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trackdown_topology::gen::{generate, TopologyConfig};

    #[test]
    fn prediction_is_perfect_when_world_matches_model() {
        let g = generate(&TopologyConfig::small(51));
        let origin = OriginAs::peering_style(&g, 4);
        // The "real" world runs clean policies with the predictor's own
        // tiebreak seed: prediction must be exact.
        let clean = EngineConfig {
            policy: PolicyConfig {
                seed: 0,
                violator_fraction: 0.0,
                no_loop_prevention_fraction: 0.0,
                tier1_poison_filtering: false,
                extensions: Default::default(),
            },
            ..EngineConfig::default()
        };
        let engine = BgpEngine::new(&g.topology, &clean);
        let predictor = CatchmentPredictor::new(&g.topology);
        let cfg = AnnouncementConfig::anycast_all(4);
        let observed = Catchments::from_control_plane(
            &engine
                .propagate_config(&origin, &cfg.to_link_announcements(), 200)
                .unwrap(),
        );
        let predicted = predictor.predict(&origin, &cfg);
        let tracked: Vec<AsIndex> = g.topology.indices().collect();
        let report = CatchmentPredictor::score(&predicted, &observed, &tracked);
        assert_eq!(report.coverage_gaps, 0);
        assert_eq!(report.accuracy(), 1.0);
    }

    #[test]
    fn unknown_tiebreaks_limit_prediction() {
        // Same clean policies but different IGP-like tiebreak salts: the
        // residual error measures how many catchments are decided by ties
        // (which is exactly why the paper calls route prediction hard and
        // why prepending has leverage).
        let g = generate(&TopologyConfig::small(51));
        let origin = OriginAs::peering_style(&g, 4);
        let clean = EngineConfig {
            policy: PolicyConfig {
                seed: 9,
                violator_fraction: 0.0,
                no_loop_prevention_fraction: 0.0,
                tier1_poison_filtering: false,
                extensions: Default::default(),
            },
            ..EngineConfig::default()
        };
        let engine = BgpEngine::new(&g.topology, &clean);
        let predictor = CatchmentPredictor::new(&g.topology);
        let cfg = AnnouncementConfig::anycast_all(4);
        let observed = Catchments::from_control_plane(
            &engine
                .propagate_config(&origin, &cfg.to_link_announcements(), 200)
                .unwrap(),
        );
        let predicted = predictor.predict(&origin, &cfg);
        let tracked: Vec<AsIndex> = g.topology.indices().collect();
        let report = CatchmentPredictor::score(&predicted, &observed, &tracked);
        let acc = report.accuracy();
        assert!(acc > 0.35, "prediction collapsed entirely: {acc}");
        assert!(acc < 1.0, "ties should flip at least one AS");
    }

    #[test]
    fn violators_degrade_but_do_not_destroy_prediction() {
        let g = generate(&TopologyConfig::medium(52));
        let origin = OriginAs::peering_style(&g, 4);
        let noisy = EngineConfig {
            policy: PolicyConfig {
                seed: 77,
                violator_fraction: 0.15,
                no_loop_prevention_fraction: 0.02,
                tier1_poison_filtering: true,
                extensions: Default::default(),
            },
            ..EngineConfig::default()
        };
        let engine = BgpEngine::new(&g.topology, &noisy);
        let predictor = CatchmentPredictor::new(&g.topology);
        let cfg = AnnouncementConfig::anycast_all(4);
        let observed = Catchments::from_control_plane(
            &engine
                .propagate_config(&origin, &cfg.to_link_announcements(), 200)
                .unwrap(),
        );
        let predicted = predictor.predict(&origin, &cfg);
        let tracked: Vec<AsIndex> = g.topology.indices().collect();
        let report = CatchmentPredictor::score(&predicted, &observed, &tracked);
        assert!(report.evaluated > 0);
        let acc = report.accuracy();
        assert!(acc > 0.5, "accuracy collapsed: {acc}");
    }

    #[test]
    fn score_counts_gaps() {
        let mut p = Catchments::unassigned(3);
        let mut o = Catchments::unassigned(3);
        p.set(AsIndex(0), Some(trackdown_bgp::LinkId(0)));
        o.set(AsIndex(0), Some(trackdown_bgp::LinkId(1)));
        o.set(AsIndex(1), Some(trackdown_bgp::LinkId(0)));
        let tracked: Vec<AsIndex> = (0..3).map(AsIndex).collect();
        let r = CatchmentPredictor::score(&p, &o, &tracked);
        assert_eq!(r.evaluated, 1);
        assert_eq!(r.correct, 0);
        assert_eq!(r.coverage_gaps, 1);
        assert_eq!(r.accuracy(), 0.0);
        let empty = CatchmentPredictor::score(
            &Catchments::unassigned(3),
            &Catchments::unassigned(3),
            &tracked,
        );
        assert_eq!(empty.accuracy(), 1.0);
    }
}
