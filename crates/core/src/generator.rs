//! Systematic generation of announcement configurations (§III-A, §IV-a).
//!
//! Three techniques, deployed in phases:
//!
//! 1. **Locations** — announce from every subset of the peering links of
//!    size `|L|, |L|−1, …, |L|−r` in decreasing size order. Removing up to
//!    `r` links guarantees at least `r+1` distinct routes per source.
//! 2. **Prepending** — for each location configuration, one extra
//!    configuration per active link, prepending there.
//! 3. **Poisoning** — announce from all links, poisoning one neighbor of a
//!    directly-connected transit provider on the announcement through that
//!    provider (the Figure 2 strategy: sever the `provider–neighbor` link
//!    for routes toward the prefix).
//!
//! With 7 links and `r = 3` this reproduces the paper's counts:
//! 64 location + 294 prepending configurations, plus one per provider
//! neighbor (347 on PEERING).

use crate::config::{AnnouncementConfig, Phase};
use serde::{Deserialize, Serialize};
use trackdown_bgp::{Community, CommunitySet, LinkId, OriginAs};
use trackdown_topology::{Asn, Topology};

/// Generation parameters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GeneratorParams {
    /// Maximum number of links removed in the location phase (`r − 1` in
    /// the route-count guarantee; the paper uses 3, discovering ≥ 4
    /// routes).
    pub max_removals: usize,
    /// Cap on poisoning configurations (`None` = one per provider
    /// neighbor, like the paper's 347).
    pub max_poison_configs: Option<usize>,
}

impl Default for GeneratorParams {
    fn default() -> GeneratorParams {
        GeneratorParams {
            max_removals: 3,
            max_poison_configs: None,
        }
    }
}

/// All k-element subsets of `0..n` in lexicographic order.
fn subsets_of_size(n: usize, k: usize) -> Vec<Vec<u8>> {
    let mut out = Vec::new();
    let mut current: Vec<u8> = (0..k as u8).collect();
    if k > n {
        return out;
    }
    if k == 0 {
        out.push(Vec::new());
        return out;
    }
    loop {
        out.push(current.clone());
        // Advance to next combination.
        let mut i = k;
        loop {
            if i == 0 {
                return out;
            }
            i -= 1;
            if current[i] < (n - k + i) as u8 {
                current[i] += 1;
                for j in i + 1..k {
                    current[j] = current[j - 1] + 1;
                }
                break;
            }
        }
    }
}

/// Phase 1: location configurations, decreasing subset size, starting with
/// the full anycast baseline.
pub fn location_phase(num_links: usize, max_removals: usize) -> Vec<AnnouncementConfig> {
    let mut out = Vec::new();
    let max_removals = max_removals.min(num_links.saturating_sub(1));
    for removed in 0..=max_removals {
        let size = num_links - removed;
        for subset in subsets_of_size(num_links, size) {
            out.push(AnnouncementConfig::anycast(subset.into_iter().map(LinkId)));
        }
    }
    out
}

/// Phase 2: for each location configuration, prepend at each active link
/// in turn (§IV-a: "for each such configuration c, we generate an
/// additional |A_c| configurations, prepending from each active location
/// in turn").
pub fn prepend_phase(location_configs: &[AnnouncementConfig]) -> Vec<AnnouncementConfig> {
    let mut out = Vec::new();
    for cfg in location_configs {
        for &link in &cfg.announce {
            out.push(cfg.clone().with_prepend(link));
        }
    }
    out
}

/// A poisoning target: a neighbor `target` of PoP provider `provider`,
/// to be poisoned on the announcement through `via`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PoisonTarget {
    /// The origin's peering link whose announcement carries the poison.
    pub via: LinkId,
    /// The provider on that link.
    pub provider: Asn,
    /// The neighbor of the provider being poisoned.
    pub target: Asn,
}

/// Identify poisoning targets: all neighbors of the origin's transit
/// providers (the paper found 347 such neighbors), excluding the origin's
/// own providers — poisoning a PoP provider on its own link just drops the
/// announcement, and poisoning another PoP's provider would sever a link
/// the experiment controls directly anyway.
pub fn poison_targets(topo: &Topology, origin: &OriginAs) -> Vec<PoisonTarget> {
    let provider_asns: Vec<Asn> = origin.links.iter().map(|l| l.provider).collect();
    let mut seen_targets: Vec<Asn> = Vec::new();
    let mut out = Vec::new();
    for link in &origin.links {
        let Some(p) = topo.index_of(link.provider) else {
            continue;
        };
        for &(n, _) in topo.neighbors(p) {
            let asn = topo.asn_of(n);
            if asn == origin.asn || provider_asns.contains(&asn) {
                continue;
            }
            // One configuration per neighbor, matching the paper's count;
            // the first provider adjacency wins.
            if seen_targets.contains(&asn) {
                continue;
            }
            seen_targets.push(asn);
            out.push(PoisonTarget {
                via: link.id,
                provider: link.provider,
                target: asn,
            });
        }
    }
    out
}

/// Phase 3: one configuration per poisoning target — announce from all
/// links, poisoning the target on the announcement through its provider.
pub fn poison_phase(
    topo: &Topology,
    origin: &OriginAs,
    max_configs: Option<usize>,
) -> Vec<AnnouncementConfig> {
    let mut targets = poison_targets(topo, origin);
    if let Some(cap) = max_configs {
        targets.truncate(cap);
    }
    targets
        .into_iter()
        .map(|t| AnnouncementConfig::anycast(origin.link_ids()).with_poison(t.via, vec![t.target]))
        .collect()
}

/// The full schedule: locations, then prepending, then poisoning, in
/// deployment order (baseline anycast first).
pub fn full_schedule(
    topo: &Topology,
    origin: &OriginAs,
    params: &GeneratorParams,
) -> Vec<AnnouncementConfig> {
    let loc = location_phase(origin.num_links(), params.max_removals);
    let pre = prepend_phase(&loc);
    let poi = poison_phase(topo, origin, params.max_poison_configs);
    let mut out = loc;
    out.extend(pre);
    out.extend(poi);
    out
}

/// Extension phase: export-scoping configurations using BGP action
/// communities (§VIII future work). For each link, one configuration
/// scoping that link's announcement away from the provider's peers, one
/// keeping it inside the provider's customer cone, and one applying
/// provider-side prepending — each a distinct way to shrink the link's
/// catchment *without* touching the other links.
pub fn community_phase(origin: &OriginAs) -> Vec<AnnouncementConfig> {
    let mut out = Vec::new();
    for link in origin.link_ids() {
        for communities in [
            CommunitySet::from_vec(vec![Community::NoExportToPeers]),
            CommunitySet::from_vec(vec![Community::NoExportToProviders]),
            CommunitySet::from_vec(vec![
                Community::NoExportToPeers,
                Community::NoExportToProviders,
            ]),
            CommunitySet::from_vec(vec![Community::PrependAtProvider(4)]),
        ] {
            out.push(
                AnnouncementConfig::anycast(origin.link_ids()).with_communities(link, communities),
            );
        }
    }
    out
}

/// Indices in a schedule where each phase ends (exclusive): feeds the
/// vertical phase markers of Figure 4.
pub fn phase_boundaries(schedule: &[AnnouncementConfig]) -> Vec<(Phase, usize)> {
    let mut out = Vec::new();
    for phase in [
        Phase::Location,
        Phase::Prepend,
        Phase::Poison,
        Phase::Community,
    ] {
        let end = schedule
            .iter()
            .rposition(|c| c.phase == phase)
            .map(|i| i + 1);
        if let Some(end) = end {
            out.push((phase, end));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use trackdown_topology::gen::{generate, TopologyConfig};

    /// Binomial coefficient.
    fn choose(n: usize, k: usize) -> usize {
        if k > n {
            return 0;
        }
        let mut r = 1usize;
        for i in 0..k {
            r = r * (n - i) / (i + 1);
        }
        r
    }

    #[test]
    fn subsets_counts_and_order() {
        let s = subsets_of_size(4, 2);
        assert_eq!(s.len(), 6);
        assert_eq!(s[0], vec![0, 1]);
        assert_eq!(s[5], vec![2, 3]);
        assert_eq!(subsets_of_size(3, 3), vec![vec![0, 1, 2]]);
        assert_eq!(subsets_of_size(3, 0), vec![Vec::<u8>::new()]);
        assert!(subsets_of_size(2, 3).is_empty());
    }

    #[test]
    fn location_phase_matches_paper_count() {
        // Σ_{x=0..3} C(7, 7−x) = 1 + 7 + 21 + 35 = 64.
        let cfgs = location_phase(7, 3);
        assert_eq!(cfgs.len(), 64);
        // Baseline first: all 7 links.
        assert_eq!(cfgs[0].announce.len(), 7);
        // Decreasing size order.
        for w in cfgs.windows(2) {
            assert!(w[0].announce.len() >= w[1].announce.len());
        }
        // No duplicates.
        let mut seen = std::collections::HashSet::new();
        for c in &cfgs {
            assert!(seen.insert(c.announce.clone()));
        }
    }

    #[test]
    fn prepend_phase_matches_paper_count() {
        // Σ_{x=0..3} (7−x)·C(7, 7−x) = 7 + 42 + 105 + 140 = 294.
        let loc = location_phase(7, 3);
        let pre = prepend_phase(&loc);
        assert_eq!(pre.len(), 294);
        for c in &pre {
            assert_eq!(c.prepend.len(), 1);
            assert!(c.announce.contains(c.prepend.iter().next().unwrap()));
            assert_eq!(c.phase, Phase::Prepend);
        }
    }

    #[test]
    fn generic_counts_formula() {
        for n in 2..=6 {
            for r in 0..n {
                let loc = location_phase(n, r);
                let expected: usize = (0..=r).map(|x| choose(n, n - x)).sum();
                assert_eq!(loc.len(), expected, "n={n} r={r}");
                let pre = prepend_phase(&loc);
                let expected_pre: usize = (0..=r).map(|x| (n - x) * choose(n, n - x)).sum();
                assert_eq!(pre.len(), expected_pre, "n={n} r={r}");
            }
        }
    }

    #[test]
    fn max_removals_clamped_to_keep_announcements_nonempty() {
        let cfgs = location_phase(3, 10);
        assert!(cfgs.iter().all(|c| !c.announce.is_empty()));
        // Sizes 3, 2, 1 → 1 + 3 + 3 = 7 configs.
        assert_eq!(cfgs.len(), 7);
    }

    #[test]
    fn poison_targets_are_provider_neighbors() {
        let g = generate(&TopologyConfig::small(5));
        let origin = OriginAs::peering_style(&g, 4);
        let targets = poison_targets(&g.topology, &origin);
        assert!(!targets.is_empty());
        let provider_asns: Vec<Asn> = origin.links.iter().map(|l| l.provider).collect();
        let mut seen = std::collections::HashSet::new();
        for t in &targets {
            // Target must neighbor its provider.
            let p = g.topology.index_of(t.provider).unwrap();
            let n = g.topology.index_of(t.target).unwrap();
            assert!(g.topology.linked(p, n));
            // Never a provider or the origin itself.
            assert!(!provider_asns.contains(&t.target));
            assert_ne!(t.target, origin.asn);
            // One config per target.
            assert!(seen.insert(t.target));
            // Poisoned via the link of its provider.
            assert_eq!(origin.link(t.via).unwrap().provider, t.provider);
        }
    }

    #[test]
    fn poison_phase_announces_everywhere() {
        let g = generate(&TopologyConfig::small(5));
        let origin = OriginAs::peering_style(&g, 4);
        let cfgs = poison_phase(&g.topology, &origin, Some(10));
        assert!(cfgs.len() <= 10);
        for c in &cfgs {
            assert_eq!(c.announce.len(), 4);
            assert_eq!(c.phase, Phase::Poison);
            let total_poisons: usize = c.poison.values().map(|v| v.len()).sum();
            assert_eq!(total_poisons, 1);
        }
    }

    #[test]
    fn full_schedule_is_valid_and_ordered() {
        let g = generate(&TopologyConfig::small(5));
        let origin = OriginAs::peering_style(&g, 4);
        let schedule = full_schedule(&g.topology, &origin, &GeneratorParams::default());
        for c in &schedule {
            c.validate(&origin).unwrap();
        }
        let bounds = phase_boundaries(&schedule);
        assert_eq!(bounds.len(), 3);
        assert_eq!(bounds[0].0, Phase::Location);
        assert!(bounds[0].1 < bounds[1].1);
        assert!(bounds[1].1 < bounds[2].1);
        assert_eq!(bounds[2].1, schedule.len());
        // Location count for n=4, r=3: C(4,4)+C(4,3)+C(4,2)+C(4,1)=15.
        assert_eq!(bounds[0].1, 15);
        // Prepend count: 4·1 + 3·4 + 2·6 + 1·4 = 32.
        assert_eq!(bounds[1].1 - bounds[0].1, 32);
    }
}
