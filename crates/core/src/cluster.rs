//! Catchment-intersection clustering (§III-B).
//!
//! A *cluster* is a set of sources that landed in the same catchment in
//! every announcement configuration deployed so far: from the origin's
//! vantage, its members are mutually indistinguishable. The paper's
//! algorithm starts with one all-encompassing cluster and, for each
//! catchment `α` of each configuration, splits every overlapping cluster
//! `κ` into `κ∩α` and `κ∖α`.
//!
//! The incremental implementation here is equivalent but O(n) per
//! configuration: two sources stay in the same cluster iff their whole
//! catchment-assignment histories are identical, so each refinement maps
//! `(old cluster, new catchment)` pairs to new cluster ids. A direct
//! transcription of the paper's split loop is kept (`split_by_naive`) and
//! property-tested against the fast path.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use trackdown_bgp::{Catchments, LinkId};
use trackdown_topology::analysis::{ccdf, summary_stats, SummaryStats};
use trackdown_topology::AsIndex;

/// A partition of the tracked sources into indistinguishability clusters.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Clustering {
    /// The tracked sources, fixed at construction.
    sources: Vec<AsIndex>,
    /// `assignment[k]` = cluster id of `sources[k]`.
    assignment: Vec<u32>,
    /// Number of clusters (ids are `0..num_clusters`).
    num_clusters: u32,
}

impl Clustering {
    /// The initial state: every tracked source in one big cluster.
    pub fn single(sources: Vec<AsIndex>) -> Clustering {
        let n = sources.len();
        Clustering {
            sources,
            assignment: vec![0; n],
            num_clusters: if n == 0 { 0 } else { 1 },
        }
    }

    /// The tracked sources.
    pub fn sources(&self) -> &[AsIndex] {
        &self.sources
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.num_clusters as usize
    }

    /// Cluster id of a tracked source (`None` if the source is not
    /// tracked).
    pub fn cluster_of(&self, source: AsIndex) -> Option<u32> {
        self.sources
            .iter()
            .position(|&s| s == source)
            .map(|k| self.assignment[k])
    }

    /// Refine the partition with one configuration's catchments: sources
    /// remain together only if they share both their previous cluster and
    /// their catchment here (unassigned sources count as a shared
    /// "unobserved" pseudo-catchment, exactly like the `κ∖α` side of
    /// the paper's split).
    pub fn refine(&mut self, catchments: &Catchments) {
        trackdown_obs::counter!("cluster.refines").inc();
        let mut remap: HashMap<(u32, Option<LinkId>), u32> = HashMap::new();
        let mut next = 0u32;
        for (k, &s) in self.sources.iter().enumerate() {
            let key = (self.assignment[k], catchments.get(s));
            let id = *remap.entry(key).or_insert_with(|| {
                let id = next;
                next += 1;
                id
            });
            self.assignment[k] = id;
        }
        self.num_clusters = next;
    }

    /// The paper's split loop, transcribed literally: for each catchment
    /// `α`, split every overlapping cluster `κ` into `κ∩α` and `κ∖α`.
    /// Quadratic; used to cross-check [`Clustering::refine`].
    pub fn split_by_naive(&mut self, catchments: &Catchments) {
        for link in catchments.active_links() {
            // α restricted to tracked sources.
            let alpha: Vec<bool> = self
                .sources
                .iter()
                .map(|&s| catchments.get(s) == Some(link))
                .collect();
            let ids: Vec<u32> = {
                let mut v = self.assignment.clone();
                v.sort_unstable();
                v.dedup();
                v
            };
            for kappa in ids {
                let members: Vec<usize> = (0..self.sources.len())
                    .filter(|&k| self.assignment[k] == kappa)
                    .collect();
                let inside: Vec<usize> = members.iter().copied().filter(|&k| alpha[k]).collect();
                if inside.is_empty() || inside.len() == members.len() {
                    continue; // κ∩α = ∅ or κ∩α = κ: no split
                }
                // Move κ∩α into a fresh cluster id.
                let fresh = self.num_clusters;
                self.num_clusters += 1;
                for k in inside {
                    self.assignment[k] = fresh;
                }
            }
        }
        self.normalize();
    }

    /// Renumber cluster ids densely in first-appearance order (so two
    /// equal partitions compare equal regardless of construction path).
    pub fn normalize(&mut self) {
        let mut remap: HashMap<u32, u32> = HashMap::new();
        let mut next = 0u32;
        for a in &mut self.assignment {
            let id = *remap.entry(*a).or_insert_with(|| {
                let id = next;
                next += 1;
                id
            });
            *a = id;
        }
        self.num_clusters = next;
    }

    /// Materialize the clusters as member lists, ordered by cluster id.
    pub fn clusters(&self) -> Vec<Vec<AsIndex>> {
        let mut out = vec![Vec::new(); self.num_clusters as usize];
        for (k, &s) in self.sources.iter().enumerate() {
            out[self.assignment[k] as usize].push(s);
        }
        out
    }

    /// Cluster sizes (unordered histogram input).
    pub fn sizes(&self) -> Vec<usize> {
        let mut counts = vec![0usize; self.num_clusters as usize];
        for &a in &self.assignment {
            counts[a as usize] += 1;
        }
        counts
    }

    /// Mean cluster size (the paper's headline metric: 1.40 ASes).
    pub fn mean_size(&self) -> f64 {
        if self.num_clusters == 0 {
            return 0.0;
        }
        self.sources.len() as f64 / self.num_clusters as f64
    }

    /// Summary statistics over cluster sizes.
    pub fn stats(&self) -> SummaryStats {
        summary_stats(&self.sizes())
    }

    /// CCDF of cluster sizes (Figure 3 / 6 series).
    pub fn size_ccdf(&self) -> Vec<(usize, f64)> {
        ccdf(&self.sizes())
    }

    /// Fraction of clusters that contain exactly one AS (92 % after the
    /// paper's 705 configurations).
    pub fn singleton_fraction(&self) -> f64 {
        let sizes = self.sizes();
        if sizes.is_empty() {
            return 0.0;
        }
        sizes.iter().filter(|&&s| s == 1).count() as f64 / sizes.len() as f64
    }

    /// Size of the cluster containing `source`.
    pub fn cluster_size_of(&self, source: AsIndex) -> Option<usize> {
        let id = self.cluster_of(source)?;
        Some(self.assignment.iter().filter(|&&a| a == id).count())
    }
}

/// Build a clustering by refining over a sequence of catchments.
pub fn cluster_catchments(sources: Vec<AsIndex>, catchments: &[Catchments]) -> Clustering {
    let mut c = Clustering::single(sources);
    for cat in catchments {
        c.refine(cat);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cat(n: usize, links: &[Option<u8>]) -> Catchments {
        let mut c = Catchments::unassigned(n);
        for (i, l) in links.iter().enumerate() {
            c.set(AsIndex(i as u32), l.map(LinkId));
        }
        c
    }

    fn sources(n: usize) -> Vec<AsIndex> {
        (0..n as u32).map(AsIndex).collect()
    }

    #[test]
    fn initial_state_is_one_cluster() {
        let c = Clustering::single(sources(5));
        assert_eq!(c.num_clusters(), 1);
        assert_eq!(c.mean_size(), 5.0);
        assert_eq!(c.sizes(), vec![5]);
        assert_eq!(c.singleton_fraction(), 0.0);
        let empty = Clustering::single(vec![]);
        assert_eq!(empty.num_clusters(), 0);
        assert_eq!(empty.mean_size(), 0.0);
    }

    #[test]
    fn refine_splits_by_catchment() {
        let mut c = Clustering::single(sources(4));
        c.refine(&cat(4, &[Some(0), Some(0), Some(1), Some(1)]));
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.cluster_of(AsIndex(0)), c.cluster_of(AsIndex(1)));
        assert_ne!(c.cluster_of(AsIndex(0)), c.cluster_of(AsIndex(2)));
        // Second config splits the second pair.
        c.refine(&cat(4, &[Some(0), Some(0), Some(0), Some(1)]));
        assert_eq!(c.num_clusters(), 3);
        assert_eq!(c.cluster_of(AsIndex(0)), c.cluster_of(AsIndex(1)));
    }

    #[test]
    fn unobserved_sources_group_together() {
        let mut c = Clustering::single(sources(4));
        c.refine(&cat(4, &[Some(0), None, None, Some(1)]));
        assert_eq!(c.num_clusters(), 3);
        assert_eq!(c.cluster_of(AsIndex(1)), c.cluster_of(AsIndex(2)));
    }

    #[test]
    fn identical_catchments_do_not_split() {
        let mut c = Clustering::single(sources(3));
        let same = cat(3, &[Some(0), Some(0), Some(0)]);
        c.refine(&same);
        c.refine(&same);
        assert_eq!(c.num_clusters(), 1);
    }

    #[test]
    fn figure1_example() {
        // Paper Figure 1: three configurations partition sources into the
        // clusters at the bottom right. Model 6 sources with assignment
        // histories mirroring the colored regions.
        let n = 6;
        let configs = [
            cat(n, &[Some(0), Some(0), Some(1), Some(1), Some(2), Some(2)]),
            cat(n, &[Some(0), Some(0), Some(0), Some(2), Some(2), Some(2)]),
            cat(n, &[Some(0), Some(1), Some(1), Some(2), Some(2), Some(0)]),
        ];
        let c = cluster_catchments(sources(n), &configs);
        // Histories: s0=(0,0,0) s1=(0,0,1) s2=(1,0,1) s3=(1,2,2)
        //            s4=(2,2,2) s5=(2,2,0) — all distinct: 6 singletons.
        assert_eq!(c.num_clusters(), 6);
        assert_eq!(c.singleton_fraction(), 1.0);
    }

    #[test]
    fn refine_matches_naive_split() {
        // Cross-check on a handful of deterministic patterns.
        let patterns: Vec<Vec<Option<u8>>> = vec![
            vec![Some(0), Some(1), Some(0), Some(1), None, Some(2)],
            vec![Some(1), Some(1), Some(1), Some(0), Some(0), None],
            vec![None, None, Some(2), Some(2), Some(2), Some(2)],
        ];
        let n = 6;
        let mut fast = Clustering::single(sources(n));
        let mut naive = Clustering::single(sources(n));
        for p in &patterns {
            let c = cat(n, p);
            fast.refine(&c);
            naive.split_by_naive(&c);
            // Compare partitions via co-membership.
            for i in 0..n {
                for j in 0..n {
                    let a = AsIndex(i as u32);
                    let b = AsIndex(j as u32);
                    assert_eq!(
                        fast.cluster_of(a) == fast.cluster_of(b),
                        naive.cluster_of(a) == naive.cluster_of(b),
                        "sources {i},{j} disagree"
                    );
                }
            }
        }
    }

    #[test]
    fn stats_and_ccdf() {
        let mut c = Clustering::single(sources(6));
        c.refine(&cat(
            6,
            &[Some(0), Some(0), Some(0), Some(1), Some(1), Some(2)],
        ));
        assert_eq!(c.num_clusters(), 3);
        let mut sizes = c.sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2, 3]);
        assert!((c.mean_size() - 2.0).abs() < 1e-9);
        assert!((c.singleton_fraction() - 1.0 / 3.0).abs() < 1e-9);
        let ccdf = c.size_ccdf();
        assert_eq!(ccdf[0], (1, 1.0));
        assert_eq!(c.cluster_size_of(AsIndex(0)), Some(3));
        assert_eq!(c.cluster_size_of(AsIndex(5)), Some(1));
        assert_eq!(c.cluster_size_of(AsIndex(99)), None);
    }

    #[test]
    fn cluster_count_is_monotone_under_refinement() {
        let mut c = Clustering::single(sources(8));
        let mut prev = c.num_clusters();
        let configs = [
            cat(
                8,
                &[
                    Some(0),
                    Some(0),
                    Some(1),
                    Some(1),
                    Some(0),
                    Some(1),
                    Some(0),
                    Some(1),
                ],
            ),
            cat(
                8,
                &[
                    Some(0),
                    Some(1),
                    Some(0),
                    Some(1),
                    Some(0),
                    Some(1),
                    Some(0),
                    Some(1),
                ],
            ),
            cat(
                8,
                &[
                    Some(2),
                    Some(2),
                    Some(2),
                    Some(2),
                    Some(2),
                    Some(2),
                    Some(2),
                    Some(2),
                ],
            ),
        ];
        for cfg in &configs {
            c.refine(cfg);
            assert!(c.num_clusters() >= prev);
            prev = c.num_clusters();
        }
    }

    #[test]
    fn clusters_materialization_partitions_sources() {
        let mut c = Clustering::single(sources(5));
        c.refine(&cat(5, &[Some(0), Some(1), Some(0), None, Some(1)]));
        let clusters = c.clusters();
        let total: usize = clusters.iter().map(|cl| cl.len()).sum();
        assert_eq!(total, 5);
        assert_eq!(clusters.len(), c.num_clusters());
        for cl in &clusters {
            assert!(!cl.is_empty());
        }
    }
}
