//! Catchment-intersection clustering (§III-B) on an indexed,
//! incremental core.
//!
//! A *cluster* is a set of sources that landed in the same catchment in
//! every announcement configuration deployed so far: from the origin's
//! vantage, its members are mutually indistinguishable. The paper's
//! algorithm starts with one all-encompassing cluster and, for each
//! catchment `α` of each configuration, splits every overlapping cluster
//! `κ` into `κ∩α` and `κ∖α`.
//!
//! The incremental implementation here is equivalent but O(n) per
//! configuration: two sources stay in the same cluster iff their whole
//! catchment-assignment histories are identical, so each refinement maps
//! `(old cluster, new catchment)` pairs to new cluster ids. A direct
//! transcription of the paper's split loop is kept (`split_by_naive`) and
//! property-tested against the fast path.
//!
//! Beyond the flat assignment vector, the partition maintains two
//! *derived index structures* so the attribution plane never scans:
//!
//! * a persistent source→position map, making [`Clustering::cluster_of`]
//!   and [`Clustering::cluster_size_of`] O(1) instead of an O(n)
//!   `position()` scan per call (the old scans are preserved as
//!   [`Clustering::cluster_of_scan`] / [`Clustering::cluster_size_of_scan`]
//!   for regression tests and benchmarks);
//! * a CSR-style membership layout (`offsets` + `members`), so
//!   [`Clustering::cluster_members`] returns a borrowed slice and
//!   [`Clustering::iter_clusters`] walks every cluster without
//!   materializing a `Vec<Vec<AsIndex>>`.
//!
//! Each [`Clustering::refine_logged`] additionally reports a
//! [`RefineDelta`] — the old→new cluster mapping, the catchment link each
//! new cluster landed on, and the *split log* (which clusters split, into
//! what) — which is what lets suspect ranking and volume estimation in
//! `localize` update per configuration instead of rescanning catchments.

use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use trackdown_bgp::{Catchments, LinkId};
use trackdown_topology::analysis::{ccdf, summary_stats, SummaryStats};
use trackdown_topology::AsIndex;

/// A partition of the tracked sources into indistinguishability clusters.
///
/// Serialized form carries only the canonical fields (`sources`,
/// `assignment`, `num_clusters`); the lookup index and CSR membership are
/// derived and rebuilt on deserialization, so the wire format is
/// unchanged from the pre-indexed implementation.
#[derive(Debug, Clone, Serialize, Deserialize)]
#[serde(from = "ClusteringRepr", into = "ClusteringRepr")]
pub struct Clustering {
    /// The tracked sources, fixed at construction.
    sources: Vec<AsIndex>,
    /// `assignment[k]` = cluster id of `sources[k]`.
    assignment: Vec<u32>,
    /// Number of clusters (ids are `0..num_clusters`).
    num_clusters: u32,
    /// Derived: source → position in `sources` (first occurrence wins,
    /// matching the old `position()` scan).
    index: HashMap<AsIndex, u32>,
    /// Derived CSR row offsets: cluster `c`'s members live at
    /// `members[offsets[c]..offsets[c + 1]]`. Length `num_clusters + 1`.
    offsets: Vec<u32>,
    /// Derived CSR member lists, cluster-major, source order within each
    /// cluster (the same order `clusters()` always produced).
    members: Vec<AsIndex>,
}

/// Canonical serialized fields of [`Clustering`].
#[derive(Clone, Serialize, Deserialize)]
struct ClusteringRepr {
    sources: Vec<AsIndex>,
    assignment: Vec<u32>,
    num_clusters: u32,
}

impl From<ClusteringRepr> for Clustering {
    fn from(r: ClusteringRepr) -> Clustering {
        let mut c = Clustering {
            index: build_index(&r.sources),
            sources: r.sources,
            assignment: r.assignment,
            num_clusters: r.num_clusters,
            offsets: Vec::new(),
            members: Vec::new(),
        };
        c.rebuild_csr();
        c
    }
}

impl From<Clustering> for ClusteringRepr {
    fn from(c: Clustering) -> ClusteringRepr {
        ClusteringRepr {
            sources: c.sources,
            assignment: c.assignment,
            num_clusters: c.num_clusters,
        }
    }
}

/// Equality is over the partition itself; the derived structures are a
/// function of the canonical fields.
impl PartialEq for Clustering {
    fn eq(&self, other: &Clustering) -> bool {
        self.sources == other.sources
            && self.assignment == other.assignment
            && self.num_clusters == other.num_clusters
    }
}

impl Eq for Clustering {}

fn build_index(sources: &[AsIndex]) -> HashMap<AsIndex, u32> {
    let mut index = HashMap::with_capacity(sources.len());
    for (k, &s) in sources.iter().enumerate() {
        index.entry(s).or_insert(k as u32);
    }
    index
}

/// One cluster that split during a refinement: the parent's id in the
/// pre-refinement numbering and the ids (post-refinement numbering) of
/// the two or more children it split into, in first-appearance order.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClusterSplit {
    /// Cluster id before the refinement.
    pub parent: u32,
    /// Ids after the refinement (≥ 2 entries, ascending).
    pub children: Vec<u32>,
}

/// What one [`Clustering::refine_logged`] call did to the partition: the
/// full old→new cluster mapping, the catchment link every new cluster
/// landed on under the refining configuration, and the split log.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RefineDelta {
    /// `parent_of[c]` = pre-refinement id of post-refinement cluster `c`.
    /// Every new cluster has exactly one parent; an unsplit cluster is its
    /// parent's only child (possibly renumbered).
    pub parent_of: Vec<u32>,
    /// `link_of[c]` = the catchment all members of post-refinement cluster
    /// `c` share under the refining configuration (`None` = unobserved).
    pub link_of: Vec<Option<LinkId>>,
    /// Clusters that actually split (more than one child), in parent-id
    /// order — the per-configuration split log.
    pub splits: Vec<ClusterSplit>,
}

impl RefineDelta {
    /// Number of clusters after the refinement this delta describes.
    pub fn num_clusters(&self) -> usize {
        self.parent_of.len()
    }
}

impl Clustering {
    /// The initial state: every tracked source in one big cluster.
    pub fn single(sources: Vec<AsIndex>) -> Clustering {
        let n = sources.len();
        let mut c = Clustering {
            index: build_index(&sources),
            sources,
            assignment: vec![0; n],
            num_clusters: if n == 0 { 0 } else { 1 },
            offsets: Vec::new(),
            members: Vec::new(),
        };
        c.rebuild_csr();
        c
    }

    /// The tracked sources.
    pub fn sources(&self) -> &[AsIndex] {
        &self.sources
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.num_clusters as usize
    }

    /// Cluster id of a tracked source (`None` if the source is not
    /// tracked). O(1) through the persistent index.
    pub fn cluster_of(&self, source: AsIndex) -> Option<u32> {
        self.index
            .get(&source)
            .map(|&k| self.assignment[k as usize])
    }

    /// The pre-index implementation of [`Clustering::cluster_of`]: an
    /// O(n) `position()` scan per call. Kept as the reference for
    /// regression tests and the scan-vs-index benchmarks.
    pub fn cluster_of_scan(&self, source: AsIndex) -> Option<u32> {
        self.sources
            .iter()
            .position(|&s| s == source)
            .map(|k| self.assignment[k])
    }

    /// Rebuild the CSR membership (offsets + members) from the assignment
    /// vector. O(n); called after every mutation of the assignment.
    fn rebuild_csr(&mut self) {
        let c = self.num_clusters as usize;
        self.offsets.clear();
        self.offsets.resize(c + 1, 0);
        for &a in &self.assignment {
            self.offsets[a as usize + 1] += 1;
        }
        for i in 0..c {
            self.offsets[i + 1] += self.offsets[i];
        }
        self.members.clear();
        self.members.resize(self.sources.len(), AsIndex(0));
        let mut cursor: Vec<u32> = self.offsets[..c].to_vec();
        for (k, &s) in self.sources.iter().enumerate() {
            let a = self.assignment[k] as usize;
            self.members[cursor[a] as usize] = s;
            cursor[a] += 1;
        }
    }

    /// Refine the partition with one configuration's catchments: sources
    /// remain together only if they share both their previous cluster and
    /// their catchment here (unassigned sources count as a shared
    /// "unobserved" pseudo-catchment, exactly like the `κ∖α` side of
    /// the paper's split).
    pub fn refine(&mut self, catchments: &Catchments) {
        let _ = self.refine_logged(catchments);
    }

    /// [`Clustering::refine`] that also reports what happened: the
    /// old→new cluster mapping, each new cluster's catchment link under
    /// this configuration, and the split log. New ids are assigned in
    /// first-appearance order over the source vector — identical to the
    /// unlogged refinement, so partitions (and campaigns built on them)
    /// are byte-for-byte unchanged.
    pub fn refine_logged(&mut self, catchments: &Catchments) -> RefineDelta {
        let _span = trackdown_obs::span("cluster.refine");
        trackdown_obs::counter!("cluster.refines").inc();
        let old_num = self.num_clusters as usize;
        let mut remap: HashMap<(u32, Option<LinkId>), u32> = HashMap::new();
        let mut parent_of: Vec<u32> = Vec::new();
        let mut link_of: Vec<Option<LinkId>> = Vec::new();
        let mut next = 0u32;
        // One dense materialization (a word-scan over the bitset rows)
        // instead of a per-source `Catchments::get`, whose row probe is
        // O(active links) — per-source lookups below are then O(1).
        let dense = catchments.dense();
        for (k, &s) in self.sources.iter().enumerate() {
            let key = (self.assignment[k], dense[s.us()]);
            let id = *remap.entry(key).or_insert_with(|| {
                let id = next;
                next += 1;
                parent_of.push(key.0);
                link_of.push(key.1);
                id
            });
            self.assignment[k] = id;
        }
        self.num_clusters = next;
        self.rebuild_csr();
        // Split log: parents with more than one child.
        let mut children_of: Vec<Vec<u32>> = vec![Vec::new(); old_num];
        for (c, &p) in parent_of.iter().enumerate() {
            children_of[p as usize].push(c as u32);
        }
        let splits: Vec<ClusterSplit> = children_of
            .into_iter()
            .enumerate()
            .filter(|(_, ch)| ch.len() > 1)
            .map(|(p, children)| ClusterSplit {
                parent: p as u32,
                children,
            })
            .collect();
        trackdown_obs::counter!("cluster.splits").add(splits.len() as u64);
        RefineDelta {
            parent_of,
            link_of,
            splits,
        }
    }

    /// The paper's split loop, transcribed literally: for each catchment
    /// `α`, split every overlapping cluster `κ` into `κ∩α` and `κ∖α`.
    /// Quadratic; used to cross-check [`Clustering::refine`].
    pub fn split_by_naive(&mut self, catchments: &Catchments) {
        for link in catchments.active_links() {
            // α restricted to tracked sources.
            let alpha: Vec<bool> = self
                .sources
                .iter()
                .map(|&s| catchments.get(s) == Some(link))
                .collect();
            let ids: Vec<u32> = {
                let mut v = self.assignment.clone();
                v.sort_unstable();
                v.dedup();
                v
            };
            for kappa in ids {
                let members: Vec<usize> = (0..self.sources.len())
                    .filter(|&k| self.assignment[k] == kappa)
                    .collect();
                let inside: Vec<usize> = members.iter().copied().filter(|&k| alpha[k]).collect();
                if inside.is_empty() || inside.len() == members.len() {
                    continue; // κ∩α = ∅ or κ∩α = κ: no split
                }
                // Move κ∩α into a fresh cluster id.
                let fresh = self.num_clusters;
                self.num_clusters += 1;
                for k in inside {
                    self.assignment[k] = fresh;
                }
            }
        }
        self.normalize();
    }

    /// Renumber cluster ids densely in first-appearance order (so two
    /// equal partitions compare equal regardless of construction path).
    pub fn normalize(&mut self) {
        let mut remap: HashMap<u32, u32> = HashMap::new();
        let mut next = 0u32;
        for a in &mut self.assignment {
            let id = *remap.entry(*a).or_insert_with(|| {
                let id = next;
                next += 1;
                id
            });
            *a = id;
        }
        self.num_clusters = next;
        self.rebuild_csr();
    }

    /// Members of one cluster as a borrowed slice, in source order — the
    /// allocation-free accessor behind [`Clustering::clusters`].
    ///
    /// # Panics
    /// If `id >= num_clusters()`.
    pub fn cluster_members(&self, id: u32) -> &[AsIndex] {
        let lo = self.offsets[id as usize] as usize;
        let hi = self.offsets[id as usize + 1] as usize;
        &self.members[lo..hi]
    }

    /// Size of one cluster, O(1) from the CSR offsets.
    ///
    /// # Panics
    /// If `id >= num_clusters()`.
    pub fn cluster_size(&self, id: u32) -> usize {
        (self.offsets[id as usize + 1] - self.offsets[id as usize]) as usize
    }

    /// Iterate every cluster's member slice in cluster-id order without
    /// materializing `Vec<Vec<AsIndex>>`.
    pub fn iter_clusters(&self) -> impl Iterator<Item = &[AsIndex]> {
        (0..self.num_clusters).map(move |c| self.cluster_members(c))
    }

    /// Materialize the clusters as member lists, ordered by cluster id.
    ///
    /// Prefer [`Clustering::iter_clusters`] / [`Clustering::cluster_members`]
    /// on hot paths — this clones every member list.
    pub fn clusters(&self) -> Vec<Vec<AsIndex>> {
        self.iter_clusters().map(|m| m.to_vec()).collect()
    }

    /// Cluster sizes (unordered histogram input), O(clusters) from the
    /// CSR offsets.
    pub fn sizes(&self) -> Vec<usize> {
        self.offsets
            .windows(2)
            .map(|w| (w[1] - w[0]) as usize)
            .collect()
    }

    /// Mean cluster size (the paper's headline metric: 1.40 ASes).
    pub fn mean_size(&self) -> f64 {
        if self.num_clusters == 0 {
            return 0.0;
        }
        self.sources.len() as f64 / self.num_clusters as f64
    }

    /// Summary statistics over cluster sizes.
    pub fn stats(&self) -> SummaryStats {
        summary_stats(&self.sizes())
    }

    /// CCDF of cluster sizes (Figure 3 / 6 series).
    pub fn size_ccdf(&self) -> Vec<(usize, f64)> {
        ccdf(&self.sizes())
    }

    /// Fraction of clusters that contain exactly one AS (92 % after the
    /// paper's 705 configurations).
    pub fn singleton_fraction(&self) -> f64 {
        if self.num_clusters == 0 {
            return 0.0;
        }
        let singles = self.offsets.windows(2).filter(|w| w[1] - w[0] == 1).count();
        singles as f64 / self.num_clusters as f64
    }

    /// Size of the cluster containing `source`, O(1) through the index
    /// and CSR offsets.
    pub fn cluster_size_of(&self, source: AsIndex) -> Option<usize> {
        let id = self.cluster_of(source)?;
        Some(self.cluster_size(id))
    }

    /// The pre-index implementation of [`Clustering::cluster_size_of`]:
    /// an O(n) source scan followed by an O(n) assignment rescan. Kept as
    /// the reference for regression tests and benchmarks.
    pub fn cluster_size_of_scan(&self, source: AsIndex) -> Option<usize> {
        let id = self.cluster_of_scan(source)?;
        Some(self.assignment.iter().filter(|&&a| a == id).count())
    }
}

/// Build a clustering by refining over a sequence of catchments.
pub fn cluster_catchments(sources: Vec<AsIndex>, catchments: &[Catchments]) -> Clustering {
    let mut c = Clustering::single(sources);
    for cat in catchments {
        c.refine(cat);
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cat(n: usize, links: &[Option<u8>]) -> Catchments {
        let mut c = Catchments::unassigned(n);
        for (i, l) in links.iter().enumerate() {
            c.set(AsIndex(i as u32), l.map(LinkId));
        }
        c
    }

    fn sources(n: usize) -> Vec<AsIndex> {
        (0..n as u32).map(AsIndex).collect()
    }

    #[test]
    fn initial_state_is_one_cluster() {
        let c = Clustering::single(sources(5));
        assert_eq!(c.num_clusters(), 1);
        assert_eq!(c.mean_size(), 5.0);
        assert_eq!(c.sizes(), vec![5]);
        assert_eq!(c.singleton_fraction(), 0.0);
        let empty = Clustering::single(vec![]);
        assert_eq!(empty.num_clusters(), 0);
        assert_eq!(empty.mean_size(), 0.0);
        assert!(empty.clusters().is_empty());
        assert_eq!(empty.sizes(), Vec::<usize>::new());
    }

    #[test]
    fn refine_splits_by_catchment() {
        let mut c = Clustering::single(sources(4));
        c.refine(&cat(4, &[Some(0), Some(0), Some(1), Some(1)]));
        assert_eq!(c.num_clusters(), 2);
        assert_eq!(c.cluster_of(AsIndex(0)), c.cluster_of(AsIndex(1)));
        assert_ne!(c.cluster_of(AsIndex(0)), c.cluster_of(AsIndex(2)));
        // Second config splits the second pair.
        c.refine(&cat(4, &[Some(0), Some(0), Some(0), Some(1)]));
        assert_eq!(c.num_clusters(), 3);
        assert_eq!(c.cluster_of(AsIndex(0)), c.cluster_of(AsIndex(1)));
    }

    #[test]
    fn unobserved_sources_group_together() {
        let mut c = Clustering::single(sources(4));
        c.refine(&cat(4, &[Some(0), None, None, Some(1)]));
        assert_eq!(c.num_clusters(), 3);
        assert_eq!(c.cluster_of(AsIndex(1)), c.cluster_of(AsIndex(2)));
    }

    #[test]
    fn identical_catchments_do_not_split() {
        let mut c = Clustering::single(sources(3));
        let same = cat(3, &[Some(0), Some(0), Some(0)]);
        c.refine(&same);
        c.refine(&same);
        assert_eq!(c.num_clusters(), 1);
    }

    #[test]
    fn figure1_example() {
        // Paper Figure 1: three configurations partition sources into the
        // clusters at the bottom right. Model 6 sources with assignment
        // histories mirroring the colored regions.
        let n = 6;
        let configs = [
            cat(n, &[Some(0), Some(0), Some(1), Some(1), Some(2), Some(2)]),
            cat(n, &[Some(0), Some(0), Some(0), Some(2), Some(2), Some(2)]),
            cat(n, &[Some(0), Some(1), Some(1), Some(2), Some(2), Some(0)]),
        ];
        let c = cluster_catchments(sources(n), &configs);
        // Histories: s0=(0,0,0) s1=(0,0,1) s2=(1,0,1) s3=(1,2,2)
        //            s4=(2,2,2) s5=(2,2,0) — all distinct: 6 singletons.
        assert_eq!(c.num_clusters(), 6);
        assert_eq!(c.singleton_fraction(), 1.0);
    }

    #[test]
    fn refine_matches_naive_split() {
        // Cross-check on a handful of deterministic patterns.
        let patterns: Vec<Vec<Option<u8>>> = vec![
            vec![Some(0), Some(1), Some(0), Some(1), None, Some(2)],
            vec![Some(1), Some(1), Some(1), Some(0), Some(0), None],
            vec![None, None, Some(2), Some(2), Some(2), Some(2)],
        ];
        let n = 6;
        let mut fast = Clustering::single(sources(n));
        let mut naive = Clustering::single(sources(n));
        for p in &patterns {
            let c = cat(n, p);
            fast.refine(&c);
            naive.split_by_naive(&c);
            // Compare partitions via co-membership.
            for i in 0..n {
                for j in 0..n {
                    let a = AsIndex(i as u32);
                    let b = AsIndex(j as u32);
                    assert_eq!(
                        fast.cluster_of(a) == fast.cluster_of(b),
                        naive.cluster_of(a) == naive.cluster_of(b),
                        "sources {i},{j} disagree"
                    );
                }
            }
        }
    }

    #[test]
    fn stats_and_ccdf() {
        let mut c = Clustering::single(sources(6));
        c.refine(&cat(
            6,
            &[Some(0), Some(0), Some(0), Some(1), Some(1), Some(2)],
        ));
        assert_eq!(c.num_clusters(), 3);
        let mut sizes = c.sizes();
        sizes.sort_unstable();
        assert_eq!(sizes, vec![1, 2, 3]);
        assert!((c.mean_size() - 2.0).abs() < 1e-9);
        assert!((c.singleton_fraction() - 1.0 / 3.0).abs() < 1e-9);
        let ccdf = c.size_ccdf();
        assert_eq!(ccdf[0], (1, 1.0));
        assert_eq!(c.cluster_size_of(AsIndex(0)), Some(3));
        assert_eq!(c.cluster_size_of(AsIndex(5)), Some(1));
        assert_eq!(c.cluster_size_of(AsIndex(99)), None);
    }

    #[test]
    fn cluster_count_is_monotone_under_refinement() {
        let mut c = Clustering::single(sources(8));
        let mut prev = c.num_clusters();
        let configs = [
            cat(
                8,
                &[
                    Some(0),
                    Some(0),
                    Some(1),
                    Some(1),
                    Some(0),
                    Some(1),
                    Some(0),
                    Some(1),
                ],
            ),
            cat(
                8,
                &[
                    Some(0),
                    Some(1),
                    Some(0),
                    Some(1),
                    Some(0),
                    Some(1),
                    Some(0),
                    Some(1),
                ],
            ),
            cat(
                8,
                &[
                    Some(2),
                    Some(2),
                    Some(2),
                    Some(2),
                    Some(2),
                    Some(2),
                    Some(2),
                    Some(2),
                ],
            ),
        ];
        for cfg in &configs {
            c.refine(cfg);
            assert!(c.num_clusters() >= prev);
            prev = c.num_clusters();
        }
    }

    #[test]
    fn clusters_materialization_partitions_sources() {
        let mut c = Clustering::single(sources(5));
        c.refine(&cat(5, &[Some(0), Some(1), Some(0), None, Some(1)]));
        let clusters = c.clusters();
        let total: usize = clusters.iter().map(|cl| cl.len()).sum();
        assert_eq!(total, 5);
        assert_eq!(clusters.len(), c.num_clusters());
        for cl in &clusters {
            assert!(!cl.is_empty());
        }
    }

    /// Regression (ISSUE 4 satellite): indexed lookups must agree with the
    /// O(n) scans they replaced on a refined partition — including
    /// untracked sources.
    #[test]
    fn indexed_lookups_match_scans_on_refined_partition() {
        let n = 12;
        let mut c = Clustering::single(sources(n));
        let configs = [
            cat(
                n,
                &[
                    Some(0),
                    Some(1),
                    Some(0),
                    Some(1),
                    None,
                    Some(2),
                    Some(0),
                    Some(1),
                    None,
                    Some(2),
                    Some(2),
                    Some(0),
                ],
            ),
            cat(
                n,
                &[
                    Some(1),
                    Some(1),
                    Some(0),
                    Some(0),
                    Some(0),
                    None,
                    Some(1),
                    Some(0),
                    Some(0),
                    Some(2),
                    None,
                    Some(0),
                ],
            ),
        ];
        for cfg in &configs {
            c.refine(cfg);
            for i in 0..n as u32 + 5 {
                let s = AsIndex(i);
                assert_eq!(c.cluster_of(s), c.cluster_of_scan(s), "cluster_of({i})");
                assert_eq!(
                    c.cluster_size_of(s),
                    c.cluster_size_of_scan(s),
                    "cluster_size_of({i})"
                );
            }
        }
    }

    /// CSR invariants: member slices partition the sources, sizes match
    /// offsets, and members appear in source order within each cluster.
    #[test]
    fn csr_matches_assignment() {
        let n = 10;
        let mut c = Clustering::single(sources(n));
        c.refine(&cat(
            n,
            &[
                Some(0),
                Some(1),
                Some(0),
                None,
                Some(1),
                Some(2),
                Some(0),
                None,
                Some(1),
                Some(2),
            ],
        ));
        let mut seen = Vec::new();
        for id in 0..c.num_clusters() as u32 {
            let m = c.cluster_members(id);
            assert_eq!(m.len(), c.cluster_size(id));
            for &s in m {
                assert_eq!(c.cluster_of(s), Some(id));
                seen.push(s);
            }
            // Source order within the cluster.
            for w in m.windows(2) {
                assert!(w[0].0 < w[1].0);
            }
        }
        seen.sort_unstable_by_key(|s| s.0);
        assert_eq!(seen, c.sources());
        assert_eq!(
            c.iter_clusters().map(|m| m.to_vec()).collect::<Vec<_>>(),
            c.clusters()
        );
    }

    /// The split log names exactly the clusters that split, children
    /// cover their parents, and unsplit clusters map through parent_of.
    #[test]
    fn refine_logged_reports_splits() {
        let n = 6;
        let mut c = Clustering::single(sources(n));
        let d1 = c.refine_logged(&cat(
            n,
            &[Some(0), Some(0), Some(1), Some(1), Some(2), Some(2)],
        ));
        // One parent (the initial cluster) split into three children.
        assert_eq!(d1.num_clusters(), 3);
        assert_eq!(d1.splits.len(), 1);
        assert_eq!(d1.splits[0].parent, 0);
        assert_eq!(d1.splits[0].children, vec![0, 1, 2]);
        assert_eq!(d1.parent_of, vec![0, 0, 0]);
        assert_eq!(
            d1.link_of,
            vec![Some(LinkId(0)), Some(LinkId(1)), Some(LinkId(2))]
        );

        // Second config splits only the middle pair; the other clusters
        // survive as single children.
        let before = c.clone();
        let d2 = c.refine_logged(&cat(
            n,
            &[Some(0), Some(0), Some(0), Some(1), Some(2), Some(2)],
        ));
        assert_eq!(d2.num_clusters(), 4);
        assert_eq!(d2.splits.len(), 1);
        assert_eq!(d2.splits[0].parent, 1);
        assert_eq!(d2.splits[0].children.len(), 2);
        // Every new cluster's members were together in the parent, and
        // the parent sizes are conserved by their children.
        let mut child_size_by_parent = vec![0usize; before.num_clusters()];
        for (child, &parent) in d2.parent_of.iter().enumerate() {
            child_size_by_parent[parent as usize] += c.cluster_size(child as u32);
            for &m in c.cluster_members(child as u32) {
                assert_eq!(before.cluster_of(m), Some(parent));
            }
        }
        for (parent, &total) in child_size_by_parent.iter().enumerate() {
            assert_eq!(total, before.cluster_size(parent as u32));
        }
        // A no-op refinement logs no splits.
        let d3 = c.refine_logged(&cat(n, &[Some(0); 6]));
        assert!(d3.splits.is_empty());
        assert_eq!(d3.num_clusters(), c.num_clusters());
    }

    /// Serde round-trip preserves the partition and rebuilds the derived
    /// index and CSR structures.
    #[test]
    fn serde_roundtrip_rebuilds_derived_structures() {
        let n = 8;
        let mut c = Clustering::single(sources(n));
        c.refine(&cat(
            n,
            &[
                Some(0),
                Some(1),
                None,
                Some(0),
                Some(2),
                Some(1),
                None,
                Some(0),
            ],
        ));
        let json = serde_json::to_string(&c).unwrap();
        let back: Clustering = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
        for i in 0..n as u32 {
            let s = AsIndex(i);
            assert_eq!(back.cluster_of(s), c.cluster_of(s));
            assert_eq!(back.cluster_size_of(s), c.cluster_size_of(s));
        }
        assert_eq!(back.clusters(), c.clusters());
    }
}
