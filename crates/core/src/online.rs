//! Online localization during an ongoing attack (§V-C).
//!
//! While an amplification attack is running, every deployed configuration
//! costs real time (BGP convergence plus an observation window), so the
//! origin wants the *fewest* configurations that isolate the sources. This
//! module implements the attack-time loop the paper sketches:
//!
//! 1. start from the baseline anycast and the honeypot's per-link volumes;
//! 2. repeatedly pick the next configuration — greedily, using catchments
//!    measured *before* the attack when available — deploy it, observe the
//!    volumes, and narrow the suspect set;
//! 3. stop once the suspect set is small enough to act on (blackholing,
//!    notification) or the budget is exhausted.

use crate::cluster::Clustering;
use crate::config::AnnouncementConfig;
use serde::{Deserialize, Serialize};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use trackdown_bgp::{BgpEngine, Catchments, LinkId, OriginAs, RoutingOutcome};
use trackdown_topology::AsIndex;
use trackdown_traffic::VolumeAccumulator;

/// Options for the online loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OnlineOptions {
    /// Maximum configurations to deploy (the attack-time budget).
    pub max_configs: usize,
    /// Stop as soon as the named suspect set is at most this many ASes.
    pub target_suspects: usize,
    /// Pick configurations greedily using prior catchments (when given);
    /// otherwise deploy in schedule order.
    pub greedy: bool,
    /// Concurrent announcement prefixes: up to this many configurations
    /// deploy per *round* (§V-C: "use multiple prefixes and deploy
    /// multiple configurations concurrently"). Wall-clock cost is one
    /// convergence-plus-observation window per round, not per
    /// configuration.
    pub prefixes: usize,
}

impl Default for OnlineOptions {
    fn default() -> OnlineOptions {
        OnlineOptions {
            max_configs: 20,
            target_suspects: 3,
            greedy: true,
            prefixes: 1,
        }
    }
}

/// Outcome of an online localization run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OnlineResult {
    /// Configurations deployed, as indices into the candidate schedule,
    /// in deployment order.
    pub deployed: Vec<usize>,
    /// The final named suspect ASes.
    pub suspects: Vec<AsIndex>,
    /// True when the suspect target was reached within budget.
    pub localized: bool,
    /// Suspect-set size after each *round* (for time-to-localize curves).
    pub suspect_trajectory: Vec<usize>,
    /// Rounds used: with `prefixes = 1` this equals `deployed.len()`,
    /// with k prefixes it is ≈ `deployed.len() / k` — the wall-clock
    /// proxy.
    pub rounds: usize,
}

/// The volumes the honeypot reports for one deployed configuration.
pub type VolumeOracle<'a> = dyn Fn(&AnnouncementConfig) -> Vec<u64> + 'a;

/// A streaming measurement callback: deploy a configuration and return a
/// single-configuration [`VolumeAccumulator`] holding whatever the ingest
/// path collected during the observation window (a sketch at line rate,
/// exact batched counters otherwise). See [`localize_online_acc`].
pub type AccumulatorOracle<'a> = dyn Fn(&AnnouncementConfig) -> Box<dyn VolumeAccumulator> + 'a;

/// [`localize_online`] with a streaming accumulator per observation
/// window instead of exact dense volume rows.
///
/// Each deployed configuration's accumulator is materialized into one
/// dense row (configuration 0 of the returned accumulator) and fed to the
/// exact online loop. Soundness under one-sided overestimates is
/// inherited from the loop's exoneration rule: a cluster is dropped only
/// when its link reads *zero*, and an overestimating accumulator never
/// reports zero for a link that carried spoofed bytes — so the suspect
/// set converges to a superset of the exact loop's, never excluding the
/// true sources.
pub fn localize_online_acc(
    candidates: &[AnnouncementConfig],
    prior: Option<&[Catchments]>,
    tracked: &[AsIndex],
    observe: &AccumulatorOracle<'_>,
    measure_catchments: &dyn Fn(usize, &AnnouncementConfig) -> Catchments,
    opts: OnlineOptions,
) -> OnlineResult {
    let dense = |cfg: &AnnouncementConfig| -> Vec<u64> {
        let acc = observe(cfg);
        assert!(
            acc.num_configs() >= 1,
            "accumulator oracle must cover the observation window"
        );
        acc.dense_row(0)
    };
    localize_online(candidates, prior, tracked, &dense, measure_catchments, opts)
}

/// Suspects under the current observations: members of clusters whose
/// link carried volume in *every* deployed configuration.
///
/// This is the from-scratch rescan (materialize clusters, re-read every
/// catchment and volume vector per round). The online loop now maintains
/// the same per-cluster state incrementally through refinement deltas —
/// see [`SuspectState`] — and checks itself against this reference under
/// `debug_assertions`.
fn current_suspects(
    clustering: &Clustering,
    catchments: &[Catchments],
    volumes: &[Vec<u64>],
) -> Vec<AsIndex> {
    let mut out = Vec::new();
    'cluster: for members in clustering.iter_clusters() {
        let rep = members[0];
        let mut constrained = false;
        for (cat, vols) in catchments.iter().zip(volumes) {
            let Some(link) = cat.get(rep) else { continue };
            constrained = true;
            if vols.get(link.us()).copied().unwrap_or(0) == 0 {
                continue 'cluster;
            }
        }
        if constrained {
            out.extend_from_slice(members);
        }
    }
    out
}

/// Per-cluster suspect bookkeeping maintained incrementally across the
/// online loop: `constrained[c]` = the lineage of cluster `c` was observed
/// on some link in at least one deployed configuration, `alive[c]` = no
/// observed link of the lineage was ever silent. Because all members of a
/// cluster share their full catchment history, both flags survive splits
/// unchanged — children simply inherit them through the delta's parent
/// mapping.
struct SuspectState {
    constrained: Vec<bool>,
    alive: Vec<bool>,
}

impl SuspectState {
    fn new(clustering: &Clustering) -> SuspectState {
        SuspectState {
            constrained: vec![false; clustering.num_clusters()],
            alive: vec![true; clustering.num_clusters()],
        }
    }

    /// Re-key through one refinement delta and fold in the new
    /// configuration's volumes (absent entries read as silent, matching
    /// the rescan reference).
    fn apply(&mut self, delta: &crate::cluster::RefineDelta, vols: &[u64]) {
        let mut next_constrained = Vec::with_capacity(delta.num_clusters());
        let mut next_alive = Vec::with_capacity(delta.num_clusters());
        for (c, &parent) in delta.parent_of.iter().enumerate() {
            let mut constrained = self.constrained[parent as usize];
            let mut alive = self.alive[parent as usize];
            if let Some(link) = delta.link_of[c] {
                constrained = true;
                if vols.get(link.us()).copied().unwrap_or(0) == 0 {
                    alive = false;
                }
            }
            next_constrained.push(constrained);
            next_alive.push(alive);
        }
        self.constrained = next_constrained;
        self.alive = next_alive;
    }

    /// Members of every constrained, never-exonerated cluster, in cluster
    /// id order (identical to [`current_suspects`] output order).
    fn suspects(&self, clustering: &Clustering) -> Vec<AsIndex> {
        let mut out = Vec::new();
        for (c, members) in clustering.iter_clusters().enumerate() {
            if self.constrained[c] && self.alive[c] {
                out.extend_from_slice(members);
            }
        }
        out
    }
}

/// Expected number of suspect-set parts configuration `cat` produces,
/// judged on prior catchments (the greedy scoring step).
fn split_score(suspects: &[AsIndex], cat: &Catchments) -> usize {
    let mut links: Vec<Option<LinkId>> = suspects.iter().map(|&s| cat.get(s)).collect();
    links.sort_unstable();
    links.dedup();
    links.len()
}

/// Run the online localization loop.
///
/// * `candidates` — the configuration pool (e.g. the full schedule).
///   `candidates[0]` must be the currently-deployed baseline; it is always
///   "deployed" first.
/// * `prior` — per-candidate catchments measured before the attack
///   (`None` disables greedy selection).
/// * `observe` — the measurement callback: deploy a configuration, return
///   per-link spoofed volumes. In production this is the honeypot; in
///   simulation it propagates routes and attributes planted volumes.
/// * `measure_catchments` — returns the catchments to cluster with for a
///   deployed configuration (fresh measurement, or a stale `prior` reuse).
pub fn localize_online(
    candidates: &[AnnouncementConfig],
    prior: Option<&[Catchments]>,
    tracked: &[AsIndex],
    observe: &VolumeOracle<'_>,
    measure_catchments: &dyn Fn(usize, &AnnouncementConfig) -> Catchments,
    opts: OnlineOptions,
) -> OnlineResult {
    assert!(!candidates.is_empty());
    if let Some(p) = prior {
        assert_eq!(p.len(), candidates.len());
    }
    let mut clustering = Clustering::single(tracked.to_vec());
    let mut state = SuspectState::new(&clustering);
    let mut deployed = Vec::new();
    let mut catchments: Vec<Catchments> = Vec::new();
    let mut volumes: Vec<Vec<u64>> = Vec::new();
    let mut remaining: Vec<usize> = (1..candidates.len()).collect();
    let mut suspects: Vec<AsIndex> = tracked.to_vec();
    let mut trajectory = Vec::new();
    let prefixes = opts.prefixes.max(1);
    let mut rounds = 0usize;

    // Round 1 always deploys the baseline (plus greedy picks when more
    // than one prefix is available).
    let mut batch: Vec<usize> = vec![0usize];
    loop {
        // Top the batch up to the prefix budget.
        while batch.len() < prefixes
            && deployed.len() + batch.len() < opts.max_configs
            && !remaining.is_empty()
        {
            let pick = match (opts.greedy, prior) {
                (true, Some(prior_cats)) => {
                    let mut best: Option<(usize, usize)> = None; // (pos, score)
                    for (pos, &idx) in remaining.iter().enumerate() {
                        let score = split_score(&suspects, &prior_cats[idx]);
                        let better = match best {
                            None => true,
                            Some((_, s)) => score > s,
                        };
                        if better {
                            best = Some((pos, score));
                        }
                    }
                    best.map(|(pos, _)| remaining.remove(pos))
                }
                _ => Some(remaining.remove(0)),
            };
            match pick {
                Some(idx) => batch.push(idx),
                None => break,
            }
        }
        if batch.is_empty() || deployed.len() >= opts.max_configs {
            break;
        }
        rounds += 1;
        for &choice in &batch {
            let cfg = &candidates[choice];
            let cat = measure_catchments(choice, cfg);
            let vols = observe(cfg);
            let delta = clustering.refine_logged(&cat);
            state.apply(&delta, &vols);
            catchments.push(cat);
            volumes.push(vols);
            deployed.push(choice);
        }
        batch.clear();
        suspects = state.suspects(&clustering);
        // The incremental state must agree with the from-scratch rescan
        // every round (cheap insurance; the rescan is the old hot path).
        debug_assert_eq!(
            suspects,
            current_suspects(&clustering, &catchments, &volumes)
        );
        trajectory.push(suspects.len());
        if suspects.len() <= opts.target_suspects || remaining.is_empty() {
            break;
        }
    }
    OnlineResult {
        deployed,
        localized: suspects.len() <= opts.target_suspects,
        suspects,
        suspect_trajectory: trajectory,
        rounds,
    }
}

/// Simulation harness: run the online loop against ground-truth routing
/// with a planted per-AS volume vector. Returns the result plus the number
/// of configurations deployed.
///
/// Routing runs through one persistent warm [`CampaignSession`]: each
/// deployed configuration is an epoch transition from the previous one
/// (exactly what the live origin would do), and a memo cache keyed by the
/// canonical announcement footprint lets the observe and measure callbacks
/// for the same configuration share a single propagation. Fixpoint
/// uniqueness keeps the outcomes identical to per-callback cold starts.
pub fn simulate_online_attack(
    engine: &BgpEngine<'_>,
    origin: &OriginAs,
    candidates: &[AnnouncementConfig],
    prior: Option<&[Catchments]>,
    tracked: &[AsIndex],
    volume_per_as: &[u64],
    opts: OnlineOptions,
) -> OnlineResult {
    let session = RefCell::new(engine.session());
    let memo: RefCell<HashMap<String, Rc<RoutingOutcome>>> = RefCell::new(HashMap::new());
    let outcome_for = |cfg: &AnnouncementConfig| -> Rc<RoutingOutcome> {
        let key = cfg.footprint_key();
        if let Some(out) = memo.borrow().get(&key) {
            return Rc::clone(out);
        }
        let out = Rc::new(
            session
                .borrow_mut()
                .deploy_config(origin, &cfg.to_link_announcements(), 200)
                .expect("valid config"),
        );
        memo.borrow_mut().insert(key, Rc::clone(&out));
        out
    };
    let observe = |cfg: &AnnouncementConfig| -> Vec<u64> {
        let cat = Catchments::from_data_plane(&outcome_for(cfg));
        trackdown_traffic::volume_per_link(&cat, volume_per_as, origin.num_links())
    };
    let measure = |_idx: usize, cfg: &AnnouncementConfig| -> Catchments {
        Catchments::from_control_plane(&outcome_for(cfg))
    };
    localize_online(candidates, prior, tracked, &observe, &measure, opts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{full_schedule, GeneratorParams};
    use crate::localize::{run_campaign, CatchmentSource};
    use trackdown_bgp::{EngineConfig, PolicyConfig};
    use trackdown_topology::gen::{generate, TopologyConfig};

    fn setup() -> (
        trackdown_topology::gen::GeneratedTopology,
        OriginAs,
        EngineConfig,
        Vec<AnnouncementConfig>,
    ) {
        let g = generate(&TopologyConfig::medium(91));
        let origin = OriginAs::peering_style(&g, 5);
        let cfg = EngineConfig {
            policy: PolicyConfig {
                seed: 7,
                violator_fraction: 0.05,
                no_loop_prevention_fraction: 0.02,
                tier1_poison_filtering: true,
                extensions: Default::default(),
            },
            ..EngineConfig::default()
        };
        let schedule = full_schedule(
            &g.topology,
            &origin,
            &GeneratorParams {
                max_removals: 2,
                max_poison_configs: Some(30),
            },
        );
        (g, origin, cfg, schedule)
    }

    #[test]
    fn online_loop_localizes_single_attacker() {
        let (g, origin, cfg, schedule) = setup();
        let engine = BgpEngine::new(&g.topology, &cfg);
        let campaign = run_campaign(
            &engine,
            &origin,
            &schedule,
            CatchmentSource::ControlPlane,
            None,
            200,
        );
        let attacker = campaign.tracked[campaign.tracked.len() / 4];
        let mut vol = vec![0u64; g.topology.num_ases()];
        vol[attacker.us()] = 1_000;
        let result = simulate_online_attack(
            &engine,
            &origin,
            &schedule,
            Some(&campaign.catchments),
            &campaign.tracked,
            &vol,
            OnlineOptions {
                max_configs: 25,
                target_suspects: 5,
                greedy: true,
                prefixes: 1,
            },
        );
        assert!(result.suspects.contains(&attacker), "attacker escaped");
        // Trajectory is non-increasing.
        for w in result.suspect_trajectory.windows(2) {
            assert!(w[1] <= w[0]);
        }
        assert_eq!(result.deployed[0], 0, "baseline deployed first");
        assert_eq!(result.deployed.len(), result.suspect_trajectory.len());
    }

    #[test]
    fn greedy_needs_no_more_configs_than_sequential() {
        let (g, origin, cfg, schedule) = setup();
        let engine = BgpEngine::new(&g.topology, &cfg);
        let campaign = run_campaign(
            &engine,
            &origin,
            &schedule,
            CatchmentSource::ControlPlane,
            None,
            200,
        );
        let mut greedy_total = 0usize;
        let mut seq_total = 0usize;
        for k in 0..6 {
            let attacker = campaign.tracked[(k * 31 + 11) % campaign.tracked.len()];
            let mut vol = vec![0u64; g.topology.num_ases()];
            vol[attacker.us()] = 1_000;
            let run = |greedy: bool| {
                simulate_online_attack(
                    &engine,
                    &origin,
                    &schedule,
                    Some(&campaign.catchments),
                    &campaign.tracked,
                    &vol,
                    OnlineOptions {
                        max_configs: 40,
                        target_suspects: 5,
                        greedy,
                        prefixes: 1,
                    },
                )
            };
            greedy_total += run(true).deployed.len();
            seq_total += run(false).deployed.len();
        }
        assert!(
            greedy_total <= seq_total,
            "greedy used {greedy_total} configs vs sequential {seq_total}"
        );
    }

    #[test]
    fn multiple_prefixes_cut_rounds() {
        let (g, origin, cfg, schedule) = setup();
        let engine = BgpEngine::new(&g.topology, &cfg);
        let campaign = run_campaign(
            &engine,
            &origin,
            &schedule,
            CatchmentSource::ControlPlane,
            None,
            200,
        );
        let attacker = campaign.tracked[campaign.tracked.len() / 4];
        let mut vol = vec![0u64; g.topology.num_ases()];
        vol[attacker.us()] = 1_000;
        let run = |prefixes: usize| {
            simulate_online_attack(
                &engine,
                &origin,
                &schedule,
                Some(&campaign.catchments),
                &campaign.tracked,
                &vol,
                OnlineOptions {
                    max_configs: 30,
                    target_suspects: 5,
                    greedy: true,
                    prefixes,
                },
            )
        };
        let one = run(1);
        let four = run(4);
        // Rounds bookkeeping: one prefix = one config per round.
        assert_eq!(one.rounds, one.deployed.len());
        assert!(four.rounds <= four.deployed.len().div_ceil(4) + 1);
        // Concurrency never needs more rounds (it sees strictly more
        // information per round).
        assert!(four.rounds <= one.rounds);
        assert!(four.suspects.contains(&attacker));
    }

    #[test]
    fn budget_exhaustion_reports_not_localized() {
        let (g, origin, cfg, schedule) = setup();
        let engine = BgpEngine::new(&g.topology, &cfg);
        let campaign = run_campaign(
            &engine,
            &origin,
            &schedule,
            CatchmentSource::ControlPlane,
            None,
            200,
        );
        let attacker = campaign.tracked[1];
        let mut vol = vec![0u64; g.topology.num_ases()];
        vol[attacker.us()] = 1_000;
        let result = simulate_online_attack(
            &engine,
            &origin,
            &schedule,
            Some(&campaign.catchments),
            &campaign.tracked,
            &vol,
            OnlineOptions {
                max_configs: 1, // only the baseline
                target_suspects: 1,
                greedy: true,
                prefixes: 1,
            },
        );
        assert_eq!(result.deployed.len(), 1);
        // A single anycast cannot isolate one AS out of hundreds.
        assert!(!result.localized);
        assert!(result.suspects.len() > 1);
        // But the attacker is still within the (large) suspect set.
        assert!(result.suspects.contains(&attacker));
    }
}
