//! Cluster size as a function of AS-hop distance from the origin
//! (§V-B, Figure 7).
//!
//! The paper groups ASes by their distance to the closest PEERING
//! location and finds nearby ASes end up in smaller clusters (1.85 ASes
//! on average at 1–2 hops vs 2.64 at 3+).

use crate::cluster::Clustering;
use serde::{Deserialize, Serialize};
use trackdown_bgp::OriginAs;
use trackdown_topology::analysis::multi_source_distances;
use trackdown_topology::{AsIndex, Topology};

/// Distance from each AS to the origin in AS hops: the PoP providers are
/// one hop from the origin, their neighbors two, and so on. `u32::MAX`
/// for unreachable ASes.
pub fn distance_from_origin(topo: &Topology, origin: &OriginAs) -> Vec<u32> {
    let seeds: Vec<AsIndex> = origin
        .links
        .iter()
        .filter_map(|l| topo.index_of(l.provider))
        .collect();
    multi_source_distances(topo, &seeds)
        .into_iter()
        .map(|d| d.saturating_add(1))
        .collect()
}

/// One distance group's cumulative cluster-size distribution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DistanceGroup {
    /// Group label: exact hop count, with the last group meaning "this
    /// many hops or more".
    pub hops: u32,
    /// True when the group aggregates `hops` and beyond ("4+").
    pub open_ended: bool,
    /// Number of tracked ASes in the group.
    pub ases: usize,
    /// Mean cluster size over the group's ASes.
    pub mean_cluster_size: f64,
    /// Ascending `(cluster_size, cumulative fraction of the group's ASes
    /// in clusters of size ≤ cluster_size)` points.
    pub cdf: Vec<(usize, f64)>,
}

/// Group tracked ASes by hop distance (1, 2, …, `max_group`+) and compute
/// each group's cluster-size CDF under the final clustering.
pub fn cluster_size_by_distance(
    topo: &Topology,
    origin: &OriginAs,
    clustering: &Clustering,
    max_group: u32,
) -> Vec<DistanceGroup> {
    let dist = distance_from_origin(topo, origin);
    let mut groups: Vec<Vec<usize>> = vec![Vec::new(); max_group as usize];
    for &s in clustering.sources() {
        let d = dist[s.us()];
        if d == u32::MAX {
            continue;
        }
        let g = (d.min(max_group) - 1) as usize;
        let size = clustering
            .cluster_size_of(s)
            .expect("tracked source has a cluster");
        groups[g].push(size);
    }
    groups
        .into_iter()
        .enumerate()
        .map(|(g, mut sizes)| {
            sizes.sort_unstable();
            let n = sizes.len();
            let mean = if n == 0 {
                0.0
            } else {
                sizes.iter().sum::<usize>() as f64 / n as f64
            };
            let mut cdf = Vec::new();
            let mut i = 0usize;
            while i < n {
                let v = sizes[i];
                while i < n && sizes[i] == v {
                    i += 1;
                }
                cdf.push((v, i as f64 / n as f64));
            }
            DistanceGroup {
                hops: g as u32 + 1,
                open_ended: g as u32 + 1 == max_group,
                ases: n,
                mean_cluster_size: mean,
                cdf,
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use trackdown_bgp::Catchments;
    use trackdown_topology::gen::{generate, TopologyConfig};
    use trackdown_topology::{topology_from_links, Asn, LinkKind};

    #[test]
    fn providers_are_one_hop() {
        let g = generate(&TopologyConfig::small(3));
        let origin = OriginAs::peering_style(&g, 3);
        let d = distance_from_origin(&g.topology, &origin);
        for l in &origin.links {
            let i = g.topology.index_of(l.provider).unwrap();
            assert_eq!(d[i.us()], 1);
        }
        // Everything reachable (connected topology).
        assert!(d.iter().all(|&x| x != u32::MAX));
        assert!(d.iter().any(|&x| x >= 2));
    }

    #[test]
    fn chain_distances() {
        let topo = topology_from_links([
            (Asn(10), Asn(20), LinkKind::ProviderCustomer),
            (Asn(20), Asn(30), LinkKind::ProviderCustomer),
        ])
        .unwrap();
        let origin = OriginAs::new(Asn(47065), vec![("P".into(), Asn(10))]);
        let d = distance_from_origin(&topo, &origin);
        assert_eq!(d[topo.index_of(Asn(10)).unwrap().us()], 1);
        assert_eq!(d[topo.index_of(Asn(20)).unwrap().us()], 2);
        assert_eq!(d[topo.index_of(Asn(30)).unwrap().us()], 3);
    }

    #[test]
    fn grouping_and_cdf() {
        let topo = topology_from_links([
            (Asn(10), Asn(20), LinkKind::ProviderCustomer),
            (Asn(20), Asn(30), LinkKind::ProviderCustomer),
            (Asn(30), Asn(40), LinkKind::ProviderCustomer),
        ])
        .unwrap();
        let origin = OriginAs::new(Asn(47065), vec![("P".into(), Asn(10))]);
        let sources: Vec<AsIndex> = topo.indices().collect();
        let mut clustering = Clustering::single(sources);
        // Split {10} | {20,30,40}.
        let mut c = Catchments::unassigned(4);
        for i in topo.indices() {
            let solo = topo.asn_of(i) == Asn(10);
            c.set(i, Some(trackdown_bgp::LinkId(u8::from(solo))));
        }
        clustering.refine(&c);

        let groups = cluster_size_by_distance(&topo, &origin, &clustering, 3);
        assert_eq!(groups.len(), 3);
        // Group 1 (1 hop): just AS10, singleton cluster.
        assert_eq!(groups[0].ases, 1);
        assert_eq!(groups[0].mean_cluster_size, 1.0);
        assert_eq!(groups[0].cdf, vec![(1, 1.0)]);
        // Group 3 is open-ended and holds AS30 (3 hops) and AS40 (4 hops),
        // both in the size-3 cluster.
        assert!(groups[2].open_ended);
        assert_eq!(groups[2].ases, 2);
        assert_eq!(groups[2].mean_cluster_size, 3.0);
    }

    #[test]
    fn near_ases_in_smaller_clusters_end_to_end() {
        // On a real campaign, the near groups should have mean cluster
        // size no larger than the farthest group (the paper's Figure 7
        // trend).
        let g = generate(&TopologyConfig::medium(41));
        let origin = OriginAs::peering_style(&g, 4);
        let engine =
            trackdown_bgp::BgpEngine::new(&g.topology, &trackdown_bgp::EngineConfig::default());
        let schedule = crate::generator::full_schedule(
            &g.topology,
            &origin,
            &crate::generator::GeneratorParams {
                max_removals: 2,
                max_poison_configs: Some(20),
            },
        );
        let campaign = crate::localize::run_campaign(
            &engine,
            &origin,
            &schedule,
            crate::localize::CatchmentSource::ControlPlane,
            None,
            200,
        );
        let groups = cluster_size_by_distance(&g.topology, &origin, &campaign.clustering, 4);
        // Note: a PoP provider shares its cluster with its single-homed
        // customers (they follow its choices in every configuration), so
        // group means at 1–2 hops legitimately include those blocks; only
        // structural properties are asserted here, the Figure 7 trend is
        // evaluated at experiment scale.
        // Every tracked AS lands in exactly one group.
        let total: usize = groups.iter().map(|g| g.ases).sum();
        assert_eq!(total, campaign.tracked.len());
        // CDFs are monotone and end at 1 for non-empty groups.
        for g in &groups {
            for w in g.cdf.windows(2) {
                assert!(w[0].0 < w[1].0 && w[0].1 <= w[1].1);
            }
            if g.ases > 0 {
                assert!((g.cdf.last().unwrap().1 - 1.0).abs() < 1e-9);
            }
        }
    }
}
