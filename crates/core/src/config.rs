//! Announcement configurations: the paper's `c = ⟨A_c; P_c; Q_c⟩` triple
//! (§III).
//!
//! * `A` — the set of peering links announcing the prefix;
//! * `P ⊆ A` — the links announcing with AS-path prepending;
//! * `Q` — a map from links in `A` to the ASes poisoned on that link.

use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;
use trackdown_bgp::{CommunitySet, LinkAnnouncement, LinkId, OriginAs};
use trackdown_topology::Asn;

/// Which generation technique produced a configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Phase {
    /// §III-A-a: varying announcement locations.
    Location,
    /// §III-A-b: varying AS-path length with prepending.
    Prepend,
    /// §III-A-c: controlling propagation with poisoning.
    Poison,
    /// Export scoping with BGP action communities (the paper's §VIII
    /// future-work direction, implemented as an extension phase).
    Community,
}

impl fmt::Display for Phase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Phase::Location => "location",
            Phase::Prepend => "prepending",
            Phase::Poison => "poisoning",
            Phase::Community => "communities",
        })
    }
}

/// Errors raised when validating a configuration against an origin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConfigError {
    /// `A` is empty — the prefix would be withdrawn entirely.
    EmptyAnnouncement,
    /// A link in `P` or `Q` is not in `A`.
    NotAnnounced(LinkId),
    /// A link does not exist on the origin.
    UnknownLink(LinkId),
}

impl fmt::Display for ConfigError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfigError::EmptyAnnouncement => write!(f, "empty announcement set"),
            ConfigError::NotAnnounced(l) => {
                write!(f, "link {l} referenced by P or Q but not in A")
            }
            ConfigError::UnknownLink(l) => write!(f, "link {l} not on this origin"),
        }
    }
}

impl std::error::Error for ConfigError {}

/// One announcement configuration `⟨A; P; Q⟩`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct AnnouncementConfig {
    /// `A`: links announcing the prefix.
    pub announce: BTreeSet<LinkId>,
    /// `P ⊆ A`: links announcing with prepending.
    pub prepend: BTreeSet<LinkId>,
    /// `Q`: per-link poisoned ASes (links absent from the map poison
    /// nothing).
    pub poison: BTreeMap<LinkId, Vec<Asn>>,
    /// Per-link action communities (extension beyond the paper's triple;
    /// empty for all paper-schedule configurations).
    #[serde(default)]
    pub communities: BTreeMap<LinkId, CommunitySet>,
    /// The technique that generated this configuration.
    pub phase: Phase,
}

impl AnnouncementConfig {
    /// Plain anycast from the given links.
    pub fn anycast(links: impl IntoIterator<Item = LinkId>) -> AnnouncementConfig {
        AnnouncementConfig {
            announce: links.into_iter().collect(),
            prepend: BTreeSet::new(),
            poison: BTreeMap::new(),
            communities: BTreeMap::new(),
            phase: Phase::Location,
        }
    }

    /// Plain anycast from all `n` links — the baseline configuration.
    pub fn anycast_all(n: usize) -> AnnouncementConfig {
        AnnouncementConfig::anycast((0..n as u8).map(LinkId))
    }

    /// Add prepending at one link (marks the configuration as a
    /// prepending-phase config).
    pub fn with_prepend(mut self, link: LinkId) -> AnnouncementConfig {
        self.prepend.insert(link);
        self.phase = Phase::Prepend;
        self
    }

    /// Add poisoning on one link (marks the configuration as a
    /// poisoning-phase config).
    pub fn with_poison(mut self, link: LinkId, asns: Vec<Asn>) -> AnnouncementConfig {
        self.poison.insert(link, asns);
        self.phase = Phase::Poison;
        self
    }

    /// Attach action communities on one link (marks the configuration as
    /// a community-phase config).
    pub fn with_communities(
        mut self,
        link: LinkId,
        communities: CommunitySet,
    ) -> AnnouncementConfig {
        self.communities.insert(link, communities);
        self.phase = Phase::Community;
        self
    }

    /// Validate against an origin: `A` non-empty, all links exist,
    /// `P ⊆ A`, `keys(Q) ⊆ A`. (Per-link poison limits are enforced by
    /// [`OriginAs::build_injections`].)
    pub fn validate(&self, origin: &OriginAs) -> Result<(), ConfigError> {
        if self.announce.is_empty() {
            return Err(ConfigError::EmptyAnnouncement);
        }
        for &l in self
            .announce
            .iter()
            .chain(self.prepend.iter())
            .chain(self.poison.keys())
            .chain(self.communities.keys())
        {
            if origin.link(l).is_none() {
                return Err(ConfigError::UnknownLink(l));
            }
        }
        for &l in self
            .prepend
            .iter()
            .chain(self.poison.keys())
            .chain(self.communities.keys())
        {
            if !self.announce.contains(&l) {
                return Err(ConfigError::NotAnnounced(l));
            }
        }
        Ok(())
    }

    /// Lower to the per-link announcements the BGP origin consumes.
    pub fn to_link_announcements(&self) -> Vec<LinkAnnouncement> {
        self.announce
            .iter()
            .map(|&l| LinkAnnouncement {
                link: l,
                prepend: self.prepend.contains(&l),
                poisons: self.poison.get(&l).cloned().unwrap_or_default(),
                communities: self.communities.get(&l).cloned().unwrap_or_default(),
            })
            .collect()
    }

    /// Number of links withdrawn relative to a full footprint of `n`.
    pub fn withdrawn_count(&self, n: usize) -> usize {
        n.saturating_sub(self.announce.len())
    }

    /// Canonical announcement footprint: a key over everything that
    /// affects routing (`A`, `P`, `Q`, communities) and nothing that does
    /// not (`phase`, empty poison lists, empty community sets). Two
    /// configurations with equal keys lower to identical injections and
    /// therefore identical routing outcomes — the invariant the campaign
    /// memo cache relies on.
    pub fn footprint_key(&self) -> String {
        // The Display rendering is already canonical: BTree iteration
        // order, no phase, empty Q/community entries skipped.
        self.to_string()
    }
}

impl fmt::Display for AnnouncementConfig {
    /// Formats like the paper: `⟨{l1,l2}; {l1}; {l2:[a,b]}⟩`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{{")?;
        for (k, l) in self.announce.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, "}}; {{")?;
        for (k, l) in self.prepend.iter().enumerate() {
            if k > 0 {
                write!(f, ",")?;
            }
            write!(f, "{l}")?;
        }
        write!(f, "}}; {{")?;
        let mut first = true;
        for (l, asns) in &self.poison {
            if asns.is_empty() {
                continue;
            }
            if !first {
                write!(f, ",")?;
            }
            first = false;
            write!(f, "{l}:[")?;
            for (k, a) in asns.iter().enumerate() {
                if k > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{}", a.0)?;
            }
            write!(f, "]")?;
        }
        write!(f, "}}")?;
        let with_communities: Vec<_> = self
            .communities
            .iter()
            .filter(|(_, cs)| !cs.is_empty())
            .collect();
        if !with_communities.is_empty() {
            write!(f, "; {{")?;
            for (k, (l, cs)) in with_communities.iter().enumerate() {
                if k > 0 {
                    write!(f, ",")?;
                }
                write!(f, "{l}:")?;
                for (j, c) in cs.iter().enumerate() {
                    if j > 0 {
                        write!(f, "+")?;
                    }
                    write!(f, "{c}")?;
                }
            }
            write!(f, "}}")?;
        }
        write!(f, "⟩")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trackdown_topology::gen::{generate, TopologyConfig};

    fn origin() -> OriginAs {
        let g = generate(&TopologyConfig::small(1));
        OriginAs::peering_style(&g, 4)
    }

    #[test]
    fn anycast_all_builds_baseline() {
        let c = AnnouncementConfig::anycast_all(4);
        assert_eq!(c.announce.len(), 4);
        assert!(c.prepend.is_empty());
        assert!(c.poison.is_empty());
        assert_eq!(c.phase, Phase::Location);
        assert!(c.validate(&origin()).is_ok());
        assert_eq!(c.withdrawn_count(4), 0);
    }

    #[test]
    fn validation_rules() {
        let o = origin();
        let empty = AnnouncementConfig::anycast(std::iter::empty());
        assert_eq!(empty.validate(&o), Err(ConfigError::EmptyAnnouncement));

        let unknown = AnnouncementConfig::anycast([LinkId(9)]);
        assert_eq!(
            unknown.validate(&o),
            Err(ConfigError::UnknownLink(LinkId(9)))
        );

        // Prepend at a link not in A.
        let bad_p = AnnouncementConfig::anycast([LinkId(0)]).with_prepend(LinkId(1));
        assert_eq!(
            bad_p.validate(&o),
            Err(ConfigError::NotAnnounced(LinkId(1)))
        );

        // Poison on a link not in A.
        let bad_q = AnnouncementConfig::anycast([LinkId(0)]).with_poison(LinkId(2), vec![Asn(5)]);
        assert_eq!(
            bad_q.validate(&o),
            Err(ConfigError::NotAnnounced(LinkId(2)))
        );
    }

    #[test]
    fn lowering_to_link_announcements() {
        let c = AnnouncementConfig::anycast([LinkId(0), LinkId(1), LinkId(2)])
            .with_prepend(LinkId(1))
            .with_poison(LinkId(2), vec![Asn(7)]);
        let anns = c.to_link_announcements();
        assert_eq!(anns.len(), 3);
        assert!(!anns[0].prepend && anns[0].poisons.is_empty());
        assert!(anns[1].prepend);
        assert_eq!(anns[2].poisons, vec![Asn(7)]);
    }

    #[test]
    fn paper_example_from_section_iii() {
        // c = ⟨{l1,l2}; {l1}; {l1:∅, l2:{a,b}}⟩ over links l1..l4.
        let c = AnnouncementConfig::anycast([LinkId(1), LinkId(2)])
            .with_prepend(LinkId(1))
            .with_poison(LinkId(2), vec![Asn(100), Asn(200)]);
        assert_eq!(c.to_string(), "⟨{l1,l2}; {l1}; {l2:[100,200]}⟩");
        assert_eq!(c.withdrawn_count(4), 2);
    }

    #[test]
    fn display_skips_empty_poison_lists() {
        let c = AnnouncementConfig::anycast([LinkId(0)]).with_poison(LinkId(0), vec![]);
        assert_eq!(c.to_string(), "⟨{l0}; {}; {}⟩");
    }

    #[test]
    fn serde_roundtrip() {
        let c = AnnouncementConfig::anycast([LinkId(0), LinkId(3)])
            .with_prepend(LinkId(3))
            .with_poison(LinkId(0), vec![Asn(1916)]);
        let json = serde_json::to_string(&c).unwrap();
        let back: AnnouncementConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(c, back);
    }
}
