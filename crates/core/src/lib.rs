//! # trackdown-core
//!
//! The primary contribution of *"Tracking Down Sources of Spoofed IP
//! Packets"* (Fonseca et al., IFIP Networking 2019): locating the networks
//! that emit spoofed traffic by systematically varying BGP announcement
//! configurations and correlating the resulting catchments with observed
//! spoofed-traffic volumes.
//!
//! The pipeline:
//!
//! 1. [`generator`] produces the announcement schedule — location subsets,
//!    prepending combinations, and provider-neighbor poisoning — exactly
//!    reproducing the paper's 64 + 294 + (one per neighbor) counts.
//! 2. [`localize::run_campaign`] deploys each [`config::AnnouncementConfig`]
//!    on a [`trackdown_bgp::BgpEngine`], obtains catchments (ground truth
//!    or through the [`trackdown_measure`] observation plane), and refines
//!    a [`cluster::Clustering`].
//! 3. [`localize::rank_suspects`] correlates honeypot volume reports with
//!    the clusters to name suspect ASes.
//!
//! Around the pipeline sit the evaluation tools: [`schedule`] (random vs
//! greedy deployment order, Figure 8), [`footprint`] (smaller peering
//! footprints, Figures 5–6), [`distance`] (cluster size vs AS-hop
//! distance, Figure 7), [`compliance`] (Gao-Rexford conformance,
//! Figure 9), [`predict`] (catchment prediction, future work), and
//! [`report`] (rendering).
//!
//! ```
//! use trackdown_topology::gen::{generate, TopologyConfig};
//! use trackdown_bgp::{BgpEngine, EngineConfig, OriginAs};
//! use trackdown_core::generator::{full_schedule, GeneratorParams};
//! use trackdown_core::localize::{run_campaign, CatchmentSource};
//!
//! let g = generate(&TopologyConfig::small(1));
//! let origin = OriginAs::peering_style(&g, 4);
//! let engine = BgpEngine::new(&g.topology, &EngineConfig::default());
//! let schedule = full_schedule(&g.topology, &origin, &GeneratorParams {
//!     max_removals: 1,
//!     max_poison_configs: Some(5),
//! });
//! let campaign = run_campaign(
//!     &engine, &origin, &schedule, CatchmentSource::ControlPlane, None, 200);
//! assert!(campaign.clustering.mean_size() < campaign.tracked.len() as f64);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod cluster;
pub mod compliance;
pub mod config;
pub mod dataset;
pub mod distance;
pub mod footprint;
pub mod generator;
pub mod hijack;
pub mod localize;
pub mod online;
pub mod predict;
pub mod report;
pub mod schedule;
pub mod targeting;

pub use cluster::{cluster_catchments, ClusterSplit, Clustering, RefineDelta};
pub use config::{AnnouncementConfig, ConfigError, Phase};
pub use dataset::Dataset;
pub use generator::{full_schedule, GeneratorParams};
pub use localize::{
    estimate_cluster_volumes, estimate_cluster_volumes_acc, estimate_cluster_volumes_rescan,
    fit_link_volumes, rank_suspects, rank_suspects_acc, rank_suspects_rescan, run_campaign,
    run_campaign_mode, run_campaign_parallel, run_campaign_parallel_mode, run_campaign_sharded,
    run_campaign_sharded_mode, run_campaign_sharded_recorded, AttributionIndex, Campaign,
    CampaignMode, CampaignStats, CatchmentSource, RankedSuspects, ShardPlan, SuspectCluster,
    VolumeEstimate,
};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use trackdown_bgp::{Catchments, LinkId};
    use trackdown_topology::AsIndex;

    fn catchment_strategy(n: usize, links: u8) -> impl Strategy<Value = Catchments> {
        proptest::collection::vec(proptest::option::of(0..links), n).prop_map(move |v| {
            let mut c = Catchments::unassigned(v.len());
            for (i, l) in v.into_iter().enumerate() {
                c.set(AsIndex(i as u32), l.map(LinkId));
            }
            c
        })
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        // The incremental refinement equals the paper's literal split
        // algorithm on arbitrary catchment sequences.
        #[test]
        fn refine_equals_naive_split(
            cats in proptest::collection::vec(catchment_strategy(12, 3), 1..5)
        ) {
            let sources: Vec<AsIndex> = (0..12).map(AsIndex).collect();
            let mut fast = Clustering::single(sources.clone());
            let mut naive = Clustering::single(sources.clone());
            for c in &cats {
                fast.refine(c);
                naive.split_by_naive(c);
            }
            for i in 0..12 {
                for j in (i + 1)..12 {
                    let (a, b) = (AsIndex(i as u32), AsIndex(j as u32));
                    prop_assert_eq!(
                        fast.cluster_of(a) == fast.cluster_of(b),
                        naive.cluster_of(a) == naive.cluster_of(b)
                    );
                }
            }
        }

        // Clustering invariants: clusters partition the sources, counts
        // are monotone, and refinement order does not change the final
        // partition.
        #[test]
        fn clustering_invariants(
            cats in proptest::collection::vec(catchment_strategy(10, 3), 1..5),
            perm_seed in 0usize..100,
        ) {
            let sources: Vec<AsIndex> = (0..10).map(AsIndex).collect();
            let mut forward = Clustering::single(sources.clone());
            let mut prev = forward.num_clusters();
            for c in &cats {
                forward.refine(c);
                prop_assert!(forward.num_clusters() >= prev);
                prev = forward.num_clusters();
                let total: usize = forward.sizes().iter().sum();
                prop_assert_eq!(total, sources.len());
            }
            // Deterministic permutation of the catchment order.
            let mut order: Vec<usize> = (0..cats.len()).collect();
            order.rotate_left(perm_seed % cats.len().max(1));
            let mut permuted = Clustering::single(sources.clone());
            for &k in &order {
                permuted.refine(&cats[k]);
            }
            for i in 0..10 {
                for j in (i + 1)..10 {
                    let (a, b) = (AsIndex(i as u32), AsIndex(j as u32));
                    prop_assert_eq!(
                        forward.cluster_of(a) == forward.cluster_of(b),
                        permuted.cluster_of(a) == permuted.cluster_of(b),
                        "order-dependence between {} and {}", i, j
                    );
                }
            }
        }

        // Generator: every configuration in a schedule validates, the
        // baseline comes first, and phases appear in order.
        #[test]
        fn schedules_always_valid(
            n_links in 2usize..6,
            max_removals in 0usize..4,
        ) {
            use trackdown_topology::gen::{generate, TopologyConfig};
            use trackdown_bgp::OriginAs;
            let g = generate(&TopologyConfig::small(7));
            let origin = OriginAs::peering_style(&g, n_links);
            let schedule = full_schedule(
                &g.topology,
                &origin,
                &GeneratorParams {
                    max_removals,
                    max_poison_configs: Some(8),
                },
            );
            prop_assert!(!schedule.is_empty());
            prop_assert_eq!(schedule[0].announce.len(), n_links);
            for c in &schedule {
                prop_assert!(c.validate(&origin).is_ok());
            }
            let mut last_phase = Phase::Location;
            for c in &schedule {
                prop_assert!(c.phase >= last_phase, "phases out of order");
                last_phase = c.phase;
            }
        }
    }
}
