//! Configuration scheduling for fast localization (§V-C, Figure 8).
//!
//! When an attack is ongoing, the origin wants small clusters after as few
//! configurations as possible. With catchments measured ahead of time the
//! origin can deploy configurations in an optimized order: the paper's
//! iterative algorithm greedily picks, at each step, the configuration
//! whose deployment minimizes the resulting mean cluster size.
//!
//! This module also implements the paper's future-work extension (i):
//! a traffic-weighted objective that prioritizes splitting the clusters
//! inferred to send the most spoofed traffic.

use crate::cluster::Clustering;
use crate::config::AnnouncementConfig;
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use trackdown_bgp::Catchments;
use trackdown_topology::AsIndex;

/// Mean-cluster-size trajectories across random deployment orders.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RandomScheduleStats {
    /// `q25[k]` = 25th percentile of mean cluster size after `k+1` configs.
    pub q25: Vec<f64>,
    /// Median of means after `k+1` configurations.
    pub median: Vec<f64>,
    /// 75th percentile after `k+1` configurations.
    pub q75: Vec<f64>,
}

/// Simulate `samples` random deployment orders (without repetition) and
/// report quartiles of the mean cluster size after each step — the solid
/// line and band of Figure 8.
pub fn random_schedule_stats(
    catchments: &[Catchments],
    tracked: &[AsIndex],
    samples: usize,
    seed: u64,
) -> RandomScheduleStats {
    let k = catchments.len();
    assert!(k > 0 && samples > 0);
    // trajectories[s][step]
    let mut trajectories: Vec<Vec<f64>> = Vec::with_capacity(samples);
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    for _ in 0..samples {
        let mut order: Vec<usize> = (0..k).collect();
        // Fisher-Yates shuffle.
        for i in (1..k).rev() {
            let j = rng.random_range(0..=i);
            order.swap(i, j);
        }
        let mut clustering = Clustering::single(tracked.to_vec());
        let mut traj = Vec::with_capacity(k);
        for &c in &order {
            clustering.refine(&catchments[c]);
            traj.push(clustering.mean_size());
        }
        trajectories.push(traj);
    }
    let mut q25 = Vec::with_capacity(k);
    let mut median = Vec::with_capacity(k);
    let mut q75 = Vec::with_capacity(k);
    for step in 0..k {
        let mut vals: Vec<f64> = trajectories.iter().map(|t| t[step]).collect();
        vals.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        let pick =
            |p: f64| vals[((p * (vals.len() - 1) as f64).round() as usize).min(vals.len() - 1)];
        q25.push(pick(0.25));
        median.push(pick(0.5));
        q75.push(pick(0.75));
    }
    RandomScheduleStats { q25, median, q75 }
}

/// The greedy iterative algorithm: at each step deploy the configuration
/// that minimizes the objective after refinement. Returns the deployment
/// order and the objective value after each step.
///
/// `objective` maps a clustering to a cost to minimize; see
/// [`mean_size_objective`] and [`traffic_weighted_objective`].
pub fn greedy_schedule(
    catchments: &[Catchments],
    tracked: &[AsIndex],
    max_steps: usize,
    objective: impl Fn(&Clustering) -> f64,
) -> (Vec<usize>, Vec<f64>) {
    let k = catchments.len();
    let steps = max_steps.min(k);
    let mut remaining: Vec<usize> = (0..k).collect();
    let mut clustering = Clustering::single(tracked.to_vec());
    let mut order = Vec::with_capacity(steps);
    let mut scores = Vec::with_capacity(steps);
    for _ in 0..steps {
        let mut best: Option<(usize, f64, Clustering)> = None;
        for (pos, &c) in remaining.iter().enumerate() {
            let mut candidate = clustering.clone();
            candidate.refine(&catchments[c]);
            let score = objective(&candidate);
            let better = match &best {
                None => true,
                Some((_, s, _)) => score < *s,
            };
            if better {
                best = Some((pos, score, candidate));
            }
        }
        let (pos, score, next) = best.expect("remaining non-empty");
        order.push(remaining.remove(pos));
        scores.push(score);
        clustering = next;
    }
    (order, scores)
}

/// The paper's objective: mean cluster size.
pub fn mean_size_objective(c: &Clustering) -> f64 {
    c.mean_size()
}

/// Edit distance between two announcement footprints: the number of
/// per-link announcement actions that must change to turn `a` into `b` —
/// links announced/withdrawn, prepends toggled, and per-link poison or
/// community entries that differ. Empty poison lists and empty community
/// sets count as absent (they lower to the same injections).
///
/// This is the cost model of the warm-start campaign executor: a BGP
/// epoch transition's churn grows with the number of changed injections,
/// so deploying configurations in small-edit order (gray-code style)
/// minimizes total convergence work.
pub fn footprint_distance(a: &AnnouncementConfig, b: &AnnouncementConfig) -> usize {
    use std::collections::BTreeSet;
    let mut d = a.announce.symmetric_difference(&b.announce).count();
    d += a.prepend.symmetric_difference(&b.prepend).count();
    let poison_keys: BTreeSet<_> = a.poison.keys().chain(b.poison.keys()).collect();
    for l in poison_keys {
        let pa = a
            .poison
            .get(l)
            .map(|v| v.as_slice())
            .filter(|v| !v.is_empty());
        let pb = b
            .poison
            .get(l)
            .map(|v| v.as_slice())
            .filter(|v| !v.is_empty());
        if pa != pb {
            d += 1;
        }
    }
    let community_keys: BTreeSet<_> = a.communities.keys().chain(b.communities.keys()).collect();
    for l in community_keys {
        let ca = a.communities.get(l).filter(|c| !c.is_empty());
        let cb = b.communities.get(l).filter(|c| !c.is_empty());
        if ca != cb {
            d += 1;
        }
    }
    d
}

/// Order a schedule for warm-start execution: a greedy nearest-neighbour
/// chain over [`footprint_distance`], starting at index 0 (the anycast
/// baseline), ties broken toward the lowest index. Returns a permutation
/// of `0..configs.len()`.
///
/// The executor deploys each configuration as an epoch transition from
/// its predecessor, so chaining small edits keeps transition churn low;
/// duplicate footprints (distance 0) become adjacent, where they are
/// no-op epochs or memo hits.
pub fn warm_start_order(configs: &[AnnouncementConfig]) -> Vec<usize> {
    let _span =
        trackdown_obs::span("schedule.warm_start_order").attr("configs", configs.len() as u64);
    trackdown_obs::counter!("schedule.warm_start_orders").inc();
    if configs.is_empty() {
        return Vec::new();
    }
    let mut order = Vec::with_capacity(configs.len());
    let mut remaining: Vec<usize> = (1..configs.len()).collect();
    let mut current = 0usize;
    order.push(current);
    while !remaining.is_empty() {
        let mut best_pos = 0usize;
        let mut best_d = usize::MAX;
        for (pos, &k) in remaining.iter().enumerate() {
            let d = footprint_distance(&configs[current], &configs[k]);
            // Strict `<` keeps the lowest index on ties (remaining is in
            // ascending index order).
            if d < best_d {
                best_d = d;
                best_pos = pos;
            }
        }
        current = remaining.remove(best_pos);
        order.push(current);
    }
    order
}

/// Future-work extension (i): weight each cluster by the spoofed volume it
/// is currently inferred to send, so high-volume clusters are split first.
/// The cost is Σ_k volume(κ_k) · |κ_k| / Σ_k volume(κ_k) — the expected
/// cluster size seen by a spoofed byte.
pub fn traffic_weighted_objective<'a>(
    volume_per_as: &'a [u64],
) -> impl Fn(&Clustering) -> f64 + 'a {
    move |c: &Clustering| {
        let mut weighted = 0.0f64;
        let mut total = 0.0f64;
        for members in c.iter_clusters() {
            let v: u64 = members
                .iter()
                .map(|a| volume_per_as.get(a.us()).copied().unwrap_or(0))
                .sum();
            weighted += v as f64 * members.len() as f64;
            total += v as f64;
        }
        if total == 0.0 {
            c.mean_size()
        } else {
            weighted / total
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trackdown_bgp::LinkId;

    fn cat(n: usize, links: &[u8]) -> Catchments {
        let mut c = Catchments::unassigned(n);
        for (i, &l) in links.iter().enumerate() {
            c.set(AsIndex(i as u32), Some(LinkId(l)));
        }
        c
    }

    fn tracked(n: usize) -> Vec<AsIndex> {
        (0..n as u32).map(AsIndex).collect()
    }

    #[test]
    fn greedy_prefers_informative_configs() {
        let n = 8;
        // Config 0: useless (everyone together). Config 1: splits in half.
        // Config 2: splits into quarters when combined with 1.
        let cats = vec![
            cat(n, &[0; 8]),
            cat(n, &[0, 0, 0, 0, 1, 1, 1, 1]),
            cat(n, &[0, 0, 1, 1, 0, 0, 1, 1]),
        ];
        let (order, scores) = greedy_schedule(&cats, &tracked(n), 3, mean_size_objective);
        // The useless config must come last.
        assert_eq!(order[2], 0);
        assert_eq!(scores[0], 4.0);
        assert_eq!(scores[1], 2.0);
        assert_eq!(scores[2], 2.0);
    }

    #[test]
    fn greedy_scores_are_nonincreasing() {
        let n = 6;
        let cats = vec![
            cat(n, &[0, 1, 0, 1, 0, 1]),
            cat(n, &[0, 0, 1, 1, 2, 2]),
            cat(n, &[1, 1, 1, 0, 0, 0]),
        ];
        let (_, scores) = greedy_schedule(&cats, &tracked(n), 3, mean_size_objective);
        for w in scores.windows(2) {
            assert!(w[1] <= w[0] + 1e-12);
        }
    }

    #[test]
    fn greedy_beats_or_ties_random_everywhere() {
        let n = 12;
        let cats = vec![
            cat(n, &[0, 0, 0, 0, 0, 0, 1, 1, 1, 1, 1, 1]),
            cat(n, &[0, 0, 0, 1, 1, 1, 0, 0, 0, 1, 1, 1]),
            cat(n, &[0, 1, 1, 0, 0, 1, 1, 0, 0, 1, 1, 0]),
            cat(n, &[0; 12]),
            cat(n, &[1; 12]),
        ];
        let rnd = random_schedule_stats(&cats, &tracked(n), 50, 7);
        let (_, greedy) = greedy_schedule(&cats, &tracked(n), 5, mean_size_objective);
        for (step, g) in greedy.iter().enumerate() {
            assert!(
                *g <= rnd.median[step] + 1e-9,
                "step {step}: greedy {g} > median {}",
                rnd.median[step]
            );
        }
    }

    #[test]
    fn random_stats_band_ordering_and_convergence() {
        let n = 10;
        let cats = vec![
            cat(n, &[0, 0, 0, 0, 0, 1, 1, 1, 1, 1]),
            cat(n, &[0, 0, 1, 1, 1, 0, 0, 1, 1, 1]),
            cat(n, &[0, 1, 0, 1, 0, 1, 0, 1, 0, 1]),
        ];
        let s = random_schedule_stats(&cats, &tracked(n), 40, 3);
        for step in 0..cats.len() {
            assert!(s.q25[step] <= s.median[step]);
            assert!(s.median[step] <= s.q75[step]);
        }
        // All orders converge to the same final partition.
        assert!((s.q25[2] - s.q75[2]).abs() < 1e-12);
    }

    #[test]
    fn random_stats_deterministic_per_seed() {
        let n = 6;
        let cats = vec![cat(n, &[0, 1, 0, 1, 0, 1]), cat(n, &[0, 0, 1, 1, 2, 2])];
        let a = random_schedule_stats(&cats, &tracked(n), 20, 9);
        let b = random_schedule_stats(&cats, &tracked(n), 20, 9);
        assert_eq!(a, b);
    }

    #[test]
    fn traffic_weighted_objective_prioritizes_hot_clusters() {
        let n = 8;
        // Volume concentrated in sources 0..4.
        let mut vol = vec![0u64; n];
        for v in vol.iter_mut().take(4) {
            *v = 1_000;
        }
        // Config A splits the hot half; config B splits the cold half.
        let cats = vec![
            cat(n, &[0, 0, 1, 1, 0, 0, 0, 0]), // splits hot sources
            cat(n, &[0, 0, 0, 0, 0, 0, 1, 1]), // splits cold sources
        ];
        let obj = traffic_weighted_objective(&vol);
        let (order, _) = greedy_schedule(&cats, &tracked(n), 2, obj);
        assert_eq!(order[0], 0, "hot-splitting config must come first");
        // The plain mean-size objective is indifferent (both split evenly);
        // verify the weighted objective actually differs.
        let mut c_hot = Clustering::single(tracked(n));
        c_hot.refine(&cats[0]);
        let mut c_cold = Clustering::single(tracked(n));
        c_cold.refine(&cats[1]);
        let obj = traffic_weighted_objective(&vol);
        assert!(obj(&c_hot) < obj(&c_cold));
        assert_eq!(mean_size_objective(&c_hot), mean_size_objective(&c_cold));
    }

    #[test]
    fn footprint_distance_counts_per_link_edits() {
        use trackdown_bgp::LinkId;
        use trackdown_topology::Asn;
        let base = AnnouncementConfig::anycast([LinkId(0), LinkId(1), LinkId(2)]);
        assert_eq!(footprint_distance(&base, &base), 0);
        // Withdraw one link: one announce edit.
        let withdrawn = AnnouncementConfig::anycast([LinkId(0), LinkId(1)]);
        assert_eq!(footprint_distance(&base, &withdrawn), 1);
        // Toggle a prepend: one edit.
        let prepended = base.clone().with_prepend(LinkId(1));
        assert_eq!(footprint_distance(&base, &prepended), 1);
        // Add a poison: one edit; change its target list: still one edit.
        let p1 = base.clone().with_poison(LinkId(2), vec![Asn(9)]);
        let p2 = base.clone().with_poison(LinkId(2), vec![Asn(10)]);
        assert_eq!(footprint_distance(&base, &p1), 1);
        assert_eq!(footprint_distance(&p1, &p2), 1);
        // An empty poison list is the same footprint as no entry.
        let p_empty = base.clone().with_poison(LinkId(2), vec![]);
        assert_eq!(footprint_distance(&base, &p_empty), 0);
        // Distance is symmetric and additive over independent edits.
        let both = withdrawn.clone().with_prepend(LinkId(1));
        assert_eq!(footprint_distance(&base, &both), 2);
        assert_eq!(
            footprint_distance(&base, &both),
            footprint_distance(&both, &base)
        );
    }

    #[test]
    fn footprint_distance_ignores_phase() {
        use trackdown_bgp::LinkId;
        let a = AnnouncementConfig::anycast([LinkId(0), LinkId(1)]);
        let mut b = a.clone();
        b.phase = crate::config::Phase::Poison;
        assert_eq!(footprint_distance(&a, &b), 0);
    }

    #[test]
    fn warm_start_order_is_a_permutation_starting_at_baseline() {
        use trackdown_bgp::LinkId;
        use trackdown_topology::Asn;
        let base = AnnouncementConfig::anycast([LinkId(0), LinkId(1), LinkId(2)]);
        let configs = vec![
            base.clone(),
            base.clone().with_poison(LinkId(0), vec![Asn(7)]),
            AnnouncementConfig::anycast([LinkId(0)]),
            base.clone().with_prepend(LinkId(2)),
            base.clone(), // duplicate of the baseline
        ];
        let order = warm_start_order(&configs);
        assert_eq!(order[0], 0);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..configs.len()).collect::<Vec<_>>());
        // The duplicate baseline (distance 0) is deployed immediately
        // after the baseline itself.
        assert_eq!(order[1], 4);
    }

    #[test]
    fn warm_start_order_chains_small_edits() {
        use trackdown_bgp::LinkId;
        // 0: {0,1,2}; 1: far (single link); 2: one edit from 0.
        let configs = vec![
            AnnouncementConfig::anycast([LinkId(0), LinkId(1), LinkId(2)]),
            AnnouncementConfig::anycast([LinkId(3)]),
            AnnouncementConfig::anycast([LinkId(0), LinkId(1)]),
        ];
        let order = warm_start_order(&configs);
        assert_eq!(order, vec![0, 2, 1]);
        assert_eq!(warm_start_order(&[]), Vec::<usize>::new());
    }

    #[test]
    fn zero_volume_falls_back_to_mean_size() {
        let n = 4;
        let vol = vec![0u64; n];
        let mut c = Clustering::single(tracked(n));
        c.refine(&cat(n, &[0, 0, 1, 1]));
        let obj = traffic_weighted_objective(&vol);
        assert_eq!(obj(&c), c.mean_size());
    }
}
