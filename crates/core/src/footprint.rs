//! Peering-footprint emulation (§V-B, Figures 5 and 6).
//!
//! A network with fewer PoPs can deploy only the configurations whose
//! announcement sets use its links. The paper emulates 6- and 5-location
//! networks by discarding the configurations that touch removed PoPs:
//! with 7 locations and r=3 that keeps
//! `Σ_{x=0..2} [C(6,6−x) + (6−x)·C(6,6−x)] = 118` configurations for six
//! locations and 31 for five.

use crate::cluster::Clustering;
use crate::config::{AnnouncementConfig, Phase};
use std::collections::BTreeSet;
use trackdown_bgp::{Catchments, LinkId};
use trackdown_topology::AsIndex;

/// Indices of the configurations a network owning only `keep` links could
/// have deployed: announcement set within `keep`, and no poisoning phase
/// (poison configurations announce from the full footprint).
pub fn footprint_config_indices(
    configs: &[AnnouncementConfig],
    keep: &BTreeSet<LinkId>,
) -> Vec<usize> {
    configs
        .iter()
        .enumerate()
        .filter(|(_, c)| c.phase != Phase::Poison && c.announce.iter().all(|l| keep.contains(l)))
        .map(|(i, _)| i)
        .collect()
}

/// Mean-cluster-size trajectory when deploying only a footprint subset of
/// a campaign's configurations, in their original order. Returns
/// `(kept_indices, mean_size_after_each_kept_config)`.
pub fn footprint_trajectory(
    configs: &[AnnouncementConfig],
    catchments: &[Catchments],
    tracked: &[AsIndex],
    keep: &BTreeSet<LinkId>,
) -> (Vec<usize>, Vec<f64>) {
    let kept = footprint_config_indices(configs, keep);
    let mut clustering = Clustering::single(tracked.to_vec());
    let mut means = Vec::with_capacity(kept.len());
    for &i in &kept {
        clustering.refine(&catchments[i]);
        means.push(clustering.mean_size());
    }
    (kept, means)
}

/// Final clustering for a footprint subset.
pub fn footprint_clustering(
    configs: &[AnnouncementConfig],
    catchments: &[Catchments],
    tracked: &[AsIndex],
    keep: &BTreeSet<LinkId>,
) -> Clustering {
    let kept = footprint_config_indices(configs, keep);
    let mut clustering = Clustering::single(tracked.to_vec());
    for &i in &kept {
        clustering.refine(&catchments[i]);
    }
    clustering
}

/// All footprints obtained by removing `remove` links from `0..n`,
/// as kept-link sets (the paper's shaded min–max band enumerates these).
pub fn footprints_removing(n: usize, remove: usize) -> Vec<BTreeSet<LinkId>> {
    fn combos(n: usize, k: usize) -> Vec<Vec<u8>> {
        if k == 0 {
            return vec![Vec::new()];
        }
        if k > n {
            return Vec::new();
        }
        let mut out = Vec::new();
        for first in 0..=(n - k) {
            for mut rest in combos(n - first - 1, k - 1) {
                for r in &mut rest {
                    *r += first as u8 + 1;
                }
                let mut v = vec![first as u8];
                v.extend(rest);
                out.push(v);
            }
        }
        out
    }
    combos(n, remove)
        .into_iter()
        .map(|removed| {
            (0..n as u8)
                .map(LinkId)
                .filter(|l| !removed.contains(&l.0))
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator::{full_schedule, location_phase, prepend_phase, GeneratorParams};
    use trackdown_bgp::OriginAs;
    use trackdown_topology::gen::{generate, TopologyConfig};

    #[test]
    fn paper_counts_for_six_and_five_locations() {
        // Build the 7-location, r=3 schedule (location + prepend phases).
        let loc = location_phase(7, 3);
        let pre = prepend_phase(&loc);
        let mut schedule = loc;
        schedule.extend(pre);
        assert_eq!(schedule.len(), 358);

        // Six locations: keep links 0..6 (drop link 6).
        let keep6: BTreeSet<LinkId> = (0..6).map(LinkId).collect();
        let kept6 = footprint_config_indices(&schedule, &keep6);
        // Σ_{x=0..2} [C(6,6−x) + (6−x)C(6,6−x)] = (1+7)−… = 118.
        assert_eq!(kept6.len(), 118);

        // Five locations: drop links 5 and 6.
        let keep5: BTreeSet<LinkId> = (0..5).map(LinkId).collect();
        let kept5 = footprint_config_indices(&schedule, &keep5);
        // Σ_{x=0..1} [C(5,5−x) + (5−x)C(5,5−x)] = 1+5 + 5+20 = 31.
        assert_eq!(kept5.len(), 31);
    }

    #[test]
    fn poison_configs_excluded() {
        let g = generate(&TopologyConfig::small(3));
        let origin = OriginAs::peering_style(&g, 4);
        let schedule = full_schedule(
            &g.topology,
            &origin,
            &GeneratorParams {
                max_removals: 2,
                max_poison_configs: Some(5),
            },
        );
        let keep: BTreeSet<LinkId> = (0..4).map(LinkId).collect();
        let kept = footprint_config_indices(&schedule, &keep);
        for &i in &kept {
            assert_ne!(schedule[i].phase, Phase::Poison);
        }
    }

    #[test]
    fn footprints_removing_enumerates_combinations() {
        let fps = footprints_removing(7, 1);
        assert_eq!(fps.len(), 7);
        for fp in &fps {
            assert_eq!(fp.len(), 6);
        }
        let fps2 = footprints_removing(7, 2);
        assert_eq!(fps2.len(), 21);
        assert_eq!(
            footprints_removing(3, 0),
            vec![(0..3).map(LinkId).collect::<BTreeSet<_>>()]
        );
    }

    #[test]
    fn smaller_footprint_never_beats_larger() {
        // Using fewer configurations can only coarsen the partition.
        let g = generate(&TopologyConfig::small(33));
        let origin = OriginAs::peering_style(&g, 4);
        let engine =
            trackdown_bgp::BgpEngine::new(&g.topology, &trackdown_bgp::EngineConfig::default());
        let schedule = full_schedule(
            &g.topology,
            &origin,
            &GeneratorParams {
                max_removals: 2,
                max_poison_configs: Some(0),
            },
        );
        let campaign = crate::localize::run_campaign(
            &engine,
            &origin,
            &schedule,
            crate::localize::CatchmentSource::ControlPlane,
            None,
            200,
        );
        let full_keep: BTreeSet<LinkId> = (0..4).map(LinkId).collect();
        let small_keep: BTreeSet<LinkId> = (0..3).map(LinkId).collect();
        let full = footprint_clustering(
            &campaign.configs,
            &campaign.catchments,
            &campaign.tracked,
            &full_keep,
        );
        let small = footprint_clustering(
            &campaign.configs,
            &campaign.catchments,
            &campaign.tracked,
            &small_keep,
        );
        assert!(small.mean_size() >= full.mean_size());
        assert!(small.num_clusters() <= full.num_clusters());
    }

    #[test]
    fn trajectory_matches_clustering() {
        let g = generate(&TopologyConfig::small(34));
        let origin = OriginAs::peering_style(&g, 3);
        let engine =
            trackdown_bgp::BgpEngine::new(&g.topology, &trackdown_bgp::EngineConfig::default());
        let schedule = full_schedule(
            &g.topology,
            &origin,
            &GeneratorParams {
                max_removals: 1,
                max_poison_configs: Some(0),
            },
        );
        let campaign = crate::localize::run_campaign(
            &engine,
            &origin,
            &schedule,
            crate::localize::CatchmentSource::ControlPlane,
            None,
            200,
        );
        let keep: BTreeSet<LinkId> = (0..3).map(LinkId).collect();
        let (kept, means) = footprint_trajectory(
            &campaign.configs,
            &campaign.catchments,
            &campaign.tracked,
            &keep,
        );
        assert_eq!(kept.len(), means.len());
        let final_clustering = footprint_clustering(
            &campaign.configs,
            &campaign.catchments,
            &campaign.tracked,
            &keep,
        );
        assert!((means.last().unwrap() - final_clustering.mean_size()).abs() < 1e-12);
    }
}
