//! The origin AS: a PEERING-style network with multiple points of presence,
//! each buying transit from one provider (Table I of the paper).
//!
//! The origin is modeled as a *virtual* node: it is not part of the
//! [`Topology`]. Instead, each announcement is injected directly into the
//! Adj-RIB-In of the corresponding PoP's provider, tagged with the peering
//! [`LinkId`] it entered through. This keeps the topology immutable across
//! the hundreds of announcement configurations an experiment deploys.

use crate::community::CommunitySet;
use crate::route::{LinkId, Prefix};
use serde::{Deserialize, Serialize};
use std::fmt;
use trackdown_topology::{gen::GeneratedTopology, AsIndex, AsPath, Asn, Topology};

/// The ASN PEERING uses; our simulated origin defaults to the same number
/// for familiarity.
pub const DEFAULT_ORIGIN_ASN: Asn = Asn(47065);

/// Default prepend count: the paper prepends the origin ASN four times,
/// "longer than most AS-paths in the Internet" (§III-A-b).
pub const DEFAULT_PREPEND_TIMES: usize = 4;

/// PEERING conservatively limits announcements to two poisoned ASes (§IV-e).
pub const DEFAULT_MAX_POISONS: usize = 2;

/// One peering link of the origin: a PoP connected to a transit provider.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PeeringLink {
    /// Stable identifier used to key catchments.
    pub id: LinkId,
    /// Human-readable PoP name (e.g. `"AMS-IX"`).
    pub pop: String,
    /// The transit provider this PoP announces through.
    pub provider: Asn,
}

/// Errors raised while validating announcements against an origin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum OriginError {
    /// The referenced link id does not exist on this origin.
    UnknownLink(LinkId),
    /// A link was announced twice in the same configuration.
    DuplicateLink(LinkId),
    /// More poisoned ASes than the platform allows.
    TooManyPoisons {
        /// Offending link.
        link: LinkId,
        /// Number requested.
        got: usize,
        /// Platform maximum.
        max: usize,
    },
    /// Poisoning the origin's own ASN is meaningless.
    SelfPoison(LinkId),
    /// A poisoned ASN is repeated on the same link.
    DuplicatePoison(LinkId, Asn),
    /// A provider ASN is missing from the topology.
    UnknownProvider(Asn),
    /// A community carries out-of-range parameters.
    InvalidCommunity(LinkId),
}

impl fmt::Display for OriginError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OriginError::UnknownLink(l) => write!(f, "unknown peering link {l}"),
            OriginError::DuplicateLink(l) => write!(f, "link {l} announced twice"),
            OriginError::TooManyPoisons { link, got, max } => {
                write!(f, "link {link}: {got} poisons exceed platform limit {max}")
            }
            OriginError::SelfPoison(l) => write!(f, "link {l}: cannot poison own ASN"),
            OriginError::DuplicatePoison(l, a) => write!(f, "link {l}: duplicate poison {a}"),
            OriginError::UnknownProvider(a) => write!(f, "provider {a} not in topology"),
            OriginError::InvalidCommunity(l) => write!(f, "link {l}: invalid community"),
        }
    }
}

impl std::error::Error for OriginError {}

/// The announcement the origin makes on one peering link as part of a
/// configuration: plain, prepended, and/or poisoned.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LinkAnnouncement {
    /// Which peering link announces.
    pub link: LinkId,
    /// Whether to prepend the origin ASN [`OriginAs::prepend_times`] times.
    pub prepend: bool,
    /// ASes poisoned on this link's announcement.
    pub poisons: Vec<Asn>,
    /// Action communities honored by the PoP provider (export scoping,
    /// provider-side prepending).
    #[serde(default)]
    pub communities: CommunitySet,
}

impl LinkAnnouncement {
    /// A plain announcement on `link`.
    pub fn plain(link: LinkId) -> LinkAnnouncement {
        LinkAnnouncement {
            link,
            prepend: false,
            poisons: Vec::new(),
            communities: CommunitySet::empty(),
        }
    }

    /// A prepended announcement on `link`.
    pub fn prepended(link: LinkId) -> LinkAnnouncement {
        LinkAnnouncement {
            link,
            prepend: true,
            poisons: Vec::new(),
            communities: CommunitySet::empty(),
        }
    }

    /// A poisoned announcement on `link`.
    pub fn poisoned(link: LinkId, poisons: Vec<Asn>) -> LinkAnnouncement {
        LinkAnnouncement {
            link,
            prepend: false,
            poisons,
            communities: CommunitySet::empty(),
        }
    }

    /// An announcement with action communities on `link`.
    pub fn with_communities(link: LinkId, communities: CommunitySet) -> LinkAnnouncement {
        LinkAnnouncement {
            link,
            prepend: false,
            poisons: Vec::new(),
            communities,
        }
    }
}

/// A ready-to-inject announcement: the provider AS that receives it, the
/// link tag, and the AS-path as the provider sees it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Injection {
    /// Provider AS (by topology index) receiving the announcement.
    pub provider: AsIndex,
    /// Peering link the announcement enters through.
    pub link: LinkId,
    /// AS-path as received by the provider.
    pub path: AsPath,
    /// Action communities the provider honors on export.
    pub communities: CommunitySet,
}

/// The origin AS and its peering footprint.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OriginAs {
    /// The origin's ASN (kept out of the topology).
    pub asn: Asn,
    /// Peering links, indexed by `LinkId` (link `i` is `links[i]`).
    pub links: Vec<PeeringLink>,
    /// The experiment prefix announced in every configuration.
    pub prefix: Prefix,
    /// How many times the origin ASN is prepended when a link prepends.
    pub prepend_times: usize,
    /// Platform limit on poisoned ASes per announcement.
    pub max_poisons: usize,
}

impl OriginAs {
    /// Build an origin with the given providers (one PoP per provider).
    ///
    /// # Panics
    /// Panics if `providers` is empty or exceeds 255 links.
    pub fn new(asn: Asn, providers: Vec<(String, Asn)>) -> OriginAs {
        assert!(!providers.is_empty(), "origin needs at least one link");
        assert!(providers.len() <= 255, "too many peering links");
        let links = providers
            .into_iter()
            .enumerate()
            .map(|(i, (pop, provider))| PeeringLink {
                id: LinkId(i as u8),
                pop,
                provider,
            })
            .collect();
        OriginAs {
            asn,
            links,
            prefix: Prefix::new([184, 164, 224, 0], 24), // PEERING's block
            prepend_times: DEFAULT_PREPEND_TIMES,
            max_poisons: DEFAULT_MAX_POISONS,
        }
    }

    /// Pick a PEERING-like footprint on a generated topology: `n` transit
    /// providers spread round-robin across regions (deterministic given
    /// the topology). Small transits are preferred — PEERING's providers
    /// (Table I) are regional and academic ISPs, not majors — falling back
    /// to large transits when a region has no small ones.
    ///
    /// PoP names follow the paper's Table I for the first seven links.
    pub fn peering_style(gen: &GeneratedTopology, n: usize) -> OriginAs {
        const POPS: [&str; 7] = [
            "AMS-IX",
            "GRNet",
            "USC/ISI",
            "NEU",
            "Seattle-IX",
            "UFMG",
            "UW",
        ];
        let topo = &gen.topology;
        // Candidates: small transits first (region-sorted, best-connected
        // small transit first within a region), then large transits.
        let rank = |a: Asn, tier: usize| {
            let i = topo.index_of(a).expect("transit in topology");
            (gen.region(i), tier, topo.customers(i).count(), a)
        };
        let mut candidates: Vec<(u8, usize, usize, Asn)> = gen
            .small_transits
            .iter()
            .map(|&a| rank(a, 0))
            .chain(gen.large_transits.iter().map(|&a| rank(a, 1)))
            .collect();
        candidates.sort_by(|x, y| {
            x.0.cmp(&y.0)
                .then(x.1.cmp(&y.1)) // small transits before large
                .then(y.2.cmp(&x.2)) // better-connected first within tier
                .then(x.3.cmp(&y.3))
        });
        let candidates: Vec<(u8, usize, Asn)> = candidates
            .into_iter()
            .map(|(r, _, c, a)| (r, c, a))
            .collect();
        let num_regions = gen.config.num_regions.max(1);
        let mut chosen: Vec<Asn> = Vec::with_capacity(n);
        let mut round = 0usize;
        while chosen.len() < n && round < n * num_regions + num_regions {
            let region = (round % num_regions) as u8;
            let rank = round / num_regions;
            if let Some(&(_, _, a)) = candidates.iter().filter(|(r, _, _)| *r == region).nth(rank) {
                if !chosen.contains(&a) {
                    chosen.push(a);
                }
            }
            round += 1;
        }
        // Fallback: fill from the global list if regions ran dry.
        for &(_, _, a) in &candidates {
            if chosen.len() >= n {
                break;
            }
            if !chosen.contains(&a) {
                chosen.push(a);
            }
        }
        let providers = chosen
            .into_iter()
            .enumerate()
            .map(|(i, a)| {
                let name = POPS
                    .get(i)
                    .map(|s| s.to_string())
                    .unwrap_or_else(|| format!("PoP-{i}"));
                (name, a)
            })
            .collect();
        OriginAs::new(DEFAULT_ORIGIN_ASN, providers)
    }

    /// Number of peering links.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// All link ids.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> + '_ {
        self.links.iter().map(|l| l.id)
    }

    /// The link with a given id.
    pub fn link(&self, id: LinkId) -> Option<&PeeringLink> {
        self.links.get(id.us())
    }

    /// Validate a configuration's per-link announcements and produce the
    /// injections the engine consumes.
    pub fn build_injections(
        &self,
        topo: &Topology,
        announcements: &[LinkAnnouncement],
    ) -> Result<Vec<Injection>, OriginError> {
        let mut seen = Vec::with_capacity(announcements.len());
        let mut out = Vec::with_capacity(announcements.len());
        for ann in announcements {
            let link = self
                .link(ann.link)
                .ok_or(OriginError::UnknownLink(ann.link))?;
            if seen.contains(&ann.link) {
                return Err(OriginError::DuplicateLink(ann.link));
            }
            seen.push(ann.link);
            if ann.poisons.len() > self.max_poisons {
                return Err(OriginError::TooManyPoisons {
                    link: ann.link,
                    got: ann.poisons.len(),
                    max: self.max_poisons,
                });
            }
            for (i, &p) in ann.poisons.iter().enumerate() {
                if p == self.asn {
                    return Err(OriginError::SelfPoison(ann.link));
                }
                if ann.poisons[..i].contains(&p) {
                    return Err(OriginError::DuplicatePoison(ann.link, p));
                }
            }
            if !ann.communities.is_valid() {
                return Err(OriginError::InvalidCommunity(ann.link));
            }
            let provider = topo
                .index_of(link.provider)
                .ok_or(OriginError::UnknownProvider(link.provider))?;
            let mut path = if ann.poisons.is_empty() {
                AsPath::from_origin(self.asn)
            } else {
                AsPath::poisoned_origin(self.asn, &ann.poisons)
            };
            if ann.prepend {
                path = path.prepended_by_times(self.asn, self.prepend_times);
            }
            out.push(Injection {
                provider,
                link: ann.link,
                path,
                communities: ann.communities.clone(),
            });
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trackdown_topology::gen::{generate, TopologyConfig};

    fn setup() -> (GeneratedTopology, OriginAs) {
        let g = generate(&TopologyConfig::small(17));
        let o = OriginAs::peering_style(&g, 4);
        (g, o)
    }

    #[test]
    fn peering_style_picks_distinct_transit_providers() {
        let (g, o) = setup();
        assert_eq!(o.num_links(), 4);
        let mut provs: Vec<Asn> = o.links.iter().map(|l| l.provider).collect();
        provs.sort_unstable();
        provs.dedup();
        assert_eq!(provs.len(), 4, "providers must be distinct");
        for p in provs {
            assert!(g.topology.contains(p));
        }
        assert_eq!(o.links[0].pop, "AMS-IX");
    }

    #[test]
    fn peering_style_is_deterministic() {
        let g = generate(&TopologyConfig::small(17));
        let o1 = OriginAs::peering_style(&g, 5);
        let o2 = OriginAs::peering_style(&g, 5);
        assert_eq!(o1, o2);
    }

    #[test]
    fn plain_injection_path_is_origin_only() {
        let (g, o) = setup();
        let inj = o
            .build_injections(&g.topology, &[LinkAnnouncement::plain(LinkId(0))])
            .unwrap();
        assert_eq!(inj.len(), 1);
        assert_eq!(inj[0].path.as_slice(), &[o.asn]);
        assert_eq!(inj[0].link, LinkId(0));
    }

    #[test]
    fn prepended_injection_path_length() {
        let (g, o) = setup();
        let inj = o
            .build_injections(&g.topology, &[LinkAnnouncement::prepended(LinkId(1))])
            .unwrap();
        assert_eq!(inj[0].path.len(), 1 + DEFAULT_PREPEND_TIMES);
        assert!(inj[0].path.as_slice().iter().all(|&a| a == o.asn));
    }

    #[test]
    fn poisoned_injection_has_sandwich() {
        let (g, o) = setup();
        let victim = Asn(777_777);
        let inj = o
            .build_injections(
                &g.topology,
                &[LinkAnnouncement::poisoned(LinkId(2), vec![victim])],
            )
            .unwrap();
        assert_eq!(inj[0].path.poisons_of(o.asn), vec![victim]);
    }

    #[test]
    fn rejects_invalid_configurations() {
        let (g, o) = setup();
        assert_eq!(
            o.build_injections(&g.topology, &[LinkAnnouncement::plain(LinkId(99))]),
            Err(OriginError::UnknownLink(LinkId(99)))
        );
        assert_eq!(
            o.build_injections(
                &g.topology,
                &[
                    LinkAnnouncement::plain(LinkId(0)),
                    LinkAnnouncement::plain(LinkId(0))
                ]
            ),
            Err(OriginError::DuplicateLink(LinkId(0)))
        );
        assert!(matches!(
            o.build_injections(
                &g.topology,
                &[LinkAnnouncement::poisoned(
                    LinkId(0),
                    vec![Asn(1), Asn(2), Asn(3)]
                )]
            ),
            Err(OriginError::TooManyPoisons { .. })
        ));
        assert_eq!(
            o.build_injections(
                &g.topology,
                &[LinkAnnouncement::poisoned(LinkId(0), vec![o.asn])]
            ),
            Err(OriginError::SelfPoison(LinkId(0)))
        );
        assert_eq!(
            o.build_injections(
                &g.topology,
                &[LinkAnnouncement::poisoned(LinkId(0), vec![Asn(5), Asn(5)])]
            ),
            Err(OriginError::DuplicatePoison(LinkId(0), Asn(5)))
        );
    }

    #[test]
    fn more_links_than_pop_names_get_generated_names() {
        let g = generate(&TopologyConfig::medium(3));
        let o = OriginAs::peering_style(&g, 9);
        assert_eq!(o.num_links(), 9);
        assert_eq!(o.links[8].pop, "PoP-8");
    }
}
