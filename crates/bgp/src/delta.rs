//! Delta propagation support: rank-ordered scheduling and injection
//! diffing for incremental epoch transitions.
//!
//! A warm epoch transition ([`crate::CampaignSession::deploy`]) withdraws
//! and re-injects *every* PoP announcement and re-runs the activation
//! queue in FIFO order. Both halves do more work than the change itself
//! requires:
//!
//! * **Seeding** — re-injecting an unchanged provider forces a decide
//!   pass that rediscovers the same best route. Diffing the incoming
//!   ⟨A;P;Q⟩ against the previous epoch's injections
//!   ([`diff_injections`]) touches only providers whose announcement
//!   actually changed — the affected frontier seeds itself from there,
//!   because the decide/export loop already terminates at ASes whose
//!   best route is unchanged.
//! * **Scheduling** — FIFO processing explores transient routes during
//!   withdrawal cascades (BGP path hunting): an AS may adopt a soon-to-be
//!   withdrawn detour and re-decide several times. Routes toward the
//!   origin flow customer→provider, across one peer hop, then
//!   provider→customer, so the delta queue drains pending ASes in
//!   *descending* customer-cone rank ([`PropagationRanks`], the
//!   `propagation_ranks` phase pattern from rank-ordered simulators).
//!   Upward (customer→provider) work needs no ordering help — an AS only
//!   enqueues after an offer reaches it — while the downward sweep waits
//!   until the high-rank tiers settle and then runs provider before
//!   customer, so each AS sees its providers' final routes before it
//!   decides, collapsing most of the hunt. Descending order also lets the
//!   export loop skip activating a neighbor whose settled best route the
//!   changed offer cannot displace (the `relevant` check in the engine's
//!   event loop).
//!
//! Neither transformation changes the fixpoint: Gao-Rexford-compliant
//! policies make the stable state unique regardless of activation order,
//! and the session's violator gate already cold-starts engines where
//! that does not hold. The three-way differential suite
//! (`tests/delta_differential.rs`) is the proof obligation.

use crate::origin::Injection;
use trackdown_topology::{AsIndex, NeighborKind, Topology};

/// Static customer-cone depth of every AS, used as the activation-queue
/// priority for delta propagation.
///
/// Rank 0 is an AS with no customers (a stub); otherwise the rank is one
/// more than the deepest customer, computed by a Kahn traversal of the
/// customer→provider DAG. ASes on a provider cycle (impossible in
/// generated topologies, tolerated from loaded ones) never finalize and
/// are assigned `max_rank + 1`, which keeps the queue total-ordered and
/// deterministic without privileging any cycle member.
#[derive(Debug, Clone)]
pub struct PropagationRanks {
    rank: Vec<u32>,
    max_rank: u32,
}

impl PropagationRanks {
    /// Compute ranks for every AS of `topo`.
    pub fn compute(topo: &Topology) -> PropagationRanks {
        let n = topo.num_ases();
        let mut rank = vec![0u32; n];
        // pending[i] = customers of i not yet finalized.
        let mut pending = vec![0u32; n];
        let mut queue: Vec<AsIndex> = Vec::new();
        for i in topo.indices() {
            let customers = topo
                .neighbors(i)
                .iter()
                .filter(|(_, k)| *k == NeighborKind::Customer)
                .count() as u32;
            pending[i.us()] = customers;
            if customers == 0 {
                queue.push(i);
            }
        }
        let mut max_rank = 0;
        let mut head = 0;
        while head < queue.len() {
            let i = queue[head];
            head += 1;
            max_rank = max_rank.max(rank[i.us()]);
            for &(p, kind) in topo.neighbors(i) {
                // `kind` is how p looks from i: p is i's provider.
                if kind != NeighborKind::Provider {
                    continue;
                }
                rank[p.us()] = rank[p.us()].max(rank[i.us()] + 1);
                pending[p.us()] -= 1;
                if pending[p.us()] == 0 {
                    queue.push(p);
                }
            }
        }
        if head < n {
            // Provider cycle: park every unfinalized AS one rank above
            // the finalized maximum.
            max_rank += 1;
            for i in 0..n {
                if pending[i] != 0 {
                    rank[i] = max_rank;
                }
            }
        }
        PropagationRanks { rank, max_rank }
    }

    /// Rank of one AS.
    pub fn rank(&self, i: AsIndex) -> u32 {
        self.rank[i.us()]
    }

    /// The deepest rank assigned.
    pub fn max_rank(&self) -> u32 {
        self.max_rank
    }

    /// Number of ranked ASes.
    pub fn len(&self) -> usize {
        self.rank.len()
    }

    /// True for an empty topology.
    pub fn is_empty(&self) -> bool {
        self.rank.is_empty()
    }

    /// Consume into the raw per-AS rank vector (indexed by `AsIndex`).
    pub fn into_vec(self) -> Vec<u32> {
        self.rank
    }
}

/// Providers whose injection set differs between two epochs' built
/// injections, ascending and deduplicated — the delta seed set.
///
/// Injections are compared per provider as the *sequence* built from the
/// announcement configuration (`OriginAs::build_injections` emits them in
/// link order, so the sequence is canonical for a configuration). Route
/// acceptance is a pure function of the injection and the immutable
/// policy table, which is why an unchanged sequence can keep its direct
/// routes without re-validation.
pub fn diff_injections(prev: &[Injection], next: &[Injection]) -> Vec<AsIndex> {
    let mut providers: Vec<AsIndex> = prev
        .iter()
        .chain(next.iter())
        .map(|inj| inj.provider)
        .collect();
    providers.sort_unstable_by_key(|p| p.0);
    providers.dedup();
    providers.retain(|&p| {
        let a = prev.iter().filter(|inj| inj.provider == p);
        let b = next.iter().filter(|inj| inj.provider == p);
        !a.eq(b)
    });
    providers
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::origin::{LinkAnnouncement, OriginAs};
    use crate::route::LinkId;
    use trackdown_topology::gen::{generate, TopologyConfig};
    use trackdown_topology::{Asn, TopologyBuilder};

    fn chain_topology() -> Topology {
        // 1 ← 10 ← 20 ← 30 (provider ← customer), plus peer 10–11.
        let mut b = TopologyBuilder::with_capacity(5);
        for a in [1u32, 10, 11, 20, 30] {
            b.add_as(Asn(a)).unwrap();
        }
        b.add_provider_customer(Asn(1), Asn(10)).unwrap();
        b.add_provider_customer(Asn(1), Asn(11)).unwrap();
        b.add_provider_customer(Asn(10), Asn(20)).unwrap();
        b.add_provider_customer(Asn(20), Asn(30)).unwrap();
        b.add_peering(Asn(10), Asn(11)).unwrap();
        b.build()
    }

    #[test]
    fn ranks_are_customer_cone_depth() {
        let topo = chain_topology();
        let ranks = PropagationRanks::compute(&topo);
        let r = |a: u32| ranks.rank(topo.index_of(Asn(a)).unwrap());
        assert_eq!(r(30), 0, "stub");
        assert_eq!(r(11), 0, "customer-free peer");
        assert_eq!(r(20), 1);
        assert_eq!(r(10), 2);
        assert_eq!(r(1), 3, "tier-1 tops the chain");
        assert_eq!(ranks.max_rank(), 3);
        assert_eq!(ranks.len(), topo.num_ases());
    }

    #[test]
    fn generated_topologies_rank_every_as_and_respect_edges() {
        for seed in 0..5u64 {
            let g = generate(&TopologyConfig::small(seed));
            let ranks = PropagationRanks::compute(&g.topology);
            assert!(!ranks.is_empty());
            for i in g.topology.indices() {
                for &(p, kind) in g.topology.neighbors(i) {
                    if kind == NeighborKind::Provider {
                        assert!(
                            ranks.rank(p) > ranks.rank(i),
                            "seed {seed}: provider rank must exceed customer rank"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn diff_injections_finds_only_changed_providers() {
        let g = generate(&TopologyConfig::small(3));
        let origin = OriginAs::peering_style(&g, 4);
        let plain: Vec<LinkAnnouncement> = origin.link_ids().map(LinkAnnouncement::plain).collect();
        let mut edited = plain.clone();
        edited[2] = LinkAnnouncement::prepended(LinkId(2));
        let a = origin.build_injections(&g.topology, &plain).unwrap();
        let b = origin.build_injections(&g.topology, &edited).unwrap();
        assert_eq!(diff_injections(&a, &a), Vec::<AsIndex>::new());
        let changed = diff_injections(&a, &b);
        assert_eq!(changed, vec![a[2].provider], "one prepended link");
        // Withdrawing a link flags its provider from either direction.
        let withdrawn: Vec<LinkAnnouncement> = plain
            .iter()
            .filter(|ann| ann.link != LinkId(1))
            .cloned()
            .collect();
        let c = origin.build_injections(&g.topology, &withdrawn).unwrap();
        assert_eq!(diff_injections(&a, &c), vec![a[1].provider]);
        assert_eq!(diff_injections(&c, &a), vec![a[1].provider]);
    }
}
