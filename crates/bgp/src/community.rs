//! BGP action communities for export control at the PoP provider.
//!
//! The paper's future work proposes "using BGP communities for
//! controlling export policies (and influence routing decisions) on
//! remote networks" (§VIII). Real transit providers offer exactly such
//! traffic-engineering communities (e.g. `PROVIDER:no-export-to-peers`),
//! honored by the *directly connected* provider. This module implements
//! the three standard families:
//!
//! * [`Community::NoExportToPeers`] — the provider propagates the route to
//!   its customers and providers only;
//! * [`Community::NoExportToProviders`] — the provider keeps the route
//!   inside its customer cone (plus its peers);
//! * [`Community::PrependAtProvider`] — the provider prepends its own ASN
//!   `n` extra times when exporting, weakening the route remotely without
//!   lengthening it on the direct link.
//!
//! Communities are interpreted by the first hop only (the PoP provider),
//! matching deployed practice; they are not propagated further.

use serde::{Deserialize, Serialize};
use std::fmt;
use trackdown_topology::NeighborKind;

/// One action community attached to a per-link announcement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Community {
    /// Provider must not export this route to its settlement-free peers.
    NoExportToPeers,
    /// Provider must not export this route to its own providers
    /// (propagation stays within the provider's customer cone and peers).
    NoExportToProviders,
    /// Provider prepends its own ASN this many extra times on export
    /// (1–8, the range transit providers commonly offer).
    PrependAtProvider(u8),
}

impl Community {
    /// True when the community's parameters are in range.
    pub fn is_valid(self) -> bool {
        match self {
            Community::PrependAtProvider(n) => (1..=8).contains(&n),
            _ => true,
        }
    }
}

impl fmt::Display for Community {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Community::NoExportToPeers => write!(f, "no-export-to-peers"),
            Community::NoExportToProviders => write!(f, "no-export-to-providers"),
            Community::PrependAtProvider(n) => write!(f, "prepend-at-provider:{n}"),
        }
    }
}

/// The set of communities on one announcement (tiny, so a sorted Vec).
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct CommunitySet(Vec<Community>);

impl CommunitySet {
    /// The empty set.
    pub fn empty() -> CommunitySet {
        CommunitySet(Vec::new())
    }

    /// Build from a list (sorted, deduplicated).
    pub fn from_vec(mut v: Vec<Community>) -> CommunitySet {
        v.sort_unstable();
        v.dedup();
        CommunitySet(v)
    }

    /// True when no community is attached.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Iterate the communities.
    pub fn iter(&self) -> impl Iterator<Item = Community> + '_ {
        self.0.iter().copied()
    }

    /// All communities valid?
    pub fn is_valid(&self) -> bool {
        self.0.iter().all(|c| c.is_valid())
    }

    /// May the provider export a route carrying these communities to a
    /// neighbor of the given kind (from the provider's perspective)?
    pub fn allows_export_to(&self, to_kind: NeighborKind) -> bool {
        match to_kind {
            NeighborKind::Customer => true, // always allowed
            NeighborKind::Peer => !self.0.contains(&Community::NoExportToPeers),
            NeighborKind::Provider => !self.0.contains(&Community::NoExportToProviders),
        }
    }

    /// Extra prepends the provider applies on export (0 when no
    /// prepend community is attached; the largest wins if several).
    pub fn provider_prepends(&self) -> usize {
        self.0
            .iter()
            .filter_map(|c| match c {
                Community::PrependAtProvider(n) => Some(*n as usize),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }
}

/// Copyable bitmask form of a [`CommunitySet`], used inside the engine's
/// [`crate::Route`] so routes stay `Copy`.
///
/// The encoding is **lossless** for valid sets (the only kind that reaches
/// the engine — [`crate::OriginAs::build_injections`] validates first):
/// bit 0 = [`Community::NoExportToPeers`], bit 1 =
/// [`Community::NoExportToProviders`], and bit `1 + n` = presence of
/// [`Community::PrependAtProvider`]`(n)` for `n` in 1–8. Set equality is
/// therefore preserved exactly, which matters for the engine's
/// route-equality checks (a lossy max-prepend encoding could merge
/// distinct sets and alter change logs).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Hash)]
pub struct CommunityBits(u16);

impl CommunityBits {
    /// No communities attached.
    pub const EMPTY: CommunityBits = CommunityBits(0);

    /// Encode a community set. Out-of-range prepend counts (rejected by
    /// injection validation before any engine sees them) are ignored.
    pub fn from_set(set: &CommunitySet) -> CommunityBits {
        let mut bits = 0u16;
        for c in set.iter() {
            match c {
                Community::NoExportToPeers => bits |= 1,
                Community::NoExportToProviders => bits |= 1 << 1,
                Community::PrependAtProvider(n) if (1..=8).contains(&n) => {
                    bits |= 1 << (1 + n as u16);
                }
                Community::PrependAtProvider(_) => {}
            }
        }
        CommunityBits(bits)
    }

    /// True when no community is attached.
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Mirror of [`CommunitySet::allows_export_to`].
    #[inline]
    pub fn allows_export_to(self, to_kind: NeighborKind) -> bool {
        match to_kind {
            NeighborKind::Customer => true,
            NeighborKind::Peer => self.0 & 1 == 0,
            NeighborKind::Provider => self.0 & (1 << 1) == 0,
        }
    }

    /// Mirror of [`CommunitySet::provider_prepends`] (largest wins).
    #[inline]
    pub fn provider_prepends(self) -> usize {
        // Mask to the prepend bits (2..=9) so engine-internal markers like
        // OTC never read as a prepend count.
        let prepends = (self.0 >> 2) & 0xFF;
        if prepends == 0 {
            0
        } else {
            16 - prepends.leading_zeros() as usize
        }
    }

    /// Engine-internal RFC 9234 Only-to-Customer marker (bit 15). It is
    /// not representable in a [`CommunitySet`] — origin announcements can
    /// never carry it; only [`crate::PolicyTable::export_communities`] of
    /// a deploying exporter sets it.
    const OTC: u16 = 1 << 15;

    /// This set with the OTC marker added.
    #[inline]
    pub fn with_otc(self) -> CommunityBits {
        CommunityBits(self.0 | CommunityBits::OTC)
    }

    /// True when the OTC marker is present.
    #[inline]
    pub fn has_otc(self) -> bool {
        self.0 & CommunityBits::OTC != 0
    }

    /// Just the OTC marker of this set (what propagation preserves —
    /// action communities are first-hop-only and stripped on export).
    #[inline]
    pub fn otc_only(self) -> CommunityBits {
        CommunityBits(self.0 & CommunityBits::OTC)
    }
}

impl From<&CommunitySet> for CommunityBits {
    fn from(set: &CommunitySet) -> CommunityBits {
        CommunityBits::from_set(set)
    }
}

impl FromIterator<Community> for CommunitySet {
    fn from_iter<T: IntoIterator<Item = Community>>(iter: T) -> Self {
        CommunitySet::from_vec(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn export_permissions() {
        let none = CommunitySet::empty();
        assert!(none.allows_export_to(NeighborKind::Customer));
        assert!(none.allows_export_to(NeighborKind::Peer));
        assert!(none.allows_export_to(NeighborKind::Provider));

        let no_peers = CommunitySet::from_vec(vec![Community::NoExportToPeers]);
        assert!(no_peers.allows_export_to(NeighborKind::Customer));
        assert!(!no_peers.allows_export_to(NeighborKind::Peer));
        assert!(no_peers.allows_export_to(NeighborKind::Provider));

        let cone_only = CommunitySet::from_vec(vec![
            Community::NoExportToPeers,
            Community::NoExportToProviders,
        ]);
        assert!(cone_only.allows_export_to(NeighborKind::Customer));
        assert!(!cone_only.allows_export_to(NeighborKind::Peer));
        assert!(!cone_only.allows_export_to(NeighborKind::Provider));
    }

    #[test]
    fn provider_prepends_take_max() {
        let s = CommunitySet::from_vec(vec![
            Community::PrependAtProvider(2),
            Community::PrependAtProvider(5),
        ]);
        assert_eq!(s.provider_prepends(), 5);
        assert_eq!(CommunitySet::empty().provider_prepends(), 0);
    }

    #[test]
    fn validity() {
        assert!(Community::PrependAtProvider(1).is_valid());
        assert!(Community::PrependAtProvider(8).is_valid());
        assert!(!Community::PrependAtProvider(0).is_valid());
        assert!(!Community::PrependAtProvider(9).is_valid());
        assert!(Community::NoExportToPeers.is_valid());
        let bad = CommunitySet::from_vec(vec![Community::PrependAtProvider(0)]);
        assert!(!bad.is_valid());
    }

    #[test]
    fn from_vec_sorts_and_dedups() {
        let s = CommunitySet::from_vec(vec![
            Community::NoExportToPeers,
            Community::NoExportToPeers,
            Community::NoExportToProviders,
        ]);
        assert_eq!(s.iter().count(), 2);
    }

    #[test]
    fn bits_are_lossless_for_valid_sets() {
        use NeighborKind::*;
        // Every valid set round-trips behavior and preserves equality.
        let sets = [
            CommunitySet::empty(),
            CommunitySet::from_vec(vec![Community::NoExportToPeers]),
            CommunitySet::from_vec(vec![Community::NoExportToProviders]),
            CommunitySet::from_vec(vec![
                Community::NoExportToPeers,
                Community::NoExportToProviders,
            ]),
            CommunitySet::from_vec(vec![Community::PrependAtProvider(1)]),
            CommunitySet::from_vec(vec![Community::PrependAtProvider(8)]),
            CommunitySet::from_vec(vec![
                Community::PrependAtProvider(2),
                Community::PrependAtProvider(5),
            ]),
            CommunitySet::from_vec(vec![
                Community::NoExportToPeers,
                Community::PrependAtProvider(3),
            ]),
        ];
        for (i, a) in sets.iter().enumerate() {
            let ba = CommunityBits::from_set(a);
            assert_eq!(ba.is_empty(), a.is_empty());
            assert_eq!(ba.provider_prepends(), a.provider_prepends());
            for kind in [Customer, Peer, Provider] {
                assert_eq!(ba.allows_export_to(kind), a.allows_export_to(kind));
            }
            for (j, b) in sets.iter().enumerate() {
                assert_eq!(
                    ba == CommunityBits::from_set(b),
                    i == j,
                    "bit encoding merged distinct sets {a:?} / {b:?}"
                );
            }
        }
        assert_eq!(CommunityBits::EMPTY, CommunityBits::from_set(&sets[0]));
    }

    #[test]
    fn display() {
        assert_eq!(Community::NoExportToPeers.to_string(), "no-export-to-peers");
        assert_eq!(
            Community::PrependAtProvider(4).to_string(),
            "prepend-at-provider:4"
        );
    }
}
