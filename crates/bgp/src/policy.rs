//! Routing policies: Gao-Rexford import preferences and valley-free export
//! rules, plus the deviations the paper identifies in the wild.
//!
//! * **Policy violators** (§V-C, Fig 9): a configurable fraction of ASes do
//!   not rank routes by relationship; they use arbitrary-but-stable
//!   per-neighbor preferences (think traffic-engineering overrides).
//! * **Disabled loop prevention** (§III-A-c): some ASes accept routes
//!   containing their own ASN (e.g. multi-site interconnection over the
//!   Internet), making them immune to BGP poisoning.
//! * **Tier-1 poison filtering** (§III-A-c): tier-1s drop customer-learned
//!   routes whose AS-path contains another tier-1, as those normally
//!   indicate a route leak.

use crate::route::{LinkId, Route};
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use trackdown_topology::{cone::ConeInfo, AsIndex, AsPath, Asn, NeighborKind, Topology};

/// Standard Gao-Rexford LocalPref bands.
pub const LOCAL_PREF_CUSTOMER: u32 = 300;
/// LocalPref assigned to peer-learned routes.
pub const LOCAL_PREF_PEER: u32 = 200;
/// LocalPref assigned to provider-learned routes.
pub const LOCAL_PREF_PROVIDER: u32 = 100;

/// Knobs controlling how faithfully ASes follow textbook policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyConfig {
    /// Seed for violator selection, violator preferences, and tiebreak
    /// salts. Independent of the topology seed.
    pub seed: u64,
    /// Fraction of ASes that deviate from Gao-Rexford preferences.
    pub violator_fraction: f64,
    /// Fraction of ASes with BGP loop prevention disabled (poison-immune).
    pub no_loop_prevention_fraction: f64,
    /// Whether tier-1 ASes filter customer routes containing other tier-1s.
    pub tier1_poison_filtering: bool,
}

impl Default for PolicyConfig {
    fn default() -> PolicyConfig {
        PolicyConfig {
            seed: 0x90_11C7,
            violator_fraction: 0.08,
            no_loop_prevention_fraction: 0.02,
            tier1_poison_filtering: true,
        }
    }
}

/// SplitMix64 — tiny deterministic mixer for salted tiebreaks.
#[inline]
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Materialized per-AS policy state for one topology.
#[derive(Debug, Clone)]
pub struct PolicyTable {
    /// ASes that deviate from Gao-Rexford import preferences.
    violators: HashSet<AsIndex>,
    /// ASes that do not run loop prevention on their own ASN.
    no_loop_prevention: HashSet<AsIndex>,
    /// Tier-1 ASes (provider-free core), as ASN set for path scanning.
    tier1_asns: HashSet<Asn>,
    /// Tier-1 ASes as index set.
    tier1_idx: HashSet<AsIndex>,
    /// Per-AS tiebreak salt (stands in for IGP cost / router-id diversity).
    salts: Vec<u64>,
    /// Whether tier-1 filtering is active.
    tier1_filtering: bool,
    seed: u64,
}

impl PolicyTable {
    /// Build the policy table for a topology.
    pub fn build(topo: &Topology, cones: &ConeInfo, cfg: &PolicyConfig) -> PolicyTable {
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut violators = HashSet::new();
        let mut no_loop_prevention = HashSet::new();
        for i in topo.indices() {
            if rng.random::<f64>() < cfg.violator_fraction {
                violators.insert(i);
            }
            if rng.random::<f64>() < cfg.no_loop_prevention_fraction {
                no_loop_prevention.insert(i);
            }
        }
        let tier1_idx: HashSet<AsIndex> = cones.tier1s().collect();
        let tier1_asns = tier1_idx.iter().map(|&i| topo.asn_of(i)).collect();
        let salts = topo
            .indices()
            .map(|i| mix64(cfg.seed ^ ((i.0 as u64) << 17) ^ 0xA5A5))
            .collect();
        PolicyTable {
            violators,
            no_loop_prevention,
            tier1_asns,
            tier1_idx,
            salts,
            tier1_filtering: cfg.tier1_poison_filtering,
            seed: cfg.seed,
        }
    }

    /// True if `i` deviates from Gao-Rexford preferences.
    pub fn is_violator(&self, i: AsIndex) -> bool {
        self.violators.contains(&i)
    }

    /// True if `i` ignores its own ASN in received AS-paths.
    pub fn ignores_loop_prevention(&self, i: AsIndex) -> bool {
        self.no_loop_prevention.contains(&i)
    }

    /// True if `i` is a tier-1 AS.
    pub fn is_tier1(&self, i: AsIndex) -> bool {
        self.tier1_idx.contains(&i)
    }

    /// Number of policy violators.
    pub fn num_violators(&self) -> usize {
        self.violators.len()
    }

    /// LocalPref that AS `at` assigns to a route learned from a neighbor of
    /// the given kind. Violators hash `(at, neighbor)` into the full
    /// LocalPref range, modeling arbitrary-but-stable policy.
    pub fn local_pref(&self, at: AsIndex, neighbor: Option<AsIndex>, kind: NeighborKind) -> u32 {
        if self.violators.contains(&at) {
            let nid = neighbor.map(|n| n.0 as u64 + 1).unwrap_or(0);
            let h = mix64(self.seed ^ ((at.0 as u64) << 32) ^ nid);
            // Spread violator preferences across the Gao-Rexford band so
            // they sometimes agree and sometimes invert the textbook order.
            100 + (h % 201) as u32 // 100..=300
        } else {
            match kind {
                NeighborKind::Customer => LOCAL_PREF_CUSTOMER,
                NeighborKind::Peer => LOCAL_PREF_PEER,
                NeighborKind::Provider => LOCAL_PREF_PROVIDER,
            }
        }
    }

    /// Valley-free export rule: may AS `from` export its best route
    /// (learned from a `learned_from`-kind neighbor) to a neighbor that is
    /// `to_kind` from `from`'s perspective?
    ///
    /// Customer-learned (and origin-injected) routes go to everyone;
    /// peer/provider-learned routes go to customers only.
    pub fn may_export(&self, learned_from: NeighborKind, to_kind: NeighborKind) -> bool {
        learned_from == NeighborKind::Customer || to_kind == NeighborKind::Customer
    }

    /// Import-time acceptance check at AS `at` for a path offered by
    /// `from` (`None` = directly from the origin). Returns `false` when the
    /// route must be dropped.
    pub fn accepts(
        &self,
        topo: &Topology,
        at: AsIndex,
        from: Option<AsIndex>,
        path: &AsPath,
    ) -> bool {
        self.accepts_iter(topo, at, from, path.as_slice().iter().copied())
    }

    /// [`PolicyTable::accepts`] over any path iterator — the engine's
    /// allocation-free form: the offered path is a virtual
    /// `prepends ⧺ arena walk` that never materializes a `Vec<Asn>`.
    /// The iterator must yield most-recent-first (slice order); `Clone`
    /// lets the two predicates each scan from the start.
    pub fn accepts_iter<I>(
        &self,
        topo: &Topology,
        at: AsIndex,
        from: Option<AsIndex>,
        path: I,
    ) -> bool
    where
        I: Iterator<Item = Asn> + Clone,
    {
        let own = topo.asn_of(at);
        // BGP loop prevention — the mechanism poisoning exploits.
        if !self.ignores_loop_prevention(at) && path.clone().any(|a| a == own) {
            return false;
        }
        // Tier-1 route-leak filter: drop customer-learned routes whose path
        // contains another tier-1.
        if self.tier1_filtering && self.is_tier1(at) {
            let from_customer = match from {
                Some(f) => topo.relationship(at, f) == Some(NeighborKind::Customer),
                None => true, // origin is a (virtual) customer of its provider
            };
            if from_customer {
                let mut path = path;
                if path.any(|a| a != own && self.tier1_asns.contains(&a)) {
                    return false;
                }
            }
        }
        true
    }

    /// Deterministic final tiebreak value for a candidate route at AS `at`:
    /// lower wins. Salting per AS stands in for IGP distances and router
    /// ids, so different ASes break identical ties differently (this is
    /// what AS-path prepending manipulates around). Exposed key-wise (not
    /// just via [`PolicyTable::tiebreak`]) so reference implementations
    /// that don't use [`Route`] can replicate the decision process.
    pub fn tiebreak_key(
        &self,
        at: AsIndex,
        from_neighbor: Option<AsIndex>,
        ingress: LinkId,
    ) -> u64 {
        let nid = from_neighbor.map(|n| n.0 as u64 + 1).unwrap_or(0);
        // Include the ingress link so equal-length paths from the same
        // neighbor but different origin links order deterministically.
        mix64(self.salts[at.us()] ^ (nid << 8) ^ ingress.0 as u64)
    }

    /// [`PolicyTable::tiebreak_key`] of a candidate [`Route`].
    pub fn tiebreak(&self, at: AsIndex, route: &Route) -> u64 {
        self.tiebreak_key(at, route.from_neighbor, route.ingress)
    }
}

/// Convenience: classify whether a decision followed the best-relationship
/// criterion and the shortest-path criterion (used by the Fig 9 analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComplianceFlags {
    /// Chosen route has the best relationship rank among candidates.
    pub best_relationship: bool,
    /// Chosen route additionally has the shortest path among candidates
    /// tied at the best relationship rank.
    pub shortest_path: bool,
}

/// Evaluate compliance of a chosen route against the candidate set, using
/// relationship ranks (customer > peer > provider) and path lengths.
pub fn compliance_of(chosen: &Route, candidates: &[&Route]) -> ComplianceFlags {
    let best_rank = candidates
        .iter()
        .map(|r| r.learned_from.preference_rank())
        .max()
        .unwrap_or(0);
    let chosen_rank = chosen.learned_from.preference_rank();
    let best_relationship = chosen_rank == best_rank;
    let shortest = candidates
        .iter()
        .filter(|r| r.learned_from.preference_rank() == best_rank)
        .map(|r| r.path_len())
        .min()
        .unwrap_or(usize::MAX);
    ComplianceFlags {
        best_relationship,
        shortest_path: best_relationship && chosen.path_len() == shortest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::LinkId;
    use trackdown_topology::gen::{generate, TopologyConfig};

    fn table(violators: f64) -> (trackdown_topology::Topology, PolicyTable) {
        let g = generate(&TopologyConfig::small(5));
        let cones = ConeInfo::compute(&g.topology);
        let t = PolicyTable::build(
            &g.topology,
            &cones,
            &PolicyConfig {
                seed: 99,
                violator_fraction: violators,
                no_loop_prevention_fraction: 0.0,
                tier1_poison_filtering: true,
            },
        );
        (g.topology, t)
    }

    #[test]
    fn gao_rexford_prefs() {
        let (_, t) = table(0.0);
        let i = AsIndex(0);
        assert_eq!(t.local_pref(i, None, NeighborKind::Customer), 300);
        assert_eq!(t.local_pref(i, None, NeighborKind::Peer), 200);
        assert_eq!(t.local_pref(i, None, NeighborKind::Provider), 100);
    }

    #[test]
    fn violator_prefs_stable_and_in_band() {
        let (_, t) = table(1.0);
        let i = AsIndex(3);
        assert!(t.is_violator(i));
        let p1 = t.local_pref(i, Some(AsIndex(7)), NeighborKind::Provider);
        let p2 = t.local_pref(i, Some(AsIndex(7)), NeighborKind::Customer);
        // Violator preference depends on the neighbor, not the relationship.
        assert_eq!(p1, p2);
        assert!((100..=300).contains(&p1));
        // Stable across calls.
        assert_eq!(
            p1,
            t.local_pref(i, Some(AsIndex(7)), NeighborKind::Provider)
        );
    }

    #[test]
    fn export_rules_are_valley_free() {
        let (_, t) = table(0.0);
        use NeighborKind::*;
        assert!(t.may_export(Customer, Customer));
        assert!(t.may_export(Customer, Peer));
        assert!(t.may_export(Customer, Provider));
        assert!(t.may_export(Peer, Customer));
        assert!(!t.may_export(Peer, Peer));
        assert!(!t.may_export(Peer, Provider));
        assert!(t.may_export(Provider, Customer));
        assert!(!t.may_export(Provider, Peer));
        assert!(!t.may_export(Provider, Provider));
    }

    #[test]
    fn loop_prevention_drops_own_asn() {
        let (topo, t) = table(0.0);
        let i = AsIndex(2);
        let own = topo.asn_of(i);
        let poisoned = AsPath::poisoned_origin(Asn(999_999), &[own]);
        assert!(!t.accepts(&topo, i, None, &poisoned));
        let clean = AsPath::from_origin(Asn(999_999));
        assert!(t.accepts(&topo, i, None, &clean));
    }

    #[test]
    fn no_loop_prevention_accepts_own_asn() {
        let g = generate(&TopologyConfig::small(5));
        let cones = ConeInfo::compute(&g.topology);
        let t = PolicyTable::build(
            &g.topology,
            &cones,
            &PolicyConfig {
                seed: 1,
                violator_fraction: 0.0,
                no_loop_prevention_fraction: 1.0,
                tier1_poison_filtering: false,
            },
        );
        let i = AsIndex(2);
        let own = g.topology.asn_of(i);
        let poisoned = AsPath::poisoned_origin(Asn(999_999), &[own]);
        assert!(t.accepts(&g.topology, i, None, &poisoned));
    }

    #[test]
    fn tier1_filters_customer_routes_with_other_tier1s() {
        let (topo, t) = table(0.0);
        let t1: Vec<AsIndex> = topo.indices().filter(|&i| t.is_tier1(i)).collect();
        assert!(t1.len() >= 2);
        let a = t1[0];
        let other_t1_asn = topo.asn_of(t1[1]);
        // Path containing another tier-1, arriving from the origin
        // (treated as customer-learned): must be filtered.
        let path = AsPath::poisoned_origin(Asn(999_999), &[other_t1_asn]);
        assert!(!t.accepts(&topo, a, None, &path));
        // A non-tier1 AS is not subject to the filter (if not poisoned itself).
        let stub = topo
            .indices()
            .find(|&i| !t.is_tier1(i) && topo.asn_of(i) != other_t1_asn)
            .unwrap();
        assert!(t.accepts(&topo, stub, None, &path));
    }

    #[test]
    fn tiebreak_is_deterministic_and_as_dependent() {
        let (_, t) = table(0.0);
        let r = Route {
            path_id: crate::arena::PathId::EMPTY,
            path_len: 1,
            ingress: LinkId(0),
            from_neighbor: Some(AsIndex(4)),
            local_pref: 300,
            learned_from: NeighborKind::Customer,
            communities: crate::community::CommunityBits::EMPTY,
        };
        assert_eq!(t.tiebreak(AsIndex(0), &r), t.tiebreak(AsIndex(0), &r));
        // The tiebreak depends only on (at, from_neighbor, ingress).
        assert_eq!(
            t.tiebreak(AsIndex(0), &r),
            t.tiebreak_key(AsIndex(0), Some(AsIndex(4)), LinkId(0))
        );
        // Salts should make at least some pair of ASes disagree.
        assert_ne!(t.tiebreak(AsIndex(0), &r), t.tiebreak(AsIndex(1), &r));
    }

    #[test]
    fn compliance_classification() {
        let mk = |kind, len: u32| Route {
            path_id: crate::arena::PathId::EMPTY,
            path_len: len,
            ingress: LinkId(0),
            from_neighbor: Some(AsIndex(1)),
            local_pref: 0,
            learned_from: kind,
            communities: crate::community::CommunityBits::EMPTY,
        };
        let cust_short = mk(NeighborKind::Customer, 2);
        let cust_long = mk(NeighborKind::Customer, 5);
        let peer = mk(NeighborKind::Peer, 1);
        let cands = [&cust_short, &cust_long, &peer];
        let f = compliance_of(&cust_short, &cands);
        assert!(f.best_relationship && f.shortest_path);
        let f = compliance_of(&cust_long, &cands);
        assert!(f.best_relationship && !f.shortest_path);
        let f = compliance_of(&peer, &cands);
        assert!(!f.best_relationship && !f.shortest_path);
    }
}
