//! Routing policies: Gao-Rexford import preferences and valley-free export
//! rules, plus the deviations the paper identifies in the wild.
//!
//! * **Policy violators** (§V-C, Fig 9): a configurable fraction of ASes do
//!   not rank routes by relationship; they use arbitrary-but-stable
//!   per-neighbor preferences (think traffic-engineering overrides).
//! * **Disabled loop prevention** (§III-A-c): some ASes accept routes
//!   containing their own ASN (e.g. multi-site interconnection over the
//!   Internet), making them immune to BGP poisoning.
//! * **Tier-1 poison filtering** (§III-A-c): tier-1s drop customer-learned
//!   routes whose AS-path contains another tier-1, as those normally
//!   indicate a route leak.
//! * **Policy extensions** ([`PolicyExtension`]): composable per-AS defense
//!   deployments (ROV, peer-ROV, ASPA, peerlock-lite, only-to-customers,
//!   enforce-first-AS, AS-path edge filtering) with fraction-based,
//!   tier-biased, deterministically seeded placement. These model the
//!   partially deployed filtering the paper's §III-A-c failure mode hints
//!   at: several of them drop the poison sandwich outright and therefore
//!   degrade poisoning-based disambiguation.

use crate::community::CommunityBits;
use crate::route::{LinkId, Route};
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};
use std::collections::HashSet;
use trackdown_topology::{
    cone::{ConeInfo, Tier},
    AsIndex, AsPath, Asn, NeighborKind, Topology,
};

/// Standard Gao-Rexford LocalPref bands.
pub const LOCAL_PREF_CUSTOMER: u32 = 300;
/// LocalPref assigned to peer-learned routes.
pub const LOCAL_PREF_PEER: u32 = 200;
/// LocalPref assigned to provider-learned routes.
pub const LOCAL_PREF_PROVIDER: u32 = 100;

/// One composable defense an AS may deploy on top of Gao-Rexford.
///
/// Semantics in this simulator (the origin is a *virtual* stub customer of
/// its PoP providers, announcing one prefix):
///
/// * `Rov` — route-origin validation: drop routes whose origin (last path
///   element) is not the legitimate origin ASN. Poison sandwiches keep the
///   true origin last, so ROV only bites on forged-origin announcements
///   (hijacks), matching its real-world blind spot.
/// * `PeerRov` — ROV applied to peer-learned routes only (the cheap
///   IXP-style deployment).
/// * `Aspa` — ASPA-style path verification: every adjacent pair of
///   topology-resident ASes on the path must be a real edge whose
///   relationship keeps the path valley-free, and the (stub-attested)
///   origin ASN may appear only in the origin position. The sandwich
///   `[origin, victim, origin]` places the origin mid-path, so ASPA drops
///   every poisoned announcement.
/// * `PeerlockLite` — drop customer- or peer-learned routes whose path
///   contains a *locked* ASN other than the sending neighbor's. The locked
///   set is the tier-1 clique (the shared "lite" list: tier-1s are never
///   reachable *through* a customer or lateral peer), the deployer's own
///   peer partners (full peerlock's bilateral rule: a partner's ASN may
///   only arrive from that partner), and — on customer-learned paths —
///   the deployer's own transit providers (an upstream inside a
///   customer's cone would make the hierarchy cyclic). Poison sandwiches
///   name exactly such third-party ASes, so deployers adjacent to the
///   poisoned AS drop the announcement.
/// * `OnlyToCustomers` — RFC 9234: mark routes exported to customers or
///   peers with an OTC attribute, honor the mark on export (customers
///   only), and drop OTC-marked routes arriving from customers. Valley-free
///   export means no leaks arise in-simulation; the machinery is a control.
/// * `EnforceFirstAs` — the first path element must be the sending
///   neighbor's ASN (or the origin's, on a direct injection). Every export
///   in this engine prepends the sender, so this is a control too.
/// * `EdgeFilter` — AS-path edge filtering: adjacent resident pairs must be
///   real topology edges and the stub origin may not appear mid-path
///   (adjacency only, no relationship check — the cheaper cousin of
///   `Aspa`). Also drops every poison sandwich.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum PolicyExtension {
    /// Route-origin validation.
    Rov,
    /// ROV on peer-learned routes only.
    PeerRov,
    /// ASPA-style path plausibility (edges + valley-free + stub origin).
    Aspa,
    /// Drop customer/peer routes containing locked (tier-1 or own-peer)
    /// ASNs learned from anyone but the locked AS itself.
    PeerlockLite,
    /// RFC 9234 only-to-customers attribute.
    OnlyToCustomers,
    /// First path element must be the sending neighbor.
    EnforceFirstAs,
    /// Adjacent resident path pairs must be real edges.
    EdgeFilter,
}

impl PolicyExtension {
    /// Every extension, in evaluation order.
    pub const ALL: [PolicyExtension; 7] = [
        PolicyExtension::Rov,
        PolicyExtension::PeerRov,
        PolicyExtension::Aspa,
        PolicyExtension::PeerlockLite,
        PolicyExtension::OnlyToCustomers,
        PolicyExtension::EnforceFirstAs,
        PolicyExtension::EdgeFilter,
    ];

    /// Bit of this extension in a per-AS deployment mask.
    #[inline]
    fn bit(self) -> u8 {
        1 << self as u8
    }

    /// Stable CLI/report label.
    pub fn label(self) -> &'static str {
        match self {
            PolicyExtension::Rov => "rov",
            PolicyExtension::PeerRov => "peer-rov",
            PolicyExtension::Aspa => "aspa",
            PolicyExtension::PeerlockLite => "peerlock-lite",
            PolicyExtension::OnlyToCustomers => "only-to-customers",
            PolicyExtension::EnforceFirstAs => "enforce-first-as",
            PolicyExtension::EdgeFilter => "edge-filter",
        }
    }

    /// Parse a CLI label (the inverse of [`PolicyExtension::label`]).
    pub fn parse(s: &str) -> Option<PolicyExtension> {
        PolicyExtension::ALL.into_iter().find(|e| e.label() == s)
    }
}

impl std::fmt::Display for PolicyExtension {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.label())
    }
}

/// How a deployment fraction is spread across tiers.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum DeploymentBias {
    /// Every AS deploys with the same probability.
    Uniform,
    /// Core-biased: tier-1s and transits adopt first (the empirical
    /// pattern for ROV/peerlock — operators with NOCs deploy defenses).
    #[default]
    Core,
    /// Stub-biased: edge networks adopt first.
    Stub,
}

impl DeploymentBias {
    /// Probability multiplier for a tier (clamped to 1.0 downstream).
    fn weight(self, tier: Tier) -> f64 {
        match (self, tier) {
            (DeploymentBias::Uniform, _) => 1.0,
            (DeploymentBias::Core, Tier::Tier1) => 4.0,
            (DeploymentBias::Core, Tier::Transit) => 2.0,
            (DeploymentBias::Core, _) => 0.5,
            (DeploymentBias::Stub, Tier::Tier1) => 0.25,
            (DeploymentBias::Stub, Tier::Transit) => 0.5,
            (DeploymentBias::Stub, _) => 2.0,
        }
    }
}

/// One extension rolled out to a fraction of the AS population.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtensionDeployment {
    /// Which defense.
    pub extension: PolicyExtension,
    /// Target deployment fraction in `[0, 1]` (tier weights scale the
    /// per-AS probability; `1.0` always means universal deployment).
    pub fraction: f64,
    /// Tier bias of the placement.
    #[serde(default)]
    pub bias: DeploymentBias,
}

/// The composable defense layer of a [`PolicyConfig`]. The default is
/// empty, which is guaranteed to reproduce pre-extension behavior exactly
/// (bit-for-bit identical manifests): no RNG draws, no route-attribute
/// changes, no extra path scans.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ExtensionConfig {
    /// The legitimate origin ASN, anchoring ROV origin validation and the
    /// ASPA/edge-filter stub attestation.
    pub origin_asn: Asn,
    /// Extensions to roll out.
    pub deployments: Vec<ExtensionDeployment>,
}

impl Default for ExtensionConfig {
    fn default() -> ExtensionConfig {
        ExtensionConfig {
            origin_asn: crate::origin::DEFAULT_ORIGIN_ASN,
            deployments: Vec::new(),
        }
    }
}

impl ExtensionConfig {
    /// A single-extension rollout at `fraction` with the default (core)
    /// bias — the shape the defense-degradation experiment sweeps.
    pub fn single(extension: PolicyExtension, fraction: f64) -> ExtensionConfig {
        ExtensionConfig {
            deployments: vec![ExtensionDeployment {
                extension,
                fraction,
                bias: DeploymentBias::default(),
            }],
            ..ExtensionConfig::default()
        }
    }

    /// True when no extension can ever fire.
    pub fn is_empty(&self) -> bool {
        self.deployments.iter().all(|d| d.fraction <= 0.0)
    }
}

/// Knobs controlling how faithfully ASes follow textbook policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolicyConfig {
    /// Seed for violator selection, violator preferences, and tiebreak
    /// salts. Independent of the topology seed.
    pub seed: u64,
    /// Fraction of ASes that deviate from Gao-Rexford preferences.
    pub violator_fraction: f64,
    /// Fraction of ASes with BGP loop prevention disabled (poison-immune).
    pub no_loop_prevention_fraction: f64,
    /// Whether tier-1 ASes filter customer routes containing other tier-1s.
    pub tier1_poison_filtering: bool,
    /// Composable per-AS defense deployments (empty = legacy behavior,
    /// guaranteed bit-identical; absent in serialized configs from before
    /// the extension layer).
    #[serde(default)]
    pub extensions: ExtensionConfig,
}

impl Default for PolicyConfig {
    fn default() -> PolicyConfig {
        PolicyConfig {
            seed: 0x90_11C7,
            violator_fraction: 0.08,
            no_loop_prevention_fraction: 0.02,
            tier1_poison_filtering: true,
            extensions: ExtensionConfig::default(),
        }
    }
}

/// SplitMix64 — tiny deterministic mixer for salted tiebreaks.
#[inline]
pub(crate) fn mix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Materialized per-AS policy state for one topology.
#[derive(Debug, Clone)]
pub struct PolicyTable {
    /// ASes that deviate from Gao-Rexford import preferences.
    violators: HashSet<AsIndex>,
    /// ASes that do not run loop prevention on their own ASN.
    no_loop_prevention: HashSet<AsIndex>,
    /// Tier-1 ASes (provider-free core), as ASN set for path scanning.
    tier1_asns: HashSet<Asn>,
    /// Tier-1 ASes as index set.
    tier1_idx: HashSet<AsIndex>,
    /// Per-AS tiebreak salt (stands in for IGP cost / router-id diversity).
    salts: Vec<u64>,
    /// Whether tier-1 filtering is active.
    tier1_filtering: bool,
    /// Per-AS deployment bitmask over [`PolicyExtension::ALL`] (all zero
    /// when no extensions are configured — the hot paths branch on one
    /// byte load and stay on the legacy code exactly).
    ext_bits: Vec<u8>,
    /// Union of `ext_bits` — false short-circuits every extension hook.
    any_ext: bool,
    /// The legitimate origin ASN (ROV anchor / stub attestation).
    origin_asn: Asn,
    /// Whether `origin_asn` collides with a topology-resident AS. The
    /// origin is normally virtual; on a collision (possible at extreme
    /// scales, since generated ASNs are dense) the stub attestation is
    /// disabled rather than penalizing an innocent resident AS.
    origin_resident: bool,
    seed: u64,
}

impl PolicyTable {
    /// Build the policy table for a topology.
    pub fn build(topo: &Topology, cones: &ConeInfo, cfg: &PolicyConfig) -> PolicyTable {
        let mut rng = ChaCha8Rng::seed_from_u64(cfg.seed);
        let mut violators = HashSet::new();
        let mut no_loop_prevention = HashSet::new();
        for i in topo.indices() {
            if rng.random::<f64>() < cfg.violator_fraction {
                violators.insert(i);
            }
            if rng.random::<f64>() < cfg.no_loop_prevention_fraction {
                no_loop_prevention.insert(i);
            }
        }
        let tier1_idx: HashSet<AsIndex> = cones.tier1s().collect();
        let tier1_asns = tier1_idx.iter().map(|&i| topo.asn_of(i)).collect();
        let salts = topo
            .indices()
            .map(|i| mix64(cfg.seed ^ ((i.0 as u64) << 17) ^ 0xA5A5))
            .collect();
        // Extension placement is hash-based (not rng-stream-based) so each
        // (extension, AS) decision is independent: adding a deployment
        // never reshuffles violator selection or another extension's
        // placement, and an empty config consumes nothing.
        let mut ext_bits = vec![0u8; topo.num_ases()];
        for d in &cfg.extensions.deployments {
            if d.fraction <= 0.0 {
                continue;
            }
            for i in topo.indices() {
                // Full rollout overrides the bias weighting: 1.0 means
                // universal deployment for every tier.
                let p = if d.fraction >= 1.0 {
                    1.0
                } else {
                    (d.fraction * d.bias.weight(cones.tier(i))).min(1.0)
                };
                let h = mix64(cfg.seed ^ 0xE07_0DE5 ^ ((d.extension as u64) << 48) ^ i.0 as u64);
                // 53-bit mantissa draw in [0, 1); p >= 1 always deploys.
                if p >= 1.0 || ((h >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p {
                    ext_bits[i.us()] |= d.extension.bit();
                }
            }
        }
        let any_ext = ext_bits.iter().any(|&b| b != 0);
        let origin_asn = cfg.extensions.origin_asn;
        PolicyTable {
            violators,
            no_loop_prevention,
            tier1_asns,
            tier1_idx,
            salts,
            tier1_filtering: cfg.tier1_poison_filtering,
            ext_bits,
            any_ext,
            origin_asn,
            origin_resident: topo.index_of(origin_asn).is_some(),
            seed: cfg.seed,
        }
    }

    /// True if `i` deviates from Gao-Rexford preferences.
    pub fn is_violator(&self, i: AsIndex) -> bool {
        self.violators.contains(&i)
    }

    /// True if `i` ignores its own ASN in received AS-paths.
    pub fn ignores_loop_prevention(&self, i: AsIndex) -> bool {
        self.no_loop_prevention.contains(&i)
    }

    /// True if `i` is a tier-1 AS.
    pub fn is_tier1(&self, i: AsIndex) -> bool {
        self.tier1_idx.contains(&i)
    }

    /// Number of policy violators.
    pub fn num_violators(&self) -> usize {
        self.violators.len()
    }

    /// LocalPref that AS `at` assigns to a route learned from a neighbor of
    /// the given kind. Violators hash `(at, neighbor)` into the full
    /// LocalPref range, modeling arbitrary-but-stable policy.
    pub fn local_pref(&self, at: AsIndex, neighbor: Option<AsIndex>, kind: NeighborKind) -> u32 {
        if self.violators.contains(&at) {
            let nid = neighbor.map(|n| n.0 as u64 + 1).unwrap_or(0);
            let h = mix64(self.seed ^ ((at.0 as u64) << 32) ^ nid);
            // Spread violator preferences across the Gao-Rexford band so
            // they sometimes agree and sometimes invert the textbook order.
            100 + (h % 201) as u32 // 100..=300
        } else {
            match kind {
                NeighborKind::Customer => LOCAL_PREF_CUSTOMER,
                NeighborKind::Peer => LOCAL_PREF_PEER,
                NeighborKind::Provider => LOCAL_PREF_PROVIDER,
            }
        }
    }

    /// True if `i` deploys the given policy extension.
    #[inline]
    pub fn deploys(&self, i: AsIndex, ext: PolicyExtension) -> bool {
        self.ext_bits[i.us()] & ext.bit() != 0
    }

    /// Number of ASes deploying the given extension (reporting).
    pub fn num_deployers(&self, ext: PolicyExtension) -> usize {
        self.ext_bits
            .iter()
            .filter(|&&b| b & ext.bit() != 0)
            .count()
    }

    /// True if any AS deploys any extension — when false, every extension
    /// hook reduces to the legacy (pre-extension) behavior exactly.
    #[inline]
    pub fn has_extensions(&self) -> bool {
        self.any_ext
    }

    /// Valley-free export rule: may AS `from` export its best route
    /// (learned from a `learned_from`-kind neighbor) to a neighbor that is
    /// `to_kind` from `from`'s perspective?
    ///
    /// Customer-learned (and origin-injected) routes go to everyone;
    /// peer/provider-learned routes go to customers only.
    pub fn may_export(&self, learned_from: NeighborKind, to_kind: NeighborKind) -> bool {
        learned_from == NeighborKind::Customer || to_kind == NeighborKind::Customer
    }

    /// Extension-aware export gate: [`PolicyTable::may_export`] plus the
    /// RFC 9234 rule that an [`PolicyExtension::OnlyToCustomers`] deployer
    /// must not send an OTC-marked route to a peer or provider. Valley-free
    /// export already confines OTC-marked (peer/provider-learned) routes to
    /// customers, so with extensions off this is exactly `may_export`.
    pub fn may_export_route(
        &self,
        at: AsIndex,
        learned_from: NeighborKind,
        to_kind: NeighborKind,
        communities: CommunityBits,
    ) -> bool {
        if !self.may_export(learned_from, to_kind) {
            return false;
        }
        if self.any_ext
            && communities.has_otc()
            && to_kind != NeighborKind::Customer
            && self.deploys(at, PolicyExtension::OnlyToCustomers)
        {
            return false;
        }
        true
    }

    /// Communities AS `at` attaches when exporting a route to a `to_kind`
    /// neighbor. Legacy behavior (first-hop action communities are honored
    /// by the PoP provider, then stripped) is the empty set; an
    /// [`PolicyExtension::OnlyToCustomers`] deployer additionally sets —
    /// and every AS propagates — the OTC marker on routes sent to
    /// customers and peers.
    pub fn export_communities(
        &self,
        at: AsIndex,
        route: &Route,
        to_kind: NeighborKind,
    ) -> CommunityBits {
        if !self.any_ext {
            return CommunityBits::EMPTY;
        }
        // Origin action communities on the direct route never carry OTC;
        // propagated routes carry at most the OTC marker.
        let mut out = if route.from_neighbor.is_none() {
            CommunityBits::EMPTY
        } else {
            route.communities.otc_only()
        };
        if to_kind != NeighborKind::Provider && self.deploys(at, PolicyExtension::OnlyToCustomers) {
            out = out.with_otc();
        }
        out
    }

    /// Import-time acceptance check at AS `at` for a path offered by
    /// `from` (`None` = directly from the origin). Returns `false` when the
    /// route must be dropped.
    pub fn accepts(
        &self,
        topo: &Topology,
        at: AsIndex,
        from: Option<AsIndex>,
        path: &AsPath,
    ) -> bool {
        self.accepts_iter(topo, at, from, path.as_slice().iter().copied())
    }

    /// [`PolicyTable::accepts`] over any path iterator — the engine's
    /// allocation-free form: the offered path is a virtual
    /// `prepends ⧺ arena walk` that never materializes a `Vec<Asn>`.
    /// The iterator must yield most-recent-first (slice order); `Clone`
    /// lets the two predicates each scan from the start.
    pub fn accepts_iter<I>(
        &self,
        topo: &Topology,
        at: AsIndex,
        from: Option<AsIndex>,
        path: I,
    ) -> bool
    where
        I: Iterator<Item = Asn> + Clone,
    {
        let own = topo.asn_of(at);
        // BGP loop prevention — the mechanism poisoning exploits.
        if !self.ignores_loop_prevention(at) && path.clone().any(|a| a == own) {
            return false;
        }
        // Tier-1 route-leak filter: drop customer-learned routes whose path
        // contains another tier-1.
        if self.tier1_filtering && self.is_tier1(at) {
            let from_customer = match from {
                Some(f) => topo.relationship(at, f) == Some(NeighborKind::Customer),
                None => true, // origin is a (virtual) customer of its provider
            };
            if from_customer
                && path
                    .clone()
                    .any(|a| a != own && self.tier1_asns.contains(&a))
            {
                return false;
            }
        }
        // Composable defense extensions, evaluated on the same virtual
        // path. One byte load keeps the extensions-off path identical to
        // the legacy engine.
        let bits = self.ext_bits[at.us()];
        if bits == 0 {
            return true;
        }
        self.extensions_accept(topo, at, from, bits, path)
    }

    /// [`PolicyTable::accepts_iter`] with the offered route's communities,
    /// so [`PolicyExtension::OnlyToCustomers`] deployers can reject
    /// OTC-marked routes arriving from customers (a leak by definition).
    /// Equal to `accepts_iter` whenever no OTC marker is present.
    pub fn accepts_offer_iter<I>(
        &self,
        topo: &Topology,
        at: AsIndex,
        from: Option<AsIndex>,
        offered: CommunityBits,
        path: I,
    ) -> bool
    where
        I: Iterator<Item = Asn> + Clone,
    {
        if self.any_ext && offered.has_otc() && self.deploys(at, PolicyExtension::OnlyToCustomers) {
            let from_customer = match from {
                Some(f) => topo.relationship(at, f) == Some(NeighborKind::Customer),
                None => true,
            };
            if from_customer {
                return false;
            }
        }
        self.accepts_iter(topo, at, from, path)
    }

    /// Evaluate the deployed extension set (`bits != 0`) at `at` against an
    /// offered path. Runs after loop prevention and the tier-1 filter; the
    /// order below is fixed and documented (DESIGN.md §4j). All checks are
    /// allocation-free: each predicate re-scans a `Clone` of the virtual
    /// path iterator.
    fn extensions_accept<I>(
        &self,
        topo: &Topology,
        at: AsIndex,
        from: Option<AsIndex>,
        bits: u8,
        path: I,
    ) -> bool
    where
        I: Iterator<Item = Asn> + Clone,
    {
        let from_kind = match from {
            Some(f) => topo.relationship(at, f).unwrap_or(NeighborKind::Customer),
            // Direct injection: the origin is a virtual customer.
            None => NeighborKind::Customer,
        };
        // 1. Enforce-first-AS: the nearest path element must identify the
        //    sending neighbor (the origin itself on direct injections).
        if bits & PolicyExtension::EnforceFirstAs.bit() != 0 {
            let expected = match from {
                Some(f) => topo.asn_of(f),
                None => self.origin_asn,
            };
            if path.clone().next() != Some(expected) {
                return false;
            }
        }
        // 2. ROV / peer-ROV: origin (last element) must be the legitimate
        //    origin ASN.
        let rov_active = bits & PolicyExtension::Rov.bit() != 0
            || (bits & PolicyExtension::PeerRov.bit() != 0 && from_kind == NeighborKind::Peer);
        if rov_active && path.clone().last() != Some(self.origin_asn) {
            return false;
        }
        // 3. Peerlock-lite: customer/peer-learned paths may not contain a
        //    locked ASN other than the sender (and the deployer itself).
        //    Locked = the tier-1 clique (the "lite" list every deployer
        //    shares), the deployer's own peer partners (full peerlock's
        //    bilateral rule: a partner's ASN may only arrive from that
        //    partner), and — on customer-learned paths — the deployer's
        //    own transit providers (an upstream inside a customer's cone
        //    would make the hierarchy cyclic, so such a path is a leak or
        //    poison by construction). A poison sandwich names exactly such
        //    an AS, so deployers adjacent to the poisoned AS drop it.
        if bits & PolicyExtension::PeerlockLite.bit() != 0 && from_kind != NeighborKind::Provider {
            let own = topo.asn_of(at);
            let sender = from.map(|f| topo.asn_of(f));
            let from_customer = from_kind == NeighborKind::Customer;
            if path.clone().any(|a| {
                a != own
                    && Some(a) != sender
                    && (self.tier1_asns.contains(&a)
                        || topo
                            .index_of(a)
                            .is_some_and(|i| match topo.relationship(at, i) {
                                Some(NeighborKind::Peer) => true,
                                Some(NeighborKind::Provider) => from_customer,
                                _ => false,
                            }))
            }) {
                return false;
            }
        }
        // 4. Edge filter (adjacency only), then 5. ASPA (adjacency +
        //    valley-free direction). Both include the stub attestation.
        if bits & PolicyExtension::EdgeFilter.bit() != 0
            && !self.path_topology_ok(topo, from_kind, false, path.clone())
        {
            return false;
        }
        if bits & PolicyExtension::Aspa.bit() != 0
            && !self.path_topology_ok(topo, from_kind, true, path)
        {
            return false;
        }
        true
    }

    /// Shared walker for [`PolicyExtension::EdgeFilter`] (adjacency) and
    /// [`PolicyExtension::Aspa`] (adjacency + relationship direction).
    ///
    /// The virtual origin is attested as a stub customer: if the (non-
    /// resident) origin ASN appears anywhere but the origin position the
    /// path claims the origin transited traffic, which its attestation
    /// rules out — this is exactly what a poison sandwich
    /// `[origin, victim, origin]` does. Remaining non-resident ASNs are
    /// bridged over (no attestation, no verdict), consecutive repeats
    /// (prepending) collapse, and every adjacent resident pair must be a
    /// real topology edge. With `check_direction`, hop relationships must
    /// additionally form a valley-free sequence consistent with how the
    /// route arrived (`from_kind`): iterating nearest-first, a valid path
    /// reads `down* peer? up*` in reverse-propagation order.
    fn path_topology_ok<I>(
        &self,
        topo: &Topology,
        from_kind: NeighborKind,
        check_direction: bool,
        path: I,
    ) -> bool
    where
        I: Iterator<Item = Asn> + Clone,
    {
        // Stub attestation (skipped when the origin ASN collides with a
        // resident AS, which then gets ordinary adjacency treatment).
        if !self.origin_resident {
            let mut saw_origin = false;
            for a in path.clone() {
                if a == self.origin_asn {
                    saw_origin = true;
                } else if saw_origin {
                    return false; // something *behind* the stub origin
                }
            }
        }
        // Pair walk over resident elements, nearest-first. `ascending`
        // means the remaining (origin-ward) hops must all be customer→
        // provider climbs; it starts set unless the route arrived from a
        // provider (descents may continue only at the receiver end).
        let mut prev: Option<(AsIndex, Asn)> = None;
        let mut ascending = check_direction && from_kind != NeighborKind::Provider;
        for a in path {
            let Some(idx) = topo.index_of(a) else {
                continue;
            };
            let Some((pidx, pasn)) = prev else {
                prev = Some((idx, a));
                continue;
            };
            if a == pasn {
                continue; // prepend repetition
            }
            // Propagation hop: `a` (origin-ward) exported to `pasn`.
            match topo.relationship(pidx, idx) {
                None => return false, // claimed edge does not exist
                Some(NeighborKind::Customer) => {
                    // Up hop (a is pasn's customer): enters/stays in ascent.
                    ascending = check_direction;
                }
                Some(NeighborKind::Peer) => {
                    if ascending {
                        return false; // peer hop after the ascent began
                    }
                    ascending = check_direction;
                }
                Some(NeighborKind::Provider) => {
                    if ascending {
                        return false; // descent after the ascent began
                    }
                }
            }
            prev = Some((idx, a));
        }
        true
    }

    /// Deterministic final tiebreak value for a candidate route at AS `at`:
    /// lower wins. Salting per AS stands in for IGP distances and router
    /// ids, so different ASes break identical ties differently (this is
    /// what AS-path prepending manipulates around). Exposed key-wise (not
    /// just via [`PolicyTable::tiebreak`]) so reference implementations
    /// that don't use [`Route`] can replicate the decision process.
    pub fn tiebreak_key(
        &self,
        at: AsIndex,
        from_neighbor: Option<AsIndex>,
        ingress: LinkId,
    ) -> u64 {
        let nid = from_neighbor.map(|n| n.0 as u64 + 1).unwrap_or(0);
        // Include the ingress link so equal-length paths from the same
        // neighbor but different origin links order deterministically.
        mix64(self.salts[at.us()] ^ (nid << 8) ^ ingress.0 as u64)
    }

    /// [`PolicyTable::tiebreak_key`] of a candidate [`Route`].
    pub fn tiebreak(&self, at: AsIndex, route: &Route) -> u64 {
        self.tiebreak_key(at, route.from_neighbor, route.ingress)
    }
}

/// Convenience: classify whether a decision followed the best-relationship
/// criterion and the shortest-path criterion (used by the Fig 9 analysis).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ComplianceFlags {
    /// Chosen route has the best relationship rank among candidates.
    pub best_relationship: bool,
    /// Chosen route additionally has the shortest path among candidates
    /// tied at the best relationship rank.
    pub shortest_path: bool,
}

/// Evaluate compliance of a chosen route against the candidate set, using
/// relationship ranks (customer > peer > provider) and path lengths.
pub fn compliance_of(chosen: &Route, candidates: &[&Route]) -> ComplianceFlags {
    let best_rank = candidates
        .iter()
        .map(|r| r.learned_from.preference_rank())
        .max()
        .unwrap_or(0);
    let chosen_rank = chosen.learned_from.preference_rank();
    let best_relationship = chosen_rank == best_rank;
    let shortest = candidates
        .iter()
        .filter(|r| r.learned_from.preference_rank() == best_rank)
        .map(|r| r.path_len())
        .min()
        .unwrap_or(usize::MAX);
    ComplianceFlags {
        best_relationship,
        shortest_path: best_relationship && chosen.path_len() == shortest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::route::LinkId;
    use trackdown_topology::gen::{generate, TopologyConfig};

    fn table(violators: f64) -> (trackdown_topology::Topology, PolicyTable) {
        let g = generate(&TopologyConfig::small(5));
        let cones = ConeInfo::compute(&g.topology);
        let t = PolicyTable::build(
            &g.topology,
            &cones,
            &PolicyConfig {
                seed: 99,
                violator_fraction: violators,
                no_loop_prevention_fraction: 0.0,
                tier1_poison_filtering: true,
                extensions: Default::default(),
            },
        );
        (g.topology, t)
    }

    #[test]
    fn gao_rexford_prefs() {
        let (_, t) = table(0.0);
        let i = AsIndex(0);
        assert_eq!(t.local_pref(i, None, NeighborKind::Customer), 300);
        assert_eq!(t.local_pref(i, None, NeighborKind::Peer), 200);
        assert_eq!(t.local_pref(i, None, NeighborKind::Provider), 100);
    }

    #[test]
    fn violator_prefs_stable_and_in_band() {
        let (_, t) = table(1.0);
        let i = AsIndex(3);
        assert!(t.is_violator(i));
        let p1 = t.local_pref(i, Some(AsIndex(7)), NeighborKind::Provider);
        let p2 = t.local_pref(i, Some(AsIndex(7)), NeighborKind::Customer);
        // Violator preference depends on the neighbor, not the relationship.
        assert_eq!(p1, p2);
        assert!((100..=300).contains(&p1));
        // Stable across calls.
        assert_eq!(
            p1,
            t.local_pref(i, Some(AsIndex(7)), NeighborKind::Provider)
        );
    }

    #[test]
    fn export_rules_are_valley_free() {
        let (_, t) = table(0.0);
        use NeighborKind::*;
        assert!(t.may_export(Customer, Customer));
        assert!(t.may_export(Customer, Peer));
        assert!(t.may_export(Customer, Provider));
        assert!(t.may_export(Peer, Customer));
        assert!(!t.may_export(Peer, Peer));
        assert!(!t.may_export(Peer, Provider));
        assert!(t.may_export(Provider, Customer));
        assert!(!t.may_export(Provider, Peer));
        assert!(!t.may_export(Provider, Provider));
    }

    #[test]
    fn loop_prevention_drops_own_asn() {
        let (topo, t) = table(0.0);
        let i = AsIndex(2);
        let own = topo.asn_of(i);
        let poisoned = AsPath::poisoned_origin(Asn(999_999), &[own]);
        assert!(!t.accepts(&topo, i, None, &poisoned));
        let clean = AsPath::from_origin(Asn(999_999));
        assert!(t.accepts(&topo, i, None, &clean));
    }

    #[test]
    fn no_loop_prevention_accepts_own_asn() {
        let g = generate(&TopologyConfig::small(5));
        let cones = ConeInfo::compute(&g.topology);
        let t = PolicyTable::build(
            &g.topology,
            &cones,
            &PolicyConfig {
                seed: 1,
                violator_fraction: 0.0,
                no_loop_prevention_fraction: 1.0,
                tier1_poison_filtering: false,
                extensions: Default::default(),
            },
        );
        let i = AsIndex(2);
        let own = g.topology.asn_of(i);
        let poisoned = AsPath::poisoned_origin(Asn(999_999), &[own]);
        assert!(t.accepts(&g.topology, i, None, &poisoned));
    }

    #[test]
    fn tier1_filters_customer_routes_with_other_tier1s() {
        let (topo, t) = table(0.0);
        let t1: Vec<AsIndex> = topo.indices().filter(|&i| t.is_tier1(i)).collect();
        assert!(t1.len() >= 2);
        let a = t1[0];
        let other_t1_asn = topo.asn_of(t1[1]);
        // Path containing another tier-1, arriving from the origin
        // (treated as customer-learned): must be filtered.
        let path = AsPath::poisoned_origin(Asn(999_999), &[other_t1_asn]);
        assert!(!t.accepts(&topo, a, None, &path));
        // A non-tier1 AS is not subject to the filter (if not poisoned itself).
        let stub = topo
            .indices()
            .find(|&i| !t.is_tier1(i) && topo.asn_of(i) != other_t1_asn)
            .unwrap();
        assert!(t.accepts(&topo, stub, None, &path));
    }

    #[test]
    fn tiebreak_is_deterministic_and_as_dependent() {
        let (_, t) = table(0.0);
        let r = Route {
            path_id: crate::arena::PathId::EMPTY,
            path_len: 1,
            ingress: LinkId(0),
            from_neighbor: Some(AsIndex(4)),
            local_pref: 300,
            learned_from: NeighborKind::Customer,
            communities: crate::community::CommunityBits::EMPTY,
        };
        assert_eq!(t.tiebreak(AsIndex(0), &r), t.tiebreak(AsIndex(0), &r));
        // The tiebreak depends only on (at, from_neighbor, ingress).
        assert_eq!(
            t.tiebreak(AsIndex(0), &r),
            t.tiebreak_key(AsIndex(0), Some(AsIndex(4)), LinkId(0))
        );
        // Salts should make at least some pair of ASes disagree.
        assert_ne!(t.tiebreak(AsIndex(0), &r), t.tiebreak(AsIndex(1), &r));
    }

    #[test]
    fn compliance_classification() {
        let mk = |kind, len: u32| Route {
            path_id: crate::arena::PathId::EMPTY,
            path_len: len,
            ingress: LinkId(0),
            from_neighbor: Some(AsIndex(1)),
            local_pref: 0,
            learned_from: kind,
            communities: crate::community::CommunityBits::EMPTY,
        };
        let cust_short = mk(NeighborKind::Customer, 2);
        let cust_long = mk(NeighborKind::Customer, 5);
        let peer = mk(NeighborKind::Peer, 1);
        let cands = [&cust_short, &cust_long, &peer];
        let f = compliance_of(&cust_short, &cands);
        assert!(f.best_relationship && f.shortest_path);
        let f = compliance_of(&cust_long, &cands);
        assert!(f.best_relationship && !f.shortest_path);
        let f = compliance_of(&peer, &cands);
        assert!(!f.best_relationship && !f.shortest_path);
    }
}
