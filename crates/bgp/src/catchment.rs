//! Catchments: the partition of sources across the origin's peering links.
//!
//! For a given announcement configuration, each peering link "attracts
//! traffic from non-overlapping regions of the Internet called the link's
//! catchment" (§I). A [`Catchments`] value records, for every AS, which
//! link its traffic ingresses through — or `None` when the AS cannot reach
//! the prefix or was not observed.
//!
//! ## Layout
//!
//! Internally a catchment is stored as one u64-block bitset **row per
//! active link** (bit `i` set in link `l`'s row means AS `i` ingresses
//! through `l`), plus a maintained union bitset and per-row popcounts.
//! The number of links is bounded by the origin's PoP count (and by
//! `u8::MAX` via [`LinkId`]), so rows are few and long: membership
//! queries stream words, [`Catchments::sizes`] /
//! [`Catchments::active_links`] read the maintained counts in O(links),
//! and [`Catchments::assemble`] merges shard slices word-at-a-time. The
//! historical dense form (`Vec<Option<LinkId>>`) remains available as a
//! reference API ([`Catchments::dense`] / [`Catchments::from_dense`]) for
//! the differential oracles, and is still the serde wire format.

use crate::engine::RoutingOutcome;
use crate::route::LinkId;
use serde::{Deserialize, Serialize};
use std::ops::Range;
use trackdown_topology::AsIndex;

/// Bits per bitset block.
const WORD: usize = 64;

fn word_count(n: usize) -> usize {
    n.div_ceil(WORD)
}

/// Indices of the set bits in a stream of u64 words, ascending.
fn iter_set_bits<I: Iterator<Item = u64>>(words: I) -> impl Iterator<Item = usize> {
    words.enumerate().flat_map(|(w, bits)| {
        let mut bits = bits;
        std::iter::from_fn(move || {
            if bits == 0 {
                return None;
            }
            let t = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            Some(w * WORD + t)
        })
    })
}

/// OR `src` (a bitset whose bit 0 is global bit `start`) into `dst`.
///
/// When `start` is word-aligned — which every [`ShardPlan`]-produced
/// range is, by construction — this is a straight word-by-word OR; the
/// unaligned fallback splits each source word across two destination
/// words. `src` must have no stray bits beyond the logical length (the
/// shard constructors guarantee this).
///
/// [`ShardPlan`]: https://docs.rs/trackdown-core
fn or_shifted(dst: &mut [u64], src: &[u64], start: usize) {
    let w = start / WORD;
    let b = start % WORD;
    if b == 0 {
        for (d, s) in dst[w..w + src.len()].iter_mut().zip(src) {
            *d |= s;
        }
    } else {
        for (k, &s) in src.iter().enumerate() {
            if s == 0 {
                continue;
            }
            dst[w + k] |= s << b;
            let hi = s >> (WORD - b);
            if hi != 0 {
                dst[w + k + 1] |= hi;
            }
        }
    }
}

/// One shard's slice of a catchment extraction: the assignments for a
/// contiguous [`AsIndex`] range of one configuration's outcome, stored as
/// per-link bitset rows relative to `range.start`.
///
/// Shard executors extract these independently (possibly on different
/// threads, in any completion order) and reassemble them with
/// [`Catchments::assemble`]; the assembled value is bit-identical to the
/// whole-topology extraction because both control-plane tagging and
/// data-plane walks are per-source pure functions of the routing outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardCatchments {
    /// The [`AsIndex`] range this slice covers.
    pub range: Range<usize>,
    /// Distinct links assigned within `range`, ascending.
    links: Vec<LinkId>,
    /// Bitset row per link; bit `k` is AS `range.start + k`.
    rows: Vec<Vec<u64>>,
}

impl ShardCatchments {
    /// Control-plane extraction for one shard: ingress tags of the best
    /// routes in `range`.
    pub fn from_control_plane(outcome: &RoutingOutcome, range: Range<usize>) -> ShardCatchments {
        ShardCatchments::collect(range.clone(), |i| outcome.catchment(AsIndex(i as u32)))
    }

    /// Data-plane extraction for one shard: forwarding walks from each AS
    /// in `range`, with one reusable walker per call.
    pub fn from_data_plane(outcome: &RoutingOutcome, range: Range<usize>) -> ShardCatchments {
        let mut walker = crate::engine::ForwardingWalker::new();
        ShardCatchments::collect(range.clone(), |i| {
            walker.walk(outcome, AsIndex(i as u32)).map(|w| w.link)
        })
    }

    /// Single-pass extraction: probe each AS in `range` once and set its
    /// bit directly, discovering link rows on first sight. Equivalent to
    /// collecting the dense slice and calling
    /// [`ShardCatchments::from_dense`], without materializing it — this
    /// is the per-shard hot loop the sharded executor times.
    fn collect(
        range: Range<usize>,
        mut catchment_of: impl FnMut(usize) -> Option<LinkId>,
    ) -> ShardCatchments {
        let wc = word_count(range.len());
        let mut links: Vec<LinkId> = Vec::new();
        let mut rows: Vec<Vec<u64>> = Vec::new();
        // Neighbouring ASes usually share a link; cache the last row hit.
        let mut last: Option<(LinkId, usize)> = None;
        for (k, i) in range.clone().enumerate() {
            if let Some(l) = catchment_of(i) {
                let r = match last {
                    Some((pl, pr)) if pl == l => pr,
                    _ => match links.binary_search(&l) {
                        Ok(r) => r,
                        Err(pos) => {
                            links.insert(pos, l);
                            rows.insert(pos, vec![0u64; wc]);
                            pos
                        }
                    },
                };
                rows[r][k / WORD] |= 1 << (k % WORD);
                last = Some((l, r));
            }
        }
        ShardCatchments { range, links, rows }
    }

    /// Build a slice from its dense per-AS form (reference API; also the
    /// constructor the differential tests use).
    ///
    /// # Panics
    /// Panics if `dense.len()` disagrees with `range.len()`.
    pub fn from_dense(range: Range<usize>, dense: Vec<Option<LinkId>>) -> ShardCatchments {
        assert_eq!(
            dense.len(),
            range.len(),
            "shard slice length disagrees with its range"
        );
        // Collect the distinct links by insertion into a (tiny) sorted
        // vec rather than sorting the whole dense slice: catchment link
        // sets are origin-PoP-sized, so this is O(n log links) with a
        // cheap constant — and neighbouring ASes usually share a link,
        // which the `last` cache turns into O(1).
        let mut links: Vec<LinkId> = Vec::new();
        for l in dense.iter().flatten() {
            if let Err(pos) = links.binary_search(l) {
                links.insert(pos, *l);
            }
        }
        let wc = word_count(range.len());
        let mut rows = vec![vec![0u64; wc]; links.len()];
        let mut last: Option<(LinkId, usize)> = None;
        for (k, l) in dense.iter().enumerate() {
            if let Some(l) = l {
                let r = match last {
                    Some((pl, pr)) if pl == *l => pr,
                    _ => links.binary_search(l).expect("link collected above"),
                };
                rows[r][k / WORD] |= 1 << (k % WORD);
                last = Some((*l, r));
            }
        }
        ShardCatchments { range, links, rows }
    }
}

/// Per-AS catchment assignment for one announcement configuration.
///
/// By construction each source appears in at most one catchment, the
/// invariant §IV-c requires of any source granularity: the per-link
/// bitset rows are pairwise disjoint.
#[derive(Debug, Clone)]
pub struct Catchments {
    /// Number of ASes covered (assigned or not).
    n: usize,
    /// Distinct links that ever had a member, ascending.
    links: Vec<LinkId>,
    /// Bitset row per link in `links`; bit `i` = AS `i` is a member.
    rows: Vec<Vec<u64>>,
    /// Popcount of each row, maintained incrementally.
    counts: Vec<usize>,
    /// Union of all rows (bit `i` = AS `i` has *some* assignment).
    assigned: Vec<u64>,
}

impl Catchments {
    /// An empty assignment over `n` ASes.
    pub fn unassigned(n: usize) -> Catchments {
        Catchments {
            n,
            links: Vec::new(),
            rows: Vec::new(),
            counts: Vec::new(),
            assigned: vec![0; word_count(n)],
        }
    }

    /// Control-plane catchments: the ingress tag of each AS's best route.
    pub fn from_control_plane(outcome: &RoutingOutcome) -> Catchments {
        let _span = trackdown_obs::span("catchment.extract_cp");
        Catchments::from_dense(&outcome.control_catchments())
    }

    /// Data-plane catchments: follow each AS's forwarding chain to the
    /// origin. Slower but faithful to what traffic actually does; this is
    /// what honeypot volume accounting sees.
    pub fn from_data_plane(outcome: &RoutingOutcome) -> Catchments {
        let _span = trackdown_obs::span("catchment.extract_dp");
        let mut walker = crate::engine::ForwardingWalker::new();
        let dense: Vec<Option<LinkId>> = (0..outcome.best.len())
            .map(|i| walker.walk(outcome, AsIndex(i as u32)).map(|w| w.link))
            .collect();
        Catchments::from_dense(&dense)
    }

    /// Build from the dense per-AS form. Reference API kept for the
    /// differential oracles (and the serde wire format).
    pub fn from_dense(dense: &[Option<LinkId>]) -> Catchments {
        let n = dense.len();
        // Insertion-collect the distinct links (see
        // [`ShardCatchments::from_dense`] for why this beats sorting the
        // dense slice).
        let mut links: Vec<LinkId> = Vec::new();
        for l in dense.iter().flatten() {
            if let Err(pos) = links.binary_search(l) {
                links.insert(pos, *l);
            }
        }
        let wc = word_count(n);
        let mut rows = vec![vec![0u64; wc]; links.len()];
        let mut counts = vec![0usize; links.len()];
        let mut assigned = vec![0u64; wc];
        let mut last: Option<(LinkId, usize)> = None;
        for (i, l) in dense.iter().enumerate() {
            if let Some(l) = l {
                let r = match last {
                    Some((pl, pr)) if pl == *l => pr,
                    _ => links.binary_search(l).expect("link collected above"),
                };
                rows[r][i / WORD] |= 1 << (i % WORD);
                counts[r] += 1;
                assigned[i / WORD] |= 1 << (i % WORD);
                last = Some((*l, r));
            }
        }
        Catchments {
            n,
            links,
            rows,
            counts,
            assigned,
        }
    }

    /// The dense per-AS form. Reference API for the differential oracles;
    /// `Catchments::from_dense(&c.dense()) == c` for every `c`.
    pub fn dense(&self) -> Vec<Option<LinkId>> {
        let mut dense = vec![None; self.n];
        for (l, row) in self.links.iter().zip(&self.rows) {
            for i in iter_set_bits(row.iter().copied()) {
                dense[i] = Some(*l);
            }
        }
        dense
    }

    /// Reassemble per-shard extraction slices into one whole-topology
    /// assignment over `n` ASes. Order of `parts` does not matter; ranges
    /// must be disjoint and within `0..n` (ASes no part covers stay
    /// unassigned). Word-aligned ranges — which the shard planner
    /// guarantees — merge as straight `OR`s over u64 blocks.
    ///
    /// # Panics
    /// Panics if a range exceeds `n`.
    pub fn assemble<'a>(
        n: usize,
        parts: impl IntoIterator<Item = &'a ShardCatchments>,
    ) -> Catchments {
        let _span = trackdown_obs::span("catchment.assemble");
        let mut c = Catchments::unassigned(n);
        for part in parts {
            assert!(part.range.end <= n, "shard range exceeds topology size");
            for (l, row) in part.links.iter().zip(&part.rows) {
                let r = c.row_index_or_insert(*l);
                or_shifted(&mut c.rows[r], row, part.range.start);
                or_shifted(&mut c.assigned, row, part.range.start);
                c.counts[r] += row.iter().map(|w| w.count_ones() as usize).sum::<usize>();
            }
        }
        c
    }

    /// Index of `link`'s row, inserting an empty row (keeping `links`
    /// sorted) when the link has not been seen yet.
    fn row_index_or_insert(&mut self, link: LinkId) -> usize {
        match self.links.binary_search(&link) {
            Ok(r) => r,
            Err(r) => {
                self.links.insert(r, link);
                self.rows.insert(r, vec![0u64; word_count(self.n)]);
                self.counts.insert(r, 0);
                r
            }
        }
    }

    /// Number of ASes covered (assigned or not).
    pub fn len(&self) -> usize {
        self.n
    }

    /// True when no AS is tracked at all.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Whether an AS has any assignment — one bit probe, no row scan
    /// (use instead of `get(i).is_some()` on hot paths).
    pub fn is_assigned(&self, i: AsIndex) -> bool {
        let i = i.us();
        assert!(i < self.n, "AS index {i} out of catchment range {}", self.n);
        self.assigned[i / WORD] & (1 << (i % WORD)) != 0
    }

    /// Catchment of one AS.
    pub fn get(&self, i: AsIndex) -> Option<LinkId> {
        let i = i.us();
        assert!(i < self.n, "AS index {i} out of catchment range {}", self.n);
        let (w, m) = (i / WORD, 1u64 << (i % WORD));
        if self.assigned[w] & m == 0 {
            return None;
        }
        self.links
            .iter()
            .zip(&self.rows)
            .find(|(_, row)| row[w] & m != 0)
            .map(|(l, _)| *l)
    }

    /// Assign an AS to a link (used when building *measured* catchments).
    pub fn set(&mut self, i: AsIndex, link: Option<LinkId>) {
        let i = i.us();
        assert!(i < self.n, "AS index {i} out of catchment range {}", self.n);
        let (w, m) = (i / WORD, 1u64 << (i % WORD));
        if self.assigned[w] & m != 0 {
            for (r, row) in self.rows.iter_mut().enumerate() {
                if row[w] & m != 0 {
                    row[w] &= !m;
                    self.counts[r] -= 1;
                    break;
                }
            }
            self.assigned[w] &= !m;
        }
        if let Some(l) = link {
            let r = self.row_index_or_insert(l);
            self.rows[r][w] |= m;
            self.counts[r] += 1;
            self.assigned[w] |= m;
        }
    }

    /// All ASes assigned to `link`.
    pub fn members(&self, link: LinkId) -> impl Iterator<Item = AsIndex> + '_ {
        let row: &[u64] = match self.links.binary_search(&link) {
            Ok(r) => &self.rows[r],
            Err(_) => &[],
        };
        iter_set_bits(row.iter().copied()).map(|i| AsIndex(i as u32))
    }

    /// Number of ASes with an assignment.
    pub fn assigned_count(&self) -> usize {
        self.counts.iter().sum()
    }

    /// ASes with no assignment (unreachable or unobserved).
    pub fn unassigned_ases(&self) -> impl Iterator<Item = AsIndex> + '_ {
        let n = self.n;
        iter_set_bits(self.assigned.iter().map(|w| !w))
            .take_while(move |&i| i < n)
            .map(|i| AsIndex(i as u32))
    }

    /// Distinct links that have at least one member, ascending. O(links)
    /// off the maintained per-row counts — no per-AS scan.
    pub fn active_links(&self) -> Vec<LinkId> {
        self.links
            .iter()
            .zip(&self.counts)
            .filter(|(_, &c)| c > 0)
            .map(|(l, _)| *l)
            .collect()
    }

    /// Per-link member counts as `(link, count)`, ascending by link.
    /// O(links) off the maintained popcounts.
    pub fn sizes(&self) -> Vec<(LinkId, usize)> {
        self.links
            .iter()
            .zip(&self.counts)
            .filter(|(_, &c)| c > 0)
            .map(|(l, &c)| (*l, c))
            .collect()
    }

    /// Fraction of assigned ASes whose assignment differs from `other`
    /// (ASes unassigned in either are skipped). Useful to quantify how much
    /// a configuration changed routing. Computed word-at-a-time: ASes
    /// assigned in both are `popcount(assigned ∧ assigned')`, of which the
    /// unmoved ones sit in the intersection of same-link rows.
    pub fn divergence(&self, other: &Catchments) -> f64 {
        let common: usize = self
            .assigned
            .iter()
            .zip(&other.assigned)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum();
        if common == 0 {
            return 0.0;
        }
        let mut same = 0usize;
        for (j, l) in self.links.iter().enumerate() {
            if let Ok(k) = other.links.binary_search(l) {
                same += self.rows[j]
                    .iter()
                    .zip(&other.rows[k])
                    .map(|(a, b)| (a & b).count_ones() as usize)
                    .sum::<usize>();
            }
        }
        (common - same) as f64 / common as f64
    }

    /// Active `(link, row)` pairs, ascending by link — rows that lost all
    /// members via [`Catchments::set`] are skipped so equality is
    /// assignment-semantic, not construction-history-sensitive.
    fn active_rows(&self) -> impl Iterator<Item = (LinkId, &[u64])> {
        self.links
            .iter()
            .zip(&self.rows)
            .zip(&self.counts)
            .filter(|(_, &c)| c > 0)
            .map(|((l, row), _)| (*l, row.as_slice()))
    }
}

impl PartialEq for Catchments {
    fn eq(&self, other: &Self) -> bool {
        self.n == other.n && self.active_rows().eq(other.active_rows())
    }
}

impl Eq for Catchments {}

/// The serde wire format: the dense per-AS assignment, unchanged from the
/// pre-bitset representation so recorded datasets stay readable.
#[derive(Clone, Serialize, Deserialize)]
struct DenseForm {
    assignment: Vec<Option<LinkId>>,
}

impl Serialize for Catchments {
    fn to_value(&self) -> serde::Value {
        DenseForm {
            assignment: self.dense(),
        }
        .to_value()
    }
}

impl Deserialize for Catchments {
    fn from_value(v: &serde::Value) -> Result<Self, serde::DeError> {
        DenseForm::from_value(v).map(|f| Catchments::from_dense(&f.assignment))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Catchments {
        let mut c = Catchments::unassigned(5);
        c.set(AsIndex(0), Some(LinkId(0)));
        c.set(AsIndex(1), Some(LinkId(1)));
        c.set(AsIndex(2), Some(LinkId(1)));
        // 3 and 4 left unassigned.
        c
    }

    #[test]
    fn membership_and_counts() {
        let c = sample();
        assert_eq!(c.len(), 5);
        assert_eq!(c.assigned_count(), 3);
        assert_eq!(c.members(LinkId(1)).count(), 2);
        assert_eq!(c.members(LinkId(9)).count(), 0);
        assert_eq!(c.unassigned_ases().count(), 2);
        assert_eq!(c.active_links(), vec![LinkId(0), LinkId(1)]);
        assert_eq!(c.sizes(), vec![(LinkId(0), 1), (LinkId(1), 2)]);
    }

    #[test]
    fn each_as_in_at_most_one_catchment() {
        let c = sample();
        let total: usize = c.active_links().iter().map(|&l| c.members(l).count()).sum();
        assert_eq!(total, c.assigned_count());
    }

    #[test]
    fn set_moves_between_rows_and_maintains_counts() {
        let mut c = sample();
        // Reassigning clears the old row's bit and count.
        c.set(AsIndex(0), Some(LinkId(1)));
        assert_eq!(c.get(AsIndex(0)), Some(LinkId(1)));
        assert_eq!(c.members(LinkId(0)).count(), 0);
        assert_eq!(c.sizes(), vec![(LinkId(1), 3)]);
        assert_eq!(c.active_links(), vec![LinkId(1)]);
        // Unassigning removes entirely.
        c.set(AsIndex(0), None);
        assert_eq!(c.get(AsIndex(0)), None);
        assert_eq!(c.assigned_count(), 2);
        // A row emptied by reassignment no longer counts as active, so
        // equality against a fresh build of the same assignment holds.
        assert_eq!(c, Catchments::from_dense(&c.dense()));
    }

    #[test]
    fn dense_roundtrip_is_identity() {
        let c = sample();
        let dense = c.dense();
        assert_eq!(
            dense,
            vec![
                Some(LinkId(0)),
                Some(LinkId(1)),
                Some(LinkId(1)),
                None,
                None
            ]
        );
        assert_eq!(Catchments::from_dense(&dense), c);
    }

    #[test]
    fn serde_wire_format_is_the_dense_assignment() {
        let c = sample();
        let json = serde_json::to_string(&c).unwrap();
        assert_eq!(json, r#"{"assignment":[0,1,1,null,null]}"#);
        let back: Catchments = serde_json::from_str(&json).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn assemble_from_shards_matches_whole_extraction() {
        use crate::engine::{BgpEngine, EngineConfig};
        use crate::origin::{LinkAnnouncement, OriginAs};
        use trackdown_topology::gen::{generate, TopologyConfig};

        let g = generate(&TopologyConfig::small(13));
        let origin = OriginAs::peering_style(&g, 4);
        let engine = BgpEngine::new(&g.topology, &EngineConfig::default());
        let anns: Vec<_> = origin.link_ids().map(LinkAnnouncement::plain).collect();
        let out = engine.propagate_config(&origin, &anns, 200).unwrap();
        let n = g.topology.num_ases();
        for shards in [1usize, 2, 3, 8] {
            let chunk = n.div_ceil(shards);
            let ranges: Vec<_> = (0..shards)
                .map(|s| (s * chunk).min(n)..((s + 1) * chunk).min(n))
                .collect();
            let cp_parts: Vec<ShardCatchments> = ranges
                .iter()
                .map(|r| ShardCatchments::from_control_plane(&out, r.clone()))
                .collect();
            let dp_parts: Vec<ShardCatchments> = ranges
                .iter()
                .map(|r| ShardCatchments::from_data_plane(&out, r.clone()))
                .collect();
            assert_eq!(
                Catchments::assemble(n, &cp_parts),
                Catchments::from_control_plane(&out),
                "{shards}-way control-plane assembly diverged"
            );
            // Completion order must not matter.
            let mut reversed: Vec<_> = dp_parts.clone();
            reversed.reverse();
            assert_eq!(
                Catchments::assemble(n, &reversed),
                Catchments::from_data_plane(&out),
                "{shards}-way data-plane assembly diverged"
            );
        }
    }

    #[test]
    fn assemble_merges_unaligned_ranges() {
        // Ranges deliberately straddle word boundaries at every offset
        // class: starts 0, 63, 64, 65, and a tail past bit 128.
        let n = 200;
        let mut dense = vec![None; n];
        for (i, d) in dense.iter_mut().enumerate() {
            *d = match i % 3 {
                0 => Some(LinkId((i % 5) as u8)),
                1 => Some(LinkId(7)),
                _ => None,
            };
        }
        let bounds = [0usize, 63, 64, 65, 129, 200];
        let parts: Vec<ShardCatchments> = bounds
            .windows(2)
            .map(|w| ShardCatchments::from_dense(w[0]..w[1], dense[w[0]..w[1]].to_vec()))
            .collect();
        assert_eq!(
            Catchments::assemble(n, &parts),
            Catchments::from_dense(&dense)
        );
    }

    #[test]
    fn assemble_leaves_uncovered_ranges_unassigned() {
        let part = ShardCatchments::from_dense(2..4, vec![Some(LinkId(1)), None]);
        let c = Catchments::assemble(6, [&part]);
        assert_eq!(c.get(AsIndex(2)), Some(LinkId(1)));
        assert_eq!(c.get(AsIndex(3)), None);
        assert_eq!(c.assigned_count(), 1);
    }

    #[test]
    #[should_panic(expected = "disagrees with its range")]
    fn assemble_rejects_malformed_slice() {
        let _ = ShardCatchments::from_dense(0..3, vec![None]);
    }

    #[test]
    fn divergence_counts_moves() {
        let a = sample();
        let mut b = a.clone();
        assert_eq!(a.divergence(&b), 0.0);
        b.set(AsIndex(0), Some(LinkId(1)));
        assert!((a.divergence(&b) - 1.0 / 3.0).abs() < 1e-9);
        // Unassigned on either side is ignored.
        b.set(AsIndex(1), None);
        assert!((a.divergence(&b) - 1.0 / 2.0).abs() < 1e-9);
        let empty = Catchments::unassigned(5);
        assert_eq!(a.divergence(&empty), 0.0);
    }
}
