//! Catchments: the partition of sources across the origin's peering links.
//!
//! For a given announcement configuration, each peering link "attracts
//! traffic from non-overlapping regions of the Internet called the link's
//! catchment" (§I). A [`Catchments`] value records, for every AS, which
//! link its traffic ingresses through — or `None` when the AS cannot reach
//! the prefix or was not observed.

use crate::engine::RoutingOutcome;
use crate::route::LinkId;
use serde::{Deserialize, Serialize};
use trackdown_topology::AsIndex;

/// Per-AS catchment assignment for one announcement configuration.
///
/// By construction each source appears in at most one catchment, the
/// invariant §IV-c requires of any source granularity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Catchments {
    assignment: Vec<Option<LinkId>>,
}

impl Catchments {
    /// An empty assignment over `n` ASes.
    pub fn unassigned(n: usize) -> Catchments {
        Catchments {
            assignment: vec![None; n],
        }
    }

    /// Control-plane catchments: the ingress tag of each AS's best route.
    pub fn from_control_plane(outcome: &RoutingOutcome) -> Catchments {
        Catchments {
            assignment: outcome.control_catchments(),
        }
    }

    /// Data-plane catchments: follow each AS's forwarding chain to the
    /// origin. Slower but faithful to what traffic actually does; this is
    /// what honeypot volume accounting sees.
    pub fn from_data_plane(outcome: &RoutingOutcome) -> Catchments {
        let mut walker = crate::engine::ForwardingWalker::new();
        let assignment = (0..outcome.best.len())
            .map(|i| walker.walk(outcome, AsIndex(i as u32)).map(|w| w.link))
            .collect();
        Catchments { assignment }
    }

    /// Number of ASes covered (assigned or not).
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// True when no AS is tracked at all.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Catchment of one AS.
    pub fn get(&self, i: AsIndex) -> Option<LinkId> {
        self.assignment[i.us()]
    }

    /// Assign an AS to a link (used when building *measured* catchments).
    pub fn set(&mut self, i: AsIndex, link: Option<LinkId>) {
        self.assignment[i.us()] = link;
    }

    /// All ASes assigned to `link`.
    pub fn members(&self, link: LinkId) -> impl Iterator<Item = AsIndex> + '_ {
        self.assignment
            .iter()
            .enumerate()
            .filter(move |(_, l)| **l == Some(link))
            .map(|(i, _)| AsIndex(i as u32))
    }

    /// Number of ASes with an assignment.
    pub fn assigned_count(&self) -> usize {
        self.assignment.iter().filter(|a| a.is_some()).count()
    }

    /// ASes with no assignment (unreachable or unobserved).
    pub fn unassigned_ases(&self) -> impl Iterator<Item = AsIndex> + '_ {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, l)| l.is_none())
            .map(|(i, _)| AsIndex(i as u32))
    }

    /// Distinct links that have at least one member, ascending.
    pub fn active_links(&self) -> Vec<LinkId> {
        let mut links: Vec<LinkId> = self.assignment.iter().flatten().copied().collect();
        links.sort_unstable();
        links.dedup();
        links
    }

    /// Per-link member counts as `(link, count)`, ascending by link.
    pub fn sizes(&self) -> Vec<(LinkId, usize)> {
        self.active_links()
            .into_iter()
            .map(|l| (l, self.members(l).count()))
            .collect()
    }

    /// Fraction of assigned ASes whose assignment differs from `other`
    /// (ASes unassigned in either are skipped). Useful to quantify how much
    /// a configuration changed routing.
    pub fn divergence(&self, other: &Catchments) -> f64 {
        let mut common = 0usize;
        let mut moved = 0usize;
        for (a, b) in self.assignment.iter().zip(&other.assignment) {
            if let (Some(x), Some(y)) = (a, b) {
                common += 1;
                if x != y {
                    moved += 1;
                }
            }
        }
        if common == 0 {
            0.0
        } else {
            moved as f64 / common as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Catchments {
        let mut c = Catchments::unassigned(5);
        c.set(AsIndex(0), Some(LinkId(0)));
        c.set(AsIndex(1), Some(LinkId(1)));
        c.set(AsIndex(2), Some(LinkId(1)));
        // 3 and 4 left unassigned.
        c
    }

    #[test]
    fn membership_and_counts() {
        let c = sample();
        assert_eq!(c.len(), 5);
        assert_eq!(c.assigned_count(), 3);
        assert_eq!(c.members(LinkId(1)).count(), 2);
        assert_eq!(c.members(LinkId(9)).count(), 0);
        assert_eq!(c.unassigned_ases().count(), 2);
        assert_eq!(c.active_links(), vec![LinkId(0), LinkId(1)]);
        assert_eq!(c.sizes(), vec![(LinkId(0), 1), (LinkId(1), 2)]);
    }

    #[test]
    fn each_as_in_at_most_one_catchment() {
        let c = sample();
        let total: usize = c.active_links().iter().map(|&l| c.members(l).count()).sum();
        assert_eq!(total, c.assigned_count());
    }

    #[test]
    fn divergence_counts_moves() {
        let a = sample();
        let mut b = a.clone();
        assert_eq!(a.divergence(&b), 0.0);
        b.set(AsIndex(0), Some(LinkId(1)));
        assert!((a.divergence(&b) - 1.0 / 3.0).abs() < 1e-9);
        // Unassigned on either side is ignored.
        b.set(AsIndex(1), None);
        assert!((a.divergence(&b) - 1.0 / 2.0).abs() < 1e-9);
        let empty = Catchments::unassigned(5);
        assert_eq!(a.divergence(&empty), 0.0);
    }
}
