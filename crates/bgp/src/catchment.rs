//! Catchments: the partition of sources across the origin's peering links.
//!
//! For a given announcement configuration, each peering link "attracts
//! traffic from non-overlapping regions of the Internet called the link's
//! catchment" (§I). A [`Catchments`] value records, for every AS, which
//! link its traffic ingresses through — or `None` when the AS cannot reach
//! the prefix or was not observed.

use crate::engine::RoutingOutcome;
use crate::route::LinkId;
use serde::{Deserialize, Serialize};
use std::ops::Range;
use trackdown_topology::AsIndex;

/// One shard's slice of a catchment extraction: the assignments for a
/// contiguous [`AsIndex`] range of one configuration's outcome.
///
/// Shard executors extract these independently (possibly on different
/// threads, in any completion order) and reassemble them with
/// [`Catchments::assemble`]; the assembled value is bit-identical to the
/// whole-topology extraction because both control-plane tagging and
/// data-plane walks are per-source pure functions of the routing outcome.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShardCatchments {
    /// The [`AsIndex`] range this slice covers.
    pub range: Range<usize>,
    /// Assignment for each AS in `range`, in index order.
    pub assignment: Vec<Option<LinkId>>,
}

impl ShardCatchments {
    /// Control-plane extraction for one shard: ingress tags of the best
    /// routes in `range`.
    pub fn from_control_plane(outcome: &RoutingOutcome, range: Range<usize>) -> ShardCatchments {
        let assignment = range
            .clone()
            .map(|i| outcome.catchment(AsIndex(i as u32)))
            .collect();
        ShardCatchments { range, assignment }
    }

    /// Data-plane extraction for one shard: forwarding walks from each AS
    /// in `range`, with one reusable walker per call.
    pub fn from_data_plane(outcome: &RoutingOutcome, range: Range<usize>) -> ShardCatchments {
        let mut walker = crate::engine::ForwardingWalker::new();
        let assignment = range
            .clone()
            .map(|i| walker.walk(outcome, AsIndex(i as u32)).map(|w| w.link))
            .collect();
        ShardCatchments { range, assignment }
    }
}

/// Per-AS catchment assignment for one announcement configuration.
///
/// By construction each source appears in at most one catchment, the
/// invariant §IV-c requires of any source granularity.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Catchments {
    assignment: Vec<Option<LinkId>>,
}

impl Catchments {
    /// An empty assignment over `n` ASes.
    pub fn unassigned(n: usize) -> Catchments {
        Catchments {
            assignment: vec![None; n],
        }
    }

    /// Control-plane catchments: the ingress tag of each AS's best route.
    pub fn from_control_plane(outcome: &RoutingOutcome) -> Catchments {
        let _span = trackdown_obs::span("catchment.extract_cp");
        Catchments {
            assignment: outcome.control_catchments(),
        }
    }

    /// Data-plane catchments: follow each AS's forwarding chain to the
    /// origin. Slower but faithful to what traffic actually does; this is
    /// what honeypot volume accounting sees.
    pub fn from_data_plane(outcome: &RoutingOutcome) -> Catchments {
        let _span = trackdown_obs::span("catchment.extract_dp");
        let mut walker = crate::engine::ForwardingWalker::new();
        let assignment = (0..outcome.best.len())
            .map(|i| walker.walk(outcome, AsIndex(i as u32)).map(|w| w.link))
            .collect();
        Catchments { assignment }
    }

    /// Reassemble per-shard extraction slices into one whole-topology
    /// assignment over `n` ASes. Order of `parts` does not matter; ranges
    /// must be disjoint and within `0..n` (ASes no part covers stay
    /// unassigned).
    ///
    /// # Panics
    /// Panics if a part's length disagrees with its range, or a range
    /// exceeds `n`.
    pub fn assemble<'a>(
        n: usize,
        parts: impl IntoIterator<Item = &'a ShardCatchments>,
    ) -> Catchments {
        let _span = trackdown_obs::span("catchment.assemble");
        let mut assignment = vec![None; n];
        for part in parts {
            assert_eq!(
                part.assignment.len(),
                part.range.len(),
                "shard slice length disagrees with its range"
            );
            assert!(part.range.end <= n, "shard range exceeds topology size");
            assignment[part.range.clone()].copy_from_slice(&part.assignment);
        }
        Catchments { assignment }
    }

    /// Number of ASes covered (assigned or not).
    pub fn len(&self) -> usize {
        self.assignment.len()
    }

    /// True when no AS is tracked at all.
    pub fn is_empty(&self) -> bool {
        self.assignment.is_empty()
    }

    /// Catchment of one AS.
    pub fn get(&self, i: AsIndex) -> Option<LinkId> {
        self.assignment[i.us()]
    }

    /// Assign an AS to a link (used when building *measured* catchments).
    pub fn set(&mut self, i: AsIndex, link: Option<LinkId>) {
        self.assignment[i.us()] = link;
    }

    /// All ASes assigned to `link`.
    pub fn members(&self, link: LinkId) -> impl Iterator<Item = AsIndex> + '_ {
        self.assignment
            .iter()
            .enumerate()
            .filter(move |(_, l)| **l == Some(link))
            .map(|(i, _)| AsIndex(i as u32))
    }

    /// Number of ASes with an assignment.
    pub fn assigned_count(&self) -> usize {
        self.assignment.iter().filter(|a| a.is_some()).count()
    }

    /// ASes with no assignment (unreachable or unobserved).
    pub fn unassigned_ases(&self) -> impl Iterator<Item = AsIndex> + '_ {
        self.assignment
            .iter()
            .enumerate()
            .filter(|(_, l)| l.is_none())
            .map(|(i, _)| AsIndex(i as u32))
    }

    /// Distinct links that have at least one member, ascending.
    pub fn active_links(&self) -> Vec<LinkId> {
        let mut links: Vec<LinkId> = self.assignment.iter().flatten().copied().collect();
        links.sort_unstable();
        links.dedup();
        links
    }

    /// Per-link member counts as `(link, count)`, ascending by link.
    pub fn sizes(&self) -> Vec<(LinkId, usize)> {
        self.active_links()
            .into_iter()
            .map(|l| (l, self.members(l).count()))
            .collect()
    }

    /// Fraction of assigned ASes whose assignment differs from `other`
    /// (ASes unassigned in either are skipped). Useful to quantify how much
    /// a configuration changed routing.
    pub fn divergence(&self, other: &Catchments) -> f64 {
        let mut common = 0usize;
        let mut moved = 0usize;
        for (a, b) in self.assignment.iter().zip(&other.assignment) {
            if let (Some(x), Some(y)) = (a, b) {
                common += 1;
                if x != y {
                    moved += 1;
                }
            }
        }
        if common == 0 {
            0.0
        } else {
            moved as f64 / common as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Catchments {
        let mut c = Catchments::unassigned(5);
        c.set(AsIndex(0), Some(LinkId(0)));
        c.set(AsIndex(1), Some(LinkId(1)));
        c.set(AsIndex(2), Some(LinkId(1)));
        // 3 and 4 left unassigned.
        c
    }

    #[test]
    fn membership_and_counts() {
        let c = sample();
        assert_eq!(c.len(), 5);
        assert_eq!(c.assigned_count(), 3);
        assert_eq!(c.members(LinkId(1)).count(), 2);
        assert_eq!(c.members(LinkId(9)).count(), 0);
        assert_eq!(c.unassigned_ases().count(), 2);
        assert_eq!(c.active_links(), vec![LinkId(0), LinkId(1)]);
        assert_eq!(c.sizes(), vec![(LinkId(0), 1), (LinkId(1), 2)]);
    }

    #[test]
    fn each_as_in_at_most_one_catchment() {
        let c = sample();
        let total: usize = c.active_links().iter().map(|&l| c.members(l).count()).sum();
        assert_eq!(total, c.assigned_count());
    }

    #[test]
    fn assemble_from_shards_matches_whole_extraction() {
        use crate::engine::{BgpEngine, EngineConfig};
        use crate::origin::{LinkAnnouncement, OriginAs};
        use trackdown_topology::gen::{generate, TopologyConfig};

        let g = generate(&TopologyConfig::small(13));
        let origin = OriginAs::peering_style(&g, 4);
        let engine = BgpEngine::new(&g.topology, &EngineConfig::default());
        let anns: Vec<_> = origin.link_ids().map(LinkAnnouncement::plain).collect();
        let out = engine.propagate_config(&origin, &anns, 200).unwrap();
        let n = g.topology.num_ases();
        for shards in [1usize, 2, 3, 8] {
            let chunk = n.div_ceil(shards);
            let ranges: Vec<_> = (0..shards)
                .map(|s| (s * chunk).min(n)..((s + 1) * chunk).min(n))
                .collect();
            let cp_parts: Vec<ShardCatchments> = ranges
                .iter()
                .map(|r| ShardCatchments::from_control_plane(&out, r.clone()))
                .collect();
            let dp_parts: Vec<ShardCatchments> = ranges
                .iter()
                .map(|r| ShardCatchments::from_data_plane(&out, r.clone()))
                .collect();
            assert_eq!(
                Catchments::assemble(n, &cp_parts),
                Catchments::from_control_plane(&out),
                "{shards}-way control-plane assembly diverged"
            );
            // Completion order must not matter.
            let mut reversed: Vec<_> = dp_parts.clone();
            reversed.reverse();
            assert_eq!(
                Catchments::assemble(n, &reversed),
                Catchments::from_data_plane(&out),
                "{shards}-way data-plane assembly diverged"
            );
        }
    }

    #[test]
    fn assemble_leaves_uncovered_ranges_unassigned() {
        let part = ShardCatchments {
            range: 2..4,
            assignment: vec![Some(LinkId(1)), None],
        };
        let c = Catchments::assemble(6, [&part]);
        assert_eq!(c.get(AsIndex(2)), Some(LinkId(1)));
        assert_eq!(c.get(AsIndex(3)), None);
        assert_eq!(c.assigned_count(), 1);
    }

    #[test]
    #[should_panic(expected = "disagrees with its range")]
    fn assemble_rejects_malformed_slice() {
        let part = ShardCatchments {
            range: 0..3,
            assignment: vec![None],
        };
        let _ = Catchments::assemble(3, [&part]);
    }

    #[test]
    fn divergence_counts_moves() {
        let a = sample();
        let mut b = a.clone();
        assert_eq!(a.divergence(&b), 0.0);
        b.set(AsIndex(0), Some(LinkId(1)));
        assert!((a.divergence(&b) - 1.0 / 3.0).abs() < 1e-9);
        // Unassigned on either side is ignored.
        b.set(AsIndex(1), None);
        assert!((a.divergence(&b) - 1.0 / 2.0).abs() < 1e-9);
        let empty = Catchments::unassigned(5);
        assert_eq!(a.divergence(&empty), 0.0);
    }
}
