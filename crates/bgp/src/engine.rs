//! Deterministic event-driven BGP route propagation.
//!
//! The engine computes, for one announcement configuration, the fixpoint of
//! standard BGP processing over the whole topology: every AS repeatedly
//! imports offers from its neighbors (loop prevention, LocalPref
//! assignment), selects a best route (LocalPref ▸ AS-path length ▸
//! deterministic salted tiebreak), and exports per valley-free policy.
//! Processing uses an activation queue and terminates when no RIB changes,
//! which Gao-Rexford-compliant policies guarantee; an event cap guards
//! against dispute wheels introduced by policy violators.

use crate::arena::{PathArena, PathId, PathStore};
use crate::community::CommunityBits;
use crate::delta::{diff_injections, PropagationRanks};
use crate::origin::{Injection, LinkAnnouncement, OriginAs, OriginError};
use crate::policy::{PolicyConfig, PolicyTable};
use crate::route::{LinkId, Route};
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::ops::Range;
use trackdown_topology::{cone::ConeInfo, AsIndex, AsPath, NeighborKind, Topology};

/// Engine configuration: policy knobs plus the convergence guard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EngineConfig {
    /// Policy realism knobs (violators, loop prevention, tier-1 filters).
    pub policy: PolicyConfig,
    /// Event cap = `max_events_factor × num_ases`. Propagation that does
    /// not quiesce within the cap is reported as non-converged.
    pub max_events_factor: usize,
}

impl Default for EngineConfig {
    fn default() -> EngineConfig {
        EngineConfig {
            policy: PolicyConfig::default(),
            max_events_factor: 200,
        }
    }
}

/// One best-route change during propagation — the control-plane event a
/// route collector would see as a BGP UPDATE from that AS.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RouteChange {
    /// Causal depth (round) at which the change happened.
    pub round: u32,
    /// The AS whose best route changed.
    pub at: AsIndex,
    /// Ingress link of the new best route (`None` = withdrawal).
    pub ingress: Option<LinkId>,
    /// AS-path length of the new best route (0 on withdrawal).
    pub path_len: usize,
}

/// The data-plane path taken from a source AS to the origin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForwardingPath {
    /// ASes traversed, source first, PoP provider last.
    pub hops: Vec<AsIndex>,
    /// The peering link traffic ultimately enters the origin through.
    pub link: LinkId,
}

/// How much of the fixpoint state a [`RoutingOutcome`] captures.
///
/// The campaign pipeline only ever reads catchments (ingress tags and
/// next hops) from an outcome, so the default snapshot skips the two
/// expensive captures: the per-AS candidate RIB copy and the path-arena
/// store. Analyses that read candidate sets or path contents (compliance
/// / Fig 9, traceroute feeders, report output) opt into [`Full`].
///
/// [`Full`]: SnapshotDetail::Full
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum SnapshotDetail {
    /// Capture best routes only: enough for catchments, forwarding walks,
    /// change logs, and convergence accounting. `candidates` is absent and
    /// the outcome's [`PathStore`] is empty (materializing panics).
    #[default]
    Catchments,
    /// Additionally capture the candidate RIBs and a [`PathStore`]
    /// snapshot so routes can be materialized into [`AsPath`]s.
    Full,
}

/// Fixpoint routing state for one announcement configuration.
#[derive(Debug, Clone)]
pub struct RoutingOutcome {
    /// Best route per AS (`None` = prefix unreachable from that AS).
    pub best: Vec<Option<Route>>,
    /// Adj-RIB-In snapshot per AS at fixpoint (only at
    /// [`SnapshotDetail::Full`]); see [`RoutingOutcome::candidates`].
    candidates: Option<Vec<Vec<Route>>>,
    /// Interned path nodes backing this outcome's routes (empty unless
    /// captured at [`SnapshotDetail::Full`]).
    pub paths: PathStore,
    /// Number of decision events processed.
    pub events: usize,
    /// Convergence depth: the longest chain of causally-dependent best-
    /// route changes. One round ≈ one MRAI interval in deployment terms,
    /// so this is the simulator's proxy for convergence *time* (the paper
    /// waits 70 minutes per configuration; \[25\] reports convergence under
    /// 2.5 minutes 99% of the time).
    pub rounds: u32,
    /// Every best-route change in processing order — the campaign-wide
    /// union is the "thousands of route changes" the paper's public
    /// dataset advertises (§VI), and per-feeder slices are what BGP
    /// collectors receive as UPDATE streams.
    pub changes: Vec<RouteChange>,
    /// False if the event cap fired before quiescence.
    pub converged: bool,
    /// Number of ASes whose best route at this fixpoint differs from
    /// their best route at the previous epoch's fixpoint (for a cold
    /// start the previous state is empty, so this equals
    /// [`RoutingOutcome::reachable_count`]). Transient flips that settle
    /// back are excluded: this counts *net* disturbance, the quantity
    /// delta propagation makes epoch cost proportional to.
    pub routes_disturbed: usize,
}

impl RoutingOutcome {
    /// Control-plane catchment of an AS: the ingress tag of its best route.
    pub fn catchment(&self, i: AsIndex) -> Option<LinkId> {
        self.best[i.us()].as_ref().map(|r| r.ingress)
    }

    /// Control-plane catchments for all ASes.
    pub fn control_catchments(&self) -> Vec<Option<LinkId>> {
        self.best
            .iter()
            .map(|b| b.as_ref().map(|r| r.ingress))
            .collect()
    }

    /// Adj-RIB-In snapshot per AS at fixpoint: every candidate route that
    /// survived import. Used by the compliance analysis (Fig 9).
    ///
    /// # Panics
    /// Panics when the outcome was captured at
    /// [`SnapshotDetail::Catchments`] (the default), which skips the
    /// candidate copy.
    pub fn candidates(&self) -> &[Vec<Route>] {
        self.candidates
            .as_deref()
            .expect("candidates not captured — snapshot with SnapshotDetail::Full")
    }

    /// True when candidate RIBs were captured ([`SnapshotDetail::Full`]).
    pub fn has_candidates(&self) -> bool {
        self.candidates.is_some()
    }

    /// Materialize a route's AS-path from this outcome's [`PathStore`].
    ///
    /// # Panics
    /// Panics at [`SnapshotDetail::Catchments`] detail (no store captured)
    /// or if `route` belongs to a different outcome.
    pub fn path_of(&self, route: &Route) -> AsPath {
        self.paths.materialize(route.path_id)
    }

    /// Walk the data plane from `from` toward the origin, following each
    /// AS's best-route next hop. Returns `None` when the prefix is
    /// unreachable or a forwarding loop is met (possible only when some AS
    /// on the walk has loop prevention disabled).
    ///
    /// Convenience wrapper that allocates a fresh [`ForwardingWalker`];
    /// batch callers (catchment extraction, traceroute campaigns) keep one
    /// walker and reuse its visited buffer across walks.
    pub fn forwarding_walk(&self, from: AsIndex) -> Option<ForwardingPath> {
        ForwardingWalker::new().walk(self, from)
    }

    /// Number of ASes that can reach the prefix.
    pub fn reachable_count(&self) -> usize {
        self.best.iter().filter(|b| b.is_some()).count()
    }
}

/// Reusable data-plane walker: replaces the per-walk `HashSet` with a
/// stamped visited vector, so running one walk per source AS per epoch
/// (the catchment and traceroute loops) performs no per-walk allocation
/// after the first.
#[derive(Debug, Default)]
pub struct ForwardingWalker {
    /// `visited[i] == stamp` ⟺ AS `i` was visited during the current walk.
    visited: Vec<u32>,
    stamp: u32,
}

impl ForwardingWalker {
    /// A fresh walker (no buffer yet; sized lazily on first walk).
    pub fn new() -> ForwardingWalker {
        ForwardingWalker::default()
    }

    /// [`RoutingOutcome::forwarding_walk`] with this walker's buffer.
    pub fn walk(&mut self, outcome: &RoutingOutcome, from: AsIndex) -> Option<ForwardingPath> {
        if self.visited.len() < outcome.best.len() {
            self.visited.resize(outcome.best.len(), self.stamp);
        }
        // Advance the stamp; on wraparound, reset the buffer once.
        self.stamp = match self.stamp.checked_add(1) {
            Some(s) => s,
            None => {
                self.visited.fill(0);
                1
            }
        };
        let mut hops = Vec::new();
        let mut cur = from;
        loop {
            if self.visited[cur.us()] == self.stamp {
                return None; // forwarding loop
            }
            self.visited[cur.us()] = self.stamp;
            let route = outcome.best[cur.us()].as_ref()?;
            hops.push(cur);
            match route.from_neighbor {
                Some(next) => cur = next,
                None => {
                    return Some(ForwardingPath {
                        hops,
                        link: route.ingress,
                    })
                }
            }
        }
    }
}

/// The propagation engine, bound to one topology and one policy table.
///
/// Building the engine is O(V+E); each [`BgpEngine::propagate`] run is
/// independent, so one engine serves an entire multi-configuration
/// experiment.
pub struct BgpEngine<'t> {
    topo: &'t Topology,
    policy: PolicyTable,
}

impl<'t> BgpEngine<'t> {
    /// Build an engine over `topo` with the given configuration.
    pub fn new(topo: &'t Topology, config: &EngineConfig) -> BgpEngine<'t> {
        let cones = ConeInfo::compute(topo);
        BgpEngine {
            topo,
            policy: PolicyTable::build(topo, &cones, &config.policy),
        }
    }

    /// Build an engine reusing a precomputed [`ConeInfo`].
    pub fn with_cones(
        topo: &'t Topology,
        cones: &ConeInfo,
        config: &EngineConfig,
    ) -> BgpEngine<'t> {
        BgpEngine {
            topo,
            policy: PolicyTable::build(topo, cones, &config.policy),
        }
    }

    /// The policy table in use (for analyses that need violator sets etc.).
    pub fn policy(&self) -> &PolicyTable {
        &self.policy
    }

    /// The topology this engine routes over.
    pub fn topology(&self) -> &Topology {
        self.topo
    }

    /// Convenience: validate a configuration against the origin, build
    /// injections, and propagate.
    pub fn propagate_config(
        &self,
        origin: &OriginAs,
        announcements: &[LinkAnnouncement],
        max_events_factor: usize,
    ) -> Result<RoutingOutcome, OriginError> {
        self.propagate_config_detailed(
            origin,
            announcements,
            max_events_factor,
            SnapshotDetail::Catchments,
        )
    }

    /// [`BgpEngine::propagate_config`] with an explicit snapshot detail.
    pub fn propagate_config_detailed(
        &self,
        origin: &OriginAs,
        announcements: &[LinkAnnouncement],
        max_events_factor: usize,
        detail: SnapshotDetail,
    ) -> Result<RoutingOutcome, OriginError> {
        let inj = origin.build_injections(self.topo, announcements)?;
        Ok(self.propagate_detailed(&inj, max_events_factor, detail))
    }

    /// Position of neighbor `j` within `i`'s (sorted) neighbor list.
    #[inline]
    fn neighbor_pos(&self, i: AsIndex, j: AsIndex) -> Option<usize> {
        self.topo
            .neighbors(i)
            .binary_search_by_key(&j, |(n, _)| *n)
            .ok()
    }

    /// True when `a` is strictly better than `b` at AS `at` under the full
    /// decision process.
    fn better(&self, at: AsIndex, a: &Route, b: &Route) -> bool {
        if a.local_pref != b.local_pref {
            return a.local_pref > b.local_pref;
        }
        if a.path_len != b.path_len {
            return a.path_len < b.path_len;
        }
        let ta = self.policy.tiebreak(at, a);
        let tb = self.policy.tiebreak(at, b);
        if ta != tb {
            return ta < tb;
        }
        // Total order fallback: neighbor index then ingress link.
        let na = a.from_neighbor.map(|n| n.0 + 1).unwrap_or(0);
        let nb = b.from_neighbor.map(|n| n.0 + 1).unwrap_or(0);
        if na != nb {
            return na < nb;
        }
        a.ingress < b.ingress
    }

    /// Run best-path selection at `at` over the direct injections and the
    /// AS's CSR slot range of the flat Adj-RIB-In. Candidate order is
    /// direct routes first, then present slots ascending — the same order
    /// the per-AS vectors yielded, so tiebreak outcomes are bit-identical.
    fn decide(
        &self,
        at: AsIndex,
        direct: &[Route],
        ribs: &RouteSoa,
        slots: Range<usize>,
    ) -> Option<Route> {
        let mut best: Option<Route> = None;
        for cand in direct
            .iter()
            .copied()
            .chain(ribs.present_in(slots).map(|s| ribs.route_at(s)))
        {
            best = match best {
                None => Some(cand),
                Some(cur) => {
                    if self.better(at, &cand, &cur) {
                        Some(cand)
                    } else {
                        Some(cur)
                    }
                }
            };
        }
        best
    }

    /// Propagate a set of origin injections to fixpoint (cold start:
    /// empty RIBs everywhere).
    pub fn propagate(&self, injections: &[Injection], max_events_factor: usize) -> RoutingOutcome {
        self.propagate_detailed(injections, max_events_factor, SnapshotDetail::Catchments)
    }

    /// [`BgpEngine::propagate`] with an explicit snapshot detail.
    pub fn propagate_detailed(
        &self,
        injections: &[Injection],
        max_events_factor: usize,
        detail: SnapshotDetail,
    ) -> RoutingOutcome {
        let mut span = trackdown_obs::span("bgp.propagate");
        let mut sim = Simulation::new(self);
        sim.apply_injections(injections);
        sim.run(max_events_factor);
        trackdown_obs::counter!("bgp.propagations").inc();
        let outcome = sim.snapshot(detail);
        record_outcome_metrics(&outcome);
        span.set_attr("events", outcome.events as u64);
        span.set_attr("rounds", outcome.rounds as u64);
        span.set_attr("changes", outcome.changes.len() as u64);
        outcome
    }

    /// Deploy `next` *on top of* the converged state of `prev` — what a
    /// real configuration change does. The old announcements are replaced
    /// (withdrawn links produce withdrawal churn), and the returned
    /// outcome's `changes`/`rounds` describe only the transition, not the
    /// cold start. This is the event stream the paper's public dataset
    /// records across its 705 deployments ("thousands of route changes",
    /// §VI).
    pub fn transition(
        &self,
        prev: &[Injection],
        next: &[Injection],
        max_events_factor: usize,
    ) -> RoutingOutcome {
        self.transition_detailed(prev, next, max_events_factor, SnapshotDetail::Catchments)
    }

    /// [`BgpEngine::transition`] with an explicit snapshot detail.
    pub fn transition_detailed(
        &self,
        prev: &[Injection],
        next: &[Injection],
        max_events_factor: usize,
        detail: SnapshotDetail,
    ) -> RoutingOutcome {
        let mut sim = Simulation::new(self);
        sim.apply_injections(prev);
        sim.run(max_events_factor);
        sim.begin_epoch();
        sim.replace_injections(next);
        sim.run(max_events_factor);
        sim.snapshot(detail)
    }

    /// Convenience: transition between two origin configurations.
    pub fn transition_config(
        &self,
        origin: &OriginAs,
        prev: &[LinkAnnouncement],
        next: &[LinkAnnouncement],
        max_events_factor: usize,
    ) -> Result<RoutingOutcome, OriginError> {
        self.transition_config_detailed(
            origin,
            prev,
            next,
            max_events_factor,
            SnapshotDetail::Catchments,
        )
    }

    /// [`BgpEngine::transition_config`] with an explicit snapshot detail.
    pub fn transition_config_detailed(
        &self,
        origin: &OriginAs,
        prev: &[LinkAnnouncement],
        next: &[LinkAnnouncement],
        max_events_factor: usize,
        detail: SnapshotDetail,
    ) -> Result<RoutingOutcome, OriginError> {
        let prev_inj = origin.build_injections(self.topo, prev)?;
        let next_inj = origin.build_injections(self.topo, next)?;
        Ok(self.transition_detailed(&prev_inj, &next_inj, max_events_factor, detail))
    }

    /// Open a persistent [`CampaignSession`]: a warm routing state that
    /// deploys successive configurations as epoch transitions instead of
    /// cold-starting each one.
    pub fn session(&self) -> CampaignSession<'_, 't> {
        CampaignSession::new(self)
    }
}

/// Feed one routing outcome's counters into the global metrics registry
/// (post-hoc reads only: instrumentation can never perturb the outcome).
fn record_outcome_metrics(outcome: &RoutingOutcome) {
    trackdown_obs::counter!("bgp.events").add(outcome.events as u64);
    trackdown_obs::counter!("bgp.changes").add(outcome.changes.len() as u64);
    trackdown_obs::histogram!("bgp.rounds").observe(outcome.rounds as u64);
    if !outcome.converged {
        trackdown_obs::counter!("bgp.event_cap_hits").inc();
    }
}

/// A persistent deployment session over one engine: the first deployment
/// cold-starts, every later one is applied as an epoch transition on top
/// of the previous converged state — what a real origin does when it
/// reconfigures announcements on a live prefix.
///
/// Path-vector fixpoints under Gao-Rexford-compliant policies are unique
/// (the stable-paths problem is safe), so the warm state converges to
/// exactly the cold-start state of each configuration: `best` and
/// `candidates` (and hence catchments) are identical to
/// [`BgpEngine::propagate`] for the same injections. The per-epoch
/// `events`/`rounds`/`changes` describe only the transition — usually a
/// small fraction of a cold start, which is where the campaign speedup
/// comes from. If an epoch hits the event cap, the session falls back to
/// a cold restart of that configuration so the reported outcome is the
/// cold one, bit for bit.
///
/// With **policy violators** the stable state is *not* unique (BGP
/// wedgies): a transition can legitimately converge to a different stable
/// state than a cold start, and no check on the reached state can tell
/// them apart. To preserve the cold-oracle contract the session detects
/// this at creation ([`crate::policy::PolicyTable::num_violators`]` > 0`)
/// and transparently cold-starts every deployment instead of reusing the
/// epoch — correctness first, speed only where it is sound.
pub struct CampaignSession<'e, 't> {
    sim: Simulation<'e, 't>,
    deployed: bool,
    warm_reuse: bool,
    deployments: usize,
    cold_restarts: usize,
    last_deploy_warm: bool,
    peak_arena_nodes: usize,
    /// The injections of the most recent deployment, kept so a delta
    /// deployment can diff against them. Valid only while
    /// `have_last_injections` (resets invalidate without deallocating).
    last_injections: Vec<Injection>,
    have_last_injections: bool,
}

impl<'e, 't> CampaignSession<'e, 't> {
    /// Open a session with empty RIBs (nothing deployed yet).
    pub fn new(engine: &'e BgpEngine<'t>) -> CampaignSession<'e, 't> {
        CampaignSession {
            sim: Simulation::new(engine),
            deployed: false,
            warm_reuse: engine.policy.num_violators() == 0,
            deployments: 0,
            cold_restarts: 0,
            last_deploy_warm: false,
            peak_arena_nodes: 0,
            last_injections: Vec::new(),
            have_last_injections: false,
        }
    }

    /// Whether deployments actually reuse the previous epoch's state.
    /// `false` when the engine has policy violators: their non-unique
    /// stable states make transitions history-dependent, so the session
    /// cold-starts each deployment to stay bit-identical to the oracle.
    pub fn warm_reuse(&self) -> bool {
        self.warm_reuse
    }

    /// Deploy a set of injections, replacing whatever is currently
    /// announced, and run to fixpoint.
    pub fn deploy(&mut self, injections: &[Injection], max_events_factor: usize) -> RoutingOutcome {
        self.deploy_detailed(injections, max_events_factor, SnapshotDetail::Catchments)
    }

    /// [`CampaignSession::deploy`] with an explicit snapshot detail.
    pub fn deploy_detailed(
        &mut self,
        injections: &[Injection],
        max_events_factor: usize,
        detail: SnapshotDetail,
    ) -> RoutingOutcome {
        let mut span = trackdown_obs::span("bgp.deploy");
        self.deployments += 1;
        let mut warm = self.deployed && self.warm_reuse;
        if self.deployed && !self.warm_reuse {
            self.reset();
        }
        if warm {
            self.sim.converged = true;
            self.sim.begin_epoch();
            self.sim.replace_injections(injections);
        } else {
            self.sim.apply_injections(injections);
            self.deployed = true;
        }
        {
            let _drain = trackdown_obs::span("bgp.drain");
            self.sim.run(max_events_factor);
        }
        if warm && !self.sim.converged {
            // The transition hit the event cap. Redo this configuration
            // from empty RIBs so its outcome (including the converged
            // flag) is exactly what a cold start reports.
            self.cold_restarts += 1;
            trackdown_obs::counter!("bgp.session_cold_restarts").inc();
            warm = false;
            self.reset();
            self.sim.apply_injections(injections);
            self.deployed = true;
            self.sim.run(max_events_factor);
        }
        span.set_attr("warm", warm as u64);
        span.set_attr("events", self.sim.events as u64);
        self.finish_deploy(injections, warm, detail)
    }

    /// Common deployment epilogue: remember the deployed injections (the
    /// delta diff base), record session accounting, and snapshot.
    fn finish_deploy(
        &mut self,
        injections: &[Injection],
        warm: bool,
        detail: SnapshotDetail,
    ) -> RoutingOutcome {
        self.last_injections.clear();
        self.last_injections.extend_from_slice(injections);
        self.have_last_injections = true;
        self.last_deploy_warm = warm;
        self.peak_arena_nodes = self.peak_arena_nodes.max(self.sim.arena.num_nodes());
        trackdown_obs::counter!("bgp.deployments").inc();
        let outcome = self.sim.snapshot_cloned(detail);
        record_outcome_metrics(&outcome);
        outcome
    }

    /// Deploy a set of injections as a *delta* epoch: diff them against
    /// the previous deployment, seed only providers whose announcement
    /// changed, and propagate with rank-ordered scheduling
    /// ([`PropagationRanks`]). Falls back to exactly the cold path of
    /// [`CampaignSession::deploy`] on the first deployment, on
    /// violator-gated sessions, and on event-cap restarts — the reported
    /// outcome is always fixpoint-identical to a cold start.
    pub fn deploy_delta(
        &mut self,
        injections: &[Injection],
        max_events_factor: usize,
    ) -> RoutingOutcome {
        self.deploy_delta_detailed(injections, max_events_factor, SnapshotDetail::Catchments)
    }

    /// [`CampaignSession::deploy_delta`] with an explicit snapshot detail.
    pub fn deploy_delta_detailed(
        &mut self,
        injections: &[Injection],
        max_events_factor: usize,
        detail: SnapshotDetail,
    ) -> RoutingOutcome {
        let mut span = trackdown_obs::span("bgp.deploy");
        self.deployments += 1;
        // Delta reuse additionally requires the previous run to have
        // converged: a capped predecessor leaves stranded FIFO queue
        // entries whose `in_queue` marks the rank-bucket scheduler would
        // never clear, silently freezing those ASes for the epoch. (The
        // plain warm path is immune — it keeps draining the same FIFO.)
        let mut warm =
            self.deployed && self.warm_reuse && self.have_last_injections && self.sim.converged;
        if self.deployed && !warm {
            self.reset();
        }
        let mut seeds = 0;
        if warm {
            self.sim.ensure_ranks();
            self.sim.ranked = true;
            self.sim.begin_epoch();
            let prev = std::mem::take(&mut self.last_injections);
            {
                let mut seed_span = trackdown_obs::span("bgp.delta_seed");
                seeds = self.sim.replace_injections_delta(&prev, injections);
                seed_span.set_attr("seeds", seeds as u64);
            }
            self.last_injections = prev;
            {
                let _drain = trackdown_obs::span("bgp.drain");
                self.sim.run(max_events_factor);
            }
            self.sim.ranked = false;
        } else {
            self.sim.apply_injections(injections);
            self.deployed = true;
            let _drain = trackdown_obs::span("bgp.drain");
            self.sim.run(max_events_factor);
        }
        if warm && !self.sim.converged {
            // The delta transition hit the event cap: redo this
            // configuration from empty RIBs so its outcome (including
            // the converged flag) is exactly what a cold start reports.
            self.cold_restarts += 1;
            trackdown_obs::counter!("bgp.session_cold_restarts").inc();
            warm = false;
            self.reset();
            self.sim.apply_injections(injections);
            self.deployed = true;
            self.sim.run(max_events_factor);
        }
        if warm {
            // Recorded only for delta runs that were kept: a discarded
            // (cold-restarted) frontier must not skew the soundness
            // evidence these counters feed.
            trackdown_obs::counter!("bgp.delta.seeds").add(seeds as u64);
            trackdown_obs::counter!("bgp.delta.visited").add(self.sim.events as u64);
            trackdown_obs::counter!("bgp.delta.disturbed").add(self.sim.routes_disturbed() as u64);
        }
        span.set_attr("warm", warm as u64);
        span.set_attr("seeds", seeds as u64);
        span.set_attr("events", self.sim.events as u64);
        self.finish_deploy(injections, warm, detail)
    }

    /// Validate a configuration against the origin, build injections, and
    /// [`CampaignSession::deploy_delta`] them.
    pub fn deploy_config_delta(
        &mut self,
        origin: &OriginAs,
        announcements: &[LinkAnnouncement],
        max_events_factor: usize,
    ) -> Result<RoutingOutcome, OriginError> {
        self.deploy_config_delta_detailed(
            origin,
            announcements,
            max_events_factor,
            SnapshotDetail::Catchments,
        )
    }

    /// [`CampaignSession::deploy_config_delta`] with an explicit snapshot
    /// detail.
    pub fn deploy_config_delta_detailed(
        &mut self,
        origin: &OriginAs,
        announcements: &[LinkAnnouncement],
        max_events_factor: usize,
        detail: SnapshotDetail,
    ) -> Result<RoutingOutcome, OriginError> {
        let inj = origin.build_injections(self.sim.engine.topo, announcements)?;
        Ok(self.deploy_delta_detailed(&inj, max_events_factor, detail))
    }

    /// Validate a configuration against the origin, build injections, and
    /// [`CampaignSession::deploy`] them.
    pub fn deploy_config(
        &mut self,
        origin: &OriginAs,
        announcements: &[LinkAnnouncement],
        max_events_factor: usize,
    ) -> Result<RoutingOutcome, OriginError> {
        self.deploy_config_detailed(
            origin,
            announcements,
            max_events_factor,
            SnapshotDetail::Catchments,
        )
    }

    /// [`CampaignSession::deploy_config`] with an explicit snapshot detail.
    pub fn deploy_config_detailed(
        &mut self,
        origin: &OriginAs,
        announcements: &[LinkAnnouncement],
        max_events_factor: usize,
        detail: SnapshotDetail,
    ) -> Result<RoutingOutcome, OriginError> {
        let inj = origin.build_injections(self.sim.engine.topo, announcements)?;
        Ok(self.deploy_detailed(&inj, max_events_factor, detail))
    }

    /// Drop all routing state: the next deployment cold-starts.
    ///
    /// The reset is in place: RIB vectors, the activation queue, and the
    /// path arena keep their allocated capacity, so a violator-gated
    /// session (which cold-starts every deployment through here) performs
    /// no heap allocation in the decide/export loop after its first
    /// deployment reaches the arena's high-water mark. This is also the
    /// *only* point where the arena is truncated — outstanding
    /// [`crate::PathId`]s live in the RIBs being dropped alongside, never
    /// across a truncation.
    pub fn reset(&mut self) {
        self.sim.clear();
        self.deployed = false;
        self.have_last_injections = false;
    }

    /// High-water mark of interned path nodes across all deployments.
    pub fn peak_arena_nodes(&self) -> usize {
        self.peak_arena_nodes
    }

    /// Snapshot of the session's interned path tree. Shard executors take
    /// one per worker at campaign end and fold them through
    /// [`PathArena::absorb_store`] into a single canonical arena, which
    /// bounds the merged footprint by the union path tree rather than the
    /// per-worker sum.
    pub fn path_store(&self) -> PathStore {
        self.sim.arena.store()
    }

    /// Absorb the ancestor chains of `roots` — [`crate::PathId`]s valid
    /// for the *current* session arena, e.g. read off the latest epoch
    /// outcome's best routes — into `merged` through its canonical
    /// interning map (see [`PathArena::absorb_rooted`]).
    ///
    /// Sharded campaign executors call this right after each deployment,
    /// **before** any later event-cap cold restart can truncate the
    /// session arena and dangle the ids. The merged arena then bounds
    /// memory by the union tree of routes that were ever *selected*
    /// rather than every candidate the campaign interned.
    pub fn absorb_paths_rooted(&self, merged: &mut PathArena, roots: &[PathId]) {
        merged.absorb_rooted(&self.sim.arena, roots);
    }

    /// Incremental form of [`CampaignSession::absorb_paths_rooted`] for
    /// per-epoch absorption: `remap` carries the session-arena → merged
    /// id table across calls so each epoch pays only for chains not yet
    /// interned. The caller must `remap.clear()` whenever
    /// [`CampaignSession::cold_restarts`] has advanced since the last
    /// call — [`CampaignSession::reset`] is the only arena truncation
    /// point, so that counter is exactly the cache invalidation signal.
    pub fn absorb_paths_rooted_cached(
        &self,
        merged: &mut PathArena,
        roots: &[PathId],
        remap: &mut Vec<PathId>,
    ) {
        merged.absorb_rooted_cached(&self.sim.arena, roots, remap);
    }

    /// Configurations deployed through this session.
    pub fn deployments(&self) -> usize {
        self.deployments
    }

    /// Warm epochs that hit the event cap and were redone cold.
    pub fn cold_restarts(&self) -> usize {
        self.cold_restarts
    }

    /// Whether the most recent [`CampaignSession::deploy`] actually
    /// reused the previous epoch's state (`false` for the first
    /// deployment, violator-gated sessions, and event-cap cold
    /// restarts) — the per-epoch `warm`/`cold` label run manifests use.
    pub fn last_deploy_warm(&self) -> bool {
        self.last_deploy_warm
    }
}

/// Structure-of-arrays route table: one parallel column per [`Route`]
/// attribute plus a u64 presence bitset over slot indices.
///
/// Both the flat CSR Adj-RIB-In (slot = `rib_offsets[as] + neighbor_pos`)
/// and the per-AS best table (slot = AS index) use this layout, so
/// [`BgpEngine::decide`] and the drain loop stream contiguous memory
/// instead of chasing per-AS heap vectors, absent slots are skipped a
/// word at a time without loading any route bytes, and an epoch clear is
/// an O(slots/64) zero of the presence words rather than an O(slots)
/// `Option` fill.
struct RouteSoa {
    path_id: Vec<PathId>,
    path_len: Vec<u32>,
    ingress: Vec<LinkId>,
    /// Announcing neighbor index + 1; 0 = learned directly from the
    /// origin (the `Option<AsIndex>` niche, flattened into the column).
    from_neighbor: Vec<u32>,
    local_pref: Vec<u32>,
    learned_from: Vec<NeighborKind>,
    communities: Vec<CommunityBits>,
    /// Bit `s` set ⟺ slot `s` holds a route; column contents of absent
    /// slots are stale filler and never read.
    present: Vec<u64>,
}

impl RouteSoa {
    fn new(slots: usize) -> RouteSoa {
        RouteSoa {
            path_id: vec![PathId::EMPTY; slots],
            path_len: vec![0; slots],
            ingress: vec![LinkId(0); slots],
            from_neighbor: vec![0; slots],
            local_pref: vec![0; slots],
            learned_from: vec![NeighborKind::Customer; slots],
            communities: vec![CommunityBits::EMPTY; slots],
            present: vec![0; slots.div_ceil(64)],
        }
    }

    #[inline]
    fn is_present(&self, s: usize) -> bool {
        self.present[s / 64] & (1 << (s % 64)) != 0
    }

    /// Gather slot `s`'s columns into a [`Route`]. Caller must have
    /// checked presence.
    #[inline]
    fn route_at(&self, s: usize) -> Route {
        Route {
            path_id: self.path_id[s],
            path_len: self.path_len[s],
            ingress: self.ingress[s],
            from_neighbor: match self.from_neighbor[s] {
                0 => None,
                v => Some(AsIndex(v - 1)),
            },
            local_pref: self.local_pref[s],
            learned_from: self.learned_from[s],
            communities: self.communities[s],
        }
    }

    #[inline]
    fn get(&self, s: usize) -> Option<Route> {
        self.is_present(s).then(|| self.route_at(s))
    }

    #[inline]
    fn set(&mut self, s: usize, r: Option<Route>) {
        match r {
            Some(r) => {
                self.present[s / 64] |= 1 << (s % 64);
                self.path_id[s] = r.path_id;
                self.path_len[s] = r.path_len;
                self.ingress[s] = r.ingress;
                self.from_neighbor[s] = r.from_neighbor.map(|n| n.0 + 1).unwrap_or(0);
                self.local_pref[s] = r.local_pref;
                self.learned_from[s] = r.learned_from;
                self.communities[s] = r.communities;
            }
            None => self.present[s / 64] &= !(1 << (s % 64)),
        }
    }

    /// Column-wise equality of slot `s` against an optional route,
    /// without gathering a `Route` value.
    #[inline]
    fn matches(&self, s: usize, r: &Option<Route>) -> bool {
        match r {
            None => !self.is_present(s),
            Some(r) => {
                self.is_present(s)
                    && self.path_id[s] == r.path_id
                    && self.path_len[s] == r.path_len
                    && self.ingress[s] == r.ingress
                    && self.from_neighbor[s] == r.from_neighbor.map(|n| n.0 + 1).unwrap_or(0)
                    && self.local_pref[s] == r.local_pref
                    && self.learned_from[s] == r.learned_from
                    && self.communities[s] == r.communities
            }
        }
    }

    /// Present slot indices within `slots`, ascending; all-absent words
    /// are skipped with one load each.
    fn present_in(&self, slots: Range<usize>) -> impl Iterator<Item = usize> + '_ {
        let Range { start, end } = slots;
        let wstart = start / 64;
        let wend = end.div_ceil(64);
        self.present[wstart..wend]
            .iter()
            .enumerate()
            .flat_map(move |(k, &word)| {
                let w = wstart + k;
                let mut bits = word;
                if w * 64 < start {
                    bits &= !0u64 << (start - w * 64);
                }
                if (w + 1) * 64 > end {
                    let keep = end - w * 64;
                    bits &= if keep == 64 { !0 } else { (1u64 << keep) - 1 };
                }
                std::iter::from_fn(move || {
                    if bits == 0 {
                        return None;
                    }
                    let t = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(w * 64 + t)
                })
            })
    }

    /// Drop every route: zero the presence words, leaving column filler
    /// in place. O(slots/64).
    fn clear(&mut self) {
        self.present.fill(0);
    }

    /// Materialize the whole table as the dense `Option` form (snapshot
    /// boundary — [`RoutingOutcome::best`] keeps its public shape).
    fn to_options(&self) -> Vec<Option<Route>> {
        (0..self.path_id.len()).map(|s| self.get(s)).collect()
    }
}

/// Mutable propagation state: per-AS direct routes, Adj-RIB-Ins, best
/// routes, and the activation queue. One [`Simulation`] can run several
/// epochs (configuration deployments) back to back, which is how
/// [`BgpEngine::transition`] models warm-start configuration changes.
struct Simulation<'e, 't> {
    engine: &'e BgpEngine<'t>,
    /// Interned AS-paths for every route alive in this state. Append-only
    /// between [`Simulation::clear`]s: truncating while `direct`/`ribs`/
    /// `best` hold [`crate::PathId`]s would dangle them, so warm epochs
    /// never truncate — canonical interning makes re-offered paths
    /// converge to a high-water set instead of growing without bound.
    arena: PathArena,
    direct: Vec<Vec<Route>>,
    /// CSR offsets into the flat Adj-RIB-In: AS `i`'s per-neighbor slots
    /// are `rib_offsets[i] .. rib_offsets[i + 1]`, in the same sorted
    /// order [`BgpEngine::neighbor_pos`] indexes. Length `n + 1`,
    /// precomputed once from the (immutable) topology degrees.
    rib_offsets: Vec<u32>,
    /// Flat structure-of-arrays Adj-RIB-In over CSR slots.
    ribs: RouteSoa,
    /// Best routes as SoA columns over AS index.
    best: RouteSoa,
    queue: VecDeque<AsIndex>,
    in_queue: Vec<bool>,
    /// Rank-ordered activation queue used instead of `queue` while
    /// `ranked` is set (delta epochs): one bucket per customer-cone rank,
    /// drained highest-rank-first, so announcement waves climb provider
    /// chains to the core and then descend with every provider settled
    /// before the customers that prefer its routes — see
    /// [`PropagationRanks`]. Push and pop are O(1): ranks are bounded by
    /// the provider-chain depth, so a binary heap's sift costs (and their
    /// cache misses) buy nothing here.
    buckets: Vec<VecDeque<u32>>,
    /// Highest possibly-non-empty bucket; raised on push, walked down on
    /// pop. Amortized O(1): each pop lowers it at most as far as pushes
    /// raised it.
    bucket_hi: usize,
    /// ASes currently queued across all buckets.
    bucket_len: usize,
    /// Customer-cone ranks, computed lazily on the first delta epoch
    /// (empty until then; the topology is immutable per engine).
    ranks: Vec<u32>,
    /// Whether `enqueue`/`pop_next` currently use the rank buckets.
    ranked: bool,
    depth: Vec<u32>,
    pending_depth: Vec<u32>,
    max_depth: u32,
    changes: Vec<RouteChange>,
    events: usize,
    converged: bool,
    /// `touched[i] == epoch_stamp` ⟺ AS `i`'s best route changed at least
    /// once this epoch (its pre-epoch route is logged in `pre_epoch`).
    touched: Vec<u32>,
    epoch_stamp: u32,
    /// First-touch log: each AS whose best changed this epoch, paired
    /// with the route it held when the epoch began. Net disturbance is
    /// the subset whose final best differs from that pre-epoch route.
    pre_epoch: Vec<(AsIndex, Option<Route>)>,
}

impl<'e, 't> Simulation<'e, 't> {
    fn new(engine: &'e BgpEngine<'t>) -> Simulation<'e, 't> {
        let topo = engine.topo;
        let n = topo.num_ases();
        let mut rib_offsets = Vec::with_capacity(n + 1);
        let mut total = 0u32;
        rib_offsets.push(0);
        for i in topo.indices() {
            total += topo.degree(i) as u32;
            rib_offsets.push(total);
        }
        Simulation {
            engine,
            arena: PathArena::new(),
            direct: vec![Vec::new(); n],
            rib_offsets,
            ribs: RouteSoa::new(total as usize),
            best: RouteSoa::new(n),
            queue: VecDeque::new(),
            in_queue: vec![false; n],
            buckets: Vec::new(),
            bucket_hi: 0,
            bucket_len: 0,
            ranks: Vec::new(),
            ranked: false,
            depth: vec![0; n],
            pending_depth: vec![0; n],
            max_depth: 0,
            changes: Vec::new(),
            events: 0,
            converged: true,
            touched: vec![0; n],
            epoch_stamp: 1,
            pre_epoch: Vec::new(),
        }
    }

    /// Reset to the just-constructed state *in place*, retaining every
    /// allocation (RIB vectors, queue, change log, and the path arena's
    /// node table and interning map). Identical operation sequences after
    /// a clear intern identical [`crate::PathId`]s, so a cleared
    /// simulation is bit-equivalent to a fresh one.
    fn clear(&mut self) {
        self.arena.clear();
        for d in &mut self.direct {
            d.clear();
        }
        self.ribs.clear();
        self.best.clear();
        self.queue.clear();
        self.in_queue.fill(false);
        for b in &mut self.buckets {
            b.clear();
        }
        self.bucket_hi = 0;
        self.bucket_len = 0;
        self.ranked = false;
        self.depth.fill(0);
        self.pending_depth.fill(0);
        self.max_depth = 0;
        self.changes.clear();
        self.events = 0;
        self.converged = true;
        self.bump_epoch_stamp();
    }

    /// CSR slot range of AS `i`'s Adj-RIB-In.
    #[inline]
    fn rib_slots(&self, i: AsIndex) -> Range<usize> {
        self.rib_offsets[i.us()] as usize..self.rib_offsets[i.us() + 1] as usize
    }

    /// Open a fresh disturbance-tracking window: the next first change of
    /// any AS logs its current route as the pre-epoch state.
    fn bump_epoch_stamp(&mut self) {
        self.epoch_stamp = self.epoch_stamp.wrapping_add(1);
        if self.epoch_stamp == 0 {
            // Stamp wrap: invalidate every stale mark the slow way.
            self.touched.fill(0);
            self.epoch_stamp = 1;
        }
        self.pre_epoch.clear();
    }

    fn enqueue(&mut self, i: AsIndex) {
        if !self.in_queue[i.us()] {
            self.in_queue[i.us()] = true;
            if self.ranked {
                let r = self.ranks[i.us()] as usize;
                self.buckets[r].push_back(i.0);
                self.bucket_hi = self.bucket_hi.max(r);
                self.bucket_len += 1;
            } else {
                self.queue.push_back(i);
            }
        }
    }

    fn pop_next(&mut self) -> Option<AsIndex> {
        if self.ranked {
            if self.bucket_len == 0 {
                return None;
            }
            loop {
                if let Some(i) = self.buckets[self.bucket_hi].pop_front() {
                    self.bucket_len -= 1;
                    return Some(AsIndex(i));
                }
                self.bucket_hi -= 1;
            }
        } else {
            self.queue.pop_front()
        }
    }

    /// Compute [`PropagationRanks`] on first use (delta epochs only; FIFO
    /// epochs never read them).
    fn ensure_ranks(&mut self) {
        if self.ranks.is_empty() && self.engine.topo.num_ases() > 0 {
            let ranks = PropagationRanks::compute(self.engine.topo);
            self.buckets = vec![VecDeque::new(); ranks.max_rank() as usize + 2];
            self.ranks = ranks.into_vec();
        }
    }

    /// Inject one origin announcement at its PoP's provider. The provider
    /// treats the origin as a customer.
    fn apply_injection(&mut self, inj: &Injection) {
        let engine = self.engine;
        if !engine
            .policy
            .accepts(engine.topo, inj.provider, None, &inj.path)
        {
            return; // provider itself poisoned, or tier-1 filter
        }
        let lp = engine
            .policy
            .local_pref(inj.provider, None, NeighborKind::Customer);
        let path_id = self.arena.intern_path(&inj.path);
        self.direct[inj.provider.us()].push(Route {
            path_id,
            path_len: inj.path.len() as u32,
            ingress: inj.link,
            from_neighbor: None,
            local_pref: lp,
            learned_from: NeighborKind::Customer,
            communities: CommunityBits::from_set(&inj.communities),
        });
        self.enqueue(inj.provider);
    }

    /// Inject origin announcements at each PoP's provider.
    fn apply_injections(&mut self, injections: &[Injection]) {
        for inj in injections {
            self.apply_injection(inj);
        }
    }

    /// Start a fresh measurement epoch: reset round accounting and the
    /// change log, keeping the converged routing state.
    fn begin_epoch(&mut self) {
        self.depth.fill(0);
        self.pending_depth.fill(0);
        self.max_depth = 0;
        self.changes.clear();
        self.events = 0;
        self.bump_epoch_stamp();
    }

    /// Replace the origin's announcements: withdraw every current direct
    /// route, then inject the new set. Providers losing or gaining a
    /// direct route are activated and the withdrawal/announcement churn
    /// propagates on the next [`Simulation::run`].
    fn replace_injections(&mut self, injections: &[Injection]) {
        for i in 0..self.direct.len() {
            if !self.direct[i].is_empty() {
                self.direct[i].clear();
                self.enqueue(AsIndex(i as u32));
            }
        }
        self.apply_injections(injections);
    }

    /// Delta-epoch variant of [`Simulation::replace_injections`]: diff
    /// the incoming injections against the previous epoch's and touch
    /// only providers whose announcement changed — unchanged providers
    /// keep their direct routes and are never activated, so a no-op
    /// redeploy seeds nothing at all. Returns the number of seeded
    /// providers.
    fn replace_injections_delta(&mut self, prev: &[Injection], next: &[Injection]) -> usize {
        let changed = diff_injections(prev, next);
        for &p in &changed {
            self.direct[p.us()].clear();
            self.enqueue(p);
        }
        for inj in next {
            // `changed` is sorted and deduplicated by provider index.
            if changed
                .binary_search_by_key(&inj.provider.0, |p| p.0)
                .is_ok()
            {
                self.apply_injection(inj);
            }
        }
        changed.len()
    }

    /// Process the activation queue to quiescence (or the event cap).
    fn run(&mut self, max_events_factor: usize) {
        let engine = self.engine;
        let n = engine.topo.num_ases();
        let cap = max_events_factor.saturating_mul(n.max(1));
        while let Some(i) = self.pop_next() {
            self.in_queue[i.us()] = false;
            self.events += 1;
            if self.events > cap {
                self.converged = false;
                break;
            }
            let new_best = engine.decide(i, &self.direct[i.us()], &self.ribs, self.rib_slots(i));
            if self.best.matches(i.us(), &new_best) {
                continue;
            }
            if self.touched[i.us()] != self.epoch_stamp {
                self.touched[i.us()] = self.epoch_stamp;
                self.pre_epoch.push((i, self.best.get(i.us())));
            }
            self.best.set(i.us(), new_best);
            self.depth[i.us()] = self.pending_depth[i.us()];
            self.max_depth = self.max_depth.max(self.depth[i.us()]);
            self.changes.push(RouteChange {
                round: self.depth[i.us()],
                at: i,
                ingress: new_best.map(|r| r.ingress),
                path_len: new_best.map(|r| r.path_len()).unwrap_or(0),
            });
            let own_asn = engine.topo.asn_of(i);
            // Export (or withdraw) toward every neighbor.
            for &(j, j_kind_from_i) in engine.topo.neighbors(i) {
                // `j_kind_from_i`: how j looks from i (is j my customer?).
                let offer = match new_best {
                    Some(r)
                        if engine.policy.may_export_route(
                            i,
                            r.learned_from,
                            j_kind_from_i,
                            r.communities,
                        )
                            // Origin action communities: the PoP provider
                            // (holder of the direct route) honors export
                            // scoping toward peers/providers.
                            && (r.from_neighbor.is_some()
                                || r.communities.allows_export_to(j_kind_from_i))
                            && r.from_neighbor != Some(j) =>
                    {
                        // Provider-side prepending community: the provider
                        // prepends its own ASN extra times on export of a
                        // direct route.
                        let extra = if r.from_neighbor.is_none() {
                            r.communities.provider_prepends()
                        } else {
                            0
                        };
                        // First-hop action communities are stripped; an
                        // only-to-customers deployer marks (and everyone
                        // propagates) the OTC attribute. EMPTY whenever no
                        // extension is deployed.
                        let exported_comms = engine.policy.export_communities(i, &r, j_kind_from_i);
                        // Evaluate acceptance on the *virtual* offered path
                        // (prepends chained onto the arena walk) before
                        // interning, so rejected offers push no nodes. A
                        // route dropped here leaves the offer `None`, so
                        // the delta relevance check below can never treat
                        // it as a viable activation.
                        let accepted = engine.policy.accepts_offer_iter(
                            engine.topo,
                            j,
                            Some(i),
                            exported_comms,
                            std::iter::repeat_n(own_asn, 1 + extra)
                                .chain(self.arena.iter(r.path_id)),
                        );
                        if accepted {
                            let path_id = self.arena.push_times(r.path_id, own_asn, 1 + extra);
                            let i_kind_from_j = j_kind_from_i.reverse();
                            Some(Route {
                                path_id,
                                path_len: r.path_len + 1 + extra as u32,
                                ingress: r.ingress,
                                from_neighbor: Some(i),
                                local_pref: engine.policy.local_pref(j, Some(i), i_kind_from_j),
                                learned_from: i_kind_from_j,
                                communities: exported_comms,
                            })
                        } else {
                            None
                        }
                    }
                    _ => None,
                };
                let pos = engine.neighbor_pos(j, i).expect("adjacency is symmetric");
                let slot = self.rib_offsets[j.us()] as usize + pos;
                if !self.ribs.matches(slot, &offer) {
                    // Delta epochs terminate at ASes whose best route is
                    // provably unchanged: if the rewritten slot is not the
                    // source of j's current best and the new offer is not
                    // strictly better than that best, j's decision cannot
                    // move ([`BgpEngine::better`] is a strict total order
                    // across routes from distinct neighbors, so ties are
                    // impossible here). The slot still updates, so a later
                    // full decide at j sees the new candidate. An unqueued
                    // AS always has a settled best (updates that bypass the
                    // queue are exactly the ones that cannot change it), so
                    // comparing against `best[j]` is sound.
                    let relevant = !self.ranked
                        || self.in_queue[j.us()]
                        || match self.best.get(j.us()) {
                            Some(b) => {
                                b.from_neighbor == Some(i)
                                    || offer.as_ref().is_some_and(|o| engine.better(j, o, &b))
                            }
                            None => true,
                        };
                    self.ribs.set(slot, offer);
                    if relevant {
                        self.pending_depth[j.us()] =
                            self.pending_depth[j.us()].max(self.depth[i.us()] + 1);
                        self.enqueue(j);
                    }
                }
            }
        }
    }

    /// Candidate RIB copy for a [`SnapshotDetail::Full`] snapshot.
    fn capture_candidates(&self) -> Vec<Vec<Route>> {
        (0..self.direct.len())
            .map(|i| {
                let slots = self.rib_slots(AsIndex(i as u32));
                self.direct[i]
                    .iter()
                    .copied()
                    .chain(self.ribs.present_in(slots).map(|s| self.ribs.route_at(s)))
                    .collect()
            })
            .collect()
    }

    /// Net disturbance of the current epoch: ASes whose best route
    /// differs from the route they held when the epoch began (transient
    /// flips that settled back are excluded). Route equality compares
    /// `path_id`s, which is sound within one simulation lifetime — the
    /// arena is canonical and only truncated by [`Simulation::clear`],
    /// which also opens a fresh tracking window.
    fn routes_disturbed(&self) -> usize {
        self.pre_epoch
            .iter()
            .filter(|(i, pre)| self.best.get(i.us()) != *pre)
            .count()
    }

    /// Snapshot the converged state into a [`RoutingOutcome`].
    fn snapshot(self, detail: SnapshotDetail) -> RoutingOutcome {
        let routes_disturbed = self.routes_disturbed();
        let (candidates, paths) = match detail {
            SnapshotDetail::Catchments => (None, PathStore::default()),
            SnapshotDetail::Full => (Some(self.capture_candidates()), self.arena.store()),
        };
        RoutingOutcome {
            best: self.best.to_options(),
            candidates,
            paths,
            events: self.events,
            rounds: self.max_depth,
            changes: self.changes,
            converged: self.converged,
            routes_disturbed,
        }
    }

    /// Non-consuming snapshot: the simulation stays alive for further
    /// epochs (the [`CampaignSession`] path). At the default
    /// [`SnapshotDetail::Catchments`] this copies only the `best` vector
    /// and the epoch's change log.
    fn snapshot_cloned(&self, detail: SnapshotDetail) -> RoutingOutcome {
        let (candidates, paths) = match detail {
            SnapshotDetail::Catchments => (None, PathStore::default()),
            SnapshotDetail::Full => (Some(self.capture_candidates()), self.arena.store()),
        };
        RoutingOutcome {
            best: self.best.to_options(),
            candidates,
            paths,
            events: self.events,
            rounds: self.max_depth,
            changes: self.changes.clone(),
            converged: self.converged,
            routes_disturbed: self.routes_disturbed(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::community::CommunitySet;
    use crate::origin::OriginAs;
    use trackdown_topology::{topology_from_links, Asn, LinkKind};

    /// Arena-independent identity of a route: everything that defines it,
    /// with the interned path materialized. Route ids are only canonical
    /// within one arena, so cross-simulation comparisons go through this.
    type RouteKey = (
        AsPath,
        LinkId,
        Option<AsIndex>,
        u32,
        NeighborKind,
        crate::community::CommunityBits,
    );

    fn route_key(out: &RoutingOutcome, r: &Route) -> RouteKey {
        (
            out.path_of(r),
            r.ingress,
            r.from_neighbor,
            r.local_pref,
            r.learned_from,
            r.communities,
        )
    }

    /// Materialized best routes (requires a Full-detail outcome).
    fn best_keys(out: &RoutingOutcome) -> Vec<Option<RouteKey>> {
        out.best
            .iter()
            .map(|b| b.as_ref().map(|r| route_key(out, r)))
            .collect()
    }

    /// Materialized candidate RIBs (requires a Full-detail outcome).
    fn candidate_keys(out: &RoutingOutcome) -> Vec<Vec<RouteKey>> {
        out.candidates()
            .iter()
            .map(|cands| cands.iter().map(|r| route_key(out, r)).collect())
            .collect()
    }

    /// Textbook policies, no noise.
    fn clean_config() -> EngineConfig {
        EngineConfig {
            policy: PolicyConfig {
                seed: 7,
                violator_fraction: 0.0,
                no_loop_prevention_fraction: 0.0,
                tier1_poison_filtering: false,
                extensions: Default::default(),
            },
            max_events_factor: 200,
        }
    }

    /// Figure-2-like topology:
    ///
    /// ```text
    ///        t1 ──── t2        (tier-1 peers)
    ///       /  \    /  \
    ///      x    n──u    y      (transits; n-u is a peering link)
    ///                          x, n, y are origin providers
    ///      u also serves stubs a, b
    /// ```
    fn fig2_topology() -> trackdown_topology::Topology {
        topology_from_links([
            (Asn(1), Asn(2), LinkKind::PeerPeer),           // t1-t2
            (Asn(1), Asn(10), LinkKind::ProviderCustomer),  // t1 -> x
            (Asn(1), Asn(11), LinkKind::ProviderCustomer),  // t1 -> n
            (Asn(2), Asn(12), LinkKind::ProviderCustomer),  // t2 -> u
            (Asn(2), Asn(13), LinkKind::ProviderCustomer),  // t2 -> y
            (Asn(11), Asn(12), LinkKind::PeerPeer),         // n-u peering
            (Asn(12), Asn(20), LinkKind::ProviderCustomer), // u -> a
            (Asn(12), Asn(21), LinkKind::ProviderCustomer), // u -> b
        ])
        .unwrap()
    }

    fn origin_xny() -> OriginAs {
        OriginAs::new(
            Asn(47065),
            vec![
                ("X".into(), Asn(10)),
                ("N".into(), Asn(11)),
                ("Y".into(), Asn(13)),
            ],
        )
    }

    fn all_plain(o: &OriginAs) -> Vec<LinkAnnouncement> {
        o.link_ids().map(LinkAnnouncement::plain).collect()
    }

    #[test]
    fn anycast_reaches_everyone() {
        let topo = fig2_topology();
        let engine = BgpEngine::new(&topo, &clean_config());
        let o = origin_xny();
        let out = engine.propagate_config(&o, &all_plain(&o), 200).unwrap();
        assert!(out.converged);
        assert_eq!(out.reachable_count(), topo.num_ases());
    }

    #[test]
    fn customers_of_u_route_through_peering_link_n() {
        let topo = fig2_topology();
        let engine = BgpEngine::new(&topo, &clean_config());
        let o = origin_xny();
        let out = engine.propagate_config(&o, &all_plain(&o), 200).unwrap();
        // u prefers the peer route via n (LocalPref peer > provider via t2),
        // so u and its customers a, b land in N's catchment (link 1).
        for asn in [12u32, 20, 21] {
            let i = topo.index_of(Asn(asn)).unwrap();
            assert_eq!(
                out.catchment(i),
                Some(LinkId(1)),
                "AS{asn} should use the n-u peering link"
            );
        }
    }

    #[test]
    fn withdrawing_a_link_moves_its_catchment() {
        let topo = fig2_topology();
        let engine = BgpEngine::new(&topo, &clean_config());
        let o = origin_xny();
        // Announce only via X and Y (withdraw N, link 1).
        let anns = vec![
            LinkAnnouncement::plain(LinkId(0)),
            LinkAnnouncement::plain(LinkId(2)),
        ];
        let out = engine.propagate_config(&o, &anns, 200).unwrap();
        assert_eq!(out.reachable_count(), topo.num_ases());
        for i in topo.indices() {
            assert_ne!(out.catchment(i), Some(LinkId(1)), "link 1 was withdrawn");
        }
        // u now reaches the origin through its provider t2 toward y.
        let iu = topo.index_of(Asn(12)).unwrap();
        assert_eq!(out.catchment(iu), Some(LinkId(2)));
    }

    #[test]
    fn poisoning_u_forces_u_off_the_n_link() {
        let topo = fig2_topology();
        let engine = BgpEngine::new(&topo, &clean_config());
        let o = origin_xny();
        // Poison u on the announcement through n (Figure 2 of the paper).
        let anns = vec![
            LinkAnnouncement::plain(LinkId(0)),
            LinkAnnouncement::poisoned(LinkId(1), vec![Asn(12)]),
            LinkAnnouncement::plain(LinkId(2)),
        ];
        let out = engine.propagate_config(&o, &anns, 200).unwrap();
        assert!(out.converged);
        // u must not use the poisoned n announcement: loop prevention drops
        // it, so u falls back to its provider t2 and lands in Y's catchment.
        for asn in [12u32, 20, 21] {
            let i = topo.index_of(Asn(asn)).unwrap();
            assert_eq!(
                out.catchment(i),
                Some(LinkId(2)),
                "AS{asn} must avoid the poisoned link"
            );
        }
        // n itself still uses its own direct route.
        let in_ = topo.index_of(Asn(11)).unwrap();
        assert_eq!(out.catchment(in_), Some(LinkId(1)));
    }

    #[test]
    fn poisoning_is_ineffective_when_loop_prevention_disabled() {
        let topo = fig2_topology();
        let cfg = EngineConfig {
            policy: PolicyConfig {
                seed: 7,
                violator_fraction: 0.0,
                no_loop_prevention_fraction: 1.0, // everyone ignores poison
                tier1_poison_filtering: false,
                extensions: Default::default(),
            },
            max_events_factor: 200,
        };
        let engine = BgpEngine::new(&topo, &cfg);
        let o = origin_xny();
        let anns = vec![
            LinkAnnouncement::plain(LinkId(0)),
            LinkAnnouncement::poisoned(LinkId(1), vec![Asn(12)]),
            LinkAnnouncement::plain(LinkId(2)),
        ];
        let out = engine.propagate_config(&o, &anns, 200).unwrap();
        // u keeps preferring the peer route despite being poisoned.
        let iu = topo.index_of(Asn(12)).unwrap();
        assert_eq!(out.catchment(iu), Some(LinkId(1)));
    }

    #[test]
    fn prepending_moves_length_based_ties() {
        // Stub s is a customer of two transits m and p, both customers of
        // origin providers. With equal LocalPref and equal path lengths the
        // salted tiebreak decides; prepending one link must force s to the
        // other link regardless of salt.
        let topo = topology_from_links([
            (Asn(10), Asn(30), LinkKind::ProviderCustomer),
            (Asn(11), Asn(30), LinkKind::ProviderCustomer),
        ])
        .unwrap();
        let o = OriginAs::new(
            Asn(47065),
            vec![("M".into(), Asn(10)), ("P".into(), Asn(11))],
        );
        let engine = BgpEngine::new(&topo, &clean_config());
        let is = topo.index_of(Asn(30)).unwrap();

        // Baseline: both plain; s picks one by tiebreak.
        let out = engine.propagate_config(&o, &all_plain(&o), 200).unwrap();
        let baseline = out.catchment(is).unwrap();
        let other = if baseline == LinkId(0) {
            LinkId(1)
        } else {
            LinkId(0)
        };

        // Prepend on the baseline link: s must switch to the other link.
        let anns = vec![
            LinkAnnouncement {
                link: baseline,
                prepend: true,
                poisons: vec![],
                communities: CommunitySet::empty(),
            },
            LinkAnnouncement::plain(other),
        ];
        let out2 = engine.propagate_config(&o, &anns, 200).unwrap();
        assert_eq!(out2.catchment(is), Some(other));
    }

    #[test]
    fn forwarding_walk_matches_control_plane() {
        let topo = fig2_topology();
        let engine = BgpEngine::new(&topo, &clean_config());
        let o = origin_xny();
        let out = engine.propagate_config(&o, &all_plain(&o), 200).unwrap();
        for i in topo.indices() {
            let walk = out.forwarding_walk(i).expect("reachable");
            // Data-plane ingress equals control-plane catchment for clean
            // policies (no violators): the tagged route is what forwarding
            // follows hop by hop.
            assert_eq!(Some(walk.link), out.catchment(i));
            assert_eq!(walk.hops[0], i);
            // Last hop is a PoP provider.
            let last = *walk.hops.last().unwrap();
            let last_asn = topo.asn_of(last);
            assert!(o.links.iter().any(|l| l.provider == last_asn));
        }
    }

    #[test]
    fn no_announcement_no_routes() {
        let topo = fig2_topology();
        let engine = BgpEngine::new(&topo, &clean_config());
        let out = engine.propagate(&[], 200);
        assert_eq!(out.reachable_count(), 0);
        assert!(out.converged);
        assert!(out.forwarding_walk(AsIndex(0)).is_none());
    }

    #[test]
    fn no_export_to_providers_confines_link_to_provider_cone() {
        use crate::catchment::Catchments;
        use crate::community::{Community, CommunitySet};
        use trackdown_topology::cone::ConeInfo;
        use trackdown_topology::gen::{generate, TopologyConfig};
        let g = generate(&TopologyConfig::small(19));
        let origin = OriginAs::peering_style(&g, 3);
        let engine = BgpEngine::new(&g.topology, &clean_config());
        let cones = ConeInfo::compute(&g.topology);
        let scoped = LinkId(0);
        let provider = g
            .topology
            .index_of(origin.links[scoped.us()].provider)
            .unwrap();
        let anns: Vec<LinkAnnouncement> = origin
            .link_ids()
            .map(|l| {
                if l == scoped {
                    LinkAnnouncement::with_communities(
                        l,
                        CommunitySet::from_vec(vec![
                            Community::NoExportToPeers,
                            Community::NoExportToProviders,
                        ]),
                    )
                } else {
                    LinkAnnouncement::plain(l)
                }
            })
            .collect();
        let out = engine.propagate_config(&origin, &anns, 200).unwrap();
        assert!(out.converged);
        // The scoped link's catchment is confined to the provider's
        // customer cone (customer-only export).
        for i in g.topology.indices() {
            if out.catchment(i) == Some(scoped) {
                assert!(
                    cones.in_cone(provider, i),
                    "{} outside the provider cone used link {scoped}",
                    g.topology.asn_of(i)
                );
            }
        }
        // Everyone still reaches the prefix via the other links.
        assert_eq!(out.reachable_count(), g.topology.num_ases());
        // And the scoping actually shrank the link's catchment relative to
        // the baseline.
        let plain: Vec<_> = origin.link_ids().map(LinkAnnouncement::plain).collect();
        let base = engine.propagate_config(&origin, &plain, 200).unwrap();
        let base_members = Catchments::from_control_plane(&base)
            .members(scoped)
            .count();
        let scoped_members = Catchments::from_control_plane(&out).members(scoped).count();
        assert!(scoped_members <= base_members);
    }

    #[test]
    fn provider_prepend_community_weakens_link_remotely() {
        use crate::catchment::Catchments;
        use crate::community::{Community, CommunitySet};
        use trackdown_topology::gen::{generate, TopologyConfig};
        let g = generate(&TopologyConfig::small(20));
        let origin = OriginAs::peering_style(&g, 3);
        let engine = BgpEngine::new(&g.topology, &clean_config());
        let target = LinkId(1);
        let anns: Vec<LinkAnnouncement> = origin
            .link_ids()
            .map(|l| {
                if l == target {
                    LinkAnnouncement::with_communities(
                        l,
                        CommunitySet::from_vec(vec![Community::PrependAtProvider(4)]),
                    )
                } else {
                    LinkAnnouncement::plain(l)
                }
            })
            .collect();
        let plain: Vec<_> = origin.link_ids().map(LinkAnnouncement::plain).collect();
        let base = engine.propagate_config(&origin, &plain, 200).unwrap();
        let out = engine.propagate_config(&origin, &anns, 200).unwrap();
        // The provider itself still prefers its direct route (communities
        // only act on export)...
        let p = g
            .topology
            .index_of(origin.links[target.us()].provider)
            .unwrap();
        assert_eq!(out.catchment(p), Some(target));
        // ...but the link attracts at most as many remote ASes as before
        // (it loses every tie the path length used to decide).
        let before = Catchments::from_control_plane(&base)
            .members(target)
            .count();
        let after = Catchments::from_control_plane(&out).members(target).count();
        assert!(after <= before, "prepend community attracted traffic?");
    }

    #[test]
    fn convergence_rounds_are_bounded_by_diameter_scale() {
        use trackdown_topology::gen::{generate, TopologyConfig};
        let g = generate(&TopologyConfig::medium(25));
        let origin = OriginAs::peering_style(&g, 5);
        let engine = BgpEngine::new(&g.topology, &clean_config());
        let anns: Vec<_> = origin.link_ids().map(LinkAnnouncement::plain).collect();
        let out = engine.propagate_config(&origin, &anns, 200).unwrap();
        assert!(out.converged);
        // Depth 0 at the PoP providers, growing along the propagation
        // frontier: bounded by a small multiple of the AS-level diameter
        // (path exploration can exceed the plain BFS depth).
        assert!(out.rounds >= 1, "some AS must depend on another's change");
        assert!(
            out.rounds <= 30,
            "convergence depth {} looks like an oscillation",
            out.rounds
        );
        // Withdraw-heavy configurations still converge in bounded depth.
        let single = vec![LinkAnnouncement::plain(LinkId(0))];
        let out2 = engine.propagate_config(&origin, &single, 200).unwrap();
        assert!(out2.converged);
        assert!(out2.rounds <= 40);
    }

    #[test]
    fn transition_reaches_the_same_fixpoint_as_cold_start() {
        use trackdown_topology::gen::{generate, TopologyConfig};
        let g = generate(&TopologyConfig::small(26));
        let origin = OriginAs::peering_style(&g, 4);
        let engine = BgpEngine::new(&g.topology, &clean_config());
        let all: Vec<_> = origin.link_ids().map(LinkAnnouncement::plain).collect();
        let subset: Vec<_> = origin
            .link_ids()
            .take(2)
            .map(LinkAnnouncement::plain)
            .collect();
        // Deterministic path-vector fixpoints: the warm-start transition
        // must land on exactly the cold-start state of the new config.
        let cold = engine
            .propagate_config_detailed(&origin, &subset, 200, SnapshotDetail::Full)
            .unwrap();
        let warm = engine
            .transition_config_detailed(&origin, &all, &subset, 200, SnapshotDetail::Full)
            .unwrap();
        assert!(warm.converged);
        assert_eq!(best_keys(&warm), best_keys(&cold));
        assert_eq!(candidate_keys(&warm), candidate_keys(&cold));
    }

    #[test]
    fn transition_changes_cover_only_moved_ases() {
        use trackdown_topology::gen::{generate, TopologyConfig};
        let g = generate(&TopologyConfig::small(27));
        let origin = OriginAs::peering_style(&g, 4);
        let engine = BgpEngine::new(&g.topology, &clean_config());
        let all: Vec<_> = origin.link_ids().map(LinkAnnouncement::plain).collect();
        let subset: Vec<_> = origin
            .link_ids()
            .filter(|l| l.0 != 1)
            .map(LinkAnnouncement::plain)
            .collect();
        let before = engine
            .propagate_config_detailed(&origin, &all, 200, SnapshotDetail::Full)
            .unwrap();
        let warm = engine
            .transition_config_detailed(&origin, &all, &subset, 200, SnapshotDetail::Full)
            .unwrap();
        // Every AS whose final route differs appears in the change log;
        // ASes that kept their route emit nothing.
        let changed: std::collections::HashSet<AsIndex> =
            warm.changes.iter().map(|c| c.at).collect();
        let before_keys = best_keys(&before);
        let warm_keys = best_keys(&warm);
        for i in g.topology.indices() {
            let moved = before_keys[i.us()] != warm_keys[i.us()];
            if moved {
                assert!(changed.contains(&i), "moved AS {i:?} missing from log");
            }
        }
        // The transition log is (much) smaller than a cold start's.
        assert!(warm.changes.len() < before.changes.len());
        // Transition churn includes the withdrawn link's old catchment at
        // minimum.
        let withdrawn_members = crate::Catchments::from_control_plane(&before)
            .members(LinkId(1))
            .count();
        assert!(warm.changes.len() >= withdrawn_members.min(1));
    }

    #[test]
    fn noop_transition_is_silent() {
        use trackdown_topology::gen::{generate, TopologyConfig};
        let g = generate(&TopologyConfig::small(28));
        let origin = OriginAs::peering_style(&g, 3);
        let engine = BgpEngine::new(&g.topology, &clean_config());
        let all: Vec<_> = origin.link_ids().map(LinkAnnouncement::plain).collect();
        let warm = engine.transition_config(&origin, &all, &all, 200).unwrap();
        // Re-announcing the identical configuration changes nothing: the
        // direct routes are replaced by equal ones and no AS re-decides.
        assert!(
            warm.changes.is_empty(),
            "{} spurious changes",
            warm.changes.len()
        );
        assert_eq!(warm.rounds, 0);
    }

    #[test]
    fn transition_epoch_accounting_is_per_epoch() {
        use trackdown_topology::gen::{generate, TopologyConfig};
        let g = generate(&TopologyConfig::small(29));
        let origin = OriginAs::peering_style(&g, 4);
        let engine = BgpEngine::new(&g.topology, &clean_config());
        let all: Vec<_> = origin.link_ids().map(LinkAnnouncement::plain).collect();
        let subset: Vec<_> = origin
            .link_ids()
            .take(2)
            .map(LinkAnnouncement::plain)
            .collect();
        let cold_prev = engine.propagate_config(&origin, &all, 200).unwrap();
        let warm = engine
            .transition_config(&origin, &all, &subset, 200)
            .unwrap();
        // `events`/`rounds`/`changes` cover only the transition epoch: if
        // they accumulated across epochs they would exceed the first
        // epoch's cold-start counts.
        assert!(warm.events < cold_prev.events);
        // Withdrawal churn is real: withdrawing links moves at least the
        // withdrawn links' former members, so the epoch log is non-empty.
        assert!(!warm.changes.is_empty());
        // Change rounds start again from the new epoch's frontier.
        let max_round = warm.changes.iter().map(|c| c.round).max().unwrap();
        assert_eq!(max_round, warm.rounds);
    }

    #[test]
    fn session_deployments_match_cold_starts_exactly() {
        use trackdown_topology::gen::{generate, TopologyConfig};
        let g = generate(&TopologyConfig::small(30));
        let origin = OriginAs::peering_style(&g, 4);
        let engine = BgpEngine::new(&g.topology, &clean_config());
        // A small schedule with withdrawals, prepends, and poisons.
        let all: Vec<LinkAnnouncement> = origin.link_ids().map(LinkAnnouncement::plain).collect();
        let subset: Vec<LinkAnnouncement> = origin
            .link_ids()
            .filter(|l| l.0 != 2)
            .map(LinkAnnouncement::plain)
            .collect();
        let prepended: Vec<LinkAnnouncement> = origin
            .link_ids()
            .map(|l| {
                if l.0 == 0 {
                    LinkAnnouncement::prepended(l)
                } else {
                    LinkAnnouncement::plain(l)
                }
            })
            .collect();
        let configs = [all.clone(), subset, prepended, all];
        let mut session = engine.session();
        for (k, anns) in configs.iter().enumerate() {
            let warm = session
                .deploy_config_detailed(&origin, anns, 200, SnapshotDetail::Full)
                .unwrap();
            let cold = engine
                .propagate_config_detailed(&origin, anns, 200, SnapshotDetail::Full)
                .unwrap();
            assert_eq!(
                best_keys(&warm),
                best_keys(&cold),
                "config {k}: best routes differ"
            );
            assert_eq!(
                candidate_keys(&warm),
                candidate_keys(&cold),
                "config {k}: candidate sets differ"
            );
            assert_eq!(warm.converged, cold.converged);
        }
        assert_eq!(session.deployments(), configs.len());
        assert_eq!(session.cold_restarts(), 0);
        assert!(session.peak_arena_nodes() > 0);
    }

    #[test]
    fn session_redeploying_same_config_is_a_silent_epoch() {
        use trackdown_topology::gen::{generate, TopologyConfig};
        let g = generate(&TopologyConfig::small(31));
        let origin = OriginAs::peering_style(&g, 3);
        let engine = BgpEngine::new(&g.topology, &clean_config());
        let all: Vec<_> = origin.link_ids().map(LinkAnnouncement::plain).collect();
        let mut session = engine.session();
        let first = session.deploy_config(&origin, &all, 200).unwrap();
        let again = session.deploy_config(&origin, &all, 200).unwrap();
        assert!(again.changes.is_empty());
        assert_eq!(again.rounds, 0);
        assert_eq!(again.best, first.best);
    }

    #[test]
    fn session_reset_cold_starts_the_next_deployment() {
        use trackdown_topology::gen::{generate, TopologyConfig};
        let g = generate(&TopologyConfig::small(32));
        let origin = OriginAs::peering_style(&g, 3);
        let engine = BgpEngine::new(&g.topology, &clean_config());
        let all: Vec<_> = origin.link_ids().map(LinkAnnouncement::plain).collect();
        let cold = engine.propagate_config(&origin, &all, 200).unwrap();
        let mut session = engine.session();
        session.deploy_config(&origin, &all, 200).unwrap();
        session.reset();
        let after_reset = session.deploy_config(&origin, &all, 200).unwrap();
        // After a reset the epoch is a genuine cold start again: the full
        // change log reappears instead of a silent no-op epoch.
        assert_eq!(after_reset.best, cold.best);
        assert_eq!(after_reset.events, cold.events);
        assert_eq!(after_reset.changes.len(), cold.changes.len());
    }

    #[test]
    fn invalid_community_rejected_at_injection() {
        use crate::community::{Community, CommunitySet};
        use trackdown_topology::gen::{generate, TopologyConfig};
        let g = generate(&TopologyConfig::small(21));
        let origin = OriginAs::peering_style(&g, 3);
        let bad = LinkAnnouncement::with_communities(
            LinkId(0),
            CommunitySet::from_vec(vec![Community::PrependAtProvider(0)]),
        );
        assert!(matches!(
            origin.build_injections(&g.topology, &[bad]),
            Err(OriginError::InvalidCommunity(LinkId(0)))
        ));
    }

    #[test]
    fn deterministic_across_runs() {
        let topo = fig2_topology();
        let engine = BgpEngine::new(&topo, &clean_config());
        let o = origin_xny();
        let a = engine.propagate_config(&o, &all_plain(&o), 200).unwrap();
        let b = engine.propagate_config(&o, &all_plain(&o), 200).unwrap();
        assert_eq!(a.best, b.best);
        assert_eq!(a.events, b.events);
    }

    #[test]
    fn candidates_include_all_viable_offers() {
        let topo = fig2_topology();
        let engine = BgpEngine::new(&topo, &clean_config());
        let o = origin_xny();
        let out = engine
            .propagate_config_detailed(&o, &all_plain(&o), 200, SnapshotDetail::Full)
            .unwrap();
        // u hears the route from its peer n and its provider t2: 2 candidates.
        let iu = topo.index_of(Asn(12)).unwrap();
        assert!(
            out.candidates()[iu.us()].len() >= 2,
            "u should have at least 2 candidate routes, got {}",
            out.candidates()[iu.us()].len()
        );
        // The best route is always among the candidates.
        for i in topo.indices() {
            if let Some(b) = &out.best[i.us()] {
                assert!(out.candidates()[i.us()].contains(b));
            }
        }
    }

    #[test]
    fn catchments_detail_skips_candidates_and_paths() {
        let topo = fig2_topology();
        let engine = BgpEngine::new(&topo, &clean_config());
        let o = origin_xny();
        let out = engine.propagate_config(&o, &all_plain(&o), 200).unwrap();
        assert!(!out.has_candidates());
        assert!(out.paths.is_empty());
        // Catchments, forwarding walks, and change logs still work.
        assert_eq!(out.reachable_count(), topo.num_ases());
        assert!(out.forwarding_walk(AsIndex(0)).is_some());
        // The full-detail snapshot of the same run agrees on catchments.
        let full = engine
            .propagate_config_detailed(&o, &all_plain(&o), 200, SnapshotDetail::Full)
            .unwrap();
        assert_eq!(out.control_catchments(), full.control_catchments());
        assert!(full.has_candidates());
        assert!(!full.paths.is_empty());
    }

    #[test]
    fn valley_free_property_of_all_paths() {
        // No propagated path may go customer->provider after having gone
        // provider->customer or peer->peer (valley-free).
        let topo = fig2_topology();
        let engine = BgpEngine::new(&topo, &clean_config());
        let o = origin_xny();
        let out = engine
            .propagate_config_detailed(&o, &all_plain(&o), 200, SnapshotDetail::Full)
            .unwrap();
        for i in topo.indices() {
            if let Some(r) = &out.best[i.us()] {
                // Reconstruct relationships along the distinct path,
                // ignoring the origin (not in topology).
                let path = out.path_of(r);
                let hops: Vec<AsIndex> = path
                    .distinct()
                    .into_iter()
                    .filter_map(|a| topo.index_of(a))
                    .collect();
                // Walk from origin side to receiver: reversed path plus i.
                let mut chain: Vec<AsIndex> = hops;
                chain.reverse();
                chain.push(i);
                // Along the propagation direction a path must be
                // up* (to providers), then at most one peer crossing or
                // descent, then down* (to customers) only.
                let mut ascending = true;
                for w in chain.windows(2) {
                    // Direction of propagation is w[0] -> w[1]; `rel` is
                    // how w[1] looks from w[0].
                    let rel = topo.relationship(w[0], w[1]).expect("adjacent");
                    match rel {
                        NeighborKind::Customer => ascending = false, // down
                        NeighborKind::Peer => {
                            assert!(ascending, "peer edge after descent in {path:?}");
                            ascending = false;
                        }
                        NeighborKind::Provider => {
                            assert!(ascending, "valley in path {path:?}");
                        }
                    }
                }
            }
        }
    }
}
