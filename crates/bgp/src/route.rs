//! Routes, prefixes, and peering-link identifiers.

use crate::arena::PathId;
use crate::community::CommunityBits;
use serde::{Deserialize, Serialize};
use std::fmt;
use trackdown_topology::{AsIndex, NeighborKind};

/// An IPv4 prefix in CIDR form, used both as the announced experiment
/// prefix and by the traffic substrate for address-level plumbing.
///
/// ```
/// use trackdown_bgp::Prefix;
/// let p = Prefix::new([184, 164, 224, 0], 24);
/// assert!(p.contains(p.addr(7)));
/// assert_eq!(p.to_string(), "184.164.224.0/24");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Prefix {
    /// Network address as a big-endian u32.
    pub network: u32,
    /// Prefix length in bits (0–32).
    pub len: u8,
}

impl Prefix {
    /// Construct from dotted-quad octets and a prefix length.
    ///
    /// # Panics
    /// Panics if `len > 32` or host bits are set in `octets`.
    pub fn new(octets: [u8; 4], len: u8) -> Prefix {
        assert!(len <= 32, "prefix length {len} > 32");
        let network = u32::from_be_bytes(octets);
        let p = Prefix { network, len };
        assert_eq!(
            network & p.mask(),
            network,
            "host bits set in {octets:?}/{len}"
        );
        p
    }

    /// The netmask as a u32 (all-ones for /32, zero for /0).
    pub fn mask(&self) -> u32 {
        if self.len == 0 {
            0
        } else {
            u32::MAX << (32 - self.len)
        }
    }

    /// True if `ip` (big-endian u32) falls inside this prefix.
    pub fn contains(&self, ip: u32) -> bool {
        ip & self.mask() == self.network
    }

    /// The `offset`-th address inside the prefix (wraps within the block).
    pub fn addr(&self, offset: u32) -> u32 {
        let host_bits = 32 - self.len as u32;
        let span = if host_bits == 32 {
            u32::MAX
        } else {
            (1u32 << host_bits) - 1
        };
        self.network | (offset & span)
    }

    /// Number of addresses in the prefix (saturating at `u32::MAX` for /0).
    pub fn size(&self) -> u32 {
        let host_bits = 32 - self.len as u32;
        if host_bits >= 32 {
            u32::MAX
        } else {
            1u32 << host_bits
        }
    }
}

impl fmt::Display for Prefix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let o = self.network.to_be_bytes();
        write!(f, "{}.{}.{}.{}/{}", o[0], o[1], o[2], o[3], self.len)
    }
}

/// Identifier of one of the origin AS's peering links (a PoP–provider
/// pair). Catchments are keyed by `LinkId`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct LinkId(pub u8);

impl LinkId {
    /// The link id as a usize for vector addressing.
    #[inline]
    pub fn us(self) -> usize {
        self.0 as usize
    }

    /// Checked conversion from a vector index.
    ///
    /// # Panics
    /// Panics when `i` exceeds the `u8` id space: `i as u8` would silently
    /// wrap and alias an existing link, misattributing whatever is keyed
    /// by the result.
    #[inline]
    pub fn from_usize(i: usize) -> LinkId {
        assert!(
            i <= u8::MAX as usize,
            "link index {i} exceeds the LinkId space (max 255); \
             truncation would alias distinct links"
        );
        LinkId(i as u8)
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "l{}", self.0)
    }
}

/// A route installed in some AS's RIB for the experiment prefix.
///
/// Routes are small `Copy` handles: the AS-path lives in the engine's
/// [`crate::PathArena`] and is referenced by `path_id`. Within one
/// propagation state the interning is canonical (equal path content ⟺
/// equal id), so derived `PartialEq` is exact content equality. Ids are
/// *not* comparable across engines or sessions — materialize via
/// [`crate::RoutingOutcome::path_of`] first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Route {
    /// Interned AS-path exactly as received (origin-last; includes any
    /// prepending and poison sandwiches, but not the local AS).
    pub path_id: PathId,
    /// Hop count of `path_id` (counting prepend repetitions), cached on
    /// the route so BGP's length tiebreak never walks the arena.
    pub path_len: u32,
    /// Which origin peering link this route entered the Internet through.
    /// This tag rides along with the announcement; the set of ASes whose
    /// best route carries tag `l` is link `l`'s control-plane catchment.
    pub ingress: LinkId,
    /// The neighbor this route was learned from, or `None` when learned
    /// directly from the origin (i.e. this AS is the PoP's provider).
    pub from_neighbor: Option<AsIndex>,
    /// LocalPref assigned at import time.
    pub local_pref: u32,
    /// Relationship of the announcing neighbor from this AS's perspective
    /// (drives export policy). Direct origin routes count as
    /// customer-learned: the origin buys transit from the PoP provider.
    pub learned_from: NeighborKind,
    /// Action communities attached by the origin. Only set on direct
    /// routes (`from_neighbor == None`); the PoP provider honors them on
    /// export and strips them (first-hop semantics).
    pub communities: CommunityBits,
}

impl Route {
    /// AS-path length used by BGP's tiebreak (hop count as received).
    pub fn path_len(&self) -> usize {
        self.path_len as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use trackdown_topology::{AsPath, Asn};

    #[test]
    fn prefix_contains_and_addr() {
        let p = Prefix::new([10, 0, 0, 0], 8);
        assert!(p.contains(u32::from_be_bytes([10, 255, 1, 2])));
        assert!(!p.contains(u32::from_be_bytes([11, 0, 0, 0])));
        assert_eq!(p.size(), 1 << 24);
        let a = p.addr(300);
        assert!(p.contains(a));
    }

    #[test]
    fn prefix_extreme_lengths() {
        let host = Prefix::new([192, 0, 2, 1], 32);
        assert_eq!(host.size(), 1);
        assert!(host.contains(u32::from_be_bytes([192, 0, 2, 1])));
        assert!(!host.contains(u32::from_be_bytes([192, 0, 2, 2])));
        let all = Prefix::new([0, 0, 0, 0], 0);
        assert!(all.contains(u32::MAX));
        assert_eq!(all.mask(), 0);
    }

    #[test]
    #[should_panic(expected = "host bits")]
    fn prefix_rejects_host_bits() {
        let _ = Prefix::new([10, 0, 0, 1], 8);
    }

    #[test]
    fn prefix_display() {
        assert_eq!(
            Prefix::new([184, 164, 224, 0], 24).to_string(),
            "184.164.224.0/24"
        );
    }

    #[test]
    fn route_path_len_counts_prepends() {
        let mut arena = crate::arena::PathArena::new();
        let id = arena.intern_path(&AsPath::from_origin(Asn(1)).prepended_by_times(Asn(1), 4));
        let r = Route {
            path_id: id,
            path_len: arena.len(id) as u32,
            ingress: LinkId(0),
            from_neighbor: None,
            local_pref: 300,
            learned_from: NeighborKind::Customer,
            communities: CommunityBits::EMPTY,
        };
        assert_eq!(r.path_len(), 5);
    }
}
