//! # trackdown-bgp
//!
//! Deterministic AS-level BGP route propagation for the *trackdown* stack.
//!
//! The paper's techniques work entirely through standard BGP semantics:
//! Gao-Rexford LocalPref by relationship, the AS-path-length tiebreak that
//! prepending manipulates, and the loop-prevention check that poisoning
//! exploits. This crate implements exactly those semantics over a
//! [`trackdown_topology::Topology`], plus the real-world deviations the
//! paper calls out (policy violators, disabled loop prevention, tier-1
//! route-leak filtering).
//!
//! The origin network (PEERING's stand-in) is a virtual node with multiple
//! peering links; each announcement configuration injects per-link
//! AS-paths — plain, prepended, or poisoned — into the PoP providers and
//! propagates to a fixpoint. The resulting [`engine::RoutingOutcome`]
//! yields control-plane and data-plane [`catchment::Catchments`].
//!
//! ```
//! use trackdown_topology::gen::{generate, TopologyConfig};
//! use trackdown_bgp::{BgpEngine, EngineConfig, OriginAs, LinkAnnouncement};
//!
//! let g = generate(&TopologyConfig::small(1));
//! let origin = OriginAs::peering_style(&g, 3);
//! let engine = BgpEngine::new(&g.topology, &EngineConfig::default());
//! let anns: Vec<_> = origin.link_ids().map(LinkAnnouncement::plain).collect();
//! let out = engine.propagate_config(&origin, &anns, 200).unwrap();
//! assert!(out.converged);
//! assert!(out.reachable_count() > 0);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod arena;
pub mod catchment;
pub mod community;
pub mod delta;
pub mod engine;
pub mod origin;
pub mod policy;
pub mod route;

pub use arena::{PathArena, PathId, PathStore};
pub use catchment::{Catchments, ShardCatchments};
pub use community::{Community, CommunityBits, CommunitySet};
pub use delta::{diff_injections, PropagationRanks};
pub use engine::{
    BgpEngine, CampaignSession, EngineConfig, ForwardingPath, ForwardingWalker, RouteChange,
    RoutingOutcome, SnapshotDetail,
};
pub use origin::{Injection, LinkAnnouncement, OriginAs, OriginError, PeeringLink};
pub use policy::{
    ComplianceFlags, DeploymentBias, ExtensionConfig, ExtensionDeployment, PolicyConfig,
    PolicyExtension, PolicyTable,
};
pub use route::{LinkId, Prefix, Route};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use trackdown_topology::gen::{generate, TopologyConfig};
    use trackdown_topology::Asn;

    /// (link, provider-neighbor) poisoning pairs, mirroring the schedule
    /// generator's targeting strategy without depending on trackdown-core.
    fn poison_pairs(topo: &trackdown_topology::Topology, origin: &OriginAs) -> Vec<(LinkId, Asn)> {
        let providers: Vec<Asn> = origin.links.iter().map(|l| l.provider).collect();
        let mut out = Vec::new();
        for link in &origin.links {
            let Some(p) = topo.index_of(link.provider) else {
                continue;
            };
            for &(n, _) in topo.neighbors(p) {
                let asn = topo.asn_of(n);
                if asn != origin.asn && !providers.contains(&asn) {
                    out.push((link.id, asn));
                }
            }
        }
        out
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        // Catchments partition the reachable ASes for arbitrary seeds and
        // announcement subsets.
        #[test]
        fn catchments_partition_reachable_ases(
            topo_seed in 0u64..50,
            policy_seed in 0u64..50,
            subset_mask in 1u8..15, // non-empty proper subset of 4 links
        ) {
            let g = generate(&TopologyConfig::small(topo_seed));
            let origin = OriginAs::peering_style(&g, 4);
            let cfg = EngineConfig {
                policy: PolicyConfig {
                    seed: policy_seed,
                    ..PolicyConfig::default()
                },
                ..EngineConfig::default()
            };
            let engine = BgpEngine::new(&g.topology, &cfg);
            let anns: Vec<LinkAnnouncement> = origin
                .link_ids()
                .filter(|l| subset_mask & (1 << l.0) != 0)
                .map(LinkAnnouncement::plain)
                .collect();
            let out = engine.propagate_config(&origin, &anns, 200).unwrap();
            prop_assert!(out.converged);
            let c = Catchments::from_control_plane(&out);
            let member_total: usize =
                c.active_links().iter().map(|&l| c.members(l).count()).sum();
            prop_assert_eq!(member_total, out.reachable_count());
            // Only announced links can attract traffic.
            for l in c.active_links() {
                prop_assert!(anns.iter().any(|a| a.link == l));
            }
        }

        // Every best route's AS-path terminates at the origin AS.
        #[test]
        fn best_paths_originate_at_origin(topo_seed in 0u64..30) {
            let g = generate(&TopologyConfig::small(topo_seed));
            let origin = OriginAs::peering_style(&g, 3);
            let cfg = EngineConfig {
                policy: PolicyConfig {
                    seed: 3,
                    violator_fraction: 0.0,
                    no_loop_prevention_fraction: 0.0,
                    tier1_poison_filtering: true,
                    extensions: Default::default(),
                },
                ..EngineConfig::default()
            };
            let engine = BgpEngine::new(&g.topology, &cfg);
            let anns: Vec<_> = origin.link_ids().map(LinkAnnouncement::plain).collect();
            let out = engine
                .propagate_config_detailed(&origin, &anns, 200, SnapshotDetail::Full)
                .unwrap();
            for b in out.best.iter().flatten() {
                prop_assert_eq!(out.path_of(b).origin(), Some(origin.asn));
            }
        }

        // Anycasting from every link reaches the entire topology when
        // policies are clean (full-coverage baseline of §IV-d).
        #[test]
        fn clean_anycast_reaches_all(topo_seed in 0u64..30) {
            let g = generate(&TopologyConfig::small(topo_seed));
            let origin = OriginAs::peering_style(&g, 4);
            let cfg = EngineConfig {
                policy: PolicyConfig {
                    seed: 11,
                    violator_fraction: 0.0,
                    no_loop_prevention_fraction: 0.0,
                    tier1_poison_filtering: false,
                    extensions: Default::default(),
                },
                ..EngineConfig::default()
            };
            let engine = BgpEngine::new(&g.topology, &cfg);
            let anns: Vec<_> = origin.link_ids().map(LinkAnnouncement::plain).collect();
            let out = engine.propagate_config(&origin, &anns, 200).unwrap();
            prop_assert_eq!(out.reachable_count(), g.topology.num_ases());
        }

        // Prepending changes who uses each link, never overall reachability
        // (§III-A-b: it only flips length-based ties).
        #[test]
        fn prepending_preserves_reachability(topo_seed in 0u64..20) {
            let g = generate(&TopologyConfig::small(topo_seed));
            let origin = OriginAs::peering_style(&g, 3);
            let engine = BgpEngine::new(&g.topology, &EngineConfig::default());
            let plain: Vec<_> = origin.link_ids().map(LinkAnnouncement::plain).collect();
            let prepended: Vec<_> = origin
                .link_ids()
                .map(|l| LinkAnnouncement {
                    link: l,
                    prepend: l.0 == 0,
                    poisons: vec![],
                    communities: Default::default(),
                })
                .collect();
            let a = engine.propagate_config(&origin, &plain, 200).unwrap();
            let b = engine.propagate_config(&origin, &prepended, 200).unwrap();
            prop_assert_eq!(a.reachable_count(), b.reachable_count());
        }

        // With clean policies, prepending at a link never *grows* that
        // link's catchment: every AS that still picks it would have picked
        // it unprepended too (the prepended route loses every comparison
        // it previously tied or won on length).
        #[test]
        fn prepending_never_grows_the_prepended_catchment(topo_seed in 0u64..20) {
            let g = generate(&TopologyConfig::small(topo_seed));
            let origin = OriginAs::peering_style(&g, 3);
            let cfg = EngineConfig {
                policy: PolicyConfig {
                    seed: 5,
                    violator_fraction: 0.0,
                    no_loop_prevention_fraction: 0.0,
                    tier1_poison_filtering: false,
                    extensions: Default::default(),
                },
                ..EngineConfig::default()
            };
            let engine = BgpEngine::new(&g.topology, &cfg);
            let plain: Vec<_> = origin.link_ids().map(LinkAnnouncement::plain).collect();
            let base = engine.propagate_config(&origin, &plain, 200).unwrap();
            for target in origin.link_ids() {
                let anns: Vec<LinkAnnouncement> = origin
                    .link_ids()
                    .map(|l| {
                        if l == target {
                            LinkAnnouncement::prepended(l)
                        } else {
                            LinkAnnouncement::plain(l)
                        }
                    })
                    .collect();
                let out = engine.propagate_config(&origin, &anns, 200).unwrap();
                let before = Catchments::from_control_plane(&base);
                let after = Catchments::from_control_plane(&out);
                prop_assert!(
                    after.members(target).count() <= before.members(target).count(),
                    "link {target} grew under prepending"
                );
            }
        }

        // A poisoned AS (loop prevention on) never installs a route whose
        // path contains itself, and never transits the prefix for others.
        #[test]
        fn poisoned_as_never_uses_or_transits_the_poison(topo_seed in 0u64..20) {
            let g = generate(&TopologyConfig::small(topo_seed));
            let origin = OriginAs::peering_style(&g, 3);
            let cfg = EngineConfig {
                policy: PolicyConfig {
                    seed: 9,
                    violator_fraction: 0.0,
                    no_loop_prevention_fraction: 0.0,
                    tier1_poison_filtering: false,
                    extensions: Default::default(),
                },
                ..EngineConfig::default()
            };
            let engine = BgpEngine::new(&g.topology, &cfg);
            let targets = poison_pairs(&g.topology, &origin);
            for t in targets.iter().take(5) {
                let anns: Vec<LinkAnnouncement> = origin
                    .link_ids()
                    .map(|l| {
                        if l == t.0 {
                            LinkAnnouncement::poisoned(l, vec![t.1])
                        } else {
                            LinkAnnouncement::plain(l)
                        }
                    })
                    .collect();
                let out = engine
                    .propagate_config_detailed(&origin, &anns, 200, SnapshotDetail::Full)
                    .unwrap();
                let ti = g.topology.index_of(t.1).unwrap();
                // The poisoned AS's own best route never carries the poison.
                if let Some(r) = &out.best[ti.us()] {
                    prop_assert!(!out.path_of(r).poisons_of(origin.asn).contains(&t.1));
                }
                // And no AS's best path transits the poisoned AS on the
                // poisoned link (it could not have exported it).
                for b in out.best.iter().flatten() {
                    if b.ingress == t.0 && b.from_neighbor.is_some() {
                        let path = out.path_of(b);
                        let through: Vec<_> = path.distinct();
                        let poisoned_hop = through.contains(&t.1);
                        // The sandwich itself contains the poison ASN, so
                        // only count it when the poisoned AS appears as a
                        // genuine forwarding hop (adjacent repetition-free
                        // occurrence outside the sandwich).
                        if poisoned_hop {
                            prop_assert!(
                                path.poisons_of(origin.asn).contains(&t.1),
                                "AS path transits poisoned {} on link {}",
                                t.1,
                                t.0
                            );
                        }
                    }
                }
            }
        }

        // A PoP provider hears the origin directly as a 1-hop customer
        // route, which beats anything a neighbor can offer.
        #[test]
        fn pop_provider_uses_own_link(topo_seed in 0u64..20) {
            let g = generate(&TopologyConfig::small(topo_seed));
            let origin = OriginAs::peering_style(&g, 3);
            let cfg = EngineConfig {
                policy: PolicyConfig {
                    seed: 5,
                    violator_fraction: 0.0,
                    no_loop_prevention_fraction: 0.0,
                    tier1_poison_filtering: false,
                    extensions: Default::default(),
                },
                ..EngineConfig::default()
            };
            let engine = BgpEngine::new(&g.topology, &cfg);
            let anns: Vec<_> = origin.link_ids().map(LinkAnnouncement::plain).collect();
            let out = engine.propagate_config(&origin, &anns, 200).unwrap();
            for link in &origin.links {
                let p = g.topology.index_of(link.provider).unwrap();
                prop_assert_eq!(out.catchment(p), Some(link.id));
            }
        }
    }
}
