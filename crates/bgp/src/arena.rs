//! Interned AS-path arena: a parent-pointer tree that stores every path
//! seen during one propagation run exactly once.
//!
//! BGP path propagation is structurally incremental — every exported path
//! is the received path with the exporter's ASN prepended — so the set of
//! paths alive in a fixpoint computation forms a tree rooted at the
//! injected origination paths. Storing that tree as an append-only arena
//! of `(asn, parent, len)` nodes makes prepending an O(prepends) push
//! instead of a `Vec` clone, shrinks [`crate::Route`] to a copyable
//! handle, and lets path predicates (loop checks, poison filters) walk
//! parent pointers without materializing a `Vec<Asn>`.
//!
//! Interning is *canonical*: [`PathArena::push`] returns the same
//! [`PathId`] for the same `(parent, asn)` pair, so — by induction from
//! the shared root — two paths have equal content if and only if they
//! have equal ids **within one arena**. Route equality therefore remains
//! exact content equality, which is what keeps arena-backed propagation
//! bit-identical to the materialized-path oracle. Ids are meaningless
//! across arenas; comparisons that span two engines or two sessions must
//! materialize first (see [`crate::RoutingOutcome::path_of`]).

use std::collections::HashMap;
use std::sync::Arc;
use trackdown_topology::{AsPath, Asn};

/// Handle to an interned AS-path in a [`PathArena`] / [`PathStore`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PathId(u32);

impl PathId {
    /// The empty path (no ASes). Parent of every origination path.
    pub const EMPTY: PathId = PathId(u32::MAX);

    /// True for [`PathId::EMPTY`].
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == u32::MAX
    }
}

/// One node of the parent-pointer path tree.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct PathNode {
    asn: Asn,
    parent: PathId,
    len: u32,
}

/// Iterator over a path's ASes, most-recent forwarder first, origin last —
/// the same order as [`AsPath::as_slice`].
#[derive(Debug, Clone)]
pub struct PathIter<'a> {
    nodes: &'a [PathNode],
    cur: PathId,
}

impl Iterator for PathIter<'_> {
    type Item = Asn;

    #[inline]
    fn next(&mut self) -> Option<Asn> {
        if self.cur.is_empty() {
            return None;
        }
        let node = &self.nodes[self.cur.0 as usize];
        self.cur = node.parent;
        Some(node.asn)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let len = if self.cur.is_empty() {
            0
        } else {
            self.nodes[self.cur.0 as usize].len as usize
        };
        (len, Some(len))
    }
}

impl ExactSizeIterator for PathIter<'_> {}

#[inline]
fn iter_nodes(nodes: &[PathNode], id: PathId) -> PathIter<'_> {
    PathIter { nodes, cur: id }
}

#[inline]
fn materialize_nodes(nodes: &[PathNode], id: PathId) -> AsPath {
    iter_nodes(nodes, id).collect()
}

/// Append-only interned path storage for one propagation state.
///
/// Owned by the engine's simulation; snapshots that need path contents
/// copy the node table into an immutable [`PathStore`]
/// ([`crate::SnapshotDetail::Full`]).
#[derive(Debug, Default)]
pub struct PathArena {
    nodes: Vec<PathNode>,
    /// `(parent raw id, asn) -> node index`: the canonical-interning map.
    intern: HashMap<(u32, Asn), u32>,
}

impl PathArena {
    /// An empty arena.
    pub fn new() -> PathArena {
        PathArena::default()
    }

    /// Number of interned nodes (the arena's high-water statistic).
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Drop all paths but keep the allocated capacity of both the node
    /// table and the interning map, so the next run re-interns without
    /// heap allocation once a high-water mark is reached.
    ///
    /// Every outstanding [`PathId`] into this arena is invalidated; the
    /// caller must drop all routing state holding ids first (the engine
    /// only clears the arena inside `Simulation::clear`).
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.intern.clear();
    }

    /// Intern `parent` extended by one more recent hop `asn`.
    pub fn push(&mut self, parent: PathId, asn: Asn) -> PathId {
        match self.intern.get(&(parent.0, asn)) {
            Some(&idx) => PathId(idx),
            None => {
                let idx = u32::try_from(self.nodes.len()).expect("path arena overflow");
                assert!(idx != u32::MAX, "path arena overflow");
                let len = self.len(parent) as u32 + 1;
                self.nodes.push(PathNode { asn, parent, len });
                self.intern.insert((parent.0, asn), idx);
                PathId(idx)
            }
        }
    }

    /// Intern `parent` prepended by `asn` `times` times (BGP prepending).
    pub fn push_times(&mut self, parent: PathId, asn: Asn, times: usize) -> PathId {
        let mut id = parent;
        for _ in 0..times {
            id = self.push(id, asn);
        }
        id
    }

    /// Intern a materialized [`AsPath`] (origin-last slice order).
    pub fn intern_path(&mut self, path: &AsPath) -> PathId {
        let mut id = PathId::EMPTY;
        for &asn in path.as_slice().iter().rev() {
            id = self.push(id, asn);
        }
        id
    }

    /// Hop count of the path (counting prepend repetitions).
    #[inline]
    pub fn len(&self, id: PathId) -> usize {
        if id.is_empty() {
            0
        } else {
            self.nodes[id.0 as usize].len as usize
        }
    }

    /// True if `asn` appears anywhere on the path (the loop-prevention /
    /// poison predicate), evaluated by a parent walk without materializing.
    #[inline]
    pub fn contains(&self, id: PathId, asn: Asn) -> bool {
        self.iter(id).any(|a| a == asn)
    }

    /// Walk the path most-recent-first (matching [`AsPath::as_slice`]).
    #[inline]
    pub fn iter(&self, id: PathId) -> PathIter<'_> {
        iter_nodes(&self.nodes, id)
    }

    /// Materialize the path as an owned [`AsPath`].
    pub fn materialize(&self, id: PathId) -> AsPath {
        materialize_nodes(&self.nodes, id)
    }

    /// Copy the node table into an immutable, shareable [`PathStore`]
    /// (detached from this arena: later pushes or clears don't affect it).
    pub fn store(&self) -> PathStore {
        PathStore {
            nodes: Arc::from(self.nodes.as_slice()),
        }
    }

    /// Merge another arena's snapshot into this one through the canonical
    /// interning map, returning the id remap table: `remap[i]` is this
    /// arena's id for the path that ended at node `i` of `store`.
    ///
    /// Nodes are re-interned parent-first in one pass (a store's parent
    /// ids always precede their children, because the source arena was
    /// append-only), so the merge is O(nodes) with no path
    /// materialization. Shared prefixes collapse onto existing nodes —
    /// this is how per-shard arenas fold into one bounded canonical
    /// arena: the merged node count is the size of the *union* path tree,
    /// never the sum of the inputs.
    pub fn absorb_store(&mut self, store: &PathStore) -> Vec<PathId> {
        let _span = trackdown_obs::span("arena.absorb").attr("nodes", store.nodes.len() as u64);
        let mut remap: Vec<PathId> = Vec::with_capacity(store.nodes.len());
        for node in store.nodes.iter() {
            let parent = if node.parent.is_empty() {
                PathId::EMPTY
            } else {
                remap[node.parent.0 as usize]
            };
            remap.push(self.push(parent, node.asn));
        }
        remap
    }

    /// Rooted merge: re-intern only the nodes on the ancestor chains of
    /// `roots` (ids valid for `src`), skipping everything `src` interned
    /// that no root references — candidate offers that never became best,
    /// transient paths, and so on. Duplicate and [`PathId::EMPTY`] roots
    /// are fine.
    ///
    /// Returns the remap table: `remap[i]` is this arena's id for source
    /// node `i` when that node was absorbed, [`PathId::EMPTY`] otherwise.
    ///
    /// Like [`PathArena::absorb_store`] this is O(source nodes) with no
    /// materialization: one backward pass closes the ancestor marks
    /// (parents always precede children in an append-only arena), one
    /// forward pass re-interns the marked nodes parent-first.
    pub fn absorb_rooted(&mut self, src: &PathArena, roots: &[PathId]) -> Vec<PathId> {
        let _span = trackdown_obs::span("arena.absorb")
            .attr("nodes", src.nodes.len() as u64)
            .attr("roots", roots.len() as u64);
        let mut marked = vec![false; src.nodes.len()];
        for r in roots {
            if !r.is_empty() {
                marked[r.0 as usize] = true;
            }
        }
        for i in (0..src.nodes.len()).rev() {
            if marked[i] && !src.nodes[i].parent.is_empty() {
                marked[src.nodes[i].parent.0 as usize] = true;
            }
        }
        let mut remap: Vec<PathId> = vec![PathId::EMPTY; src.nodes.len()];
        for (i, node) in src.nodes.iter().enumerate() {
            if !marked[i] {
                continue;
            }
            let parent = if node.parent.is_empty() {
                PathId::EMPTY
            } else {
                remap[node.parent.0 as usize]
            };
            remap[i] = self.push(parent, node.asn);
        }
        remap
    }

    /// Incremental rooted merge for *repeated* absorption from a source
    /// arena that only grows between calls. Semantically each call is
    /// [`PathArena::absorb_rooted`] for the new roots, but the remap
    /// table persists across calls in `remap` (`remap[i]` is this
    /// arena's id for source node `i`, [`PathId::EMPTY`] = not yet
    /// absorbed), so a root whose ancestor chain was already interned
    /// costs one table lookup instead of a full source scan. Total cost
    /// over a campaign is O(union tree + Σ roots) rather than
    /// O(epochs × source nodes).
    ///
    /// The cache keys on source node ids, so it is only valid while
    /// `src` is append-only: after the source arena is cleared or
    /// truncated (an event-cap cold restart), the caller must
    /// `remap.clear()` before the next call or stale ids will alias.
    pub fn absorb_rooted_cached(
        &mut self,
        src: &PathArena,
        roots: &[PathId],
        remap: &mut Vec<PathId>,
    ) {
        let _span = trackdown_obs::span("arena.absorb")
            .attr("nodes", src.nodes.len() as u64)
            .attr("roots", roots.len() as u64);
        remap.resize(src.nodes.len(), PathId::EMPTY);
        // Scratch for the not-yet-absorbed suffix of one ancestor chain,
        // reused across roots.
        let mut chain: Vec<u32> = Vec::new();
        for &root in roots {
            let mut cur = root;
            while !cur.is_empty() && remap[cur.0 as usize].is_empty() {
                chain.push(cur.0);
                cur = src.nodes[cur.0 as usize].parent;
            }
            // Intern parent-first so each child sees its parent's
            // canonical id.
            for &i in chain.iter().rev() {
                let parent = src.nodes[i as usize].parent;
                let parent = if parent.is_empty() {
                    PathId::EMPTY
                } else {
                    remap[parent.0 as usize]
                };
                remap[i as usize] = self.push(parent, src.nodes[i as usize].asn);
            }
            chain.clear();
        }
    }
}

/// An immutable snapshot of a [`PathArena`]'s node table, carried by
/// [`crate::RoutingOutcome`] so routes can be materialized after the
/// engine's mutable state has moved on (or been cleared).
///
/// The default store is empty: outcomes captured at
/// [`crate::SnapshotDetail::Catchments`] detail don't pay for the copy,
/// and materializing a route from one panics.
#[derive(Debug, Clone, Default)]
pub struct PathStore {
    nodes: Arc<[PathNode]>,
}

impl PathStore {
    /// Walk the path most-recent-first.
    ///
    /// # Panics
    /// Panics if the store is empty (snapshot captured without
    /// [`crate::SnapshotDetail::Full`]) or `id` belongs to another arena.
    #[inline]
    pub fn iter(&self, id: PathId) -> PathIter<'_> {
        assert!(
            id.is_empty() || (id.0 as usize) < self.nodes.len(),
            "path id not in this store — was the outcome captured with SnapshotDetail::Full?"
        );
        iter_nodes(&self.nodes, id)
    }

    /// Materialize the path as an owned [`AsPath`]. Same panics as
    /// [`PathStore::iter`].
    pub fn materialize(&self, id: PathId) -> AsPath {
        self.iter(id).collect()
    }

    /// Number of path nodes in the snapshot.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when this store carries no nodes (Catchments-detail snapshot).
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_path() {
        let arena = PathArena::new();
        assert_eq!(arena.len(PathId::EMPTY), 0);
        assert!(!arena.contains(PathId::EMPTY, Asn(1)));
        assert_eq!(arena.materialize(PathId::EMPTY), AsPath::empty());
        assert_eq!(arena.iter(PathId::EMPTY).count(), 0);
    }

    #[test]
    fn intern_roundtrip_matches_slice_order() {
        let mut arena = PathArena::new();
        let path = AsPath::from_sequence([Asn(3), Asn(2), Asn(1)]);
        let id = arena.intern_path(&path);
        assert_eq!(arena.len(id), 3);
        assert_eq!(arena.materialize(id), path);
        let walked: Vec<Asn> = arena.iter(id).collect();
        assert_eq!(walked, path.as_slice());
    }

    #[test]
    fn interning_is_canonical() {
        let mut arena = PathArena::new();
        let path = AsPath::from_sequence([Asn(3), Asn(2), Asn(1)]);
        let a = arena.intern_path(&path);
        let b = arena.intern_path(&path);
        assert_eq!(a, b);
        // Rebuilding the same path hop by hop lands on the same id.
        let base = arena.intern_path(&AsPath::from_sequence([Asn(2), Asn(1)]));
        assert_eq!(arena.push(base, Asn(3)), a);
        // A different extension gets a different id.
        assert_ne!(arena.push(base, Asn(9)), a);
    }

    #[test]
    fn push_times_prepends() {
        let mut arena = PathArena::new();
        let origin = arena.push(PathId::EMPTY, Asn(1));
        let id = arena.push_times(origin, Asn(7), 3);
        assert_eq!(arena.len(id), 4);
        assert_eq!(
            arena.materialize(id),
            AsPath::from_origin(Asn(1)).prepended_by_times(Asn(7), 3)
        );
        assert!(arena.contains(id, Asn(7)));
        assert!(arena.contains(id, Asn(1)));
        assert!(!arena.contains(id, Asn(2)));
    }

    #[test]
    fn poison_sandwich_survives_interning() {
        let mut arena = PathArena::new();
        let path = AsPath::poisoned_origin(Asn(47065), &[Asn(10), Asn(20)]);
        let id = arena.intern_path(&path);
        let m = arena.materialize(id);
        assert_eq!(m, path);
        assert_eq!(m.poisons_of(Asn(47065)), vec![Asn(10), Asn(20)]);
    }

    #[test]
    fn clear_resets_but_keeps_determinism() {
        let mut arena = PathArena::new();
        let path = AsPath::from_sequence([Asn(5), Asn(4)]);
        let before = arena.intern_path(&path);
        let nodes_before = arena.num_nodes();
        arena.clear();
        assert_eq!(arena.num_nodes(), 0);
        // Identical operation sequences after a clear produce identical ids.
        let after = arena.intern_path(&path);
        assert_eq!(before, after);
        assert_eq!(arena.num_nodes(), nodes_before);
    }

    #[test]
    fn store_outlives_arena_mutation() {
        let mut arena = PathArena::new();
        let path = AsPath::from_sequence([Asn(3), Asn(2), Asn(1)]);
        let id = arena.intern_path(&path);
        let store = arena.store();
        arena.clear();
        arena.intern_path(&AsPath::from_origin(Asn(99)));
        assert_eq!(store.materialize(id), path);
        let walked: Vec<Asn> = store.iter(id).collect();
        assert_eq!(walked, path.as_slice());
    }

    #[test]
    fn absorb_store_preserves_paths_and_dedups_prefixes() {
        // Two independent arenas with overlapping path trees, as two
        // shard workers would build during one campaign.
        let paths_a = [
            AsPath::from_sequence([Asn(4), Asn(3), Asn(1)]),
            AsPath::from_sequence([Asn(5), Asn(3), Asn(1)]),
        ];
        let paths_b = [
            AsPath::from_sequence([Asn(4), Asn(3), Asn(1)]), // shared with a
            AsPath::from_sequence([Asn(9), Asn(1)]),
        ];
        let mut a = PathArena::new();
        let ids_a: Vec<PathId> = paths_a.iter().map(|p| a.intern_path(p)).collect();
        let mut b = PathArena::new();
        let ids_b: Vec<PathId> = paths_b.iter().map(|p| b.intern_path(p)).collect();
        let (na, nb) = (a.num_nodes(), b.num_nodes());

        let mut merged = PathArena::new();
        let remap_a = merged.absorb_store(&a.store());
        let remap_b = merged.absorb_store(&b.store());
        // Every absorbed path materializes identically under its remapped id.
        for (p, id) in paths_a.iter().zip(&ids_a) {
            assert_eq!(&merged.materialize(remap_a[id.0 as usize]), p);
        }
        for (p, id) in paths_b.iter().zip(&ids_b) {
            assert_eq!(&merged.materialize(remap_b[id.0 as usize]), p);
        }
        // Canonical interning: the shared path lands on one id, and the
        // merged arena holds the union tree, strictly smaller than the sum.
        assert_eq!(
            remap_a[ids_a[0].0 as usize], remap_b[ids_b[0].0 as usize],
            "shared path must collapse to one canonical id"
        );
        assert!(merged.num_nodes() < na + nb);
        // Union tree: 1, 1-3, 1-3-4, 1-3-5, 1-9.
        assert_eq!(merged.num_nodes(), 5);
    }

    #[test]
    fn absorb_into_nonempty_arena_is_canonical() {
        let mut live = PathArena::new();
        let shared = AsPath::from_sequence([Asn(2), Asn(1)]);
        let live_id = live.intern_path(&shared);
        let mut other = PathArena::new();
        let other_id = other.intern_path(&shared);
        let fresh = other.intern_path(&AsPath::from_sequence([Asn(7), Asn(2), Asn(1)]));
        let remap = live.absorb_store(&other.store());
        assert_eq!(remap[other_id.0 as usize], live_id);
        assert_eq!(
            live.materialize(remap[fresh.0 as usize]),
            AsPath::from_sequence([Asn(7), Asn(2), Asn(1)])
        );
        assert_eq!(live.num_nodes(), 3);
    }

    #[test]
    fn absorb_rooted_skips_unreferenced_subtrees() {
        let mut src = PathArena::new();
        let kept_a = src.intern_path(&AsPath::from_sequence([Asn(4), Asn(3), Asn(1)]));
        let kept_b = src.intern_path(&AsPath::from_sequence([Asn(5), Asn(3), Asn(1)]));
        // Candidate-only subtree no best route references.
        let dropped = src.intern_path(&AsPath::from_sequence([Asn(9), Asn(8), Asn(7)]));

        let mut merged = PathArena::new();
        let remap = merged.absorb_rooted(&src, &[kept_a, kept_b, PathId::EMPTY, kept_a]);
        assert_eq!(
            merged.materialize(remap[kept_a.0 as usize]),
            AsPath::from_sequence([Asn(4), Asn(3), Asn(1)])
        );
        assert_eq!(
            merged.materialize(remap[kept_b.0 as usize]),
            AsPath::from_sequence([Asn(5), Asn(3), Asn(1)])
        );
        // Only the rooted union tree was absorbed: 1, 1-3, 1-3-4, 1-3-5.
        assert_eq!(merged.num_nodes(), 4);
        assert_eq!(remap[dropped.0 as usize], PathId::EMPTY);
        // Rooted absorb composes canonically with a full absorb.
        let full = merged.absorb_store(&src.store());
        assert_eq!(full[kept_a.0 as usize], remap[kept_a.0 as usize]);
        assert_eq!(merged.num_nodes(), src.num_nodes());
    }

    #[test]
    fn absorb_rooted_cached_matches_one_shot_and_reuses_the_cache() {
        let mut src = PathArena::new();
        let a = src.intern_path(&AsPath::from_sequence([Asn(4), Asn(3), Asn(1)]));
        let b = src.intern_path(&AsPath::from_sequence([Asn(5), Asn(3), Asn(1)]));
        let _cand = src.intern_path(&AsPath::from_sequence([Asn(9), Asn(8), Asn(7)]));

        // Epoch 1: absorb `a`'s chain incrementally.
        let mut merged = PathArena::new();
        let mut cache = Vec::new();
        merged.absorb_rooted_cached(&src, &[a, PathId::EMPTY, a], &mut cache);
        assert_eq!(
            merged.materialize(cache[a.0 as usize]),
            AsPath::from_sequence([Asn(4), Asn(3), Asn(1)])
        );
        let after_first = merged.num_nodes();
        assert_eq!(after_first, 3);

        // Re-absorbing a cached root interns nothing new.
        merged.absorb_rooted_cached(&src, &[a], &mut cache);
        assert_eq!(merged.num_nodes(), after_first);

        // The source grows append-only; the next epoch only pays for the
        // suffix of `d`'s chain below the cached 1-3 prefix, plus `b`.
        let d = src.intern_path(&AsPath::from_sequence([Asn(6), Asn(4), Asn(3), Asn(1)]));
        merged.absorb_rooted_cached(&src, &[b, d], &mut cache);
        assert_eq!(
            merged.materialize(cache[d.0 as usize]),
            AsPath::from_sequence([Asn(6), Asn(4), Asn(3), Asn(1)])
        );

        // The incremental result is exactly the one-shot rooted absorb
        // of the same root set: same union tree, candidate excluded.
        let mut oneshot = PathArena::new();
        let remap = oneshot.absorb_rooted(&src, &[a, b, d]);
        assert_eq!(merged.num_nodes(), oneshot.num_nodes());
        assert_eq!(
            oneshot.materialize(remap[b.0 as usize]),
            merged.materialize(cache[b.0 as usize])
        );
    }

    #[test]
    #[should_panic(expected = "SnapshotDetail::Full")]
    fn empty_store_panics_on_materialize() {
        let mut arena = PathArena::new();
        let id = arena.intern_path(&AsPath::from_origin(Asn(1)));
        let empty = PathStore::default();
        let _ = empty.materialize(id);
    }
}
