//! `trackdown` — command-line interface for the spoofed-source
//! localization stack.
//!
//! ```text
//! trackdown topology  [--scale S] [--seed N] [--out FILE]   # export as-rel
//! trackdown campaign  [--scale S] [--seed N] [--measured] [--cold] [--shards N] --out FILE
//!                     [--metrics-out FILE] [--metrics-deterministic]
//! trackdown info      --dataset FILE
//! trackdown localize  --dataset FILE --attacker ASN [--attacker ASN ...]
//! trackdown hijack    --dataset FILE [--config K]
//! trackdown bench-snapshot [--out FILE]      # fixed small campaign -> BENCH_pipeline.json
//! trackdown validate-manifest --manifest FILE
//! trackdown profile   [campaign options] [--trace-out FILE]   # traced run -> Chrome JSON + table
//! trackdown perf-report [--baseline FILE] [--current FILE] [--tolerance PCT] [--report-only]
//! ```

use std::collections::BTreeSet;
use std::fs;
use std::process::ExitCode;
use std::sync::atomic::{AtomicU64, Ordering};
use trackdown_core::dataset::Dataset;
use trackdown_core::hijack::all_impacts;
use trackdown_core::localize::Campaign;
use trackdown_core::report::render_table;
use trackdown_experiments::{parse_defense, parse_sketch, report_stats, Options, Scale, Scenario};
use trackdown_topology::serfmt::{to_as_rel, to_dot};
use trackdown_topology::Asn;

/// Allocation-counting wrapper around the system allocator, used by
/// `bench-snapshot` to report heap allocations per warm epoch. Counting
/// lives in this binary only; the library crates stay allocator-agnostic.
struct CountingAlloc;

static ALLOC_COUNT: AtomicU64 = AtomicU64::new(0);

// SAFETY: delegates every operation to `std::alloc::System` unchanged;
// the counter is a relaxed atomic with no allocation of its own.
unsafe impl std::alloc::GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: std::alloc::Layout) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        unsafe { std::alloc::System.alloc(layout) }
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: std::alloc::Layout) {
        unsafe { std::alloc::System.dealloc(ptr, layout) }
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: std::alloc::Layout, new_size: usize) -> *mut u8 {
        ALLOC_COUNT.fetch_add(1, Ordering::Relaxed);
        unsafe { std::alloc::System.realloc(ptr, layout, new_size) }
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

/// Heap allocations since process start (monotone; relaxed ordering is
/// enough for the single-threaded bench sections that read it).
fn allocations() -> u64 {
    ALLOC_COUNT.load(Ordering::Relaxed)
}

fn usage() -> ExitCode {
    eprintln!(
        "trackdown — BGP-steered localization of spoofed-traffic sources

USAGE:
  trackdown topology  [--scale small|medium|full|large|internet] [--seed N] [--format as-rel|dot] [--out FILE]
  trackdown campaign  [--scale small|medium|full|large|internet] [--seed N] [--measured] [--cold]
                      [--delta] [--shards N|auto] [--threads N] --out FILE [--metrics-out FILE]
                      [--metrics-deterministic] [--defense NAME=FRACTION[:BIAS]]...
  trackdown info      --dataset FILE
  trackdown localize  --dataset FILE --attacker ASN [--attacker ASN ...] [--volume BYTES]
                      [--sketch WIDTHxDEPTH]
  trackdown hijack    --dataset FILE [--config K]
  trackdown bench-snapshot [--out FILE]
  trackdown validate-manifest --manifest FILE
  trackdown profile   [--scale S] [--seed N] [--measured] [--cold] [--delta] [--shards N|auto]
                      [--threads N] [--trace-out FILE]
  trackdown perf-report [--baseline FILE] [--current FILE] [--tolerance PCT]
                      [--report-only] [--out FILE]

--defense deploys a routing-security policy extension (rov, peer-rov,
aspa, peerlock-lite, only-to-customers, enforce-first-as, edge-filter)
at the given fraction of ASes, tier-biased by BIAS (uniform|core|stub,
default core); repeat the flag to combine extensions. No --defense
flags reproduce the extension-free engine bit-for-bit.

localize --sketch streams the attack flows through a count-min sketch
of the given geometry instead of exact per-link counters and reports
the approximate suspect ranking with its worst-case error bound and
rank-stability verdict alongside the exact estimates.

The internet scale loads the CAIDA as-rel snapshot named by the
TRACKDOWN_AS_REL environment variable when set, and falls back to a
deterministic 80k-AS power-law graph otherwise. --shards auto (the
default) tunes the extraction shard count from threads and topology.

profile runs one traced campaign, writes a Chrome trace-event JSON
(load it at https://ui.perfetto.dev) and prints a self-profile table.
perf-report diffs two BENCH_pipeline.json snapshots (omitting
--current benches a fresh one) and fails on metric regressions
beyond the tolerance unless --report-only is set.

Set TRACKDOWN_SPANS=1 to stream span timings to stderr."
    );
    ExitCode::from(2)
}

/// Minimal flag parser: returns (flags with values, boolean flags).
struct Args {
    values: Vec<(String, String)>,
    flags: Vec<String>,
}

impl Args {
    fn parse(args: &[String]) -> Option<Args> {
        let mut values = Vec::new();
        let mut flags = Vec::new();
        let mut i = 0;
        while i < args.len() {
            let a = &args[i];
            if !a.starts_with("--") {
                return None;
            }
            match a.as_str() {
                "--measured"
                | "--cold"
                | "--delta"
                | "--metrics-deterministic"
                | "--report-only" => flags.push(a.clone()),
                _ => {
                    i += 1;
                    values.push((a.clone(), args.get(i)?.clone()));
                }
            }
            i += 1;
        }
        Some(Args { values, flags })
    }

    fn get(&self, key: &str) -> Option<&str> {
        self.values
            .iter()
            .rev()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }

    fn get_all(&self, key: &str) -> Vec<&str> {
        self.values
            .iter()
            .filter(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
            .collect()
    }

    fn has(&self, key: &str) -> bool {
        self.flags.iter().any(|f| f == key)
    }

    fn options(&self) -> Option<Options> {
        let mut opts = Options::default();
        if let Some(s) = self.get("--scale") {
            opts.scale = Scale::parse(s)?;
        }
        if let Some(s) = self.get("--seed") {
            opts.seed = s.parse().ok()?;
        }
        opts.measured = self.has("--measured");
        opts.cold = self.has("--cold");
        opts.delta = self.has("--delta");
        if let Some(s) = self.get("--shards") {
            opts.shards = match s {
                "auto" => 0,
                _ => s.parse().ok()?,
            };
        }
        if let Some(s) = self.get("--threads") {
            opts.threads = Some(s.parse().ok().filter(|&v| v >= 1)?);
        }
        opts.metrics_out = self.get("--metrics-out").map(str::to_string);
        opts.metrics_deterministic = self.has("--metrics-deterministic");
        for d in self.get_all("--defense") {
            opts.defenses.push(parse_defense(d)?);
        }
        if let Some(s) = self.get("--sketch") {
            opts.sketch = Some(parse_sketch(s)?);
        }
        Some(opts)
    }
}

fn cmd_topology(args: &Args) -> Result<(), String> {
    let opts = args.options().ok_or("bad options")?;
    let scenario = Scenario::build(opts);
    let text = match args.get("--format").unwrap_or("as-rel") {
        "as-rel" => to_as_rel(&scenario.gen.topology),
        "dot" => to_dot(&scenario.gen.topology),
        other => return Err(format!("unknown --format {other:?} (as-rel|dot)")),
    };
    println!(
        "generated {} ASes, {} links ({} tier-1, {} transit, {} stubs)",
        scenario.gen.topology.num_ases(),
        scenario.gen.topology.num_links(),
        scenario.gen.tier1s.len(),
        scenario.gen.large_transits.len() + scenario.gen.small_transits.len(),
        scenario.gen.stubs.len(),
    );
    match args.get("--out") {
        Some(path) => {
            fs::write(path, &text).map_err(|e| format!("write {path}: {e}"))?;
            println!("wrote {path}");
        }
        None => print!("{text}"),
    }
    Ok(())
}

fn cmd_campaign(args: &Args) -> Result<(), String> {
    let opts = args.options().ok_or("bad options")?;
    let out_path = args.get("--out").ok_or("campaign requires --out FILE")?;
    let scenario = Scenario::build(opts);
    scenario.announce();
    let campaign = scenario.run();
    report_stats(&campaign);
    let dataset = Dataset::from_campaign(&scenario.gen.topology, &scenario.origin, &campaign);
    let json = dataset.to_json().map_err(|e| e.to_string())?;
    fs::write(out_path, json).map_err(|e| format!("write {out_path}: {e}"))?;
    println!("wrote {out_path}");
    Ok(())
}

fn load_dataset(args: &Args) -> Result<Dataset, String> {
    let path = args.get("--dataset").ok_or("missing --dataset FILE")?;
    let text = fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    Dataset::from_json(&text).map_err(|e| e.to_string())
}

fn cmd_info(args: &Args) -> Result<(), String> {
    let ds = load_dataset(args)?;
    let clustering = ds.rebuild_clustering();
    println!("dataset version {}", ds.version);
    println!(
        "origin {} with {} peering links on prefix {}",
        ds.origin.asn,
        ds.origin.num_links(),
        ds.origin.prefix
    );
    println!(
        "{} sources ({} tracked), {} configurations",
        ds.asns.len(),
        ds.tracked.len(),
        ds.num_configs()
    );
    let diversity = ds.distinct_catchments_per_source();
    let min = diversity.iter().min().copied().unwrap_or(0);
    let mean: f64 = diversity.iter().sum::<usize>() as f64 / diversity.len().max(1) as f64;
    println!("route diversity per source: min {min}, mean {mean:.2}");
    println!(
        "clusters: {} (mean size {:.3}, {:.1}% singletons)",
        clustering.num_clusters(),
        clustering.mean_size(),
        clustering.singleton_fraction() * 100.0
    );
    Ok(())
}

fn cmd_localize(args: &Args) -> Result<(), String> {
    let ds = load_dataset(args)?;
    let attackers: Vec<Asn> = args
        .get_all("--attacker")
        .iter()
        .map(|s| s.parse::<Asn>().map_err(|e| e.to_string()))
        .collect::<Result<_, _>>()?;
    if attackers.is_empty() {
        return Err("localize requires at least one --attacker ASN".into());
    }
    let volume: u64 = args
        .get("--volume")
        .map(|v| v.parse().map_err(|_| "bad --volume"))
        .transpose()?
        .unwrap_or(1_000_000);
    // Per-AS volumes from the attacker list.
    let mut per_as = vec![0u64; ds.asns.len()];
    for a in &attackers {
        let idx = ds
            .asns
            .iter()
            .position(|x| x == a)
            .ok_or_else(|| format!("{a} not in dataset"))?;
        per_as[idx] += volume;
    }
    // Rebuild a campaign view for the localization API, then derive what
    // the honeypot would have seen per configuration at exactly the
    // attribution plane's width.
    let (clustering, attribution) = ds.rebuild_attribution();
    let campaign = Campaign {
        configs: ds.configs.clone(),
        catchments: ds.catchments.clone(),
        tracked: ds.tracked.clone(),
        clustering,
        attribution,
        records: Vec::new(),
        imputation: None,
        stats: trackdown_core::localize::CampaignStats::default(),
    };
    let link_volumes = trackdown_core::localize::link_volume_matrix(&campaign, &per_as);
    let estimates =
        trackdown_core::localize::estimate_cluster_volumes(&campaign, &link_volumes, 10);
    println!(
        "{} suspect cluster(s) naming {} AS(es):",
        estimates.len(),
        estimates.iter().map(|e| e.members.len()).sum::<usize>()
    );
    let rows: Vec<Vec<String>> = estimates
        .iter()
        .map(|e| {
            let members: Vec<String> = e
                .members
                .iter()
                .map(|&m| ds.asns[m.us()].to_string())
                .collect();
            vec![
                e.cluster.to_string(),
                e.lower.to_string(),
                e.upper.to_string(),
                members.join(" "),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(&["cluster", "vol lower", "vol upper", "members"], &rows)
    );
    // Report whether the true attackers are inside.
    let named: BTreeSet<Asn> = estimates
        .iter()
        .flat_map(|e| e.members.iter().map(|&m| ds.asns[m.us()]))
        .collect();
    for a in &attackers {
        println!(
            "{a}: {}",
            if named.contains(a) {
                "inside a suspect cluster"
            } else {
                "NOT localized (unreachable or untracked in this dataset)"
            }
        );
    }
    // Approximate path: stream the same attack as flows through a
    // count-min sketch and report the ranking with its error bound.
    if let Some((width, depth)) = args.options().and_then(|o| o.sketch) {
        use trackdown_traffic::{ingest_stream, DEFAULT_FLOW_BATCH};
        let flows: Vec<trackdown_traffic::Flow> = per_as
            .iter()
            .enumerate()
            .filter(|(_, &v)| v > 0)
            .map(|(i, &v)| trackdown_traffic::Flow {
                src_as: trackdown_topology::AsIndex(i as u32),
                claimed_ip: 0xCB00_7101,
                dst_ip: 0xCB00_7201,
                packets: v / 64,
                bytes: v,
                spoofed: true,
            })
            .collect();
        let mut sketch = trackdown_traffic::SketchAccumulator::new(
            campaign.catchments.len(),
            campaign.attribution.num_links(),
            width,
            depth,
            0x5CE7,
        );
        for (c, cat) in campaign.catchments.iter().enumerate() {
            ingest_stream(&mut sketch, c, cat, &flows, DEFAULT_FLOW_BATCH);
        }
        let ranked = trackdown_core::localize::rank_suspects_acc(&campaign, &sketch);
        println!(
            "sketch {width}x{depth}: {} suspect cluster(s), error bound {} bytes \
             (eps*N {}), ranking {}",
            ranked.suspects.len(),
            ranked.error_bound,
            sketch.epsilon_n_bound(),
            if ranked.stable {
                "stable (every gap exceeds the bound)"
            } else {
                "UNSTABLE (some adjacent suspects within the bound)"
            }
        );
    }
    Ok(())
}

fn cmd_hijack(args: &Args) -> Result<(), String> {
    let ds = load_dataset(args)?;
    let k: usize = args
        .get("--config")
        .map(|v| v.parse().map_err(|_| "bad --config"))
        .transpose()?
        .unwrap_or(0);
    let catchments = ds
        .catchments
        .get(k)
        .ok_or_else(|| format!("config {k} out of range (0..{})", ds.num_configs()))?;
    let links: BTreeSet<_> = ds.configs[k].announce.iter().copied().collect();
    let impacts = all_impacts(catchments, &links, Some(&ds.tracked));
    println!(
        "hijack scenarios for configuration {k} = {} ({} scenarios):",
        ds.configs[k],
        impacts.len()
    );
    let rows: Vec<Vec<String>> = impacts
        .iter()
        .take(20)
        .map(|i| {
            let fmt_links = |s: &BTreeSet<trackdown_bgp::LinkId>| {
                s.iter()
                    .map(|l| l.to_string())
                    .collect::<Vec<_>>()
                    .join(",")
            };
            vec![
                fmt_links(&i.scenario.hijacker),
                fmt_links(&i.scenario.legitimate),
                i.captured.to_string(),
                format!("{:.1}%", i.capture_fraction * 100.0),
            ]
        })
        .collect();
    print!(
        "{}",
        render_table(
            &["hijacker links", "legit links", "captured", "capture %"],
            &rows
        )
    );
    Ok(())
}

/// Stable schema of `BENCH_pipeline.json` (see DESIGN.md §Observability).
#[derive(serde::Serialize)]
struct BenchSnapshot {
    schema: u64,
    bench: String,
    scale: String,
    seed: u64,
    ases: usize,
    configs: usize,
    warm_ms: f64,
    cold_ms: f64,
    speedup: f64,
    /// Delta-mode campaign wall-clock over the same small-arm workload
    /// (best of 5, ms) — schema 5. Equality against the cold oracle is
    /// checked before any timing; CI gates `delta_ms < warm_ms`.
    delta_ms: f64,
    /// Propagation events (per-AS decide/export activations) summed over
    /// the warm campaign's deployed epochs — deterministic for the fixed
    /// workload, so it is part of the snapshot's stable keys.
    warm_events: u64,
    /// Propagation events summed over the delta campaign's deployed
    /// epochs. The diff seeding + rank scheduling + activation pruning
    /// exist precisely to shrink this number.
    delta_events: u64,
    /// `warm_events / delta_events` — the delta engine's speedup in its
    /// unit of convergence work, gated ≥ 1.5 in CI. Event counts rather
    /// than wall-clock because the dominant *per-change* cost (export
    /// offer construction and path interning for genuinely moved routes)
    /// is identical in both modes, so wall-clock ratios on a few-ms arm
    /// mostly measure that shared work plus scheduler noise; the event
    /// ratio is deterministic, hardware-independent, and collapses
    /// immediately if diff seeding or frontier pruning regress. The
    /// wall-clock claim (`delta_ms < warm_ms`) is gated separately.
    delta_speedup: f64,
    /// Net best-route disturbance summed over the delta campaign's
    /// deployed epochs (the workload delta mode is proportional to).
    delta_routes_disturbed: u64,
    propagations: u64,
    memo_hits: u64,
    cold_restarts: u64,
    mean_cluster_size: f64,
    /// High-water node count of the interned path arena (max over workers).
    peak_arena_nodes: u64,
    /// Heap allocations per epoch during one timed warm campaign, counted
    /// by this binary's global allocator. Covers the whole campaign loop
    /// (snapshots, records), not just the propagation core.
    allocs_per_epoch: f64,
    /// Memo hits over a doubled schedule — the seed-7 schedule itself has
    /// no duplicate configs, so `memo_hits` above is legitimately zero;
    /// this pass proves the memo path still fires.
    memo_exercise_hits: u64,
    /// Tracked sources in the synthetic attribution workload (schema 3).
    attribution_sources: u64,
    /// Configurations in the synthetic attribution workload.
    attribution_configs: u64,
    /// Indexed/incremental arm: rank + estimate + per-source cluster-size
    /// lookups on the synthetic partition (best of 2, ms).
    attribution_indexed_ms: f64,
    /// Scan-based reference arm over the same workload and inputs.
    attribution_scan_ms: f64,
    /// `attribution_scan_ms / attribution_indexed_ms` — gated ≥ 5.0 in CI.
    attribution_speedup: f64,
    /// Count-min geometry of the schema-7 streaming-ingest arm.
    sketch_width: u64,
    /// Rows in the streaming arm's count-min sketch.
    sketch_depth: u64,
    /// Flows streamed per configuration in the sketch arm: the ~1k active
    /// sources of the 50k-source workload — the few-source regime
    /// amplification attacks live in (AmpPot, §I).
    sketch_flows: u64,
    /// Building the exact dense link-volume matrix for the same attack —
    /// a full 50k-source catchment rescan per configuration (best of 2,
    /// ms). This is what the streaming path replaces.
    exact_ingest_ms: f64,
    /// Streaming the flows through the count-min accumulator across all
    /// configurations (best of 2, ms).
    sketch_ingest_ms: f64,
    /// `exact_ingest_ms / sketch_ingest_ms` — gated ≥ 3.0 in CI. The
    /// per-counter overestimation bound and suspect-superset property are
    /// checked before any timing.
    sketch_ingest_speedup: f64,
    /// The sketch's enumerated worst-case overestimation bound (bytes)
    /// on the streaming arm.
    sketch_error_bound: u64,
    /// Logical cores available to the benching machine (schema 4). The
    /// shard-speedup CI gate scales its floor with this; the value itself
    /// is machine-dependent and excluded from snapshot comparisons.
    cores: u64,
    /// ASes in the schema-4 `large` arm's power-law topology.
    large_ases: u64,
    /// Tracked sources (baseline anycast coverage) in the large arm.
    large_tracked: u64,
    /// Configurations in the large arm's trimmed schedule.
    large_configs: u64,
    /// Catchment-extraction shards used by the large arm's sharded runs.
    large_shards: u64,
    /// Sharded large campaign wall-clock with 1 worker thread (ms).
    large_1t_ms: f64,
    /// Sharded large campaign wall-clock with 8 worker threads (ms).
    large_8t_ms: f64,
    /// `large_1t_ms / large_8t_ms` — CI gates this against a
    /// core-count-adaptive floor (3.0 on ≥ 8-core machines).
    large_shard_speedup: f64,
    /// ASes in the schema-6 `internet` arm's 80k power-law topology.
    internet_ases: u64,
    /// Tracked sources (baseline anycast coverage) in the internet arm.
    internet_tracked: u64,
    /// Configurations in the internet arm's trimmed schedule.
    internet_configs: u64,
    /// Effective extraction shards chosen by `ShardPlan::auto` for the
    /// internet arm's 8-thread run (the 1-thread run auto-tunes to 1).
    internet_shards: u64,
    /// Sharded internet campaign wall-clock with 1 worker thread (ms).
    internet_1t_ms: f64,
    /// Sharded internet campaign wall-clock with 8 worker threads (ms).
    internet_8t_ms: f64,
    /// `internet_1t_ms / internet_8t_ms` — CI gates this with the same
    /// core-count-adaptive floor as the large arm (SKIP on 1 core).
    internet_shard_speedup: f64,
}

/// A paper-scale sharded bench arm: the given power-law scenario driven
/// through the sharded batch-catchment executor on a Gao-Rexford-clean
/// engine. Correctness first — the sharded run must reproduce the
/// unsharded parallel path exactly — then the 1-thread vs 8-thread
/// sharded timing the CI speedup gate reads. `shards == 0` auto-tunes
/// per run (each thread count gets the plan `ShardPlan::auto` would
/// give it); the returned shard count is the 8-thread run's effective
/// plan.
fn bench_scale_arm(scale: Scale, shards: usize) -> Result<(u64, u64, u64, u64, f64, f64), String> {
    use trackdown_core::localize::{
        run_campaign_parallel_mode, run_campaign_sharded_mode, CampaignMode, CatchmentSource,
    };

    let scenario = Scenario::build(Options {
        scale,
        seed: 7,
        ..Options::default()
    });
    let engine_cfg = trackdown_bgp::EngineConfig {
        policy: trackdown_bgp::PolicyConfig {
            violator_fraction: 0.0,
            ..scenario.engine_cfg.policy.clone()
        },
        ..scenario.engine_cfg.clone()
    };
    let engine = trackdown_bgp::BgpEngine::new(&scenario.gen.topology, &engine_cfg);
    let schedule = scenario.schedule();
    let run_sharded = |threads: usize| {
        let t = std::time::Instant::now();
        let campaign = run_campaign_sharded_mode(
            &engine,
            &scenario.origin,
            &schedule,
            CatchmentSource::ControlPlane,
            scenario.engine_cfg.max_events_factor,
            threads,
            shards,
            CampaignMode::Warm,
        );
        (campaign, t.elapsed().as_secs_f64() * 1e3)
    };
    // Equality against the unsharded path before any timing: the sharded
    // executor must be a pure performance transform.
    let unsharded = run_campaign_parallel_mode(
        &engine,
        &scenario.origin,
        &schedule,
        CatchmentSource::ControlPlane,
        scenario.engine_cfg.max_events_factor,
        8,
        CampaignMode::Warm,
    );
    let (sharded, t8) = run_sharded(8);
    if sharded.catchments != unsharded.catchments
        || sharded.tracked != unsharded.tracked
        || sharded.clustering.clusters() != unsharded.clustering.clusters()
        || sharded.records != unsharded.records
    {
        return Err(format!(
            "sharded/unsharded {} campaigns diverged; bench snapshot aborted",
            scale.label()
        ));
    }
    let (_c1, t1) = run_sharded(1);
    Ok((
        scenario.gen.topology.num_ases() as u64,
        sharded.tracked.len() as u64,
        schedule.len() as u64,
        sharded.stats.shards as u64,
        t1,
        t8,
    ))
}

/// What the synthetic 50k-source attribution workload measured: the
/// schema-3 indexed-vs-scan arms plus the schema-7 streaming-ingest arms.
struct AttributionArms {
    sources: u64,
    configs: u64,
    indexed_ms: f64,
    scan_ms: f64,
    sketch_width: u64,
    sketch_depth: u64,
    sketch_flows: u64,
    exact_ingest_ms: f64,
    sketch_ingest_ms: f64,
    sketch_error_bound: u64,
}

/// The schema-3 attribution workload: a 50k-source synthetic partition
/// (deterministic LCG catchments, a few active attackers), timed through
/// the indexed attribution plane and through the scan-based references it
/// replaced. Both arms produce byte-identical suspect/estimate output —
/// checked before timing — so the ratio is pure mechanism. The same
/// partition then carries the schema-7 streaming arm: exact dense
/// matrix construction vs count-min flow ingest.
fn bench_attribution_arms() -> Result<AttributionArms, String> {
    use trackdown_core::localize::{
        estimate_cluster_volumes, estimate_cluster_volumes_rescan, link_volume_matrix,
        rank_suspects, rank_suspects_acc, rank_suspects_rescan, AttributionIndex, CampaignStats,
    };
    use trackdown_topology::AsIndex;
    use trackdown_traffic::{ingest_stream, SketchAccumulator, VolumeAccumulator as _};

    const SOURCES: usize = 50_000;
    const CONFIGS: usize = 24;
    const LINKS: u8 = 8;
    const GROUPS: usize = 2_000;
    // Deterministic LCG: same partition on every run.
    let mut state = 0x853C_49E6_748F_EA9Bu64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    // Sources route in co-routed groups (stubs sharing transit), the shape
    // real campaigns converge to: the partition settles at ~GROUPS
    // clusters of ~25 sources instead of 50k singletons.
    let group_of: Vec<usize> = (0..SOURCES).map(|_| next() as usize % GROUPS).collect();
    let catchments: Vec<trackdown_bgp::Catchments> = (0..CONFIGS)
        .map(|_| {
            let group_link: Vec<Option<trackdown_bgp::LinkId>> = (0..GROUPS)
                .map(|_| {
                    let v = next();
                    if v % 16 == 0 {
                        None
                    } else {
                        Some(trackdown_bgp::LinkId((v % LINKS as u32) as u8))
                    }
                })
                .collect();
            let mut c = trackdown_bgp::Catchments::unassigned(SOURCES);
            for i in 0..SOURCES {
                c.set(AsIndex(i as u32), group_link[group_of[i]]);
            }
            c
        })
        .collect();
    let tracked: Vec<AsIndex> = (0..SOURCES as u32).map(AsIndex).collect();
    let (clustering, attribution) = AttributionIndex::build(tracked.clone(), &catchments);
    let campaign = Campaign {
        configs: Vec::new(),
        catchments,
        tracked,
        clustering,
        attribution,
        records: Vec::new(),
        imputation: None,
        stats: CampaignStats::default(),
    };
    let mut volume_per_as = vec![0u64; SOURCES];
    for (i, v) in [
        (SOURCES / 7, 1_000_000u64),
        (SOURCES / 2, 2_000_000),
        (5 * SOURCES / 6, 3_000_000),
    ] {
        volume_per_as[i] = v;
    }
    let vols = link_volume_matrix(&campaign, &volume_per_as);
    // Per-source size lookups on a 1/8 sample: the full scan sweep is
    // ~5e9 operations and would dominate CI wall-clock for no signal.
    let sample: Vec<AsIndex> = campaign.tracked.iter().copied().step_by(8).collect();

    let run_indexed = || {
        let s = rank_suspects(&campaign, &vols);
        let e = estimate_cluster_volumes(&campaign, &vols, 10);
        let sz: usize = sample
            .iter()
            .filter_map(|&a| campaign.clustering.cluster_size_of(a))
            .sum();
        (s, e, sz)
    };
    let run_scan = || {
        let s = rank_suspects_rescan(&campaign, &vols);
        let e = estimate_cluster_volumes_rescan(&campaign, &vols, 10);
        let sz: usize = sample
            .iter()
            .filter_map(|&a| campaign.clustering.cluster_size_of_scan(a))
            .sum();
        (s, e, sz)
    };
    if run_indexed() != run_scan() {
        return Err("indexed/scan attribution diverged; bench snapshot aborted".into());
    }
    let time_ms = |f: &dyn Fn() -> usize| {
        let mut best = f64::INFINITY;
        for _ in 0..2 {
            let t = std::time::Instant::now();
            std::hint::black_box(f());
            best = best.min(t.elapsed().as_secs_f64() * 1e3);
        }
        best
    };
    let indexed_ms = time_ms(&|| run_indexed().2);
    let scan_ms = time_ms(&|| run_scan().2);

    // --- Schema-7 streaming arm -----------------------------------------
    // The same partition, but the attack arrives as flows from a few
    // hundred active sources (1-in-200 of the 50k — the few-source regime
    // amplification attacks live in; AmpPot-style measurements put most
    // reflection campaigns well under a thousand origins). The exact path
    // must rescan every tracked source per configuration to build its
    // dense rows; the count-min path only touches the flows it is fed.
    const SKETCH_W: usize = 512;
    const SKETCH_D: usize = 4;
    let mut flow_volume = vec![0u64; SOURCES];
    for v in flow_volume.iter_mut() {
        let r = next();
        if r % 200 == 0 {
            *v = 64 * (1 + (r % 997) as u64);
        }
    }
    let flows: Vec<trackdown_traffic::Flow> = flow_volume
        .iter()
        .enumerate()
        .filter(|(_, &v)| v > 0)
        .map(|(i, &v)| trackdown_traffic::Flow {
            src_as: AsIndex(i as u32),
            claimed_ip: 0xCB00_7101,
            dst_ip: 0xCB00_7201,
            packets: v / 64,
            bytes: v,
            spoofed: true,
        })
        .collect();
    let width = campaign.attribution.num_links();
    let build_exact = || link_volume_matrix(&campaign, &flow_volume);
    let build_sketch = || {
        let mut acc = SketchAccumulator::new(CONFIGS, width, SKETCH_W, SKETCH_D, 7);
        for (c, cat) in campaign.catchments.iter().enumerate() {
            ingest_stream(
                &mut acc,
                c,
                cat,
                &flows,
                trackdown_traffic::DEFAULT_FLOW_BATCH,
            );
        }
        acc
    };
    // Correctness before timing claims: every sketch counter must sit in
    // [exact, exact + bound], and the approximate suspect set must cover
    // the exact one (overestimation never exonerates).
    let exact_rows = build_exact();
    let sketch = build_sketch();
    let sketch_error_bound = sketch.error_bound();
    for (c, row) in exact_rows.iter().enumerate() {
        for (l, &e) in row.iter().enumerate() {
            let s = sketch.volume(c, trackdown_bgp::LinkId(l as u8));
            if s < e || s > e.saturating_add(sketch_error_bound) {
                return Err(format!(
                    "sketch counter ({c},{l}) = {s} outside [{e}, {e}+{sketch_error_bound}]; \
                     bench snapshot aborted"
                ));
            }
        }
    }
    let exact_suspects: BTreeSet<usize> = rank_suspects(&campaign, &exact_rows)
        .iter()
        .map(|s| s.cluster)
        .collect();
    let sketch_suspects: BTreeSet<usize> = rank_suspects_acc(&campaign, &sketch)
        .suspects
        .iter()
        .map(|s| s.cluster)
        .collect();
    if !exact_suspects.is_subset(&sketch_suspects) {
        return Err("sketch suspect set dropped an exact suspect; bench snapshot aborted".into());
    }
    let exact_ingest_ms = time_ms(&|| build_exact()[0][0] as usize);
    // Steady state for the streaming arm: a line-rate box allocates the
    // sketch once and recycles it between observation windows, so the
    // timed work is clear + ingest, not allocation.
    let reused = std::cell::RefCell::new(SketchAccumulator::new(
        CONFIGS, width, SKETCH_W, SKETCH_D, 7,
    ));
    let sketch_ingest_ms = time_ms(&|| {
        let mut acc = reused.borrow_mut();
        acc.clear();
        for (c, cat) in campaign.catchments.iter().enumerate() {
            ingest_stream(
                &mut *acc,
                c,
                cat,
                &flows,
                trackdown_traffic::DEFAULT_FLOW_BATCH,
            );
        }
        acc.num_links()
    });

    Ok(AttributionArms {
        sources: SOURCES as u64,
        configs: CONFIGS as u64,
        indexed_ms,
        scan_ms,
        sketch_width: SKETCH_W as u64,
        sketch_depth: SKETCH_D as u64,
        sketch_flows: flows.len() as u64,
        exact_ingest_ms,
        sketch_ingest_ms,
        sketch_error_bound,
    })
}

/// Run the full fixed benchmark workload and return the snapshot. The
/// workload is shared by `bench-snapshot` (writes it) and `perf-report`
/// without `--current` (diffs it against a committed baseline).
fn bench_snapshot() -> Result<BenchSnapshot, String> {
    use trackdown_core::localize::{run_campaign_mode, CampaignMode, CatchmentSource};

    // Fixed workload so snapshots are comparable across commits: the
    // small scale at seed 7 (the campaign the verify recipe drives), on
    // a Gao-Rexford-clean engine — with policy violators the session
    // cold-starts every epoch by design and there is nothing to bench.
    let scenario = Scenario::build(Options {
        scale: Scale::Small,
        seed: 7,
        ..Options::default()
    });
    let engine_cfg = trackdown_bgp::EngineConfig {
        policy: trackdown_bgp::PolicyConfig {
            violator_fraction: 0.0,
            ..scenario.engine_cfg.policy.clone()
        },
        ..scenario.engine_cfg.clone()
    };
    let engine = trackdown_bgp::BgpEngine::new(&scenario.gen.topology, &engine_cfg);
    let schedule = scenario.schedule();
    let run = |mode: CampaignMode| {
        let t = std::time::Instant::now();
        let campaign = run_campaign_mode(
            &engine,
            &scenario.origin,
            &schedule,
            CatchmentSource::ControlPlane,
            None,
            scenario.engine_cfg.max_events_factor,
            mode,
        );
        (campaign, t.elapsed().as_secs_f64() * 1e3)
    };
    // Untimed warm-up pass, then best-of-5 per arm, rounds interleaved
    // warm/cold/delta so correlated machine-load shifts hit every arm:
    // minima are robust to scheduler noise at this (few-ms) workload size.
    let _ = run(CampaignMode::Warm);
    let (mut warm, mut warm_ms) = run(CampaignMode::Warm);
    let (mut cold, mut cold_ms) = run(CampaignMode::Cold);
    let (mut delta, mut delta_ms) = run(CampaignMode::Delta);
    for _ in 0..4 {
        let (w, wms) = run(CampaignMode::Warm);
        if wms < warm_ms {
            (warm, warm_ms) = (w, wms);
        }
        let (c, cms) = run(CampaignMode::Cold);
        if cms < cold_ms {
            (cold, cold_ms) = (c, cms);
        }
        let (d, dms) = run(CampaignMode::Delta);
        if dms < delta_ms {
            (delta, delta_ms) = (d, dms);
        }
    }
    if warm.catchments != cold.catchments {
        return Err("warm/cold campaigns diverged; bench snapshot aborted".into());
    }
    // Equality before timing claims: the delta engine must reproduce the
    // cold oracle exactly (catchments, tracked set, clustering, records).
    if delta.catchments != cold.catchments
        || delta.tracked != cold.tracked
        || delta.clustering.clusters() != cold.clustering.clusters()
        || delta.records != cold.records
    {
        return Err("delta/cold campaigns diverged; bench snapshot aborted".into());
    }

    // Allocation census: one dedicated warm pass with the counter read
    // around it. Counts are deterministic enough per-run that best-of-N
    // would be redundant.
    let allocs_before = allocations();
    let (_, _) = run(CampaignMode::Warm);
    let allocs_warm = allocations() - allocs_before;
    let allocs_per_epoch = ((allocs_warm as f64 / warm.configs.len() as f64) * 1e2).round() / 1e2;

    // Memo exercise: every config in the second half of a doubled schedule
    // must hit the footprint memo.
    let mut doubled = schedule.clone();
    doubled.extend(schedule.iter().cloned());
    let memo_run = run_campaign_mode(
        &engine,
        &scenario.origin,
        &doubled,
        CatchmentSource::ControlPlane,
        None,
        scenario.engine_cfg.max_events_factor,
        CampaignMode::Warm,
    );
    if memo_run.stats.memo_hits != schedule.len() {
        return Err(format!(
            "memo exercise expected {} hits, got {}; bench snapshot aborted",
            schedule.len(),
            memo_run.stats.memo_hits
        ));
    }

    let arms = bench_attribution_arms()?;

    let (large_ases, large_tracked, large_configs, large_shards, large_1t_ms, large_8t_ms) =
        bench_scale_arm(Scale::Large, 8)?;
    let (
        internet_ases,
        internet_tracked,
        internet_configs,
        internet_shards,
        internet_1t_ms,
        internet_8t_ms,
    ) = bench_scale_arm(Scale::Internet, 0)?;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1) as u64;

    let snap = BenchSnapshot {
        schema: 7,
        bench: "pipeline".into(),
        scale: "small".into(),
        seed: 7,
        ases: scenario.gen.topology.num_ases(),
        configs: warm.configs.len(),
        warm_ms: (warm_ms * 1e3).round() / 1e3,
        cold_ms: (cold_ms * 1e3).round() / 1e3,
        speedup: ((cold_ms / warm_ms) * 1e3).round() / 1e3,
        delta_ms: (delta_ms * 1e3).round() / 1e3,
        warm_events: warm.stats.events as u64,
        delta_events: delta.stats.events as u64,
        delta_speedup: ((warm.stats.events as f64 / delta.stats.events as f64) * 1e3).round() / 1e3,
        delta_routes_disturbed: delta.stats.routes_disturbed as u64,
        propagations: warm.stats.propagations as u64,
        memo_hits: warm.stats.memo_hits as u64,
        cold_restarts: warm.stats.cold_restarts as u64,
        mean_cluster_size: warm.clustering.mean_size(),
        peak_arena_nodes: warm.stats.peak_arena_nodes as u64,
        allocs_per_epoch,
        memo_exercise_hits: memo_run.stats.memo_hits as u64,
        attribution_sources: arms.sources,
        attribution_configs: arms.configs,
        attribution_indexed_ms: (arms.indexed_ms * 1e3).round() / 1e3,
        attribution_scan_ms: (arms.scan_ms * 1e3).round() / 1e3,
        attribution_speedup: ((arms.scan_ms / arms.indexed_ms) * 1e3).round() / 1e3,
        sketch_width: arms.sketch_width,
        sketch_depth: arms.sketch_depth,
        sketch_flows: arms.sketch_flows,
        exact_ingest_ms: (arms.exact_ingest_ms * 1e3).round() / 1e3,
        sketch_ingest_ms: (arms.sketch_ingest_ms * 1e3).round() / 1e3,
        sketch_ingest_speedup: ((arms.exact_ingest_ms / arms.sketch_ingest_ms) * 1e3).round() / 1e3,
        sketch_error_bound: arms.sketch_error_bound,
        cores,
        large_ases,
        large_tracked,
        large_configs,
        large_shards,
        large_1t_ms: (large_1t_ms * 1e3).round() / 1e3,
        large_8t_ms: (large_8t_ms * 1e3).round() / 1e3,
        large_shard_speedup: ((large_1t_ms / large_8t_ms) * 1e3).round() / 1e3,
        internet_ases,
        internet_tracked,
        internet_configs,
        internet_shards,
        internet_1t_ms: (internet_1t_ms * 1e3).round() / 1e3,
        internet_8t_ms: (internet_8t_ms * 1e3).round() / 1e3,
        internet_shard_speedup: ((internet_1t_ms / internet_8t_ms) * 1e3).round() / 1e3,
    };
    Ok(snap)
}

fn cmd_bench_snapshot(args: &Args) -> Result<(), String> {
    let out_path = args.get("--out").unwrap_or("BENCH_pipeline.json");
    let snap = bench_snapshot()?;
    let json = serde_json::to_string_pretty(&snap).map_err(|e| e.to_string())?;
    fs::write(out_path, json + "\n").map_err(|e| format!("write {out_path}: {e}"))?;
    println!(
        "wrote {out_path} (warm {:.1} ms, cold {:.1} ms, speedup {:.2}x; \
         delta {:.1} ms, {:.2}x fewer events than warm; \
         attribution indexed {:.1} ms vs scan {:.1} ms, {:.1}x; \
         sketch ingest {:.2} ms vs exact {:.2} ms, {:.1}x on {} flows; \
         large {} ASes/{} tracked sharded 1t {:.0} ms vs 8t {:.0} ms, {:.2}x; \
         internet {} ASes/{} tracked sharded 1t {:.0} ms vs 8t {:.0} ms, {:.2}x \
         on {} cores)",
        snap.warm_ms,
        snap.cold_ms,
        snap.speedup,
        snap.delta_ms,
        snap.delta_speedup,
        snap.attribution_indexed_ms,
        snap.attribution_scan_ms,
        snap.attribution_speedup,
        snap.sketch_ingest_ms,
        snap.exact_ingest_ms,
        snap.sketch_ingest_speedup,
        snap.sketch_flows,
        snap.large_ases,
        snap.large_tracked,
        snap.large_1t_ms,
        snap.large_8t_ms,
        snap.large_shard_speedup,
        snap.internet_ases,
        snap.internet_tracked,
        snap.internet_1t_ms,
        snap.internet_8t_ms,
        snap.internet_shard_speedup,
        snap.cores
    );
    Ok(())
}

/// `trackdown profile`: run one campaign (any preset the `campaign`
/// command accepts) with structured tracing on, write the Chrome
/// trace-event JSON, and print the self-profile summary — per-phase
/// exclusive/inclusive time and per-worker utilization.
fn cmd_profile(args: &Args) -> Result<(), String> {
    let opts = args.options().ok_or("bad options")?;
    let trace_out = args.get("--trace-out").unwrap_or("trace.json").to_string();
    let scenario = Scenario::build(opts);
    scenario.announce();
    trackdown_obs::start_trace(trackdown_obs::TraceConfig::default());
    let campaign = scenario.run_recorded(None);
    let trace = trackdown_obs::end_trace().ok_or("tracing produced no trace")?;
    report_stats(&campaign);

    let json = trackdown_obs::chrome_trace_json(&trace);
    fs::write(&trace_out, &json).map_err(|e| format!("write {trace_out}: {e}"))?;
    let summary = trackdown_obs::ProfileSummary::from_trace(&trace);
    print!("{}", summary.render());
    println!(
        "steal fails {} over {} worker(s); wrote {trace_out} ({} events) — \
         load it at https://ui.perfetto.dev or chrome://tracing",
        campaign.stats.shard_steal_fails,
        campaign.stats.worker_busy_us.len().max(1),
        trace.events.len()
    );
    Ok(())
}

/// `trackdown perf-report`: diff two `BENCH_pipeline.json` snapshots —
/// or the committed baseline against a freshly-benched current — and
/// flag per-metric regressions beyond the tolerance.
fn cmd_perf_report(args: &Args) -> Result<(), String> {
    let baseline_path = args.get("--baseline").unwrap_or("BENCH_pipeline.json");
    let tolerance: f64 = args
        .get("--tolerance")
        .map(|v| v.parse().map_err(|_| "bad --tolerance"))
        .transpose()?
        .unwrap_or(10.0);
    let baseline_text =
        fs::read_to_string(baseline_path).map_err(|e| format!("read {baseline_path}: {e}"))?;
    let baseline: serde::Value =
        serde_json::from_str(&baseline_text).map_err(|e| format!("{baseline_path}: {e}"))?;
    let (current, current_label) = match args.get("--current") {
        Some(path) => {
            let text = fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
            (
                serde_json::from_str(&text).map_err(|e| format!("{path}: {e}"))?,
                path.to_string(),
            )
        }
        None => {
            eprintln!("# no --current given; benching a fresh snapshot (takes a minute)");
            let snap = bench_snapshot()?;
            (
                serde_json::to_value(&snap).map_err(|e| e.to_string())?,
                "fresh bench".to_string(),
            )
        }
    };
    let report = trackdown_obs::diff_bench_snapshots(&baseline, &current, tolerance);
    let markdown = report.render_markdown();
    match args.get("--out") {
        Some(path) => {
            fs::write(path, &markdown).map_err(|e| format!("write {path}: {e}"))?;
            println!("wrote {path}");
        }
        None => print!("{markdown}"),
    }
    let regressions = report.regressions();
    if regressions.is_empty() {
        println!("no regressions vs {baseline_path} (tolerance {tolerance}%)");
        Ok(())
    } else if args.has("--report-only") {
        println!(
            "{} regression(s) vs {baseline_path} ({current_label}); --report-only set, not failing",
            regressions.len()
        );
        Ok(())
    } else {
        Err(format!(
            "{} metric(s) regressed beyond {tolerance}% vs {baseline_path}: {}",
            regressions.len(),
            regressions
                .iter()
                .map(|r| r.key.as_str())
                .collect::<Vec<_>>()
                .join(", ")
        ))
    }
}

fn cmd_validate_manifest(args: &Args) -> Result<(), String> {
    let path = args.get("--manifest").ok_or("missing --manifest FILE")?;
    let text = fs::read_to_string(path).map_err(|e| format!("read {path}: {e}"))?;
    let summary = trackdown_obs::validate_manifest(&text).map_err(|e| format!("{path}: {e}"))?;
    println!(
        "{path}: valid manifest — {} epochs ({} warm, {} delta, {} cold, {} memo), \
         schedule_len {}, deterministic {}",
        summary.epochs,
        summary.warm,
        summary.delta,
        summary.cold,
        summary.memo,
        summary.schedule_len,
        summary.deterministic
    );
    Ok(())
}

fn main() -> ExitCode {
    trackdown_obs::init_spans_from_env();
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = argv.split_first() else {
        return usage();
    };
    let Some(args) = Args::parse(rest) else {
        return usage();
    };
    let result = match cmd.as_str() {
        "topology" => cmd_topology(&args),
        "campaign" => cmd_campaign(&args),
        "info" => cmd_info(&args),
        "localize" => cmd_localize(&args),
        "hijack" => cmd_hijack(&args),
        "bench-snapshot" => cmd_bench_snapshot(&args),
        "validate-manifest" => cmd_validate_manifest(&args),
        "profile" => cmd_profile(&args),
        "perf-report" => cmd_perf_report(&args),
        "--help" | "-h" | "help" => return usage(),
        other => Err(format!("unknown command {other:?}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(parts: &[&str]) -> Vec<String> {
        parts.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn args_parse_values_and_flags() {
        let a = Args::parse(&argv(&[
            "--scale",
            "small",
            "--seed",
            "9",
            "--measured",
            "--out",
            "x.json",
        ]))
        .unwrap();
        assert_eq!(a.get("--scale"), Some("small"));
        assert_eq!(a.get("--seed"), Some("9"));
        assert_eq!(a.get("--out"), Some("x.json"));
        assert!(a.has("--measured"));
        let opts = a.options().unwrap();
        assert_eq!(opts.seed, 9);
        assert!(opts.measured);
    }

    #[test]
    fn args_reject_malformed() {
        assert!(Args::parse(&argv(&["positional"])).is_none());
        assert!(Args::parse(&argv(&["--out"])).is_none()); // missing value
        let a = Args::parse(&argv(&["--scale", "bogus"])).unwrap();
        assert!(a.options().is_none());
    }

    #[test]
    fn repeated_flags_accumulate_and_last_value_wins() {
        let a = Args::parse(&argv(&[
            "--attacker",
            "AS1",
            "--attacker",
            "AS2",
            "--seed",
            "1",
            "--seed",
            "2",
        ]))
        .unwrap();
        assert_eq!(a.get_all("--attacker"), vec!["AS1", "AS2"]);
        assert_eq!(a.get("--seed"), Some("2"));
    }

    #[test]
    fn campaign_info_localize_roundtrip() {
        let dir = std::env::temp_dir().join("trackdown-cli-test");
        fs::create_dir_all(&dir).unwrap();
        let out = dir.join("ds.json");
        let out_str = out.to_str().unwrap().to_string();

        let a = Args::parse(&argv(&[
            "--scale", "small", "--seed", "7", "--out", &out_str,
        ]))
        .unwrap();
        cmd_campaign(&a).expect("campaign");

        let a = Args::parse(&argv(&["--dataset", &out_str])).unwrap();
        cmd_info(&a).expect("info");
        cmd_hijack(&a).expect("hijack");

        // Pick a real tracked AS from the dataset for localization.
        let ds = load_dataset(&a).unwrap();
        let attacker = ds.asns[ds.tracked[3].us()];
        let a = Args::parse(&argv(&[
            "--dataset",
            &out_str,
            "--attacker",
            &attacker.0.to_string(),
        ]))
        .unwrap();
        cmd_localize(&a).expect("localize");

        let _ = fs::remove_file(out);
    }

    #[test]
    fn topology_formats() {
        let dir = std::env::temp_dir().join("trackdown-cli-test3");
        fs::create_dir_all(&dir).unwrap();
        for (fmt, marker) in [("as-rel", "|"), ("dot", "digraph")] {
            let out = dir.join(format!("t.{fmt}"));
            let out_str = out.to_str().unwrap().to_string();
            let a = Args::parse(&argv(&[
                "--scale", "small", "--seed", "2", "--format", fmt, "--out", &out_str,
            ]))
            .unwrap();
            cmd_topology(&a).expect("topology");
            let text = fs::read_to_string(&out).unwrap();
            assert!(text.contains(marker), "{fmt} output missing {marker}");
            let _ = fs::remove_file(out);
        }
        let a = Args::parse(&argv(&["--format", "bogus"])).unwrap();
        assert!(cmd_topology(&a).is_err());
    }

    #[test]
    fn localize_rejects_unknown_attacker() {
        let dir = std::env::temp_dir().join("trackdown-cli-test2");
        fs::create_dir_all(&dir).unwrap();
        let out = dir.join("ds.json");
        let out_str = out.to_str().unwrap().to_string();
        let a = Args::parse(&argv(&[
            "--scale", "small", "--seed", "8", "--out", &out_str,
        ]))
        .unwrap();
        cmd_campaign(&a).expect("campaign");
        let a = Args::parse(&argv(&["--dataset", &out_str, "--attacker", "AS999999999"])).unwrap();
        assert!(cmd_localize(&a).is_err());
        let _ = fs::remove_file(out);
    }
}
