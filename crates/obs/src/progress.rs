//! Uniform, parseable progress events on stderr.
//!
//! Every event is one line: `obs <event> k1=v1 k2=v2 ...`. Values
//! containing whitespace or `"` are double-quoted with `"` escaped, so
//! a line always splits back into fields on single spaces outside
//! quotes. Experiment binaries and the CLI report through this instead
//! of ad-hoc `eprintln!` so all tools emit the same machine-readable
//! stream.

use std::fmt::Write as _;

/// Render one event line (separated from [`emit`] for tests).
pub fn render(event: &str, fields: &[(&str, String)]) -> String {
    let mut line = String::with_capacity(16 + fields.len() * 16);
    line.push_str("obs ");
    line.push_str(event);
    for (k, v) in fields {
        let quoted = v.is_empty() || v.contains(char::is_whitespace) || v.contains('"');
        if quoted {
            let _ = write!(line, " {k}=\"{}\"", v.replace('"', "\\\""));
        } else {
            let _ = write!(line, " {k}={v}");
        }
    }
    line
}

/// Emit one event line to stderr.
pub fn emit(event: &str, fields: &[(&str, String)]) {
    eprintln!("{}", render(event, fields));
}

/// Emit a progress event: `progress!("campaign.done", configs = n)`.
/// Field values are rendered with `Display`.
#[macro_export]
macro_rules! progress {
    ($event:expr $(, $k:ident = $v:expr)* $(,)?) => {
        $crate::progress::emit($event, &[$((stringify!($k), $v.to_string())),*])
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_plain_and_quoted_fields() {
        assert_eq!(render("start", &[]), "obs start");
        assert_eq!(
            render("x", &[("n", "3".into()), ("msg", "two words".into())]),
            "obs x n=3 msg=\"two words\""
        );
        assert_eq!(render("x", &[("q", "a\"b".into())]), "obs x q=\"a\\\"b\"");
    }

    #[test]
    fn macro_renders_display_values() {
        // The macro goes through emit(); exercise the expansion compiles
        // with mixed Display types.
        crate::progress!("test.event", count = 2, label = "ok");
    }
}
