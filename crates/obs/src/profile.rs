//! Self-profile summaries and the bench perf-regression reporter.
//!
//! [`ProfileSummary::from_trace`] folds a drained [`Trace`] into
//! per-phase exclusive/inclusive time and per-worker utilization — the
//! deterministic text table `trackdown profile` prints next to the
//! Chrome export. *Exclusive* time is a span's inclusive time minus the
//! inclusive time of its direct children, so summing exclusive time
//! across all phases partitions recorded wall time without double
//! counting; idle stretches are recorded as `*.idle` spans, so they are
//! accounted (not missing) time.
//!
//! [`diff_bench_snapshots`] implements `trackdown perf-report`: it
//! diffs two `BENCH_pipeline.json` value trees metric-by-metric with a
//! tolerance threshold and renders the markdown table CI posts.

use crate::trace::{Trace, TraceEventKind};
use serde::Value;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Aggregate timing for one span name across a trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStat {
    /// Span name (e.g. `worker.produce`).
    pub name: &'static str,
    /// Number of spans recorded under this name.
    pub count: u64,
    /// Total wall time inside these spans, including children (µs).
    pub inclusive_us: u64,
    /// Total wall time inside these spans, excluding time attributed to
    /// direct child spans (µs).
    pub exclusive_us: u64,
}

/// Per-thread activity summary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerStat {
    /// Dense trace thread index.
    pub thread: usize,
    /// OS thread name, if any.
    pub label: Option<String>,
    /// Active window: first span start to last span end on this thread (µs).
    pub window_us: u64,
    /// Time inside root spans (µs) — the accounted share of the window.
    pub accounted_us: u64,
    /// Time inside `*.idle` spans (µs).
    pub idle_us: u64,
}

impl WorkerStat {
    /// Percentage of the active window spent busy (accounted − idle).
    pub fn utilization_pct(&self) -> f64 {
        if self.window_us == 0 {
            return 0.0;
        }
        100.0 * self.accounted_us.saturating_sub(self.idle_us) as f64 / self.window_us as f64
    }
}

/// Deterministic profile summary distilled from one trace.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileSummary {
    /// Per-phase stats, sorted by exclusive time (desc), then name.
    pub phases: Vec<PhaseStat>,
    /// Per-thread stats, sorted by thread index.
    pub workers: Vec<WorkerStat>,
    /// Wall-clock length of the trace window (µs).
    pub trace_duration_us: u64,
}

impl ProfileSummary {
    /// Fold a trace into per-phase and per-worker aggregates.
    pub fn from_trace(trace: &Trace) -> ProfileSummary {
        let spans: Vec<_> = trace
            .events
            .iter()
            .filter(|e| e.kind == TraceEventKind::Span)
            .collect();
        let index_of: HashMap<u64, usize> =
            spans.iter().enumerate().map(|(i, e)| (e.id, i)).collect();
        // Sum each span's direct-children inclusive time onto the parent.
        let mut child_us = vec![0u64; spans.len()];
        for e in &spans {
            if e.parent != 0 {
                if let Some(&p) = index_of.get(&e.parent) {
                    child_us[p] += e.end_us.saturating_sub(e.start_us);
                }
            }
        }
        let mut phases: HashMap<&'static str, PhaseStat> = HashMap::new();
        for (i, e) in spans.iter().enumerate() {
            let inclusive = e.end_us.saturating_sub(e.start_us);
            let stat = phases.entry(e.name).or_insert(PhaseStat {
                name: e.name,
                count: 0,
                inclusive_us: 0,
                exclusive_us: 0,
            });
            stat.count += 1;
            stat.inclusive_us += inclusive;
            stat.exclusive_us += inclusive.saturating_sub(child_us[i]);
        }
        let mut phases: Vec<PhaseStat> = phases.into_values().collect();
        phases.sort_by(|a, b| b.exclusive_us.cmp(&a.exclusive_us).then(a.name.cmp(b.name)));

        let mut workers = Vec::with_capacity(trace.threads.len());
        for t in &trace.threads {
            let mine = spans.iter().filter(|e| e.thread == t.index);
            let mut first = u64::MAX;
            let mut last = 0u64;
            let mut accounted = 0u64;
            let mut idle = 0u64;
            let mut any = false;
            for e in mine {
                any = true;
                first = first.min(e.start_us);
                last = last.max(e.end_us);
                let inclusive = e.end_us.saturating_sub(e.start_us);
                let is_root = e.parent == 0 || !index_of.contains_key(&e.parent);
                if is_root {
                    accounted += inclusive;
                }
                if e.name.ends_with(".idle") {
                    idle += inclusive;
                }
            }
            workers.push(WorkerStat {
                thread: t.index,
                label: t.label.clone(),
                window_us: if any { last - first } else { 0 },
                accounted_us: accounted,
                idle_us: idle,
            });
        }
        ProfileSummary {
            phases,
            workers,
            trace_duration_us: trace.duration_us,
        }
    }

    /// Total exclusive time across all phases (µs). Because exclusive
    /// time partitions each thread's root spans, this approximates the
    /// sum of per-thread accounted time.
    pub fn total_exclusive_us(&self) -> u64 {
        self.phases.iter().map(|p| p.exclusive_us).sum()
    }

    /// Sum of per-thread active windows (µs) — the wall time the profile
    /// is expected to account for.
    pub fn total_window_us(&self) -> u64 {
        self.workers.iter().map(|w| w.window_us).sum()
    }

    /// Percentage of the per-thread active windows covered by per-phase
    /// exclusive time. The acceptance bar for `trackdown profile` is
    /// ≥ 90.
    pub fn coverage_pct(&self) -> f64 {
        let window = self.total_window_us();
        if window == 0 {
            return 0.0;
        }
        100.0 * self.total_exclusive_us() as f64 / window as f64
    }

    /// The phase with the largest exclusive time, if any — the "dominant
    /// cost" a profiling run is after.
    pub fn dominant_phase(&self) -> Option<&PhaseStat> {
        self.phases.first()
    }

    /// Render the deterministic summary table.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let total_excl = self.total_exclusive_us().max(1);
        out.push_str("phase                        count    incl_ms    excl_ms  excl%\n");
        for p in &self.phases {
            let _ = writeln!(
                out,
                "{:<28} {:>5} {:>10.3} {:>10.3} {:>6.1}",
                p.name,
                p.count,
                p.inclusive_us as f64 / 1000.0,
                p.exclusive_us as f64 / 1000.0,
                100.0 * p.exclusive_us as f64 / total_excl as f64,
            );
        }
        out.push('\n');
        out.push_str("worker                        window_ms    busy_ms    idle_ms  util%\n");
        for w in &self.workers {
            let label = w
                .label
                .clone()
                .unwrap_or_else(|| format!("thread-{}", w.thread));
            let _ = writeln!(
                out,
                "{:<28} {:>10.3} {:>10.3} {:>10.3} {:>6.1}",
                label,
                w.window_us as f64 / 1000.0,
                w.accounted_us.saturating_sub(w.idle_us) as f64 / 1000.0,
                w.idle_us as f64 / 1000.0,
                w.utilization_pct(),
            );
        }
        let _ = writeln!(
            out,
            "\nexclusive-time coverage: {:.1}% of {:.3} ms active window",
            self.coverage_pct(),
            self.total_window_us() as f64 / 1000.0,
        );
        if let Some(p) = self.dominant_phase() {
            let _ = writeln!(
                out,
                "dominant phase: {} ({:.3} ms exclusive, {:.1}% of accounted time)",
                p.name,
                p.exclusive_us as f64 / 1000.0,
                100.0 * p.exclusive_us as f64 / total_excl as f64,
            );
        }
        out
    }
}

// ---- perf-report -----------------------------------------------------

/// Direction in which a metric is allowed to move.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricPolicy {
    /// Smaller is better (latencies, allocation counts): flag increases
    /// beyond tolerance.
    LowerBetter,
    /// Larger is better (speedups, ratios): flag decreases beyond
    /// tolerance.
    HigherBetter,
    /// Environment descriptors (core counts): never flagged.
    Info,
    /// Everything else: any change is reported as drift, never as a
    /// regression.
    Exact,
}

/// Outcome for one metric in a [`PerfReport`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricStatus {
    /// Within tolerance (or unchanged).
    Ok,
    /// Moved in the good direction beyond tolerance.
    Improved,
    /// Moved in the bad direction beyond tolerance.
    Regressed,
    /// Changed, but the metric has no better/worse direction (schema
    /// bumps, key added/removed). Informational, never failing.
    Drift,
    /// Info-only metric.
    Info,
}

impl MetricStatus {
    fn label(self) -> &'static str {
        match self {
            MetricStatus::Ok => "ok",
            MetricStatus::Improved => "improved ✅",
            MetricStatus::Regressed => "REGRESSED ❌",
            MetricStatus::Drift => "drift",
            MetricStatus::Info => "info",
        }
    }
}

/// One metric row of a perf report.
#[derive(Debug, Clone)]
pub struct MetricDiff {
    /// Metric key from the snapshot JSON.
    pub key: String,
    /// Baseline rendering (`-` if absent).
    pub baseline: String,
    /// Current rendering (`-` if absent).
    pub current: String,
    /// Relative change in percent, when both sides are numeric.
    pub delta_pct: Option<f64>,
    /// Verdict under the policy and tolerance.
    pub status: MetricStatus,
}

/// The diff of two bench snapshots.
#[derive(Debug, Clone)]
pub struct PerfReport {
    /// Per-metric rows, in baseline key order (new keys appended).
    pub rows: Vec<MetricDiff>,
    /// Tolerance threshold used, in percent.
    pub tolerance_pct: f64,
}

impl PerfReport {
    /// Keys whose status is [`MetricStatus::Regressed`].
    pub fn regressions(&self) -> Vec<&MetricDiff> {
        self.rows
            .iter()
            .filter(|r| r.status == MetricStatus::Regressed)
            .collect()
    }

    /// Render the markdown table CI posts.
    pub fn render_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "## Bench perf report (tolerance ±{:.0}%)\n",
            self.tolerance_pct
        );
        out.push_str("| metric | baseline | current | Δ% | status |\n");
        out.push_str("|---|---:|---:|---:|---|\n");
        for r in &self.rows {
            let delta = match r.delta_pct {
                Some(d) => format!("{d:+.1}"),
                None => "-".into(),
            };
            let _ = writeln!(
                out,
                "| {} | {} | {} | {} | {} |",
                r.key,
                r.baseline,
                r.current,
                delta,
                r.status.label()
            );
        }
        let regs = self.regressions();
        if regs.is_empty() {
            out.push_str("\nNo regressions beyond tolerance.\n");
        } else {
            let keys: Vec<&str> = regs.iter().map(|r| r.key.as_str()).collect();
            let _ = writeln!(
                out,
                "\n**{} regression(s): {}**",
                regs.len(),
                keys.join(", ")
            );
        }
        out
    }
}

/// Policy for a snapshot key, by naming convention: `*_ms` and
/// allocation counts are lower-better, `*speedup*`/`*ratio*` are
/// higher-better, `cores` is environment info, anything else (schema,
/// labels, counts) is compared exactly and reported as drift on change.
pub fn metric_policy(key: &str) -> MetricPolicy {
    if key.ends_with("_ms") || key.ends_with("_us") || key == "allocs_per_epoch" {
        MetricPolicy::LowerBetter
    } else if key.contains("speedup") || key.contains("ratio") {
        MetricPolicy::HigherBetter
    } else if key == "cores" {
        MetricPolicy::Info
    } else {
        MetricPolicy::Exact
    }
}

fn numeric(v: &Value) -> Option<f64> {
    match v {
        Value::U64(n) => Some(*n as f64),
        Value::I64(n) => Some(*n as f64),
        Value::F64(n) => Some(*n),
        _ => None,
    }
}

fn render_value(v: Option<&Value>) -> String {
    match v {
        None => "-".into(),
        Some(Value::Str(s)) => s.clone(),
        Some(other) => serde_json::to_string(other).unwrap_or_else(|_| "?".into()),
    }
}

/// Diff two bench-snapshot object trees. `tolerance_pct` is the relative
/// change (in percent) a directional metric may move before it is
/// flagged.
pub fn diff_bench_snapshots(baseline: &Value, current: &Value, tolerance_pct: f64) -> PerfReport {
    let empty: &[(String, Value)] = &[];
    let base = baseline.as_object().unwrap_or(empty);
    let cur = current.as_object().unwrap_or(empty);
    let mut keys: Vec<&str> = base.iter().map(|(k, _)| k.as_str()).collect();
    for (k, _) in cur {
        if !keys.contains(&k.as_str()) {
            keys.push(k);
        }
    }
    let mut rows = Vec::with_capacity(keys.len());
    for key in keys {
        let b = serde::obj_get(base, key);
        let c = serde::obj_get(cur, key);
        let policy = metric_policy(key);
        let (delta_pct, status) = match (b, c) {
            (Some(bv), Some(cv)) => match (numeric(bv), numeric(cv)) {
                (Some(bn), Some(cn)) => {
                    let delta = if bn == 0.0 {
                        if cn == 0.0 {
                            0.0
                        } else {
                            f64::INFINITY
                        }
                    } else {
                        100.0 * (cn - bn) / bn
                    };
                    let status = match policy {
                        MetricPolicy::Info => MetricStatus::Info,
                        MetricPolicy::Exact => {
                            if bn == cn {
                                MetricStatus::Ok
                            } else {
                                MetricStatus::Drift
                            }
                        }
                        MetricPolicy::LowerBetter => {
                            if delta > tolerance_pct {
                                MetricStatus::Regressed
                            } else if delta < -tolerance_pct {
                                MetricStatus::Improved
                            } else {
                                MetricStatus::Ok
                            }
                        }
                        MetricPolicy::HigherBetter => {
                            if delta < -tolerance_pct {
                                MetricStatus::Regressed
                            } else if delta > tolerance_pct {
                                MetricStatus::Improved
                            } else {
                                MetricStatus::Ok
                            }
                        }
                    };
                    (Some(delta), status)
                }
                _ => {
                    let status = if bv == cv {
                        MetricStatus::Ok
                    } else {
                        MetricStatus::Drift
                    };
                    (None, status)
                }
            },
            // Key added or removed: schema drift, not a perf verdict.
            _ => (None, MetricStatus::Drift),
        };
        rows.push(MetricDiff {
            key: key.to_string(),
            baseline: render_value(b),
            current: render_value(c),
            delta_pct,
            status,
        });
    }
    PerfReport {
        rows,
        tolerance_pct,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(entries: &[(&str, Value)]) -> Value {
        Value::Object(
            entries
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
        )
    }

    #[test]
    fn perf_report_flags_directional_regressions_only() {
        let base = snap(&[
            ("schema", Value::U64(5)),
            ("warm_ms", Value::F64(1.0)),
            ("large_shard_speedup", Value::F64(0.7)),
            ("cores", Value::U64(1)),
        ]);
        let cur = snap(&[
            ("schema", Value::U64(6)),
            ("warm_ms", Value::F64(1.5)),
            ("large_shard_speedup", Value::F64(1.4)),
            ("cores", Value::U64(8)),
        ]);
        let report = diff_bench_snapshots(&base, &cur, 10.0);
        let by_key = |k: &str| {
            report
                .rows
                .iter()
                .find(|r| r.key == k)
                .unwrap_or_else(|| panic!("missing row {k}"))
        };
        assert_eq!(by_key("warm_ms").status, MetricStatus::Regressed);
        assert_eq!(by_key("large_shard_speedup").status, MetricStatus::Improved);
        assert_eq!(by_key("schema").status, MetricStatus::Drift);
        assert_eq!(by_key("cores").status, MetricStatus::Info);
        assert_eq!(report.regressions().len(), 1);
        let md = report.render_markdown();
        assert!(md.contains("| warm_ms |"));
        assert!(md.contains("REGRESSED"));
    }

    #[test]
    fn perf_report_within_tolerance_is_clean() {
        let base = snap(&[("warm_ms", Value::F64(1.00))]);
        let cur = snap(&[("warm_ms", Value::F64(1.04))]);
        let report = diff_bench_snapshots(&base, &cur, 10.0);
        assert!(report.regressions().is_empty());
        assert!(report.render_markdown().contains("No regressions"));
    }

    #[test]
    fn profile_summary_partitions_time() {
        let _guard = crate::test_lock();
        crate::start_trace(crate::TraceConfig::default());
        {
            let _outer = crate::span("profile.test.outer");
            std::thread::sleep(std::time::Duration::from_millis(2));
            {
                let _inner = crate::span("profile.test.inner");
                std::thread::sleep(std::time::Duration::from_millis(2));
            }
        }
        let trace = crate::end_trace().unwrap();
        let summary = ProfileSummary::from_trace(&trace);
        let outer = summary
            .phases
            .iter()
            .find(|p| p.name == "profile.test.outer")
            .unwrap();
        let inner = summary
            .phases
            .iter()
            .find(|p| p.name == "profile.test.inner")
            .unwrap();
        // Outer's exclusive time excludes inner's inclusive time.
        assert_eq!(outer.exclusive_us, outer.inclusive_us - inner.inclusive_us);
        // Exclusive totals cover the single root span exactly.
        assert_eq!(summary.total_exclusive_us(), outer.inclusive_us);
        assert_eq!(summary.workers.len(), 1);
        assert!(summary.coverage_pct() > 90.0);
        assert_eq!(
            summary.dominant_phase().map(|p| p.name),
            Some(if outer.exclusive_us >= inner.exclusive_us {
                "profile.test.outer"
            } else {
                "profile.test.inner"
            })
        );
        let rendered = summary.render();
        assert!(rendered.contains("profile.test.outer"));
        assert!(rendered.contains("dominant phase"));
    }
}
