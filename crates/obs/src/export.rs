//! Trace exporters.
//!
//! [`chrome_trace_json`] renders a drained [`Trace`] as Chrome
//! trace-event JSON (the `{"traceEvents": [...]}` object form), which
//! loads directly in Perfetto (<https://ui.perfetto.dev>) and
//! `chrome://tracing`. Spans become `B`/`E` duration pairs, counter
//! samples become `C` events, and each thread gets an `M`
//! (`thread_name`) metadata record.
//!
//! Emission walks each thread's span tree (rebuilt from parent links)
//! depth-first, so `B`/`E` pairs are balanced and properly nested by
//! construction even though the buffers store spans in completion order.

use crate::trace::{Trace, TraceEvent, TraceEventKind};
use serde::Value;

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn attr_args(ev: &TraceEvent) -> Value {
    Value::Object(
        ev.attrs()
            .iter()
            .map(|(k, v)| (k.to_string(), Value::U64(*v)))
            .collect(),
    )
}

fn push_span_events(
    out: &mut Vec<Value>,
    spans: &[&TraceEvent],
    children: &[Vec<usize>],
    idx: usize,
) {
    let ev = spans[idx];
    let mut begin = vec![
        ("name", Value::Str(ev.name.to_string())),
        ("ph", Value::Str("B".into())),
        ("pid", Value::U64(1)),
        ("tid", Value::U64(ev.thread as u64)),
        ("ts", Value::U64(ev.start_us)),
    ];
    if !ev.attrs().is_empty() {
        begin.push(("args", attr_args(ev)));
    }
    out.push(obj(begin));
    for &child in &children[idx] {
        push_span_events(out, spans, children, child);
    }
    out.push(obj(vec![
        ("ph", Value::Str("E".into())),
        ("pid", Value::U64(1)),
        ("tid", Value::U64(ev.thread as u64)),
        ("ts", Value::U64(ev.end_us)),
    ]));
}

/// Render a trace as Chrome trace-event JSON.
pub fn chrome_trace_json(trace: &Trace) -> String {
    let mut events: Vec<Value> = Vec::new();
    for t in &trace.threads {
        let label = t
            .label
            .clone()
            .unwrap_or_else(|| format!("thread-{}", t.index));
        events.push(obj(vec![
            ("name", Value::Str("thread_name".into())),
            ("ph", Value::Str("M".into())),
            ("pid", Value::U64(1)),
            ("tid", Value::U64(t.index as u64)),
            ("args", obj(vec![("name", Value::Str(label))])),
        ]));
    }
    for thread in 0..trace.threads.len() {
        // Rebuild this thread's span forest from parent links.
        let spans: Vec<&TraceEvent> = trace
            .events
            .iter()
            .filter(|e| e.thread == thread && e.kind == TraceEventKind::Span)
            .collect();
        let index_of: std::collections::HashMap<u64, usize> =
            spans.iter().enumerate().map(|(i, e)| (e.id, i)).collect();
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); spans.len()];
        let mut roots: Vec<usize> = Vec::new();
        for (i, e) in spans.iter().enumerate() {
            match index_of.get(&e.parent) {
                Some(&p) if e.parent != 0 => children[p].push(i),
                // Parent 0 (thread root) or a parent whose span closed in
                // a different trace generation: treat as a root.
                _ => roots.push(i),
            }
        }
        let by_start = |list: &mut Vec<usize>| {
            list.sort_by_key(|&i| (spans[i].start_us, spans[i].id));
        };
        roots.sort_by_key(|&i| (spans[i].start_us, spans[i].id));
        for list in &mut children {
            by_start(list);
        }
        for &root in &roots {
            push_span_events(&mut events, &spans, &children, root);
        }
        for e in trace
            .events
            .iter()
            .filter(|e| e.thread == thread && e.kind == TraceEventKind::Counter)
        {
            events.push(obj(vec![
                ("name", Value::Str(e.name.to_string())),
                ("ph", Value::Str("C".into())),
                ("pid", Value::U64(1)),
                ("tid", Value::U64(e.thread as u64)),
                ("ts", Value::U64(e.start_us)),
                ("args", attr_args(e)),
            ]));
        }
    }
    let doc = obj(vec![
        ("traceEvents", Value::Array(events)),
        ("displayTimeUnit", Value::Str("ms".into())),
    ]);
    serde_json::to_string(&doc).expect("Value serialization is infallible")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::{end_trace, start_trace, TraceConfig};

    #[test]
    fn chrome_export_is_balanced_and_parses() {
        let _guard = crate::test_lock();
        start_trace(TraceConfig::default());
        {
            let _a = crate::span("export.test.outer").attr("epoch", 1);
            {
                let _b = crate::span("export.test.inner");
            }
            crate::counter_sample("export.test.depth", 5);
        }
        let trace = end_trace().unwrap();
        let json = chrome_trace_json(&trace);
        let v: Value = serde_json::from_str(&json).expect("export parses");
        let events = v
            .as_object()
            .and_then(|o| serde::obj_get(o, "traceEvents"))
            .and_then(|e| match e {
                Value::Array(a) => Some(a),
                _ => None,
            })
            .expect("traceEvents array");
        let ph = |e: &Value| {
            e.as_object()
                .and_then(|o| serde::obj_get(o, "ph"))
                .and_then(|p| p.as_str())
                .unwrap()
                .to_string()
        };
        let mut depth = 0i64;
        let mut begins = 0;
        let mut counters = 0;
        for e in events {
            match ph(e).as_str() {
                "B" => {
                    depth += 1;
                    begins += 1;
                }
                "E" => {
                    depth -= 1;
                    assert!(depth >= 0, "E without matching B");
                }
                "C" => counters += 1,
                "M" => {}
                other => panic!("unexpected phase {other}"),
            }
        }
        assert_eq!(depth, 0, "unbalanced B/E pairs");
        assert_eq!(begins, 2);
        assert_eq!(counters, 1);
    }
}
