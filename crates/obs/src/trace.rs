//! Structured trace trees with per-thread buffers.
//!
//! A *trace* is a bounded recording window: [`start_trace`] arms collection,
//! instrumented code records spans and counter samples into per-thread
//! buffers, and [`end_trace`] disarms collection and drains every buffer
//! into a single [`Trace`] value that the exporters in [`crate::export`]
//! and [`crate::profile`] consume.
//!
//! Design points:
//!
//! - **Span identity.** Every span gets a unique nonzero `u64` id from a
//!   global counter and a parent id (0 = root of its thread). Parent links
//!   are maintained by a thread-local "current parent" cell, so nesting is
//!   tracked without any global synchronization on the hot path.
//! - **Per-thread buffers.** Each participating thread lazily registers a
//!   preallocated event buffer with the active trace the first time it
//!   records an event. The buffer is wrapped in a `Mutex` only so the
//!   drain at `end_trace` can take it; during recording the owning thread
//!   is the only locker, so the lock is always uncontended.
//! - **Completion-ordered events.** Spans are pushed when they *close*
//!   (children before parents); exporters rebuild the tree from parent
//!   links rather than relying on buffer order.
//! - **Generations.** Buffers are keyed by a trace generation so threads
//!   that outlive a trace transparently re-register with the next one.
//!
//! Timestamps are microseconds relative to the trace epoch (the
//! `Instant` captured by `start_trace`), which keeps exports compact and
//! deterministic-width.

use std::cell::RefCell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Maximum number of key/value attributes carried inline by one event.
pub const MAX_ATTRS: usize = 4;

/// Is a recorded event a duration span or a point-in-time counter sample?
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A closed duration span (`start_us..end_us`).
    Span,
    /// An instantaneous counter sample; the value lives in `attrs[0].1`
    /// and `start_us == end_us`.
    Counter,
}

/// One recorded event: a closed span or a counter sample.
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Unique nonzero id (spans only; counters reuse the id space).
    pub id: u64,
    /// Id of the enclosing span on the same thread, or 0 for a root.
    pub parent: u64,
    /// Static event name (phase name, e.g. `"bgp.propagate"`).
    pub name: &'static str,
    /// Dense per-trace thread index (see [`Trace::threads`]).
    pub thread: usize,
    /// Start, microseconds since the trace epoch.
    pub start_us: u64,
    /// End, microseconds since the trace epoch (`>= start_us`).
    pub end_us: u64,
    /// Span or counter sample.
    pub kind: TraceEventKind,
    attrs: [(&'static str, u64); MAX_ATTRS],
    n_attrs: u8,
}

impl TraceEvent {
    /// The attributes attached to this event, in insertion order.
    pub fn attrs(&self) -> &[(&'static str, u64)] {
        &self.attrs[..self.n_attrs as usize]
    }
}

/// Configuration for a trace collection window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceConfig {
    /// Events preallocated per thread buffer. Buffers grow past this if a
    /// thread records more events, so this is a reallocation hint, not a
    /// drop threshold.
    pub buffer_capacity: usize,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig {
            buffer_capacity: 4096,
        }
    }
}

/// Identity of one thread that recorded into a trace.
#[derive(Debug, Clone)]
pub struct ThreadInfo {
    /// Dense index referenced by [`TraceEvent::thread`].
    pub index: usize,
    /// OS thread name at registration time, if any.
    pub label: Option<String>,
}

/// A drained trace: every event from every participating thread.
#[derive(Debug, Clone)]
pub struct Trace {
    /// All recorded events. Per thread, events appear in completion
    /// order; across threads no order is guaranteed.
    pub events: Vec<TraceEvent>,
    /// Threads that recorded at least one event, by dense index.
    pub threads: Vec<ThreadInfo>,
    /// Wall-clock length of the collection window in microseconds.
    pub duration_us: u64,
}

struct ThreadBuf {
    label: Option<String>,
    events: Mutex<Vec<TraceEvent>>,
}

struct TraceState {
    generation: u64,
    config: TraceConfig,
    epoch: Instant,
    threads: Vec<Arc<ThreadBuf>>,
}

/// Armed flag, read (relaxed) on the span fast path via
/// [`crate::span::refresh_active`]'s combined flag.
static TRACING: AtomicBool = AtomicBool::new(false);
static NEXT_ID: AtomicU64 = AtomicU64::new(1);
static GENERATION: AtomicU64 = AtomicU64::new(0);

fn state() -> &'static Mutex<Option<TraceState>> {
    static STATE: OnceLock<Mutex<Option<TraceState>>> = OnceLock::new();
    STATE.get_or_init(|| Mutex::new(None))
}

struct LocalCtx {
    generation: u64,
    thread: usize,
    epoch: Instant,
    buf: Arc<ThreadBuf>,
    current_parent: u64,
}

thread_local! {
    static LOCAL: RefCell<Option<LocalCtx>> = const { RefCell::new(None) };
}

/// Live span context held by an open [`crate::span::Span`].
#[derive(Debug)]
pub struct TraceCtx {
    id: u64,
    prev_parent: u64,
    start_us: u64,
    generation: u64,
}

/// True while a trace collection window is armed.
pub fn tracing_enabled() -> bool {
    TRACING.load(Ordering::Relaxed)
}

/// Arm trace collection. Replaces any previously armed (un-drained) trace.
pub fn start_trace(config: TraceConfig) {
    let mut guard = state().lock().unwrap();
    let generation = GENERATION.fetch_add(1, Ordering::Relaxed) + 1;
    NEXT_ID.store(1, Ordering::Relaxed);
    *guard = Some(TraceState {
        generation,
        config,
        epoch: Instant::now(),
        threads: Vec::new(),
    });
    TRACING.store(true, Ordering::Relaxed);
    drop(guard);
    crate::span::refresh_active();
}

/// Disarm collection and drain every per-thread buffer.
///
/// Returns `None` if no trace was armed.
pub fn end_trace() -> Option<Trace> {
    TRACING.store(false, Ordering::Relaxed);
    crate::span::refresh_active();
    let taken = state().lock().unwrap().take();
    let st = taken?;
    let duration_us = st.epoch.elapsed().as_micros() as u64;
    let mut events = Vec::new();
    let mut threads = Vec::with_capacity(st.threads.len());
    for (index, buf) in st.threads.iter().enumerate() {
        threads.push(ThreadInfo {
            index,
            label: buf.label.clone(),
        });
        events.append(&mut buf.events.lock().unwrap());
    }
    Some(Trace {
        events,
        threads,
        duration_us,
    })
}

/// One-line label of the current trace configuration, for run manifests:
/// `"off"` when disarmed, `"chrome:cap=<N>"` while a trace is armed.
pub fn trace_config_label() -> String {
    let guard = state().lock().unwrap();
    match guard.as_ref() {
        Some(st) if TRACING.load(Ordering::Relaxed) => {
            format!("chrome:cap={}", st.config.buffer_capacity)
        }
        _ => "off".to_string(),
    }
}

/// Run `f` with this thread's registered local context for the current
/// generation, registering the thread with the active trace on first use.
/// Returns `None` if tracing disarmed between the fast-path check and now.
fn with_local<R>(f: impl FnOnce(&mut LocalCtx) -> R) -> Option<R> {
    LOCAL.with(|cell| {
        let mut slot = cell.borrow_mut();
        let gen_now = GENERATION.load(Ordering::Relaxed);
        let stale = match slot.as_ref() {
            Some(ctx) => ctx.generation != gen_now,
            None => true,
        };
        if stale {
            let mut guard = state().lock().unwrap();
            let st = guard.as_mut()?;
            let buf = Arc::new(ThreadBuf {
                label: std::thread::current().name().map(str::to_string),
                events: Mutex::new(Vec::with_capacity(st.config.buffer_capacity)),
            });
            let thread = st.threads.len();
            st.threads.push(Arc::clone(&buf));
            *slot = Some(LocalCtx {
                generation: st.generation,
                thread,
                epoch: st.epoch,
                buf,
                current_parent: 0,
            });
        }
        Some(f(slot.as_mut().unwrap()))
    })
}

fn us_since(epoch: Instant, t: Instant) -> u64 {
    t.checked_duration_since(epoch)
        .map(|d| d.as_micros() as u64)
        .unwrap_or(0)
}

/// Open a traced span at time `now`. Called by [`crate::span::span`] when
/// tracing is armed; pairs with [`exit`].
pub(crate) fn enter(now: Instant) -> Option<TraceCtx> {
    with_local(|ctx| {
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let prev_parent = ctx.current_parent;
        ctx.current_parent = id;
        TraceCtx {
            id,
            prev_parent,
            start_us: us_since(ctx.epoch, now),
            generation: ctx.generation,
        }
    })
}

/// Close a traced span: restore the parent cell and push the event.
pub(crate) fn exit(
    tctx: TraceCtx,
    name: &'static str,
    end: Instant,
    attrs: [(&'static str, u64); MAX_ATTRS],
    n_attrs: u8,
) {
    LOCAL.with(|cell| {
        let mut slot = cell.borrow_mut();
        let Some(ctx) = slot.as_mut() else { return };
        // If a new trace started while this span was open, its events
        // belong to neither trace; drop them rather than corrupt links.
        if ctx.generation != tctx.generation {
            return;
        }
        ctx.current_parent = tctx.prev_parent;
        ctx.buf.events.lock().unwrap().push(TraceEvent {
            id: tctx.id,
            parent: tctx.prev_parent,
            name,
            thread: ctx.thread,
            start_us: tctx.start_us,
            end_us: us_since(ctx.epoch, end),
            kind: TraceEventKind::Span,
            attrs,
            n_attrs,
        });
    });
}

/// Record a whole span in one call from explicit start/end instants,
/// under the current parent. Used for idle stretches in the sharded
/// executor where opening a `Span` up front would itself be measured.
pub fn record_span(name: &'static str, start: Instant, end: Instant) {
    if !tracing_enabled() {
        return;
    }
    with_local(|ctx| {
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        ctx.buf.events.lock().unwrap().push(TraceEvent {
            id,
            parent: ctx.current_parent,
            name,
            thread: ctx.thread,
            start_us: us_since(ctx.epoch, start),
            end_us: us_since(ctx.epoch, end),
            kind: TraceEventKind::Span,
            attrs: [("", 0); MAX_ATTRS],
            n_attrs: 0,
        });
    });
}

/// Record an instantaneous counter sample (e.g. queue depth) under the
/// current thread. No-op when tracing is disarmed.
pub fn counter_sample(name: &'static str, value: u64) {
    if !tracing_enabled() {
        return;
    }
    let now = Instant::now();
    with_local(|ctx| {
        let id = NEXT_ID.fetch_add(1, Ordering::Relaxed);
        let ts = us_since(ctx.epoch, now);
        let mut attrs = [("", 0u64); MAX_ATTRS];
        attrs[0] = ("value", value);
        ctx.buf.events.lock().unwrap().push(TraceEvent {
            id,
            parent: ctx.current_parent,
            name,
            thread: ctx.thread,
            start_us: ts,
            end_us: ts,
            kind: TraceEventKind::Counter,
            attrs,
            n_attrs: 1,
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn trace_collects_nested_spans_with_parent_links() {
        let _guard = crate::test_lock();
        start_trace(TraceConfig::default());
        {
            let _outer = crate::span("trace.test.outer");
            let _inner = crate::span("trace.test.inner");
        }
        let trace = end_trace().expect("trace was armed");
        assert!(!tracing_enabled());
        let outer = trace
            .events
            .iter()
            .find(|e| e.name == "trace.test.outer")
            .expect("outer recorded");
        let inner = trace
            .events
            .iter()
            .find(|e| e.name == "trace.test.inner")
            .expect("inner recorded");
        assert_eq!(outer.parent, 0);
        assert_eq!(inner.parent, outer.id);
        assert!(outer.start_us <= inner.start_us);
        assert!(inner.end_us <= outer.end_us);
        assert_eq!(outer.thread, inner.thread);
    }

    #[test]
    fn counter_samples_and_attrs_round_trip() {
        let _guard = crate::test_lock();
        start_trace(TraceConfig {
            buffer_capacity: 16,
        });
        {
            let _s = crate::span("trace.test.attrs")
                .attr("epoch", 3)
                .attr("shard", 7);
            counter_sample("trace.test.depth", 42);
        }
        let trace = end_trace().unwrap();
        let span = trace
            .events
            .iter()
            .find(|e| e.name == "trace.test.attrs")
            .unwrap();
        assert_eq!(span.attrs(), &[("epoch", 3), ("shard", 7)]);
        let c = trace
            .events
            .iter()
            .find(|e| e.name == "trace.test.depth")
            .unwrap();
        assert_eq!(c.kind, TraceEventKind::Counter);
        assert_eq!(c.attrs(), &[("value", 42)]);
        assert_eq!(c.parent, span.id);
    }

    #[test]
    fn end_without_start_is_none_and_recording_when_off_is_noop() {
        let _guard = crate::test_lock();
        assert!(end_trace().is_none());
        counter_sample("trace.test.ignored", 1);
        record_span("trace.test.ignored", Instant::now(), Instant::now());
        assert!(end_trace().is_none());
        assert_eq!(trace_config_label(), "off");
    }
}
