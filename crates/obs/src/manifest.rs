//! JSONL run manifests: one `run` header line, one `epoch` line per
//! deployed configuration, and a final `metrics` snapshot line.
//!
//! The schema is stable by construction: every line is assembled as an
//! explicit key list (no derive-driven field sets), and a checked-in
//! [`validate_manifest`] asserts exact key sets so CI catches schema
//! drift. In *deterministic* mode no wall-clock-derived field is
//! emitted at all — `wall_us` is dropped from epoch lines and `time.*`
//! histograms from the metrics snapshot — so two runs of the same
//! campaign produce byte-identical manifests.

use crate::metrics::MetricsSnapshot;
use serde::{obj_get, Serialize, Value};
use std::sync::Mutex;
use std::time::Instant;

/// Manifest schema version (`schema` field of the `run` line).
///
/// Version 2 added the `shards` run-header field (non-deterministic
/// manifests only — shard counts schedule *extraction* work without
/// changing any result, so deterministic manifests omit the field the
/// same way epoch lines omit `wall_us`, keeping them byte-identical
/// across `--shards`).
///
/// Version 3 added the `delta` epoch mode and the per-epoch
/// `routes_disturbed` field (net best-route disturbance vs the previous
/// epoch's fixpoint — the workload delta propagation is proportional to;
/// 0 for memo hits, reachable-count for cold starts).
///
/// Version 4 added the `trace` run-header field (non-deterministic
/// manifests only): the trace/profile configuration label from
/// [`crate::trace::trace_config_label`] (`"off"` or e.g.
/// `"chrome:cap=4096"`). Tracing observes execution without changing
/// any result, so — like `shards` and `wall_us` — the field must never
/// appear in byte-identity-checked deterministic manifests.
pub const MANIFEST_SCHEMA_VERSION: u64 = 4;

/// Run-level header describing the whole campaign.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunInfo {
    /// Tool or scenario that produced the run (e.g. `campaign`, `fig3`).
    pub name: String,
    /// Topology seed.
    pub seed: u64,
    /// Policy (engine) seed.
    pub policy_seed: u64,
    /// Scale label (`small`/`medium`/`full`).
    pub scale: String,
    /// Executor mode (`warm`/`cold`).
    pub mode: String,
    /// Worker threads used.
    pub threads: usize,
    /// Catchment-extraction shards used (1 for unsharded executors).
    /// Rendered only in non-deterministic manifests: shards rebalance
    /// extraction work without changing any campaign result, so the
    /// deterministic manifest must not vary with them.
    pub shards: usize,
    /// Trace/profile configuration label (`"off"`, or e.g.
    /// `"chrome:cap=4096"` while a trace is armed — see
    /// [`crate::trace::trace_config_label`]). Rendered only in
    /// non-deterministic manifests, like `shards`.
    pub trace: String,
    /// Number of configurations in the schedule.
    pub schedule_len: usize,
    /// Whether wall-clock fields were suppressed.
    pub deterministic: bool,
}

/// How one epoch's routing outcome was obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EpochMode {
    /// Epoch transition reusing the previous converged state.
    Warm,
    /// Delta epoch transition: injection diff seeding + rank-ordered
    /// propagation from the previous converged state.
    Delta,
    /// Cold start from empty RIBs (includes warm-executor first
    /// deployments, violator-gate cold starts, and `Cold` campaigns).
    Cold,
    /// Served from the footprint memo cache without touching the engine.
    Memo,
}

impl EpochMode {
    /// Manifest string for this mode.
    pub fn as_str(&self) -> &'static str {
        match self {
            EpochMode::Warm => "warm",
            EpochMode::Delta => "delta",
            EpochMode::Cold => "cold",
            EpochMode::Memo => "memo",
        }
    }
}

/// One deployed configuration, as recorded by the campaign executors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochRecord {
    /// Schedule index of the configuration.
    pub epoch: usize,
    /// Canonical announcement footprint key.
    pub footprint: String,
    /// How the outcome was obtained.
    pub mode: EpochMode,
    /// Worker thread that deployed it (0 for sequential executors).
    pub thread: usize,
    /// Decision events processed during the epoch.
    pub events: usize,
    /// Convergence depth of the epoch.
    pub rounds: u32,
    /// Best-route changes during the epoch.
    pub changes: usize,
    /// ASes whose best route at this epoch's fixpoint differs from the
    /// previous fixpoint (net disturbance; 0 for memo hits).
    pub routes_disturbed: usize,
    /// Whether the epoch converged within the event cap.
    pub converged: bool,
    /// Wall time of the deployment in microseconds (`None` in
    /// deterministic mode, and for memo hits).
    pub wall_us: Option<u64>,
}

/// Thread-safe collector the campaign executors record into. Cheap when
/// absent: the executors take `Option<&CampaignRecorder>` and skip all
/// work (including clock reads) on `None`.
#[derive(Debug, Default)]
pub struct CampaignRecorder {
    deterministic: bool,
    records: Mutex<Vec<EpochRecord>>,
}

impl CampaignRecorder {
    /// A recorder; `deterministic` suppresses every wall-clock field.
    pub fn new(deterministic: bool) -> CampaignRecorder {
        CampaignRecorder {
            deterministic,
            records: Mutex::new(Vec::new()),
        }
    }

    /// Whether wall-clock fields are suppressed.
    pub fn deterministic(&self) -> bool {
        self.deterministic
    }

    /// Start timing a deployment (`None` in deterministic mode, so the
    /// clock is never read and cannot perturb anything downstream).
    pub fn start_timer(&self) -> Option<Instant> {
        if self.deterministic {
            None
        } else {
            Some(Instant::now())
        }
    }

    /// Elapsed microseconds since [`CampaignRecorder::start_timer`].
    pub fn elapsed_us(&self, start: Option<Instant>) -> Option<u64> {
        start.map(|t| t.elapsed().as_micros().min(u64::MAX as u128) as u64)
    }

    /// Record one epoch. Callable from any worker thread.
    pub fn record(&self, record: EpochRecord) {
        self.records.lock().expect("recorder lock").push(record);
    }

    /// Drain the records, sorted by epoch index. Sorting here is what
    /// makes the manifest independent of worker scheduling: parallel
    /// executors push in completion order, which is nondeterministic.
    pub fn take_records(&self) -> Vec<EpochRecord> {
        let mut records = std::mem::take(&mut *self.records.lock().expect("recorder lock"));
        records.sort_by_key(|r| r.epoch);
        records
    }
}

/// Build one JSON object from explicit entries.
fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect(),
    )
}

fn json_line(v: &Value) -> String {
    serde_json::to_string(v).expect("Value serialization is infallible")
}

/// Render the full manifest: `run` line, `epoch` lines (sorted), and a
/// `metrics` line. `records` should come from
/// [`CampaignRecorder::take_records`].
pub fn render_manifest(
    run: &RunInfo,
    records: &[EpochRecord],
    metrics: Option<&MetricsSnapshot>,
) -> String {
    let mut out = String::new();
    let mut header = vec![
        ("record", Value::Str("run".into())),
        ("schema", Value::U64(MANIFEST_SCHEMA_VERSION)),
        ("name", Value::Str(run.name.clone())),
        ("seed", Value::U64(run.seed)),
        ("policy_seed", Value::U64(run.policy_seed)),
        ("scale", Value::Str(run.scale.clone())),
        ("mode", Value::Str(run.mode.clone())),
        ("threads", Value::U64(run.threads as u64)),
    ];
    if !run.deterministic {
        // Like wall_us on epoch lines: an execution-shape detail that
        // must not appear in byte-identity-checked manifests.
        header.push(("shards", Value::U64(run.shards as u64)));
        header.push(("trace", Value::Str(run.trace.clone())));
    }
    header.push(("schedule_len", Value::U64(run.schedule_len as u64)));
    header.push(("deterministic", Value::Bool(run.deterministic)));
    out.push_str(&json_line(&obj(header)));
    out.push('\n');
    for r in records {
        let mut entries = vec![
            ("record", Value::Str("epoch".into())),
            ("epoch", Value::U64(r.epoch as u64)),
            ("footprint", Value::Str(r.footprint.clone())),
            ("mode", Value::Str(r.mode.as_str().into())),
            ("thread", Value::U64(r.thread as u64)),
            ("events", Value::U64(r.events as u64)),
            ("rounds", Value::U64(r.rounds as u64)),
            ("changes", Value::U64(r.changes as u64)),
            ("routes_disturbed", Value::U64(r.routes_disturbed as u64)),
            ("converged", Value::Bool(r.converged)),
        ];
        if !run.deterministic {
            if let Some(us) = r.wall_us {
                entries.push(("wall_us", Value::U64(us)));
            }
        }
        out.push_str(&json_line(&obj(entries)));
        out.push('\n');
    }
    if let Some(m) = metrics {
        let m = if run.deterministic {
            m.without_time()
        } else {
            m.clone()
        };
        out.push_str(&json_line(&obj(vec![
            ("record", Value::Str("metrics".into())),
            ("counters", m.counters.to_value()),
            ("gauges", m.gauges.to_value()),
            ("histograms", m.histograms.to_value()),
        ])));
        out.push('\n');
    }
    out
}

/// Render and write a manifest to `path`.
pub fn write_manifest(
    path: &str,
    run: &RunInfo,
    records: &[EpochRecord],
    metrics: Option<&MetricsSnapshot>,
) -> std::io::Result<()> {
    std::fs::write(path, render_manifest(run, records, metrics))
}

/// Summary returned by [`validate_manifest`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ManifestSummary {
    /// `schedule_len` from the run header.
    pub schedule_len: usize,
    /// Number of epoch lines.
    pub epochs: usize,
    /// Epochs deployed as warm transitions.
    pub warm: usize,
    /// Epochs deployed as delta transitions.
    pub delta: usize,
    /// Epochs deployed as cold starts.
    pub cold: usize,
    /// Epochs served from the memo cache.
    pub memo: usize,
    /// Whether the run declared deterministic mode.
    pub deterministic: bool,
}

/// Run-header keys of a *deterministic* manifest. Non-deterministic
/// manifests additionally carry `shards` (schema 2) and `trace`
/// (schema 4).
const RUN_KEYS: &[&str] = &[
    "record",
    "schema",
    "name",
    "seed",
    "policy_seed",
    "scale",
    "mode",
    "threads",
    "schedule_len",
    "deterministic",
];
const EPOCH_KEYS: &[&str] = &[
    "record",
    "epoch",
    "footprint",
    "mode",
    "thread",
    "events",
    "rounds",
    "changes",
    "routes_disturbed",
    "converged",
];
const METRICS_KEYS: &[&str] = &["record", "counters", "gauges", "histograms"];

fn key_set(obj: &[(String, Value)]) -> Vec<&str> {
    let mut keys: Vec<&str> = obj.iter().map(|(k, _)| k.as_str()).collect();
    keys.sort_unstable();
    keys
}

fn expect_keys(line: usize, obj: &[(String, Value)], want: &[&str]) -> Result<(), String> {
    let mut expected: Vec<&str> = want.to_vec();
    expected.sort_unstable();
    let got = key_set(obj);
    if got != expected {
        return Err(format!(
            "line {line}: key set {got:?} does not match schema {expected:?}"
        ));
    }
    Ok(())
}

fn get_u64(line: usize, obj: &[(String, Value)], key: &str) -> Result<u64, String> {
    match obj_get(obj, key) {
        Some(Value::U64(n)) => Ok(*n),
        other => Err(format!("line {line}: {key} is {other:?}, expected u64")),
    }
}

fn get_str<'a>(line: usize, obj: &'a [(String, Value)], key: &str) -> Result<&'a str, String> {
    obj_get(obj, key)
        .and_then(|v| v.as_str())
        .ok_or_else(|| format!("line {line}: {key} missing or not a string"))
}

fn get_bool(line: usize, obj: &[(String, Value)], key: &str) -> Result<bool, String> {
    match obj_get(obj, key) {
        Some(Value::Bool(b)) => Ok(*b),
        other => Err(format!("line {line}: {key} is {other:?}, expected bool")),
    }
}

/// Validate a manifest against the schema: exact key sets per record
/// kind, a `run` header first, exactly one `epoch` line per schedule
/// index (each index exactly once), modes from the
/// `warm|delta|cold|memo` vocabulary, and — when the run declares deterministic mode — no
/// `wall_us` anywhere and no `time.*` histograms.
pub fn validate_manifest(text: &str) -> Result<ManifestSummary, String> {
    let mut lines = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        if raw.trim().is_empty() {
            continue;
        }
        let v: Value =
            serde_json::from_str(raw).map_err(|e| format!("line {}: bad JSON: {e}", i + 1))?;
        lines.push((i + 1, v));
    }
    let Some(((first_no, first), rest)) = lines.split_first() else {
        return Err("empty manifest".into());
    };
    let header = first
        .as_object()
        .ok_or(format!("line {first_no}: run header is not an object"))?;
    if get_str(*first_no, header, "record")? != "run" {
        return Err(format!("line {first_no}: first record must be \"run\""));
    }
    let deterministic = get_bool(*first_no, header, "deterministic")?;
    if deterministic {
        expect_keys(*first_no, header, RUN_KEYS)?;
    } else {
        let mut with_shards: Vec<&str> = RUN_KEYS.to_vec();
        with_shards.push("shards");
        with_shards.push("trace");
        expect_keys(*first_no, header, &with_shards)?;
        get_u64(*first_no, header, "shards")?;
        get_str(*first_no, header, "trace")?;
    }
    let schema = get_u64(*first_no, header, "schema")?;
    if schema != MANIFEST_SCHEMA_VERSION {
        return Err(format!(
            "line {first_no}: schema {schema} != {MANIFEST_SCHEMA_VERSION}"
        ));
    }
    let schedule_len = get_u64(*first_no, header, "schedule_len")? as usize;
    get_u64(*first_no, header, "seed")?;
    get_u64(*first_no, header, "policy_seed")?;
    get_u64(*first_no, header, "threads")?;
    get_str(*first_no, header, "name")?;
    get_str(*first_no, header, "scale")?;
    get_str(*first_no, header, "mode")?;

    let mut seen_epochs = vec![false; schedule_len];
    let mut summary = ManifestSummary {
        schedule_len,
        epochs: 0,
        warm: 0,
        delta: 0,
        cold: 0,
        memo: 0,
        deterministic,
    };
    let mut saw_metrics = false;
    for (no, v) in rest {
        let record = v
            .as_object()
            .ok_or(format!("line {no}: record is not an object"))?;
        match get_str(*no, record, "record")? {
            "epoch" => {
                if saw_metrics {
                    return Err(format!("line {no}: epoch after metrics record"));
                }
                if deterministic {
                    expect_keys(*no, record, EPOCH_KEYS)?;
                } else {
                    // wall_us is optional (memo hits omit it).
                    let mut with_wall: Vec<&str> = EPOCH_KEYS.to_vec();
                    with_wall.push("wall_us");
                    expect_keys(*no, record, EPOCH_KEYS)
                        .or_else(|_| expect_keys(*no, record, &with_wall))?;
                }
                let epoch = get_u64(*no, record, "epoch")? as usize;
                if epoch >= schedule_len {
                    return Err(format!("line {no}: epoch {epoch} >= {schedule_len}"));
                }
                if seen_epochs[epoch] {
                    return Err(format!("line {no}: duplicate epoch {epoch}"));
                }
                seen_epochs[epoch] = true;
                summary.epochs += 1;
                match get_str(*no, record, "mode")? {
                    "warm" => summary.warm += 1,
                    "delta" => summary.delta += 1,
                    "cold" => summary.cold += 1,
                    "memo" => summary.memo += 1,
                    other => return Err(format!("line {no}: unknown epoch mode {other:?}")),
                }
                get_str(*no, record, "footprint")?;
                get_u64(*no, record, "thread")?;
                get_u64(*no, record, "events")?;
                get_u64(*no, record, "rounds")?;
                get_u64(*no, record, "changes")?;
                get_u64(*no, record, "routes_disturbed")?;
                get_bool(*no, record, "converged")?;
            }
            "metrics" => {
                if saw_metrics {
                    return Err(format!("line {no}: duplicate metrics record"));
                }
                saw_metrics = true;
                expect_keys(*no, record, METRICS_KEYS)?;
                let histograms = obj_get(record, "histograms")
                    .and_then(|v| v.as_object())
                    .ok_or(format!("line {no}: histograms is not an object"))?;
                if deterministic {
                    if let Some((k, _)) = histograms.iter().find(|(k, _)| k.starts_with("time.")) {
                        return Err(format!(
                            "line {no}: wall-clock histogram {k:?} in deterministic manifest"
                        ));
                    }
                }
            }
            other => return Err(format!("line {no}: unknown record kind {other:?}")),
        }
    }
    if summary.epochs != schedule_len {
        return Err(format!(
            "{} epoch records for schedule_len {schedule_len}",
            summary.epochs
        ));
    }
    Ok(summary)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::Registry;

    fn run_info(deterministic: bool) -> RunInfo {
        RunInfo {
            name: "test".into(),
            seed: 7,
            policy_seed: 9,
            scale: "small".into(),
            mode: "warm".into(),
            threads: 1,
            shards: 1,
            trace: "off".into(),
            schedule_len: 2,
            deterministic,
        }
    }

    fn records(wall: Option<u64>) -> Vec<EpochRecord> {
        vec![
            EpochRecord {
                epoch: 0,
                footprint: "⟨{l0}⟩".into(),
                mode: EpochMode::Cold,
                thread: 0,
                events: 10,
                rounds: 3,
                changes: 5,
                routes_disturbed: 5,
                converged: true,
                wall_us: wall,
            },
            EpochRecord {
                epoch: 1,
                footprint: "⟨{l1}⟩".into(),
                mode: EpochMode::Warm,
                thread: 0,
                events: 4,
                rounds: 1,
                changes: 2,
                routes_disturbed: 2,
                converged: true,
                wall_us: wall,
            },
        ]
    }

    #[test]
    fn roundtrip_validates() {
        let reg = Registry::new();
        reg.counter("bgp.events").add(14);
        reg.histogram("time.deploy").observe(120);
        let snap = reg.snapshot();

        let text = render_manifest(&run_info(false), &records(Some(33)), Some(&snap));
        let s = validate_manifest(&text).expect("valid manifest");
        assert_eq!(s.epochs, 2);
        assert_eq!(s.warm, 1);
        assert_eq!(s.cold, 1);
        assert!(text.contains("wall_us"));
        assert!(text.contains("time.deploy"));
        assert!(text.contains("\"shards\":1"));
        assert!(text.contains("\"trace\":\"off\""));

        let det = render_manifest(&run_info(true), &records(Some(33)), Some(&snap));
        let s = validate_manifest(&det).expect("valid deterministic manifest");
        assert!(s.deterministic);
        assert!(!det.contains("wall_us"), "wall-clock field leaked: {det}");
        assert!(!det.contains("time."), "wall-clock histogram leaked");
        assert!(!det.contains("shards"), "execution-shape field leaked");
        assert!(!det.contains("trace"), "trace config leaked");
    }

    #[test]
    fn deterministic_header_is_shard_invariant() {
        let mut a = run_info(true);
        let mut b = run_info(true);
        a.shards = 1;
        b.shards = 8;
        assert_eq!(
            render_manifest(&a, &records(None), None),
            render_manifest(&b, &records(None), None),
        );
    }

    #[test]
    fn recorder_sorts_by_epoch() {
        let rec = CampaignRecorder::new(true);
        assert!(rec.start_timer().is_none());
        for r in records(None).into_iter().rev() {
            rec.record(r);
        }
        let sorted = rec.take_records();
        assert_eq!(sorted[0].epoch, 0);
        assert_eq!(sorted[1].epoch, 1);
        assert!(rec.take_records().is_empty());
    }

    #[test]
    fn delta_epochs_validate_and_count() {
        let mut recs = records(None);
        recs[1].mode = EpochMode::Delta;
        let text = render_manifest(&run_info(true), &recs, None);
        let s = validate_manifest(&text).expect("valid delta manifest");
        assert_eq!(s.delta, 1);
        assert_eq!(s.warm, 0);
        assert!(text.contains("\"mode\":\"delta\""));
        assert!(text.contains("\"routes_disturbed\":2"));
    }

    #[test]
    fn validator_rejects_schema_drift() {
        let good = render_manifest(&run_info(false), &records(None), None);
        // Missing epoch 1.
        let one_epoch: String = good.lines().take(2).collect::<Vec<_>>().join("\n");
        assert!(validate_manifest(&one_epoch).is_err());
        // Unknown field.
        let drifted = good.replace("\"rounds\":", "\"bogus\":");
        assert!(validate_manifest(&drifted).is_err());
        // Duplicate epoch.
        let dup = good.replace("\"epoch\":1", "\"epoch\":0");
        assert!(validate_manifest(&dup).is_err());
        // Bad mode vocabulary.
        let bad_mode = good.replace(
            "\"mode\":\"warm\",\"thread\"",
            "\"mode\":\"hot\",\"thread\"",
        );
        assert!(validate_manifest(&bad_mode).is_err());
        // wall_us in a deterministic run.
        let det_header = good.replace("\"deterministic\":false", "\"deterministic\":true");
        let leaked = det_header.replace("\"converged\":true}", "\"converged\":true,\"wall_us\":5}");
        assert!(validate_manifest(&leaked).is_err());
        // shards in a deterministic header (it leaks execution shape).
        assert!(
            validate_manifest(&det_header).is_err(),
            "deterministic header must not carry shards"
        );
        // A non-deterministic header without shards is schema drift too.
        let shardless = good.replace("\"shards\":1,", "");
        assert!(validate_manifest(&shardless).is_err());
        // Same for the trace label (schema 4).
        let traceless = good.replace("\"trace\":\"off\",", "");
        assert!(validate_manifest(&traceless).is_err());
        assert!(validate_manifest("").is_err());
    }
}
