//! Thread-safe metrics: atomic counters, gauges, and fixed-bucket
//! histograms, collected in a named registry.
//!
//! Buckets are powers of two: observation `v` lands in bucket
//! `⌈log2(v+1)⌉`, so bucket `i` covers `(2^(i-1), 2^i]` (bucket 0 holds
//! exactly 0). Quantiles are reported as the upper bound of the bucket
//! containing the requested rank — an over-estimate by at most 2×, which
//! is plenty for latency/size distributions and keeps `observe` a single
//! atomic increment.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, OnceLock, RwLock};

/// Number of histogram buckets: bucket 63 covers everything above `2^62`.
const NUM_BUCKETS: usize = 64;

/// A monotonically increasing atomic counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Increment by one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Increment by `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed gauge: a level that can move both ways.
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// Set to an absolute value.
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Add a (possibly negative) delta.
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A fixed-bucket power-of-two histogram with exact count/sum/min/max.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; NUM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

/// Bucket index of observation `v`: 0 for 0, else `64 - leading_zeros`,
/// capped at the last bucket.
fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        ((u64::BITS - v.leading_zeros()) as usize).min(NUM_BUCKETS - 1)
    }
}

/// Upper bound of bucket `i` (the value quantiles report).
fn bucket_upper(i: usize) -> u64 {
    if i == 0 {
        0
    } else if i >= 63 {
        u64::MAX
    } else {
        1u64 << i
    }
}

impl Histogram {
    /// Record one observation.
    pub fn observe(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
        self.min.fetch_min(v, Ordering::Relaxed);
        self.max.fetch_max(v, Ordering::Relaxed);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A consistent-enough point-in-time snapshot. Concurrent `observe`
    /// calls may skew quantiles by a few samples; counts and sums are
    /// exact for any quiesced histogram.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let count = self.count.load(Ordering::Relaxed);
        let min = self.min.load(Ordering::Relaxed);
        let buckets: Vec<u64> = self
            .buckets
            .iter()
            .map(|b| b.load(Ordering::Relaxed))
            .collect();
        let quantile = |q: f64| -> u64 {
            if count == 0 {
                return 0;
            }
            // Rank of the q-th sample (1-based, clamped).
            let rank = ((q * count as f64).ceil() as u64).clamp(1, count);
            let mut seen = 0u64;
            for (i, &b) in buckets.iter().enumerate() {
                seen += b;
                if seen >= rank {
                    return bucket_upper(i);
                }
            }
            bucket_upper(NUM_BUCKETS - 1)
        };
        HistogramSnapshot {
            count,
            sum: self.sum.load(Ordering::Relaxed),
            min: if min == u64::MAX { 0 } else { min },
            max: self.max.load(Ordering::Relaxed),
            p50: quantile(0.50),
            p95: quantile(0.95),
            p99: quantile(0.99),
        }
    }
}

/// Point-in-time view of a [`Histogram`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct HistogramSnapshot {
    /// Number of observations.
    pub count: u64,
    /// Sum of all observations.
    pub sum: u64,
    /// Smallest observation (0 when empty).
    pub min: u64,
    /// Largest observation.
    pub max: u64,
    /// Median (bucket upper bound).
    pub p50: u64,
    /// 95th percentile (bucket upper bound).
    pub p95: u64,
    /// 99th percentile (bucket upper bound).
    pub p99: u64,
}

/// Point-in-time view of a whole [`Registry`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsSnapshot {
    /// Counter values by name.
    pub counters: BTreeMap<String, u64>,
    /// Gauge values by name.
    pub gauges: BTreeMap<String, i64>,
    /// Histogram snapshots by name.
    pub histograms: BTreeMap<String, HistogramSnapshot>,
}

impl MetricsSnapshot {
    /// Copy of this snapshot with every wall-clock-derived metric
    /// (`time.*` histograms) removed — the deterministic-manifest view.
    pub fn without_time(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self.counters.clone(),
            gauges: self.gauges.clone(),
            histograms: self
                .histograms
                .iter()
                .filter(|(k, _)| !k.starts_with("time."))
                .map(|(k, v)| (k.clone(), v.clone()))
                .collect(),
        }
    }
}

/// A named collection of metrics. Handles are `Arc`s: resolve once, then
/// update lock-free.
#[derive(Debug, Default)]
pub struct Registry {
    counters: RwLock<BTreeMap<String, Arc<Counter>>>,
    gauges: RwLock<BTreeMap<String, Arc<Gauge>>>,
    histograms: RwLock<BTreeMap<String, Arc<Histogram>>>,
}

/// Get-or-create in one of the registry maps (read-lock fast path).
fn resolve<T: Default>(map: &RwLock<BTreeMap<String, Arc<T>>>, name: &str) -> Arc<T> {
    if let Some(m) = map.read().expect("registry lock").get(name) {
        return Arc::clone(m);
    }
    let mut w = map.write().expect("registry lock");
    Arc::clone(w.entry(name.to_string()).or_default())
}

impl Registry {
    /// An empty registry (tests; the process-wide one is [`global`]).
    pub fn new() -> Registry {
        Registry::default()
    }

    /// Get or create the counter `name`.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        resolve(&self.counters, name)
    }

    /// Get or create the gauge `name`.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        resolve(&self.gauges, name)
    }

    /// Get or create the histogram `name`.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        resolve(&self.histograms, name)
    }

    /// Snapshot every metric currently registered.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .read()
                .expect("registry lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            gauges: self
                .gauges
                .read()
                .expect("registry lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.get()))
                .collect(),
            histograms: self
                .histograms
                .read()
                .expect("registry lock")
                .iter()
                .map(|(k, v)| (k.clone(), v.snapshot()))
                .collect(),
        }
    }
}

/// The process-wide registry all instrumentation records into.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_math() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 1);
        assert_eq!(bucket_index(2), 2);
        assert_eq!(bucket_index(3), 2);
        assert_eq!(bucket_index(4), 3);
        assert_eq!(bucket_index(1024), 11);
        assert_eq!(bucket_index(u64::MAX), NUM_BUCKETS - 1);
        assert_eq!(bucket_upper(0), 0);
        assert_eq!(bucket_upper(2), 4);
        assert_eq!(bucket_upper(63), u64::MAX);
    }

    #[test]
    fn histogram_quantiles_and_extrema() {
        let h = Histogram::default();
        for v in 1..=100u64 {
            h.observe(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 100);
        assert_eq!(s.sum, 5050);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        // The true p50 is 50 → bucket (32,64] → upper bound 64; the
        // quantile never under-reports and never exceeds 2× the truth.
        assert_eq!(s.p50, 64);
        assert_eq!(s.p95, 128);
        assert_eq!(s.p99, 128);
    }

    #[test]
    fn empty_histogram_snapshot_is_zero() {
        let s = Histogram::default().snapshot();
        assert_eq!(
            s,
            HistogramSnapshot {
                count: 0,
                sum: 0,
                min: 0,
                max: 0,
                p50: 0,
                p95: 0,
                p99: 0
            }
        );
    }

    #[test]
    fn counter_atomicity_under_threads() {
        let reg = Registry::new();
        let n_threads = 8;
        let per_thread = 10_000u64;
        std::thread::scope(|s| {
            for _ in 0..n_threads {
                let c = reg.counter("t.hits");
                let h = reg.histogram("t.sizes");
                s.spawn(move || {
                    for i in 0..per_thread {
                        c.inc();
                        h.observe(i % 7);
                    }
                });
            }
        });
        assert_eq!(reg.counter("t.hits").get(), n_threads * per_thread);
        assert_eq!(reg.histogram("t.sizes").count(), n_threads * per_thread);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::default();
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn without_time_drops_only_time_histograms() {
        let reg = Registry::new();
        reg.counter("a").inc();
        reg.histogram("time.x").observe(5);
        reg.histogram("size.x").observe(5);
        let snap = reg.snapshot().without_time();
        assert!(snap.counters.contains_key("a"));
        assert!(!snap.histograms.contains_key("time.x"));
        assert!(snap.histograms.contains_key("size.x"));
    }
}
