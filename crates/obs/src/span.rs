//! Scoped span timers with a pluggable sink.
//!
//! Spans are *disabled by default*: until a sink is installed,
//! [`span`] returns an inert guard whose construction and drop are a
//! single relaxed atomic load each — no clock reads, no allocation —
//! so instrumented hot paths pay nothing (the warm-start campaign
//! speedup is not regressed). With a sink installed, each span reads
//! the monotonic clock twice, feeds a `time.<name>` histogram in the
//! global registry, and reports a [`SpanRecord`] to the sink.

use crate::metrics::global;
use std::cell::Cell;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// One finished span, as delivered to a [`SpanSink`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (e.g. `campaign.run`).
    pub name: &'static str,
    /// Nesting depth at the time the span was *opened* (1 = top level).
    pub depth: usize,
    /// Elapsed wall time in microseconds.
    pub micros: u64,
}

/// Receives finished spans. Implementations must be cheap: they run
/// inline on the instrumented thread.
pub trait SpanSink: Send + Sync {
    /// Called once per finished span.
    fn record(&self, span: &SpanRecord);
}

static ENABLED: AtomicBool = AtomicBool::new(false);
static SINK: RwLock<Option<Arc<dyn SpanSink>>> = RwLock::new(None);

/// Install (or with `None`, remove) the process-wide span sink. Spans
/// are timed only while a sink is installed.
pub fn set_span_sink(sink: Option<Arc<dyn SpanSink>>) {
    let mut w = SINK.write().expect("span sink lock");
    ENABLED.store(sink.is_some(), Ordering::SeqCst);
    *w = sink;
}

/// Whether spans are currently being timed.
pub fn spans_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
}

/// RAII guard returned by [`span`]; reports on drop.
#[must_use = "a span measures the scope it is bound to"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

/// Open a scoped span. Inert (no clock read) unless a sink is installed.
pub fn span(name: &'static str) -> Span {
    if !ENABLED.load(Ordering::Relaxed) {
        return Span { name, start: None };
    }
    DEPTH.with(|d| d.set(d.get() + 1));
    Span {
        name,
        start: Some(Instant::now()),
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let micros = start.elapsed().as_micros().min(u64::MAX as u128) as u64;
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v - 1);
            v
        });
        global()
            .histogram(&format!("time.{}", self.name))
            .observe(micros);
        // Clone out of the lock so a slow sink cannot block installs.
        let sink = SINK.read().expect("span sink lock").clone();
        if let Some(sink) = sink {
            sink.record(&SpanRecord {
                name: self.name,
                depth,
                micros,
            });
        }
    }
}

/// Sink printing one parseable line per span to stderr:
/// `obs span name=<name> depth=<d> us=<micros>`.
#[derive(Debug, Default)]
pub struct StderrSink;

impl SpanSink for StderrSink {
    fn record(&self, span: &SpanRecord) {
        eprintln!(
            "obs span name={} depth={} us={}",
            span.name, span.depth, span.micros
        );
    }
}

/// Sink buffering spans in memory (tests and overhead probes).
#[derive(Debug, Default)]
pub struct CollectingSink {
    records: Mutex<Vec<SpanRecord>>,
}

impl CollectingSink {
    /// A new, empty sink.
    pub fn new() -> CollectingSink {
        CollectingSink::default()
    }

    /// All spans recorded so far.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.records.lock().expect("collecting sink lock").clone()
    }
}

impl SpanSink for CollectingSink {
    fn record(&self, span: &SpanRecord) {
        self.records
            .lock()
            .expect("collecting sink lock")
            .push(span.clone());
    }
}

/// Sink that counts spans but stores nothing — the cheapest *enabled*
/// sink, used to bound instrumentation overhead.
#[derive(Debug, Default)]
pub struct NullSink;

impl SpanSink for NullSink {
    fn record(&self, _span: &SpanRecord) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    // The sink is process-global, so the span tests share one #[test]
    // (cargo runs tests in threads; two tests swapping the sink race).
    #[test]
    fn spans_nest_and_disable() {
        // Disabled: inert guard, nothing recorded.
        assert!(!spans_enabled());
        drop(span("never"));

        let sink = Arc::new(CollectingSink::new());
        set_span_sink(Some(sink.clone()));
        {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        set_span_sink(None);
        drop(span("after"));

        let records = sink.records();
        assert_eq!(records.len(), 2);
        // Inner drops first, at depth 2.
        assert_eq!(records[0].name, "inner");
        assert_eq!(records[0].depth, 2);
        assert_eq!(records[1].name, "outer");
        assert_eq!(records[1].depth, 1);
        // Enabled spans feed time.* histograms.
        assert!(global().histogram("time.outer").count() >= 1);
        assert_eq!(global().histogram("time.never").count(), 0);
    }
}
