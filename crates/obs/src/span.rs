//! Scoped span timers with a pluggable sink and optional trace capture.
//!
//! Spans are *disabled by default*: until a sink is installed or a trace
//! is armed ([`crate::trace::start_trace`]), [`span`] returns an inert
//! guard whose construction and drop are a single relaxed atomic load
//! each — no clock reads, no allocation — so instrumented hot paths pay
//! nothing (the warm-start campaign speedup is not regressed).
//!
//! With a sink installed, each span reads the monotonic clock twice,
//! feeds a `time.<name>` histogram in the global registry, and reports a
//! [`SpanRecord`] to the sink. The histogram handle is resolved once at
//! span *open* and the sink is cached per thread (keyed by an install
//! generation), so enabled spans do no allocation and take no global
//! lock on the drop path.
//!
//! While a trace is armed, each span additionally records a
//! [`crate::trace::TraceEvent`] with id, parent link, thread index,
//! timestamps, and any [`Span::attr`] attributes into the per-thread
//! trace buffer. Tracing alone does *not* feed `time.*` histograms, so
//! deterministic metrics snapshots are unaffected by profiling runs.

use crate::metrics::{global, Histogram};
use crate::trace::{self, TraceCtx, MAX_ATTRS};
use std::cell::{Cell, RefCell};
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

/// One finished span, as delivered to a [`SpanSink`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    /// Span name (e.g. `campaign.run`).
    pub name: &'static str,
    /// Nesting depth at the time the span was *opened* (1 = top level).
    pub depth: usize,
    /// Elapsed wall time in microseconds.
    pub micros: u64,
}

/// Receives finished spans. Implementations must be cheap: they run
/// inline on the instrumented thread.
pub trait SpanSink: Send + Sync {
    /// Called once per finished span.
    fn record(&self, span: &SpanRecord);
}

/// Combined fast-path flag: sink installed OR trace armed. The single
/// relaxed load of this flag is the entire cost of an inert span.
static ACTIVE: AtomicBool = AtomicBool::new(false);
static SINK_INSTALLED: AtomicBool = AtomicBool::new(false);
/// Bumped on every [`set_span_sink`] call; per-thread sink caches
/// revalidate against it instead of taking the `RwLock` per span.
static SINK_GEN: AtomicU64 = AtomicU64::new(0);
static SINK: RwLock<Option<Arc<dyn SpanSink>>> = RwLock::new(None);

/// Recompute the combined fast-path flag. Called by [`set_span_sink`]
/// and by trace arm/disarm.
pub(crate) fn refresh_active() {
    let on = SINK_INSTALLED.load(Ordering::Relaxed) || trace::tracing_enabled();
    ACTIVE.store(on, Ordering::SeqCst);
}

/// Install (or with `None`, remove) the process-wide span sink. Spans
/// are timed while a sink is installed or a trace is armed.
pub fn set_span_sink(sink: Option<Arc<dyn SpanSink>>) {
    let mut w = SINK.write().expect("span sink lock");
    SINK_INSTALLED.store(sink.is_some(), Ordering::SeqCst);
    *w = sink;
    SINK_GEN.fetch_add(1, Ordering::SeqCst);
    drop(w);
    refresh_active();
}

/// Whether spans are currently being timed (sink installed or trace armed).
pub fn spans_enabled() -> bool {
    ACTIVE.load(Ordering::Relaxed)
}

thread_local! {
    static DEPTH: Cell<usize> = const { Cell::new(0) };
    /// Histogram handles resolved once per (thread, span name): avoids
    /// the `format!("time.{name}")` allocation and registry lock per drop.
    static HIST_CACHE: RefCell<HashMap<&'static str, Arc<Histogram>>> =
        RefCell::new(HashMap::new());
    /// (generation, sink) — revalidated against `SINK_GEN` per span open.
    static SINK_CACHE: RefCell<(u64, Option<Arc<dyn SpanSink>>)> =
        const { RefCell::new((0, None)) };
}

fn cached_histogram(name: &'static str) -> Arc<Histogram> {
    HIST_CACHE.with(|cache| {
        Arc::clone(
            cache
                .borrow_mut()
                .entry(name)
                .or_insert_with(|| global().histogram(&format!("time.{name}"))),
        )
    })
}

fn cached_sink() -> Option<Arc<dyn SpanSink>> {
    SINK_CACHE.with(|cache| {
        let mut slot = cache.borrow_mut();
        let gen_now = SINK_GEN.load(Ordering::Acquire);
        if slot.0 != gen_now {
            *slot = (gen_now, SINK.read().expect("span sink lock").clone());
        }
        slot.1.clone()
    })
}

/// RAII guard returned by [`span`]; reports on drop.
#[must_use = "a span measures the scope it is bound to"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
    hist: Option<Arc<Histogram>>,
    trace: Option<TraceCtx>,
    attrs: [(&'static str, u64); MAX_ATTRS],
    n_attrs: u8,
}

/// Open a scoped span. Inert (no clock read) unless a sink is installed
/// or a trace is armed.
pub fn span(name: &'static str) -> Span {
    if !ACTIVE.load(Ordering::Relaxed) {
        return Span {
            name,
            start: None,
            hist: None,
            trace: None,
            attrs: [("", 0); MAX_ATTRS],
            n_attrs: 0,
        };
    }
    let now = Instant::now();
    let sinking = SINK_INSTALLED.load(Ordering::Relaxed);
    if sinking {
        DEPTH.with(|d| d.set(d.get() + 1));
    }
    Span {
        name,
        start: Some(now),
        hist: sinking.then(|| cached_histogram(name)),
        trace: if trace::tracing_enabled() {
            trace::enter(now)
        } else {
            None
        },
        attrs: [("", 0); MAX_ATTRS],
        n_attrs: 0,
    }
}

impl Span {
    /// Attach a `u64` attribute (builder style). No-op when the span is
    /// inert or already carries [`MAX_ATTRS`] attributes.
    pub fn attr(mut self, key: &'static str, value: u64) -> Span {
        self.set_attr(key, value);
        self
    }

    /// Attach a `u64` attribute in place; same semantics as [`Span::attr`].
    pub fn set_attr(&mut self, key: &'static str, value: u64) {
        if self.start.is_none() {
            return;
        }
        let n = self.n_attrs as usize;
        if n < MAX_ATTRS {
            self.attrs[n] = (key, value);
            self.n_attrs += 1;
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let end = Instant::now();
        if let Some(tctx) = self.trace.take() {
            trace::exit(tctx, self.name, end, self.attrs, self.n_attrs);
        }
        let Some(hist) = self.hist.take() else { return };
        let micros = end
            .checked_duration_since(start)
            .map(|d| d.as_micros().min(u64::MAX as u128) as u64)
            .unwrap_or(0);
        let depth = DEPTH.with(|d| {
            let v = d.get();
            d.set(v - 1);
            v
        });
        hist.observe(micros);
        if let Some(sink) = cached_sink() {
            sink.record(&SpanRecord {
                name: self.name,
                depth,
                micros,
            });
        }
    }
}

/// Sink printing one parseable line per span to stderr:
/// `obs span name=<name> depth=<d> us=<micros>`.
#[derive(Debug, Default)]
pub struct StderrSink;

impl SpanSink for StderrSink {
    fn record(&self, span: &SpanRecord) {
        eprintln!(
            "obs span name={} depth={} us={}",
            span.name, span.depth, span.micros
        );
    }
}

/// Sink buffering spans in memory (tests and overhead probes).
#[derive(Debug, Default)]
pub struct CollectingSink {
    records: Mutex<Vec<SpanRecord>>,
}

impl CollectingSink {
    /// A new, empty sink.
    pub fn new() -> CollectingSink {
        CollectingSink::default()
    }

    /// All spans recorded so far.
    pub fn records(&self) -> Vec<SpanRecord> {
        self.records.lock().expect("collecting sink lock").clone()
    }
}

impl SpanSink for CollectingSink {
    fn record(&self, span: &SpanRecord) {
        self.records
            .lock()
            .expect("collecting sink lock")
            .push(span.clone());
    }
}

/// Sink that counts spans but stores nothing — the cheapest *enabled*
/// sink, used to bound instrumentation overhead.
#[derive(Debug, Default)]
pub struct NullSink;

impl SpanSink for NullSink {
    fn record(&self, _span: &SpanRecord) {}
}

#[cfg(test)]
mod tests {
    use super::*;

    // The sink is process-global, so the span tests share one #[test]
    // (cargo runs tests in threads; two tests swapping the sink race).
    #[test]
    fn spans_nest_and_disable() {
        let _guard = crate::test_lock();
        // Disabled: inert guard, nothing recorded.
        assert!(!spans_enabled());
        drop(span("never"));

        let sink = Arc::new(CollectingSink::new());
        set_span_sink(Some(sink.clone()));
        {
            let _outer = span("outer");
            let _inner = span("inner");
        }
        set_span_sink(None);
        drop(span("after"));

        let records = sink.records();
        assert_eq!(records.len(), 2);
        // Inner drops first, at depth 2.
        assert_eq!(records[0].name, "inner");
        assert_eq!(records[0].depth, 2);
        assert_eq!(records[1].name, "outer");
        assert_eq!(records[1].depth, 1);
        // Enabled spans feed time.* histograms.
        assert!(global().histogram("time.outer").count() >= 1);
        assert_eq!(global().histogram("time.never").count(), 0);
    }
}
