//! # trackdown-obs
//!
//! In-tree observability for the trackdown pipeline: a thread-safe
//! metrics registry, scoped span timers with a pluggable sink, uniform
//! progress events, and JSONL run manifests. Hand-rolled and
//! dependency-light — the build is fully offline, so this is not a
//! `tracing` vendor drop.
//!
//! Design constraints, in order:
//!
//! 1. **Zero cost when off.** Spans are inert (one relaxed atomic load,
//!    no clock read) until a sink is installed; campaign recorders are
//!    `Option<&CampaignRecorder>` and skip everything on `None`.
//!    Counters are single relaxed atomic adds on pre-resolved handles.
//! 2. **Determinism-safe.** Instrumentation never feeds back into
//!    results: recorders only *read* outcomes, parallel records are
//!    re-sorted by schedule index, and deterministic manifests carry no
//!    wall-clock-derived field at all.
//! 3. **Stable schema.** Manifest lines are assembled from explicit key
//!    lists and checked by [`manifest::validate_manifest`], which tests
//!    and CI run against real output.
//!
//! ## Metric naming
//!
//! Dot-separated `area.metric` names: `bgp.events`, `campaign.memo_hits`,
//! `measure.campaigns`, … Span timings land in `time.<span>` histograms
//! (microseconds). See DESIGN.md §Observability for the full list.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod manifest;
pub mod metrics;
pub mod profile;
pub mod progress;
pub mod span;
pub mod trace;

pub use export::chrome_trace_json;
pub use manifest::{
    render_manifest, validate_manifest, write_manifest, CampaignRecorder, EpochMode, EpochRecord,
    ManifestSummary, RunInfo, MANIFEST_SCHEMA_VERSION,
};
pub use metrics::{
    global, Counter, Gauge, Histogram, HistogramSnapshot, MetricsSnapshot, Registry,
};
pub use profile::{
    diff_bench_snapshots, metric_policy, MetricDiff, MetricPolicy, MetricStatus, PerfReport,
    PhaseStat, ProfileSummary, WorkerStat,
};
pub use span::{
    set_span_sink, span, spans_enabled, CollectingSink, NullSink, Span, SpanRecord, SpanSink,
    StderrSink,
};
pub use trace::{
    counter_sample, end_trace, record_span, start_trace, trace_config_label, tracing_enabled,
    ThreadInfo, Trace, TraceConfig, TraceEvent, TraceEventKind,
};

/// Resolve (once per call site) and return a `&'static`-lived handle to
/// a counter in the global registry: `counter!("bgp.events").add(n)`.
#[macro_export]
macro_rules! counter {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Counter>> =
            ::std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::global().counter($name))
    }};
}

/// Per-call-site cached histogram handle in the global registry:
/// `histogram!("bgp.rounds").observe(r)`.
#[macro_export]
macro_rules! histogram {
    ($name:expr) => {{
        static HANDLE: ::std::sync::OnceLock<::std::sync::Arc<$crate::Histogram>> =
            ::std::sync::OnceLock::new();
        &**HANDLE.get_or_init(|| $crate::global().histogram($name))
    }};
}

/// Install the stderr span sink when `TRACKDOWN_SPANS` is set in the
/// environment (any non-empty value). Binaries call this once at
/// startup so span timing stays strictly opt-in.
pub fn init_spans_from_env() {
    if std::env::var("TRACKDOWN_SPANS").is_ok_and(|v| !v.is_empty()) {
        set_span_sink(Some(std::sync::Arc::new(StderrSink)));
    }
}

/// Serializes unit tests that touch process-global span/trace state
/// (cargo runs tests in threads; two tests arming traces race).
#[cfg(test)]
pub(crate) fn test_lock() -> std::sync::MutexGuard<'static, ()> {
    static LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());
    LOCK.lock().unwrap_or_else(|poisoned| poisoned.into_inner())
}

#[cfg(test)]
mod tests {
    #[test]
    fn macros_cache_one_handle_per_site() {
        let a = counter!("lib.test.counter") as *const _;
        let b = counter!("lib.test.counter") as *const _;
        // Two call sites, two statics — but both point at the same
        // registry entry, so increments agree.
        counter!("lib.test.counter").inc();
        assert_eq!(crate::global().counter("lib.test.counter").get(), 1);
        let _ = (a, b);
        histogram!("lib.test.hist").observe(3);
        assert_eq!(crate::global().histogram("lib.test.hist").count(), 1);
    }
}
