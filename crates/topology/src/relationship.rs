//! Business relationships between Autonomous Systems.
//!
//! Inter-AS links carry one of the two standard CAIDA relationship kinds:
//! customer-to-provider (the customer pays the provider for transit) or
//! peer-to-peer (settlement-free exchange of each other's customer cones).
//! The relationship determines both route *preference* (Gao-Rexford
//! LocalPref) and route *export* rules (valley-free routing).

use crate::Asn;
use serde::{Deserialize, Serialize};
use std::fmt;

/// The role a neighbor plays from the perspective of a given AS.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NeighborKind {
    /// The neighbor is our customer: it pays us, we carry its traffic
    /// anywhere. Routes learned from customers are the most preferred and
    /// are exported to everyone.
    Customer,
    /// The neighbor is a settlement-free peer. Routes learned from peers are
    /// exported only to customers.
    Peer,
    /// The neighbor is our provider: we pay it for transit. Routes learned
    /// from providers are the least preferred and are exported only to
    /// customers.
    Provider,
}

impl NeighborKind {
    /// The same link seen from the other side.
    pub fn reverse(self) -> NeighborKind {
        match self {
            NeighborKind::Customer => NeighborKind::Provider,
            NeighborKind::Peer => NeighborKind::Peer,
            NeighborKind::Provider => NeighborKind::Customer,
        }
    }

    /// Gao-Rexford preference rank: higher is preferred.
    /// Customer routes (3) > peer routes (2) > provider routes (1).
    pub fn preference_rank(self) -> u8 {
        match self {
            NeighborKind::Customer => 3,
            NeighborKind::Peer => 2,
            NeighborKind::Provider => 1,
        }
    }
}

impl fmt::Display for NeighborKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            NeighborKind::Customer => "customer",
            NeighborKind::Peer => "peer",
            NeighborKind::Provider => "provider",
        };
        f.write_str(s)
    }
}

/// An undirected inter-AS link annotated with its business relationship.
///
/// Stored in canonical form: for provider-customer links, `a` is the
/// provider and `b` the customer; for peering links, `a < b` numerically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Link {
    /// Provider side (P2C) or lower-numbered AS (P2P).
    pub a: Asn,
    /// Customer side (P2C) or higher-numbered AS (P2P).
    pub b: Asn,
    /// Relationship kind, from `a`'s perspective toward `b`.
    pub kind: LinkKind,
}

/// Relationship carried by a [`Link`], matching CAIDA `as-rel` semantics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum LinkKind {
    /// `a` is the provider of `b` (CAIDA code `-1`).
    ProviderCustomer,
    /// `a` and `b` are settlement-free peers (CAIDA code `0`).
    PeerPeer,
}

impl LinkKind {
    /// CAIDA serialization code: `-1` for p2c, `0` for p2p.
    pub fn caida_code(self) -> i8 {
        match self {
            LinkKind::ProviderCustomer => -1,
            LinkKind::PeerPeer => 0,
        }
    }

    /// Parse a CAIDA relationship code.
    pub fn from_caida_code(code: i8) -> Option<LinkKind> {
        match code {
            -1 => Some(LinkKind::ProviderCustomer),
            0 => Some(LinkKind::PeerPeer),
            _ => None,
        }
    }
}

impl Link {
    /// Build a canonical link where `provider` serves `customer`.
    pub fn provider_customer(provider: Asn, customer: Asn) -> Link {
        Link {
            a: provider,
            b: customer,
            kind: LinkKind::ProviderCustomer,
        }
    }

    /// Build a canonical peering link (endpoint order is normalized).
    pub fn peering(x: Asn, y: Asn) -> Link {
        let (a, b) = if x <= y { (x, y) } else { (y, x) };
        Link {
            a,
            b,
            kind: LinkKind::PeerPeer,
        }
    }

    /// How `of` sees the other endpoint, or `None` if `of` is not an
    /// endpoint of this link.
    pub fn kind_for(&self, of: Asn) -> Option<NeighborKind> {
        match self.kind {
            LinkKind::ProviderCustomer => {
                if of == self.a {
                    Some(NeighborKind::Customer) // a is provider; b is a's customer
                } else if of == self.b {
                    Some(NeighborKind::Provider)
                } else {
                    None
                }
            }
            LinkKind::PeerPeer => {
                if of == self.a || of == self.b {
                    Some(NeighborKind::Peer)
                } else {
                    None
                }
            }
        }
    }

    /// The endpoint that is not `of`, if `of` is an endpoint.
    pub fn other(&self, of: Asn) -> Option<Asn> {
        if of == self.a {
            Some(self.b)
        } else if of == self.b {
            Some(self.a)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reverse_is_involution() {
        for k in [
            NeighborKind::Customer,
            NeighborKind::Peer,
            NeighborKind::Provider,
        ] {
            assert_eq!(k.reverse().reverse(), k);
        }
    }

    #[test]
    fn preference_ordering() {
        assert!(NeighborKind::Customer.preference_rank() > NeighborKind::Peer.preference_rank());
        assert!(NeighborKind::Peer.preference_rank() > NeighborKind::Provider.preference_rank());
    }

    #[test]
    fn link_kind_for_p2c() {
        let l = Link::provider_customer(Asn(10), Asn(20));
        // From the provider's perspective, AS20 is its customer.
        assert_eq!(l.kind_for(Asn(10)), Some(NeighborKind::Customer));
        // From the customer's perspective, AS10 is its provider.
        assert_eq!(l.kind_for(Asn(20)), Some(NeighborKind::Provider));
        assert_eq!(l.kind_for(Asn(30)), None);
    }

    #[test]
    fn link_kind_for_p2p_and_normalization() {
        let l = Link::peering(Asn(50), Asn(5));
        assert_eq!(l.a, Asn(5));
        assert_eq!(l.b, Asn(50));
        assert_eq!(l.kind_for(Asn(5)), Some(NeighborKind::Peer));
        assert_eq!(l.kind_for(Asn(50)), Some(NeighborKind::Peer));
        assert_eq!(l.other(Asn(5)), Some(Asn(50)));
        assert_eq!(l.other(Asn(50)), Some(Asn(5)));
        assert_eq!(l.other(Asn(7)), None);
    }

    #[test]
    fn caida_codes_roundtrip() {
        for k in [LinkKind::ProviderCustomer, LinkKind::PeerPeer] {
            assert_eq!(LinkKind::from_caida_code(k.caida_code()), Some(k));
        }
        assert_eq!(LinkKind::from_caida_code(7), None);
    }
}
