//! # trackdown-topology
//!
//! AS-level Internet topology substrate for the *trackdown* stack, the
//! reproduction of "Tracking Down Sources of Spoofed IP Packets"
//! (Fonseca et al., IFIP Networking 2019).
//!
//! The paper runs on the live Internet; this crate provides the synthetic
//! equivalent: a relationship-annotated AS graph ([`Topology`]) with an
//! Internet-like generator ([`gen::generate`]), customer-cone analysis
//! ([`cone::ConeInfo`]), CAIDA `as-rel` import/export ([`serfmt`]), and the
//! structural metrics the evaluation needs ([`analysis`]).
//!
//! ## Quick example
//!
//! ```
//! use trackdown_topology::gen::{generate, TopologyConfig};
//! use trackdown_topology::analysis::is_connected;
//!
//! let g = generate(&TopologyConfig::small(1));
//! assert!(is_connected(&g.topology));
//! assert_eq!(g.tier1s.len(), 4);
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod analysis;
mod asn;
pub mod cone;
pub mod gen;
mod graph;
pub mod infer;
mod paths;
mod relationship;
pub mod serfmt;

pub use asn::{Asn, ParseAsnError};
pub use graph::{topology_from_links, AsIndex, Topology, TopologyBuilder, TopologyError};
pub use paths::AsPath;
pub use relationship::{Link, LinkKind, NeighborKind};

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        #[test]
        fn asn_parse_roundtrip(v in 0u32..=u32::MAX) {
            let a = Asn(v);
            prop_assert_eq!(a.to_string().parse::<Asn>().unwrap(), a);
        }

        #[test]
        fn aspath_prepend_preserves_origin(
            seq in proptest::collection::vec(1u32..1_000_000, 1..10),
            by in 1u32..1_000_000,
            times in 1usize..6,
        ) {
            let p = AsPath::from_sequence(seq.iter().map(|&x| Asn(x)));
            let origin = p.origin();
            let q = p.prepended_by_times(Asn(by), times);
            prop_assert_eq!(q.origin(), origin);
            prop_assert_eq!(q.len(), p.len() + times);
            prop_assert_eq!(q.first_hop(), Some(Asn(by)));
        }

        #[test]
        fn poison_sandwich_extracts_poisons(
            origin in 1u32..1_000_000,
            poisons in proptest::collection::vec(1u32..1_000_000, 0..3),
        ) {
            // Poisons must differ from origin and be distinct for the
            // roundtrip property to hold.
            let mut ps: Vec<Asn> = Vec::new();
            for p in poisons {
                let a = Asn(p);
                if a != Asn(origin) && !ps.contains(&a) {
                    ps.push(a);
                }
            }
            let path = AsPath::poisoned_origin(Asn(origin), &ps);
            prop_assert_eq!(path.poisons_of(Asn(origin)), ps);
        }

        #[test]
        fn generator_valid_for_arbitrary_small_configs(
            seed in 0u64..1000,
            t1 in 2usize..5,
            lt in 0usize..8,
            st in 0usize..12,
            stubs in 1usize..30,
            regions in 1usize..4,
        ) {
            let cfg = gen::TopologyConfig {
                seed,
                num_tier1: t1,
                num_large_transit: lt,
                num_small_transit: st,
                num_stubs: stubs,
                num_regions: regions,
                ..gen::TopologyConfig::default()
            };
            let g = gen::generate(&cfg);
            prop_assert_eq!(g.topology.num_ases(), cfg.total_ases());
            prop_assert!(analysis::is_connected(&g.topology));
            // Every non-tier1 AS has at least one provider.
            for i in g.topology.indices() {
                let asn = g.topology.asn_of(i);
                if !g.tier1s.contains(&asn) {
                    prop_assert!(g.topology.providers(i).next().is_some());
                }
            }
        }

        #[test]
        fn ccdf_is_monotone_nonincreasing(
            values in proptest::collection::vec(1usize..200, 1..100)
        ) {
            let c = analysis::ccdf(&values);
            for w in c.windows(2) {
                prop_assert!(w[0].0 < w[1].0);
                prop_assert!(w[0].1 >= w[1].1);
            }
        }
    }
}
