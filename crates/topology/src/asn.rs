//! Autonomous System numbers.

use serde::{Deserialize, Serialize};
use std::fmt;
use std::str::FromStr;

/// An Autonomous System number (32-bit, per RFC 6793).
///
/// `Asn` is a transparent newtype over `u32` used throughout the stack to
/// keep AS identifiers distinct from array indices and counters.
///
/// ```
/// use trackdown_topology::Asn;
/// let a = Asn(47065);
/// assert_eq!(a.to_string(), "AS47065");
/// assert_eq!("AS47065".parse::<Asn>().unwrap(), a);
/// assert_eq!("47065".parse::<Asn>().unwrap(), a);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct Asn(pub u32);

impl Asn {
    /// ASN 0 is reserved (RFC 7607) and never valid as a real AS.
    pub const RESERVED_ZERO: Asn = Asn(0);

    /// AS 23456 (AS_TRANS, RFC 6793) — placeholder used by 2-byte speakers.
    pub const TRANS: Asn = Asn(23456);

    /// Returns true if this ASN is reserved for private use
    /// (64512-65534 or 4200000000-4294967294, RFC 6996).
    pub fn is_private(self) -> bool {
        matches!(self.0, 64512..=65534 | 4_200_000_000..=4_294_967_294)
    }

    /// Returns true if this ASN is reserved and must not appear in the
    /// public routing system (0, AS_TRANS, 65535, 4294967295, private).
    pub fn is_reserved(self) -> bool {
        self == Self::RESERVED_ZERO
            || self == Self::TRANS
            || self.0 == 65535
            || self.0 == u32::MAX
            || self.is_private()
    }
}

impl fmt::Display for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl fmt::Debug for Asn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AS{}", self.0)
    }
}

impl From<u32> for Asn {
    fn from(v: u32) -> Self {
        Asn(v)
    }
}

impl From<Asn> for u32 {
    fn from(a: Asn) -> Self {
        a.0
    }
}

/// Error returned when parsing an [`Asn`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseAsnError(pub String);

impl fmt::Display for ParseAsnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid ASN: {:?}", self.0)
    }
}

impl std::error::Error for ParseAsnError {}

impl FromStr for Asn {
    type Err = ParseAsnError;

    /// Accepts `"47065"`, `"AS47065"`, or `"as47065"`.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let digits = s
            .strip_prefix("AS")
            .or_else(|| s.strip_prefix("as"))
            .or_else(|| s.strip_prefix("As"))
            .unwrap_or(s);
        digits
            .parse::<u32>()
            .map(Asn)
            .map_err(|_| ParseAsnError(s.to_string()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_roundtrip() {
        let a = Asn(1916);
        assert_eq!(a.to_string(), "AS1916");
        assert_eq!(a.to_string().parse::<Asn>().unwrap(), a);
    }

    #[test]
    fn parse_accepts_bare_and_prefixed() {
        assert_eq!("12859".parse::<Asn>().unwrap(), Asn(12859));
        assert_eq!("as12859".parse::<Asn>().unwrap(), Asn(12859));
        assert_eq!("As12859".parse::<Asn>().unwrap(), Asn(12859));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<Asn>().is_err());
        assert!("ASX".parse::<Asn>().is_err());
        assert!("-5".parse::<Asn>().is_err());
        assert!("4294967296".parse::<Asn>().is_err()); // > u32::MAX
    }

    #[test]
    fn reserved_ranges() {
        assert!(Asn(0).is_reserved());
        assert!(Asn(23456).is_reserved());
        assert!(Asn(64512).is_private());
        assert!(Asn(65534).is_private());
        assert!(!Asn(64511).is_private());
        assert!(Asn(4_200_000_000).is_private());
        assert!(!Asn(3130).is_reserved());
    }

    #[test]
    fn ordering_matches_numeric() {
        assert!(Asn(100) < Asn(200));
        assert_eq!(u32::from(Asn(7)), 7);
        assert_eq!(Asn::from(9u32), Asn(9));
    }
}
