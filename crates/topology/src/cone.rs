//! Customer cones and tier classification.
//!
//! The *customer cone* of an AS is the set of ASes reachable by repeatedly
//! following provider→customer links (Luckie et al., IMC'13). Cone size is
//! the standard proxy for an AS's importance as a transit network, and the
//! paper uses it both to select poisoning targets and to report coverage
//! ("73 % of ASes with customer cone larger than 300").

use crate::{AsIndex, Topology};
use serde::{Deserialize, Serialize};

/// Coarse role of an AS in the transit hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Tier {
    /// Provider-free core AS (has customers, no providers).
    Tier1,
    /// Transit AS: has both providers and customers.
    Transit,
    /// Stub AS: has providers but no customers.
    Stub,
    /// Isolated AS with no links (degenerate, kept for robustness).
    Isolated,
}

/// Customer-cone and tier data for every AS in a topology.
#[derive(Debug, Clone)]
pub struct ConeInfo {
    /// `cone[i]` = sorted customer-cone members of AS `i` (including `i`).
    cones: Vec<Vec<AsIndex>>,
    tiers: Vec<Tier>,
}

impl ConeInfo {
    /// Compute cones for all ASes. Complexity is O(V·(V+E)) worst case but
    /// the transit hierarchy keeps it far smaller in practice.
    pub fn compute(topo: &Topology) -> ConeInfo {
        let n = topo.num_ases();
        let mut cones = vec![Vec::new(); n];
        // Process in reverse topological-ish order is unnecessary for
        // correctness here: we do a DFS per AS with memoization-free
        // marking, which is simple and robust even if a (buggy) input
        // contains provider loops.
        let mut mark = vec![u32::MAX; n];
        for i in topo.indices() {
            let mut stack = vec![i];
            let mut members = Vec::new();
            while let Some(v) = stack.pop() {
                if mark[v.us()] == i.0 {
                    continue;
                }
                mark[v.us()] = i.0;
                members.push(v);
                for c in topo.customers(v) {
                    if mark[c.us()] != i.0 {
                        stack.push(c);
                    }
                }
            }
            members.sort_unstable();
            cones[i.us()] = members;
        }
        let tiers = topo
            .indices()
            .map(|i| {
                let has_customers = topo.customers(i).next().is_some();
                let has_providers = topo.providers(i).next().is_some();
                let has_peers = topo.peers(i).next().is_some();
                match (has_providers, has_customers) {
                    (false, true) => Tier::Tier1,
                    (true, true) => Tier::Transit,
                    (true, false) => Tier::Stub,
                    (false, false) => {
                        if has_peers {
                            // Peering-only AS: treat as tier-1-like core
                            // only if it peers; classify as Transit to be
                            // conservative about poisoning filters.
                            Tier::Transit
                        } else {
                            Tier::Isolated
                        }
                    }
                }
            })
            .collect();
        ConeInfo { cones, tiers }
    }

    /// Sorted customer-cone members of `i` (always contains `i` itself).
    pub fn cone(&self, i: AsIndex) -> &[AsIndex] {
        &self.cones[i.us()]
    }

    /// Customer-cone size of `i` (≥ 1).
    pub fn cone_size(&self, i: AsIndex) -> usize {
        self.cones[i.us()].len()
    }

    /// True if `member` is in the customer cone of `of`.
    pub fn in_cone(&self, of: AsIndex, member: AsIndex) -> bool {
        self.cones[of.us()].binary_search(&member).is_ok()
    }

    /// Tier classification of `i`.
    pub fn tier(&self, i: AsIndex) -> Tier {
        self.tiers[i.us()]
    }

    /// True if `i` is in the provider-free core.
    pub fn is_tier1(&self, i: AsIndex) -> bool {
        self.tiers[i.us()] == Tier::Tier1
    }

    /// All tier-1 ASes.
    pub fn tier1s(&self) -> impl Iterator<Item = AsIndex> + '_ {
        self.tiers
            .iter()
            .enumerate()
            .filter(|(_, t)| **t == Tier::Tier1)
            .map(|(i, _)| AsIndex(i as u32))
    }

    /// ASes with cone size strictly greater than `threshold`.
    pub fn large_cone_ases(&self, threshold: usize) -> impl Iterator<Item = AsIndex> + '_ {
        self.cones
            .iter()
            .enumerate()
            .filter(move |(_, c)| c.len() > threshold)
            .map(|(i, _)| AsIndex(i as u32))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{topology_from_links, Asn, LinkKind};

    fn chain() -> Topology {
        // 1 -> 2 -> 3 -> 4 (provider to customer), plus peer 2-5, stub 5 under 1.
        topology_from_links([
            (Asn(1), Asn(2), LinkKind::ProviderCustomer),
            (Asn(2), Asn(3), LinkKind::ProviderCustomer),
            (Asn(3), Asn(4), LinkKind::ProviderCustomer),
            (Asn(1), Asn(5), LinkKind::ProviderCustomer),
            (Asn(2), Asn(5), LinkKind::PeerPeer),
        ])
        .unwrap()
    }

    #[test]
    fn cone_sizes() {
        let t = chain();
        let c = ConeInfo::compute(&t);
        let ix = |a: u32| t.index_of(Asn(a)).unwrap();
        assert_eq!(c.cone_size(ix(1)), 5); // everyone
        assert_eq!(c.cone_size(ix(2)), 3); // 2,3,4 — peering does not extend cones
        assert_eq!(c.cone_size(ix(3)), 2);
        assert_eq!(c.cone_size(ix(4)), 1);
        assert_eq!(c.cone_size(ix(5)), 1);
    }

    #[test]
    fn in_cone_membership() {
        let t = chain();
        let c = ConeInfo::compute(&t);
        let ix = |a: u32| t.index_of(Asn(a)).unwrap();
        assert!(c.in_cone(ix(2), ix(4)));
        assert!(!c.in_cone(ix(2), ix(5))); // 5 is a peer, not a cone member
        assert!(c.in_cone(ix(4), ix(4))); // self-membership
    }

    #[test]
    fn tiers() {
        let t = chain();
        let c = ConeInfo::compute(&t);
        let ix = |a: u32| t.index_of(Asn(a)).unwrap();
        assert_eq!(c.tier(ix(1)), Tier::Tier1);
        assert_eq!(c.tier(ix(2)), Tier::Transit);
        assert_eq!(c.tier(ix(4)), Tier::Stub);
        assert_eq!(c.tier(ix(5)), Tier::Stub);
        assert_eq!(c.tier1s().count(), 1);
    }

    #[test]
    fn large_cone_filter() {
        let t = chain();
        let c = ConeInfo::compute(&t);
        let big: Vec<_> = c.large_cone_ases(2).collect();
        assert_eq!(big.len(), 2); // AS1 (5) and AS2 (3)
    }

    #[test]
    fn multihomed_cone_counted_once() {
        // 1 and 2 both provide 3; cone of 1 must contain 3 exactly once.
        let t = topology_from_links([
            (Asn(1), Asn(2), LinkKind::ProviderCustomer),
            (Asn(1), Asn(3), LinkKind::ProviderCustomer),
            (Asn(2), Asn(3), LinkKind::ProviderCustomer),
        ])
        .unwrap();
        let c = ConeInfo::compute(&t);
        let i1 = t.index_of(Asn(1)).unwrap();
        assert_eq!(c.cone_size(i1), 3);
        let cone = c.cone(i1);
        assert_eq!(cone.len(), 3);
        // Sorted and deduplicated.
        assert!(cone.windows(2).all(|w| w[0] < w[1]));
    }
}
