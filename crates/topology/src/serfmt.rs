//! CAIDA `as-rel` text format support.
//!
//! The paper consumes CAIDA's AS-relationship database \[28\] to pick
//! poisoning targets. The format is line-oriented:
//!
//! ```text
//! # comment
//! <provider-asn>|<customer-asn>|-1
//! <peer-asn>|<peer-asn>|0
//! ```
//!
//! This module reads and writes that format so synthetic topologies can be
//! exported and (externally produced) relationship files imported.

use crate::{topology_from_links, Asn, LinkKind, Topology, TopologyError};
use std::fmt;

/// Errors raised while parsing an `as-rel` document.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AsRelError {
    /// A non-comment line did not have three `|`-separated fields.
    BadLine {
        /// 1-based line number.
        line: usize,
        /// The offending content.
        content: String,
    },
    /// A field could not be parsed as an ASN or relationship code.
    BadField {
        /// 1-based line number.
        line: usize,
        /// The offending field.
        field: String,
    },
    /// The links formed an invalid topology (duplicate link, self loop…).
    Topology(TopologyError),
}

impl fmt::Display for AsRelError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AsRelError::BadLine { line, content } => {
                write!(f, "line {line}: expected `a|b|rel`, got {content:?}")
            }
            AsRelError::BadField { line, field } => {
                write!(f, "line {line}: bad field {field:?}")
            }
            AsRelError::Topology(e) => write!(f, "invalid topology: {e}"),
        }
    }
}

impl std::error::Error for AsRelError {}

impl From<TopologyError> for AsRelError {
    fn from(e: TopologyError) -> Self {
        AsRelError::Topology(e)
    }
}

/// Parse an `as-rel` document into a [`Topology`].
///
/// Comment lines (starting with `#`) and blank lines are ignored.
pub fn parse_as_rel(text: &str) -> Result<Topology, AsRelError> {
    let mut links = Vec::new();
    for (lineno, raw) in text.lines().enumerate() {
        let line = lineno + 1;
        let trimmed = raw.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        let mut parts = trimmed.split('|');
        let (a, b, code) = match (parts.next(), parts.next(), parts.next(), parts.next()) {
            (Some(a), Some(b), Some(c), None) => (a, b, c),
            _ => {
                return Err(AsRelError::BadLine {
                    line,
                    content: trimmed.to_string(),
                })
            }
        };
        let asn_a: Asn = a.trim().parse().map_err(|_| AsRelError::BadField {
            line,
            field: a.to_string(),
        })?;
        let asn_b: Asn = b.trim().parse().map_err(|_| AsRelError::BadField {
            line,
            field: b.to_string(),
        })?;
        let code: i8 = code.trim().parse().map_err(|_| AsRelError::BadField {
            line,
            field: code.to_string(),
        })?;
        let kind = LinkKind::from_caida_code(code).ok_or_else(|| AsRelError::BadField {
            line,
            field: code.to_string(),
        })?;
        links.push((asn_a, asn_b, kind));
    }
    Ok(topology_from_links(links)?)
}

/// Render a [`Topology`] as a Graphviz DOT digraph for visualization:
/// provider→customer links as directed edges, peerings as undirected
/// (dashed, `dir=none`) edges.
pub fn to_dot(topo: &Topology) -> String {
    let mut out = String::with_capacity(topo.num_links() * 32 + 64);
    out.push_str("digraph as_topology {\n");
    out.push_str("  rankdir=TB;\n  node [shape=ellipse, fontsize=10];\n");
    for &asn in topo.asns() {
        out.push_str(&format!("  \"{}\";\n", asn.0));
    }
    for link in topo.links() {
        match link.kind {
            crate::LinkKind::ProviderCustomer => {
                out.push_str(&format!("  \"{}\" -> \"{}\";\n", link.a.0, link.b.0));
            }
            crate::LinkKind::PeerPeer => {
                out.push_str(&format!(
                    "  \"{}\" -> \"{}\" [dir=none, style=dashed];\n",
                    link.a.0, link.b.0
                ));
            }
        }
    }
    out.push_str("}\n");
    out
}

/// Serialize a [`Topology`] to `as-rel` text, one link per line, with a
/// header comment. Round-trips through [`parse_as_rel`].
pub fn to_as_rel(topo: &Topology) -> String {
    let mut out = String::with_capacity(topo.num_links() * 16 + 64);
    out.push_str("# trackdown-topology as-rel export\n");
    out.push_str("# <provider|peer>|<customer|peer>|<-1 p2c, 0 p2p>\n");
    for link in topo.links() {
        out.push_str(&format!(
            "{}|{}|{}\n",
            link.a.0,
            link.b.0,
            link.kind.caida_code()
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::NeighborKind;

    #[test]
    fn parses_minimal_document() {
        let doc = "# header\n1|2|-1\n2|3|0\n\n";
        let topo = parse_as_rel(doc).unwrap();
        assert_eq!(topo.num_ases(), 3);
        assert_eq!(topo.num_links(), 2);
        let i1 = topo.index_of(Asn(1)).unwrap();
        let i2 = topo.index_of(Asn(2)).unwrap();
        assert_eq!(topo.relationship(i1, i2), Some(NeighborKind::Customer));
    }

    #[test]
    fn roundtrip() {
        let doc = "10|20|-1\n10|30|-1\n20|30|0\n";
        let topo = parse_as_rel(doc).unwrap();
        let out = to_as_rel(&topo);
        let topo2 = parse_as_rel(&out).unwrap();
        assert_eq!(topo.links(), topo2.links());
        assert_eq!(topo.num_ases(), topo2.num_ases());
    }

    #[test]
    fn generated_topology_roundtrips() {
        let g = crate::gen::generate(&crate::gen::TopologyConfig::small(21));
        let out = to_as_rel(&g.topology);
        let back = parse_as_rel(&out).unwrap();
        assert_eq!(back.num_ases(), g.topology.num_ases());
        assert_eq!(back.num_links(), g.topology.num_links());
    }

    #[test]
    fn internet_preset_roundtrips_through_as_rel() {
        // The CAIDA-loader path at the scale it exists for: an 80k-AS
        // power-law graph survives serialize → parse with its full link
        // set intact (`parse(serialize(topo)) == topo`).
        let g = crate::gen::generate(&crate::gen::TopologyConfig::internet(21));
        assert_eq!(g.topology.num_ases(), 80_000);
        let out = to_as_rel(&g.topology);
        let back = parse_as_rel(&out).unwrap();
        assert_eq!(back.num_ases(), g.topology.num_ases());
        assert_eq!(back.links(), g.topology.links());
        assert_eq!(back.asns(), g.topology.asns());
    }

    #[test]
    fn dot_export_structure() {
        let doc = "1|2|-1\n2|3|0\n";
        let topo = parse_as_rel(doc).unwrap();
        let dot = to_dot(&topo);
        assert!(dot.starts_with("digraph as_topology {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("\"1\" -> \"2\";"));
        assert!(dot.contains("\"2\" -> \"3\" [dir=none, style=dashed];"));
        // One node line per AS, one edge line per link.
        assert_eq!(dot.matches(" -> ").count(), topo.num_links());
    }

    #[test]
    fn rejects_bad_lines() {
        assert!(matches!(
            parse_as_rel("1|2"),
            Err(AsRelError::BadLine { line: 1, .. })
        ));
        assert!(matches!(
            parse_as_rel("1|2|-1|junk"),
            Err(AsRelError::BadLine { .. })
        ));
    }

    #[test]
    fn rejects_bad_fields() {
        assert!(matches!(
            parse_as_rel("x|2|-1"),
            Err(AsRelError::BadField { .. })
        ));
        assert!(matches!(
            parse_as_rel("1|2|7"),
            Err(AsRelError::BadField { .. })
        ));
    }

    #[test]
    fn rejects_duplicate_links() {
        assert!(matches!(
            parse_as_rel("1|2|-1\n2|1|0"),
            Err(AsRelError::Topology(_))
        ));
    }
}
