//! The AS-level topology graph.

use crate::{Asn, Link, LinkKind, NeighborKind};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// Dense index of an AS inside a [`Topology`].
///
/// All hot-path structures (RIBs, catchments, clusters) are keyed by
/// `AsIndex` rather than [`Asn`] so they can live in flat vectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(transparent)]
pub struct AsIndex(pub u32);

impl AsIndex {
    /// The index as a usize, for vector addressing.
    #[inline]
    pub fn us(self) -> usize {
        self.0 as usize
    }
}

/// Errors produced while constructing a [`Topology`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A link references an AS that was never declared.
    UnknownAs(Asn),
    /// A link connects an AS to itself.
    SelfLoop(Asn),
    /// The same AS pair appears in more than one link.
    DuplicateLink(Asn, Asn),
    /// The same ASN was declared twice.
    DuplicateAs(Asn),
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::UnknownAs(a) => write!(f, "link references undeclared {a}"),
            TopologyError::SelfLoop(a) => write!(f, "self-loop at {a}"),
            TopologyError::DuplicateLink(a, b) => write!(f, "duplicate link {a}–{b}"),
            TopologyError::DuplicateAs(a) => write!(f, "duplicate AS declaration {a}"),
        }
    }
}

impl std::error::Error for TopologyError {}

/// An immutable AS-level Internet topology: a set of ASes and the
/// relationship-annotated links between them.
///
/// Built once via [`TopologyBuilder`] and then shared read-only by the BGP
/// engine, the measurement plane, and the analysis code.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Topology {
    asns: Vec<Asn>,
    #[serde(skip)]
    index: HashMap<Asn, AsIndex>,
    /// Per-AS adjacency: `(neighbor, how the neighbor looks from here)`.
    adjacency: Vec<Vec<(AsIndex, NeighborKind)>>,
    links: Vec<Link>,
}

impl Topology {
    /// Number of ASes in the topology.
    pub fn num_ases(&self) -> usize {
        self.asns.len()
    }

    /// Number of links in the topology.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// All ASNs, in index order.
    pub fn asns(&self) -> &[Asn] {
        &self.asns
    }

    /// All indices, `0..num_ases`.
    pub fn indices(&self) -> impl Iterator<Item = AsIndex> + '_ {
        (0..self.asns.len() as u32).map(AsIndex)
    }

    /// All links in insertion order.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// Look up the dense index of an ASN.
    pub fn index_of(&self, asn: Asn) -> Option<AsIndex> {
        self.index.get(&asn).copied()
    }

    /// The ASN at a dense index.
    ///
    /// # Panics
    /// Panics if the index is out of range (indices always come from the
    /// same topology, so this indicates a logic error).
    pub fn asn_of(&self, idx: AsIndex) -> Asn {
        self.asns[idx.us()]
    }

    /// True if the topology contains this ASN.
    pub fn contains(&self, asn: Asn) -> bool {
        self.index.contains_key(&asn)
    }

    /// Neighbors of `idx` with the relationship each neighbor has
    /// *from `idx`'s point of view* (e.g. `NeighborKind::Provider` means
    /// the neighbor is a provider of `idx`).
    pub fn neighbors(&self, idx: AsIndex) -> &[(AsIndex, NeighborKind)] {
        &self.adjacency[idx.us()]
    }

    /// Neighbors of `idx` filtered to one relationship kind.
    pub fn neighbors_of_kind(
        &self,
        idx: AsIndex,
        kind: NeighborKind,
    ) -> impl Iterator<Item = AsIndex> + '_ {
        self.adjacency[idx.us()]
            .iter()
            .filter(move |(_, k)| *k == kind)
            .map(|(n, _)| *n)
    }

    /// Providers of `idx`.
    pub fn providers(&self, idx: AsIndex) -> impl Iterator<Item = AsIndex> + '_ {
        self.neighbors_of_kind(idx, NeighborKind::Provider)
    }

    /// Customers of `idx`.
    pub fn customers(&self, idx: AsIndex) -> impl Iterator<Item = AsIndex> + '_ {
        self.neighbors_of_kind(idx, NeighborKind::Customer)
    }

    /// Peers of `idx`.
    pub fn peers(&self, idx: AsIndex) -> impl Iterator<Item = AsIndex> + '_ {
        self.neighbors_of_kind(idx, NeighborKind::Peer)
    }

    /// Total degree of `idx`.
    pub fn degree(&self, idx: AsIndex) -> usize {
        self.adjacency[idx.us()].len()
    }

    /// The relationship between two ASes, if they are linked:
    /// how `b` looks from `a`.
    pub fn relationship(&self, a: AsIndex, b: AsIndex) -> Option<NeighborKind> {
        self.adjacency[a.us()]
            .iter()
            .find(|(n, _)| *n == b)
            .map(|(_, k)| *k)
    }

    /// True if `a` and `b` share a link.
    pub fn linked(&self, a: AsIndex, b: AsIndex) -> bool {
        self.relationship(a, b).is_some()
    }

    /// ASes with no customers (edge/stub networks).
    pub fn stubs(&self) -> impl Iterator<Item = AsIndex> + '_ {
        self.indices()
            .filter(|&i| self.customers(i).next().is_none())
    }

    /// ASes with no providers (the provider-free core, i.e. tier-1s).
    pub fn provider_free(&self) -> impl Iterator<Item = AsIndex> + '_ {
        self.indices()
            .filter(|&i| self.providers(i).next().is_none())
    }

    /// Rebuild the ASN→index map. The map is skipped during serde
    /// serialization (it is derivable), so this must be called on a
    /// freshly deserialized topology before using [`Topology::index_of`].
    pub fn rebuild_index(&mut self) {
        self.index = self
            .asns
            .iter()
            .enumerate()
            .map(|(i, &a)| (a, AsIndex(i as u32)))
            .collect();
    }
}

/// Incremental builder for [`Topology`].
///
/// ```
/// use trackdown_topology::{Asn, TopologyBuilder};
/// let mut b = TopologyBuilder::new();
/// b.add_as(Asn(1)).unwrap();
/// b.add_as(Asn(2)).unwrap();
/// b.add_provider_customer(Asn(1), Asn(2)).unwrap();
/// let topo = b.build();
/// assert_eq!(topo.num_ases(), 2);
/// assert_eq!(topo.num_links(), 1);
/// ```
#[derive(Debug, Default)]
pub struct TopologyBuilder {
    asns: Vec<Asn>,
    index: HashMap<Asn, AsIndex>,
    adjacency: Vec<Vec<(AsIndex, NeighborKind)>>,
    links: Vec<Link>,
}

impl TopologyBuilder {
    /// New empty builder.
    pub fn new() -> TopologyBuilder {
        TopologyBuilder::default()
    }

    /// Builder pre-sized for `n` ASes.
    pub fn with_capacity(n: usize) -> TopologyBuilder {
        TopologyBuilder {
            asns: Vec::with_capacity(n),
            index: HashMap::with_capacity(n),
            adjacency: Vec::with_capacity(n),
            links: Vec::new(),
        }
    }

    /// Number of ASes added so far.
    pub fn num_ases(&self) -> usize {
        self.asns.len()
    }

    /// Declare an AS; returns its dense index.
    pub fn add_as(&mut self, asn: Asn) -> Result<AsIndex, TopologyError> {
        if self.index.contains_key(&asn) {
            return Err(TopologyError::DuplicateAs(asn));
        }
        let idx = AsIndex(self.asns.len() as u32);
        self.asns.push(asn);
        self.adjacency.push(Vec::new());
        self.index.insert(asn, idx);
        Ok(idx)
    }

    /// Declare an AS if not yet present; returns its index either way.
    pub fn ensure_as(&mut self, asn: Asn) -> AsIndex {
        match self.index.get(&asn) {
            Some(&i) => i,
            None => self.add_as(asn).expect("checked absent"),
        }
    }

    fn add_link(&mut self, link: Link) -> Result<(), TopologyError> {
        let ia = *self
            .index
            .get(&link.a)
            .ok_or(TopologyError::UnknownAs(link.a))?;
        let ib = *self
            .index
            .get(&link.b)
            .ok_or(TopologyError::UnknownAs(link.b))?;
        if ia == ib {
            return Err(TopologyError::SelfLoop(link.a));
        }
        if self.adjacency[ia.us()].iter().any(|(n, _)| *n == ib) {
            return Err(TopologyError::DuplicateLink(link.a, link.b));
        }
        let kind_a = link.kind_for(link.a).expect("a is endpoint");
        let kind_b = link.kind_for(link.b).expect("b is endpoint");
        // Adjacency stores how the *neighbor* looks from each side.
        self.adjacency[ia.us()].push((ib, kind_a));
        self.adjacency[ib.us()].push((ia, kind_b));
        self.links.push(link);
        Ok(())
    }

    /// Add a provider→customer link.
    pub fn add_provider_customer(
        &mut self,
        provider: Asn,
        customer: Asn,
    ) -> Result<(), TopologyError> {
        self.add_link(Link::provider_customer(provider, customer))
    }

    /// Add a settlement-free peering link.
    pub fn add_peering(&mut self, x: Asn, y: Asn) -> Result<(), TopologyError> {
        self.add_link(Link::peering(x, y))
    }

    /// True if the pair is already linked.
    pub fn has_link(&self, x: Asn, y: Asn) -> bool {
        match (self.index.get(&x), self.index.get(&y)) {
            (Some(&ix), Some(&iy)) => self.adjacency[ix.us()].iter().any(|(n, _)| *n == iy),
            _ => false,
        }
    }

    /// Finalize into an immutable [`Topology`]. Neighbor lists are sorted
    /// by index for determinism.
    pub fn build(mut self) -> Topology {
        for adj in &mut self.adjacency {
            adj.sort_by_key(|(n, _)| *n);
        }
        Topology {
            asns: self.asns,
            index: self.index,
            adjacency: self.adjacency,
            links: self.links,
        }
    }
}

/// Convenience constructor from link triples; declares ASes on the fly.
///
/// Accepts the same information as a CAIDA `as-rel` file.
pub fn topology_from_links(
    links: impl IntoIterator<Item = (Asn, Asn, LinkKind)>,
) -> Result<Topology, TopologyError> {
    let mut b = TopologyBuilder::new();
    for (a, bn, kind) in links {
        b.ensure_as(a);
        b.ensure_as(bn);
        match kind {
            LinkKind::ProviderCustomer => b.add_provider_customer(a, bn)?,
            LinkKind::PeerPeer => b.add_peering(a, bn)?,
        }
    }
    Ok(b.build())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn diamond() -> Topology {
        // 1 is provider of 2 and 3; 2 and 3 are providers of 4; 2-3 peer.
        topology_from_links([
            (Asn(1), Asn(2), LinkKind::ProviderCustomer),
            (Asn(1), Asn(3), LinkKind::ProviderCustomer),
            (Asn(2), Asn(4), LinkKind::ProviderCustomer),
            (Asn(3), Asn(4), LinkKind::ProviderCustomer),
            (Asn(2), Asn(3), LinkKind::PeerPeer),
        ])
        .unwrap()
    }

    #[test]
    fn builds_diamond() {
        let t = diamond();
        assert_eq!(t.num_ases(), 4);
        assert_eq!(t.num_links(), 5);
        let i1 = t.index_of(Asn(1)).unwrap();
        let i4 = t.index_of(Asn(4)).unwrap();
        assert_eq!(t.customers(i1).count(), 2);
        assert_eq!(t.providers(i4).count(), 2);
        assert_eq!(t.degree(i1), 2);
        assert_eq!(t.asn_of(i1), Asn(1));
    }

    #[test]
    fn relationship_perspective() {
        let t = diamond();
        let i1 = t.index_of(Asn(1)).unwrap();
        let i2 = t.index_of(Asn(2)).unwrap();
        let i3 = t.index_of(Asn(3)).unwrap();
        // From AS1's perspective AS2 is a customer.
        assert_eq!(t.relationship(i1, i2), Some(NeighborKind::Customer));
        // From AS2's perspective AS1 is a provider.
        assert_eq!(t.relationship(i2, i1), Some(NeighborKind::Provider));
        assert_eq!(t.relationship(i2, i3), Some(NeighborKind::Peer));
    }

    #[test]
    fn stubs_and_provider_free() {
        let t = diamond();
        let stubs: Vec<Asn> = t.stubs().map(|i| t.asn_of(i)).collect();
        assert_eq!(stubs, vec![Asn(4)]);
        let core: Vec<Asn> = t.provider_free().map(|i| t.asn_of(i)).collect();
        assert_eq!(core, vec![Asn(1)]);
    }

    #[test]
    fn rejects_self_loop() {
        let mut b = TopologyBuilder::new();
        b.add_as(Asn(1)).unwrap();
        assert_eq!(
            b.add_peering(Asn(1), Asn(1)),
            Err(TopologyError::SelfLoop(Asn(1)))
        );
    }

    #[test]
    fn rejects_duplicate_link() {
        let mut b = TopologyBuilder::new();
        b.add_as(Asn(1)).unwrap();
        b.add_as(Asn(2)).unwrap();
        b.add_provider_customer(Asn(1), Asn(2)).unwrap();
        assert!(matches!(
            b.add_peering(Asn(1), Asn(2)),
            Err(TopologyError::DuplicateLink(_, _))
        ));
    }

    #[test]
    fn rejects_duplicate_as_and_unknown_as() {
        let mut b = TopologyBuilder::new();
        b.add_as(Asn(1)).unwrap();
        assert_eq!(b.add_as(Asn(1)), Err(TopologyError::DuplicateAs(Asn(1))));
        assert_eq!(
            b.add_peering(Asn(1), Asn(9)),
            Err(TopologyError::UnknownAs(Asn(9)))
        );
    }

    #[test]
    fn neighbor_lists_sorted() {
        let t = diamond();
        for i in t.indices() {
            let ns: Vec<u32> = t.neighbors(i).iter().map(|(n, _)| n.0).collect();
            let mut sorted = ns.clone();
            sorted.sort_unstable();
            assert_eq!(ns, sorted);
        }
    }

    #[test]
    fn serde_roundtrip_with_rebuilt_index() {
        let t = diamond();
        let json = serde_json::to_string(&t).unwrap();
        let mut back: Topology = serde_json::from_str(&json).unwrap();
        assert_eq!(back.index_of(Asn(1)), None, "index skipped by serde");
        back.rebuild_index();
        assert_eq!(back.index_of(Asn(1)), t.index_of(Asn(1)));
        assert_eq!(back.links(), t.links());
    }

    #[test]
    fn ensure_as_idempotent() {
        let mut b = TopologyBuilder::new();
        let i = b.ensure_as(Asn(5));
        let j = b.ensure_as(Asn(5));
        assert_eq!(i, j);
        assert_eq!(b.num_ases(), 1);
    }
}
