//! Seeded generator of Internet-like AS topologies.
//!
//! The generator builds a three-tier transit hierarchy with preferential
//! attachment, regional locality, and settlement-free peering, matching the
//! structural properties that the paper's techniques exploit:
//!
//! * a provider-free **tier-1 clique** at the top;
//! * **transit ASes** (large/regional) multihomed to the tier above, with
//!   power-law-ish customer cones induced by preferential attachment;
//! * **stub ASes** multihomed to transit providers;
//! * peering links concentrated within regions (IXP-like locality).
//!
//! Everything is deterministic given a [`TopologyConfig`] (including its
//! seed): the same config always yields the identical topology.

use crate::{AsIndex, Asn, Topology, TopologyBuilder};
use rand::SeedableRng;
use rand::{Rng, RngExt};
use rand_chacha::ChaCha8Rng;
use serde::{Deserialize, Serialize};

/// Parameters of the synthetic Internet generator.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TopologyConfig {
    /// RNG seed; every other parameter equal, the seed fully determines the
    /// generated topology.
    pub seed: u64,
    /// Number of tier-1 (provider-free, fully meshed) ASes.
    pub num_tier1: usize,
    /// Number of large transit ASes (customers of tier-1s).
    pub num_large_transit: usize,
    /// Number of small/regional transit ASes (customers of large transits).
    pub num_small_transit: usize,
    /// Number of stub (edge) ASes.
    pub num_stubs: usize,
    /// Number of geographic regions used for locality.
    pub num_regions: usize,
    /// Mean number of providers per large transit AS (≥ 1).
    pub large_transit_multihoming: f64,
    /// Mean number of providers per small transit AS (≥ 1).
    pub small_transit_multihoming: f64,
    /// Mean number of providers per stub AS (≥ 1).
    pub stub_multihoming: f64,
    /// Probability that two large transits in the same region peer.
    pub peering_prob_large: f64,
    /// Probability that two small transits in the same region peer.
    pub peering_prob_small: f64,
    /// Probability that a stub joins its region's IXP mesh (peers with a
    /// few co-located stubs).
    pub stub_ixp_prob: f64,
    /// Fraction of provider choices made *outside* the chooser's region
    /// (inter-continental transit).
    pub cross_region_prob: f64,
}

impl Default for TopologyConfig {
    /// Defaults sized like the paper's measured universe (≈2 000 ASes,
    /// 1 885 observed by the paper).
    fn default() -> TopologyConfig {
        TopologyConfig {
            seed: 0x5eed_0001,
            num_tier1: 12,
            num_large_transit: 70,
            num_small_transit: 260,
            num_stubs: 1_660,
            num_regions: 4,
            large_transit_multihoming: 2.4,
            small_transit_multihoming: 2.2,
            stub_multihoming: 2.1,
            peering_prob_large: 0.18,
            peering_prob_small: 0.03,
            stub_ixp_prob: 0.05,
            cross_region_prob: 0.15,
        }
    }
}

impl TopologyConfig {
    /// A small configuration for fast tests (≈120 ASes).
    pub fn small(seed: u64) -> TopologyConfig {
        TopologyConfig {
            seed,
            num_tier1: 4,
            num_large_transit: 10,
            num_small_transit: 25,
            num_stubs: 80,
            num_regions: 3,
            ..TopologyConfig::default()
        }
    }

    /// A medium configuration (≈600 ASes) balancing realism and runtime,
    /// used by most experiment harnesses.
    pub fn medium(seed: u64) -> TopologyConfig {
        TopologyConfig {
            seed,
            num_tier1: 8,
            num_large_transit: 30,
            num_small_transit: 100,
            num_stubs: 460,
            num_regions: 4,
            ..TopologyConfig::default()
        }
    }

    /// A deterministic power-law configuration scaled to roughly
    /// `target_ases` ASes (intended range 10 000 – 75 000), with
    /// CAIDA-like tier proportions: a dozen-to-twenty tier-1s, ~0.7%
    /// large transits, ~4% regional transits, and the rest stubs.
    ///
    /// Tier structure, multihoming, and peering density stay configurable
    /// through struct-update syntax on the returned value; the seed fully
    /// determines the graph as with every other constructor.
    pub fn power_law(seed: u64, target_ases: usize) -> TopologyConfig {
        let n = target_ases.max(1_000);
        let num_tier1 = (12 + n / 15_000).min(20);
        let num_large_transit = (n / 150).max(40);
        let num_small_transit = (n / 25).max(150);
        let num_stubs = n - num_tier1 - num_large_transit - num_small_transit;
        TopologyConfig {
            seed,
            num_tier1,
            num_large_transit,
            num_small_transit,
            num_stubs,
            num_regions: 6,
            ..TopologyConfig::default()
        }
    }

    /// The `large` experiment scale: a power-law graph of ≈12 000 ASes,
    /// the smallest size at which sharded catchment extraction pays for
    /// its coordination (see `bench-snapshot`'s large arm).
    pub fn large(seed: u64) -> TopologyConfig {
        TopologyConfig::power_law(seed, 12_000)
    }

    /// The `internet` experiment scale: a power-law graph of 80 000 ASes
    /// — the size of the CAIDA as-rel snapshots the paper consumes
    /// \[28\]. This is the deterministic fallback when no real as-rel
    /// file is supplied (see `GeneratedTopology::from_topology` for the
    /// loader path).
    pub fn internet(seed: u64) -> TopologyConfig {
        TopologyConfig::power_law(seed, 80_000)
    }

    /// Paper-parameter configuration: sized like the default (≈2 000
    /// ASes) but with stub customers concentrated on fewer regional
    /// transits, so a 7-PoP `peering_style` origin sees the same
    /// provider-neighborhood size the paper's poisoning phase enumerates
    /// (347 unique provider neighbors; see `tests/paper_counts.rs`).
    pub fn paper(seed: u64) -> TopologyConfig {
        TopologyConfig {
            seed,
            num_tier1: 12,
            num_large_transit: 30,
            num_small_transit: 50,
            num_stubs: 1_910,
            num_regions: 4,
            ..TopologyConfig::default()
        }
    }

    /// Total AS count this configuration will generate.
    pub fn total_ases(&self) -> usize {
        self.num_tier1 + self.num_large_transit + self.num_small_transit + self.num_stubs
    }
}

/// The output of the generator: the topology plus the metadata analysis and
/// origin placement need.
#[derive(Debug, Clone)]
pub struct GeneratedTopology {
    /// The immutable AS graph.
    pub topology: Topology,
    /// Region id (0-based) of each AS, indexed by [`AsIndex`].
    pub regions: Vec<u8>,
    /// Tier-1 ASes.
    pub tier1s: Vec<Asn>,
    /// Large transit ASes.
    pub large_transits: Vec<Asn>,
    /// Small transit ASes.
    pub small_transits: Vec<Asn>,
    /// Stub ASes.
    pub stubs: Vec<Asn>,
    /// The configuration that produced this topology.
    pub config: TopologyConfig,
}

impl GeneratedTopology {
    /// Region of an AS by index.
    pub fn region(&self, i: AsIndex) -> u8 {
        self.regions[i.us()]
    }

    /// All transit ASes (large then small).
    pub fn transits(&self) -> impl Iterator<Item = Asn> + '_ {
        self.large_transits
            .iter()
            .chain(self.small_transits.iter())
            .copied()
    }

    /// Wrap an externally-loaded [`Topology`] — e.g. a CAIDA `as-rel`
    /// snapshot parsed by [`crate::serfmt::parse_as_rel`] — in the
    /// metadata the rest of the stack needs (origin placement reads
    /// regions, tier lists, and `config.num_regions`).
    ///
    /// Tiers are classified from the link structure: provider-free ASes
    /// with customers are tier-1, ASes with both providers and customers
    /// are transits (split large/small on customer-cone size, largest
    /// cones first, with the large share matching
    /// [`TopologyConfig::power_law`]'s ~0.7% proportion), everything
    /// else is a stub. As-rel files carry no geography, so regions are
    /// assigned deterministically as `asn mod num_regions` — an even,
    /// reproducible spread that keeps region-aware origin placement
    /// meaningful without inventing locality.
    pub fn from_topology(topology: Topology, num_regions: usize) -> GeneratedTopology {
        use crate::cone::{ConeInfo, Tier};
        let num_regions = num_regions.max(1);
        let cones = ConeInfo::compute(&topology);
        let mut tier1s = Vec::new();
        let mut transits: Vec<(usize, Asn)> = Vec::new();
        let mut stubs = Vec::new();
        let mut regions = Vec::with_capacity(topology.num_ases());
        for i in topology.indices() {
            let asn = topology.asn_of(i);
            regions.push((asn.0 as usize % num_regions) as u8);
            match cones.tier(i) {
                Tier::Tier1 => tier1s.push(asn),
                Tier::Transit => transits.push((cones.cone_size(i), asn)),
                Tier::Stub | Tier::Isolated => stubs.push(asn),
            }
        }
        // Largest cones first; ties broken by ASN for determinism.
        transits.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        let num_large = (topology.num_ases() / 150).max(1).min(transits.len());
        let large_transits: Vec<Asn> = transits[..num_large].iter().map(|&(_, a)| a).collect();
        let small_transits: Vec<Asn> = transits[num_large..].iter().map(|&(_, a)| a).collect();
        let config = TopologyConfig {
            seed: 0,
            num_tier1: tier1s.len(),
            num_large_transit: large_transits.len(),
            num_small_transit: small_transits.len(),
            num_stubs: stubs.len(),
            num_regions,
            ..TopologyConfig::default()
        };
        GeneratedTopology {
            topology,
            regions,
            tier1s,
            large_transits,
            small_transits,
            stubs,
            config,
        }
    }
}

/// Sample `1 + Poisson-ish(mean-1)` extra providers, clamped to `[1, max]`.
/// We use a geometric-style sampler: cheap, deterministic, and matching the
/// over-dispersed multihoming counts seen in the real AS graph.
fn sample_multihoming<R: Rng>(rng: &mut R, mean: f64, max: usize) -> usize {
    debug_assert!(mean >= 1.0);
    let extra_mean = mean - 1.0;
    let mut n = 1usize;
    // Each additional provider occurs with probability extra_mean/(1+extra_mean),
    // geometric with the right mean.
    let p = extra_mean / (1.0 + extra_mean);
    while n < max && rng.random::<f64>() < p {
        n += 1;
    }
    n
}

/// Pick `count` distinct providers from `pool` with probability proportional
/// to `weight(candidate) + 1` (preferential attachment), respecting regional
/// bias. Returns fewer if the pool is too small.
fn pick_providers<R: Rng>(
    rng: &mut R,
    pool: &[(Asn, u8)], // (candidate, region)
    weights: impl Fn(Asn) -> usize,
    my_region: u8,
    cross_region_prob: f64,
    count: usize,
) -> Vec<Asn> {
    let mut chosen: Vec<Asn> = Vec::with_capacity(count);
    for _ in 0..count {
        let cross = rng.random::<f64>() < cross_region_prob;
        // Candidates: same-region unless we roll a cross-region pick; fall
        // back to the whole pool when the filtered set is exhausted.
        let candidates: Vec<Asn> = pool
            .iter()
            .filter(|(a, r)| {
                !chosen.contains(a)
                    && if cross {
                        *r != my_region
                    } else {
                        *r == my_region
                    }
            })
            .map(|(a, _)| *a)
            .collect();
        let candidates = if candidates.is_empty() {
            pool.iter()
                .filter(|(a, _)| !chosen.contains(a))
                .map(|(a, _)| *a)
                .collect::<Vec<_>>()
        } else {
            candidates
        };
        if candidates.is_empty() {
            break;
        }
        let total: usize = candidates.iter().map(|&a| weights(a) + 1).sum();
        let mut roll = rng.random_range(0..total);
        let mut pick = candidates[0];
        for &c in &candidates {
            let w = weights(c) + 1;
            if roll < w {
                pick = c;
                break;
            }
            roll -= w;
        }
        chosen.push(pick);
    }
    chosen
}

/// Generate an Internet-like topology from a configuration.
///
/// # Panics
/// Panics if the configuration is degenerate (`num_tier1 == 0` or
/// `num_regions == 0`).
pub fn generate(config: &TopologyConfig) -> GeneratedTopology {
    assert!(config.num_tier1 > 0, "need at least one tier-1 AS");
    assert!(config.num_regions > 0, "need at least one region");
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut builder = TopologyBuilder::with_capacity(config.total_ases());
    let mut regions: Vec<u8> = Vec::with_capacity(config.total_ases());
    // Customer counts for preferential attachment, keyed by ASN value for
    // simplicity (ASNs are assigned densely below).
    let mut customer_count: std::collections::HashMap<Asn, usize> =
        std::collections::HashMap::new();

    let mut next_asn = 100u32;
    let fresh_asn = |n: &mut u32| {
        let a = Asn(*n);
        *n += 1;
        a
    };

    // --- Tier-1 clique -------------------------------------------------
    let mut tier1s = Vec::with_capacity(config.num_tier1);
    for k in 0..config.num_tier1 {
        let a = fresh_asn(&mut next_asn);
        builder.add_as(a).expect("fresh ASN");
        regions.push((k % config.num_regions) as u8);
        tier1s.push(a);
    }
    for i in 0..tier1s.len() {
        for j in (i + 1)..tier1s.len() {
            builder.add_peering(tier1s[i], tier1s[j]).expect("clique");
        }
    }

    // --- Large transit --------------------------------------------------
    let tier1_pool: Vec<(Asn, u8)> = tier1s
        .iter()
        .enumerate()
        .map(|(k, &a)| (a, (k % config.num_regions) as u8))
        .collect();
    let mut large_transits = Vec::with_capacity(config.num_large_transit);
    let mut large_pool: Vec<(Asn, u8)> = Vec::new();
    for _ in 0..config.num_large_transit {
        let a = fresh_asn(&mut next_asn);
        builder.add_as(a).expect("fresh ASN");
        let region = rng.random_range(0..config.num_regions) as u8;
        regions.push(region);
        let nprov =
            sample_multihoming(&mut rng, config.large_transit_multihoming, config.num_tier1);
        let provs = pick_providers(
            &mut rng,
            &tier1_pool,
            |c| customer_count.get(&c).copied().unwrap_or(0),
            region,
            config.cross_region_prob,
            nprov,
        );
        for p in provs {
            builder.add_provider_customer(p, a).expect("new link");
            *customer_count.entry(p).or_insert(0) += 1;
        }
        large_transits.push(a);
        large_pool.push((a, region));
    }
    // Peering among same-region large transits.
    for i in 0..large_pool.len() {
        for j in (i + 1)..large_pool.len() {
            let (a, ra) = large_pool[i];
            let (b, rb) = large_pool[j];
            if ra == rb && rng.random::<f64>() < config.peering_prob_large {
                builder.add_peering(a, b).expect("new peering");
            }
        }
    }

    // --- Small transit ---------------------------------------------------
    let mut small_transits = Vec::with_capacity(config.num_small_transit);
    let mut small_pool: Vec<(Asn, u8)> = Vec::new();
    for _ in 0..config.num_small_transit {
        let a = fresh_asn(&mut next_asn);
        builder.add_as(a).expect("fresh ASN");
        let region = rng.random_range(0..config.num_regions) as u8;
        regions.push(region);
        let nprov = sample_multihoming(
            &mut rng,
            config.small_transit_multihoming,
            config.num_large_transit.max(1),
        );
        let provs = pick_providers(
            &mut rng,
            &large_pool,
            |c| customer_count.get(&c).copied().unwrap_or(0),
            region,
            config.cross_region_prob,
            nprov,
        );
        if provs.is_empty() {
            // No large transits configured: home directly under tier-1s.
            let provs = pick_providers(
                &mut rng,
                &tier1_pool,
                |c| customer_count.get(&c).copied().unwrap_or(0),
                region,
                config.cross_region_prob,
                nprov,
            );
            for p in provs {
                builder.add_provider_customer(p, a).expect("new link");
                *customer_count.entry(p).or_insert(0) += 1;
            }
        } else {
            for p in provs {
                builder.add_provider_customer(p, a).expect("new link");
                *customer_count.entry(p).or_insert(0) += 1;
            }
        }
        small_transits.push(a);
        small_pool.push((a, region));
    }
    // Sparse same-region peering among small transits.
    for i in 0..small_pool.len() {
        for j in (i + 1)..small_pool.len() {
            let (a, ra) = small_pool[i];
            let (b, rb) = small_pool[j];
            if ra == rb && rng.random::<f64>() < config.peering_prob_small {
                builder.add_peering(a, b).expect("new peering");
            }
        }
    }

    // --- Stubs -------------------------------------------------------------
    // Provider pool for stubs: all transit ASes (large + small).
    let transit_pool: Vec<(Asn, u8)> = large_pool
        .iter()
        .chain(small_pool.iter())
        .copied()
        .collect();
    let mut stubs = Vec::with_capacity(config.num_stubs);
    // IXP membership per region for stub-stub peering.
    let mut ixp_members: Vec<Vec<Asn>> = vec![Vec::new(); config.num_regions];
    for _ in 0..config.num_stubs {
        let a = fresh_asn(&mut next_asn);
        builder.add_as(a).expect("fresh ASN");
        let region = rng.random_range(0..config.num_regions) as u8;
        regions.push(region);
        let nprov = sample_multihoming(&mut rng, config.stub_multihoming, 4);
        let pool: &[(Asn, u8)] = if transit_pool.is_empty() {
            &tier1_pool
        } else {
            &transit_pool
        };
        let provs = pick_providers(
            &mut rng,
            pool,
            |c| customer_count.get(&c).copied().unwrap_or(0),
            region,
            config.cross_region_prob,
            nprov,
        );
        for p in provs {
            builder.add_provider_customer(p, a).expect("new link");
            *customer_count.entry(p).or_insert(0) += 1;
        }
        if rng.random::<f64>() < config.stub_ixp_prob {
            // Peer with up to 2 prior IXP members of the same region.
            let members = &ixp_members[region as usize];
            for k in 0..members.len().min(2) {
                let other = members[members.len() - 1 - k];
                if !builder.has_link(a, other) {
                    builder.add_peering(a, other).expect("ixp peering");
                }
            }
            ixp_members[region as usize].push(a);
        }
        stubs.push(a);
    }

    GeneratedTopology {
        topology: builder.build(),
        regions,
        tier1s,
        large_transits,
        small_transits,
        stubs,
        config: config.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cone::{ConeInfo, Tier};

    #[test]
    fn generates_requested_counts() {
        let cfg = TopologyConfig::small(7);
        let g = generate(&cfg);
        assert_eq!(g.topology.num_ases(), cfg.total_ases());
        assert_eq!(g.tier1s.len(), cfg.num_tier1);
        assert_eq!(g.large_transits.len(), cfg.num_large_transit);
        assert_eq!(g.small_transits.len(), cfg.num_small_transit);
        assert_eq!(g.stubs.len(), cfg.num_stubs);
        assert_eq!(g.regions.len(), cfg.total_ases());
    }

    #[test]
    fn deterministic_for_same_seed() {
        let cfg = TopologyConfig::small(42);
        let g1 = generate(&cfg);
        let g2 = generate(&cfg);
        assert_eq!(g1.topology.num_links(), g2.topology.num_links());
        assert_eq!(g1.topology.links(), g2.topology.links());
        assert_eq!(g1.regions, g2.regions);
    }

    #[test]
    fn different_seeds_differ() {
        let g1 = generate(&TopologyConfig::small(1));
        let g2 = generate(&TopologyConfig::small(2));
        // Same AS counts but (almost surely) different wiring.
        assert_ne!(g1.topology.links(), g2.topology.links());
    }

    #[test]
    fn tier1s_are_provider_free_clique() {
        let g = generate(&TopologyConfig::small(3));
        let t = &g.topology;
        for &a in &g.tier1s {
            let i = t.index_of(a).unwrap();
            assert_eq!(t.providers(i).count(), 0, "{a} must be provider-free");
        }
        // Clique: every pair linked.
        for (x, &a) in g.tier1s.iter().enumerate() {
            for &b in &g.tier1s[x + 1..] {
                let ia = t.index_of(a).unwrap();
                let ib = t.index_of(b).unwrap();
                assert!(t.linked(ia, ib), "{a}–{b} missing from clique");
            }
        }
    }

    #[test]
    fn every_non_tier1_has_a_provider() {
        let g = generate(&TopologyConfig::small(4));
        let t = &g.topology;
        for i in t.indices() {
            let asn = t.asn_of(i);
            if !g.tier1s.contains(&asn) {
                assert!(t.providers(i).next().is_some(), "{asn} has no provider");
            }
        }
    }

    #[test]
    fn stubs_have_no_customers() {
        let g = generate(&TopologyConfig::small(5));
        let t = &g.topology;
        let cones = ConeInfo::compute(t);
        for &s in &g.stubs {
            let i = t.index_of(s).unwrap();
            assert_eq!(t.customers(i).count(), 0);
            assert!(matches!(cones.tier(i), Tier::Stub));
        }
    }

    #[test]
    fn preferential_attachment_skews_cones() {
        // With preferential attachment some transits should accumulate
        // far more customers than the median transit.
        let g = generate(&TopologyConfig::medium(11));
        let t = &g.topology;
        let mut counts: Vec<usize> = g
            .large_transits
            .iter()
            .map(|&a| t.customers(t.index_of(a).unwrap()).count())
            .collect();
        counts.sort_unstable();
        let max = *counts.last().unwrap();
        let median = counts[counts.len() / 2];
        assert!(
            max >= median * 2,
            "expected skewed customer counts, max={max} median={median}"
        );
    }

    #[test]
    fn power_law_hits_target_size_and_proportions() {
        for target in [10_000usize, 30_000, 75_000] {
            let cfg = TopologyConfig::power_law(1, target);
            assert_eq!(cfg.total_ases(), target, "exact total at {target}");
            assert!(cfg.num_tier1 >= 12 && cfg.num_tier1 <= 20);
            // Stubs dominate, transits are a thin waist: the power-law
            // shape catchment clustering exploits.
            assert!(cfg.num_stubs * 10 >= cfg.total_ases() * 9);
            assert!(cfg.num_small_transit > cfg.num_large_transit);
        }
    }

    #[test]
    fn power_law_generates_connected_valley_free_graph() {
        let g = generate(&TopologyConfig::power_law(5, 10_000));
        assert_eq!(g.topology.num_ases(), 10_000);
        assert!(crate::analysis::is_connected(&g.topology));
        // Every non-tier1 AS has a provider (valley-free annotation is
        // total), and tier-1s stay provider-free.
        for i in g.topology.indices() {
            let asn = g.topology.asn_of(i);
            if g.tier1s.contains(&asn) {
                assert_eq!(g.topology.providers(i).count(), 0);
            } else {
                assert!(g.topology.providers(i).next().is_some());
            }
        }
    }

    #[test]
    fn power_law_deterministic_for_same_seed() {
        let a = generate(&TopologyConfig::power_law(9, 10_000));
        let b = generate(&TopologyConfig::power_law(9, 10_000));
        assert_eq!(a.topology.links(), b.topology.links());
        assert_eq!(a.regions, b.regions);
    }

    #[test]
    fn large_scale_is_power_law_at_12k() {
        let cfg = TopologyConfig::large(3);
        assert_eq!(cfg.total_ases(), 12_000);
        assert_eq!(cfg, TopologyConfig::power_law(3, 12_000));
    }

    #[test]
    fn internet_scale_is_power_law_at_80k() {
        let cfg = TopologyConfig::internet(3);
        assert_eq!(cfg.total_ases(), 80_000);
        assert_eq!(cfg, TopologyConfig::power_law(3, 80_000));
    }

    #[test]
    fn from_topology_classifies_like_the_generator() {
        // Round a generated topology through the as-rel loader path: the
        // structural classifier must recover the same tier-1 set, a
        // transit split of the same total, and every generated stub.
        let g = generate(&TopologyConfig::small(17));
        let reloaded = GeneratedTopology::from_topology(g.topology.clone(), 3);
        assert_eq!(reloaded.topology.num_ases(), g.topology.num_ases());
        let mut want_tier1 = g.tier1s.clone();
        want_tier1.sort_unstable();
        let mut got_tier1 = reloaded.tier1s.clone();
        got_tier1.sort_unstable();
        assert_eq!(got_tier1, want_tier1, "tier-1 = provider-free core");
        // The generator's transits that picked up no customers are stubs
        // structurally, so compare by structure, not by generator label.
        assert_eq!(
            reloaded.large_transits.len() + reloaded.small_transits.len() + reloaded.stubs.len(),
            g.topology.num_ases() - g.tier1s.len()
        );
        for &s in &g.stubs {
            assert!(!reloaded.tier1s.contains(&s));
            assert!(!reloaded.large_transits.contains(&s));
        }
        // Regions are a deterministic function of the ASN.
        for i in reloaded.topology.indices() {
            assert_eq!(
                reloaded.region(i),
                (reloaded.topology.asn_of(i).0 % 3) as u8
            );
        }
        assert_eq!(reloaded.config.num_regions, 3);
        assert_eq!(reloaded.config.total_ases(), g.topology.num_ases());
    }

    #[test]
    fn multihoming_sampler_within_bounds() {
        let mut rng = ChaCha8Rng::seed_from_u64(9);
        for _ in 0..1000 {
            let n = sample_multihoming(&mut rng, 1.8, 4);
            assert!((1..=4).contains(&n));
        }
        // Mean roughly matches (geometric with mean 1.8, truncated).
        let mut rng = ChaCha8Rng::seed_from_u64(10);
        let total: usize = (0..5000)
            .map(|_| sample_multihoming(&mut rng, 1.8, 10))
            .sum();
        let mean = total as f64 / 5000.0;
        assert!((1.5..=2.1).contains(&mean), "mean={mean}");
    }
}
