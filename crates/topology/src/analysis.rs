//! Structural analysis helpers: hop distances, degree distributions, and
//! connectivity checks used both by tests and by the paper's Figure 7
//! (cluster size as a function of AS-hop distance from the origin).

use crate::{AsIndex, Topology};
use std::collections::VecDeque;

/// Breadth-first AS-hop distances from a set of seed ASes.
///
/// `distance[i]` is the minimum number of inter-AS links between AS `i` and
/// the *closest* seed, or `u32::MAX` if unreachable. Relationship direction
/// is ignored — this is topological distance, matching how the paper groups
/// ASes by "AS-hop distance to the closest PEERING location".
pub fn multi_source_distances(topo: &Topology, seeds: &[AsIndex]) -> Vec<u32> {
    let mut dist = vec![u32::MAX; topo.num_ases()];
    let mut queue = VecDeque::new();
    for &s in seeds {
        if dist[s.us()] == u32::MAX {
            dist[s.us()] = 0;
            queue.push_back(s);
        }
    }
    while let Some(v) = queue.pop_front() {
        let d = dist[v.us()];
        for &(n, _) in topo.neighbors(v) {
            if dist[n.us()] == u32::MAX {
                dist[n.us()] = d + 1;
                queue.push_back(n);
            }
        }
    }
    dist
}

/// True if every AS can reach every other AS ignoring link direction.
pub fn is_connected(topo: &Topology) -> bool {
    if topo.num_ases() == 0 {
        return true;
    }
    let d = multi_source_distances(topo, &[AsIndex(0)]);
    d.iter().all(|&x| x != u32::MAX)
}

/// Histogram of AS degrees: `result[d]` = number of ASes with degree `d`.
pub fn degree_histogram(topo: &Topology) -> Vec<usize> {
    let max_deg = topo.indices().map(|i| topo.degree(i)).max().unwrap_or(0);
    let mut hist = vec![0usize; max_deg + 1];
    for i in topo.indices() {
        hist[topo.degree(i)] += 1;
    }
    hist
}

/// Summary statistics over a slice of sizes/counts.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SummaryStats {
    /// Arithmetic mean (0 for an empty input).
    pub mean: f64,
    /// Minimum (0 for empty).
    pub min: usize,
    /// Maximum (0 for empty).
    pub max: usize,
    /// Median (0 for empty).
    pub median: usize,
    /// 90th percentile (0 for empty), nearest-rank method.
    pub p90: usize,
}

/// Compute [`SummaryStats`] with the nearest-rank percentile method.
pub fn summary_stats(values: &[usize]) -> SummaryStats {
    if values.is_empty() {
        return SummaryStats {
            mean: 0.0,
            min: 0,
            max: 0,
            median: 0,
            p90: 0,
        };
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let n = sorted.len();
    let rank = |p: f64| -> usize {
        let r = (p * n as f64).ceil() as usize;
        sorted[r.clamp(1, n) - 1]
    };
    SummaryStats {
        mean: sorted.iter().sum::<usize>() as f64 / n as f64,
        min: sorted[0],
        max: sorted[n - 1],
        median: rank(0.5),
        p90: rank(0.9),
    }
}

/// Complementary cumulative distribution over positive integer sizes:
/// returns `(size, fraction_of_items_with_value >= size)` pairs for each
/// distinct size, ascending. Matches the CCDF axes of Figures 3 and 6.
pub fn ccdf(values: &[usize]) -> Vec<(usize, f64)> {
    if values.is_empty() {
        return Vec::new();
    }
    let mut sorted = values.to_vec();
    sorted.sort_unstable();
    let n = sorted.len() as f64;
    let mut out = Vec::new();
    let mut i = 0;
    while i < sorted.len() {
        let v = sorted[i];
        // Items >= v are everything from index i on.
        out.push((v, (sorted.len() - i) as f64 / n));
        while i < sorted.len() && sorted[i] == v {
            i += 1;
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::{generate, TopologyConfig};
    use crate::{topology_from_links, Asn, LinkKind};

    #[test]
    fn distances_on_chain() {
        let t = topology_from_links([
            (Asn(1), Asn(2), LinkKind::ProviderCustomer),
            (Asn(2), Asn(3), LinkKind::ProviderCustomer),
            (Asn(3), Asn(4), LinkKind::ProviderCustomer),
        ])
        .unwrap();
        let i1 = t.index_of(Asn(1)).unwrap();
        let d = multi_source_distances(&t, &[i1]);
        assert_eq!(d[t.index_of(Asn(1)).unwrap().us()], 0);
        assert_eq!(d[t.index_of(Asn(2)).unwrap().us()], 1);
        assert_eq!(d[t.index_of(Asn(4)).unwrap().us()], 3);
    }

    #[test]
    fn multi_source_takes_minimum() {
        let t = topology_from_links([
            (Asn(1), Asn(2), LinkKind::ProviderCustomer),
            (Asn(2), Asn(3), LinkKind::ProviderCustomer),
            (Asn(3), Asn(4), LinkKind::ProviderCustomer),
        ])
        .unwrap();
        let seeds = [t.index_of(Asn(1)).unwrap(), t.index_of(Asn(4)).unwrap()];
        let d = multi_source_distances(&t, &seeds);
        assert_eq!(d[t.index_of(Asn(2)).unwrap().us()], 1);
        assert_eq!(d[t.index_of(Asn(3)).unwrap().us()], 1);
    }

    #[test]
    fn generated_topology_is_connected() {
        for seed in 0..5 {
            let g = generate(&TopologyConfig::small(seed));
            assert!(is_connected(&g.topology), "seed {seed} disconnected");
        }
    }

    #[test]
    fn degree_histogram_sums_to_n() {
        let g = generate(&TopologyConfig::small(8));
        let hist = degree_histogram(&g.topology);
        assert_eq!(hist.iter().sum::<usize>(), g.topology.num_ases());
        assert_eq!(hist[0], 0, "no isolated ASes expected");
    }

    #[test]
    fn summary_stats_basics() {
        let s = summary_stats(&[1, 2, 3, 4, 100]);
        assert_eq!(s.min, 1);
        assert_eq!(s.max, 100);
        assert_eq!(s.median, 3);
        assert!((s.mean - 22.0).abs() < 1e-9);
        assert_eq!(s.p90, 100);
        let empty = summary_stats(&[]);
        assert_eq!(empty.max, 0);
    }

    #[test]
    fn ccdf_shape() {
        let c = ccdf(&[1, 1, 1, 2, 5]);
        assert_eq!(c[0], (1, 1.0));
        assert_eq!(c[1], (2, 0.4));
        assert_eq!(c[2], (5, 0.2));
        assert!(ccdf(&[]).is_empty());
    }
}
