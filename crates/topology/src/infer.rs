//! AS-relationship inference from an AS-path corpus (Gao's algorithm,
//! simplified).
//!
//! §VI of the paper argues its announcement techniques can "significantly
//! speed up (and scale) inference of routing policies" because every
//! configuration contributes new, different paths. This module implements
//! the classic degree-based inference of Gao \[35\] so that claim can be
//! evaluated on this stack's datasets: given observed AS-level paths,
//! guess which adjacent pairs are provider↔customer and which are peers.
//!
//! Algorithm per path: the highest-degree AS on the path is its *top
//! provider*; every edge before it is inferred customer→provider (uphill)
//! and every edge after it provider→customer (downhill). Votes are
//! aggregated over the corpus; edges with substantial votes in both
//! directions become peer links.

use crate::{Asn, LinkKind, NeighborKind, Topology};
use std::collections::HashMap;

/// One inferred adjacency.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InferredLink {
    /// First endpoint (provider side for P2C; lower ASN for P2P).
    pub a: Asn,
    /// Second endpoint.
    pub b: Asn,
    /// Inferred relationship.
    pub kind: LinkKind,
    /// Paths that voted for this edge (confidence proxy).
    pub votes: u32,
}

/// Inference tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InferenceParams {
    /// An edge is peer-to-peer when the minority direction holds at least
    /// this fraction of its votes (Gao's L parameter analog).
    pub peer_vote_ratio: f64,
}

impl Default for InferenceParams {
    fn default() -> InferenceParams {
        InferenceParams {
            peer_vote_ratio: 0.35,
        }
    }
}

/// Infer relationships from a corpus of AS-level paths (each ordered
/// source-first, destination-last; duplicate consecutive entries are
/// tolerated and collapsed).
pub fn infer_relationships(paths: &[Vec<Asn>], params: &InferenceParams) -> Vec<InferredLink> {
    // Pass 1: degrees from observed adjacencies.
    let mut degree: HashMap<Asn, u32> = HashMap::new();
    let mut seen_edges: HashMap<(Asn, Asn), ()> = HashMap::new();
    let collapse = |p: &[Asn]| -> Vec<Asn> {
        let mut out: Vec<Asn> = Vec::with_capacity(p.len());
        for &a in p {
            if out.last() != Some(&a) {
                out.push(a);
            }
        }
        out
    };
    let cleaned: Vec<Vec<Asn>> = paths.iter().map(|p| collapse(p)).collect();
    for p in &cleaned {
        for w in p.windows(2) {
            let key = if w[0] <= w[1] {
                (w[0], w[1])
            } else {
                (w[1], w[0])
            };
            if seen_edges.insert(key, ()).is_none() {
                *degree.entry(w[0]).or_insert(0) += 1;
                *degree.entry(w[1]).or_insert(0) += 1;
            }
        }
    }
    // Pass 2: uphill/downhill votes split at the top provider.
    // votes[(x, y)] = times x appeared as the customer of y.
    let mut customer_votes: HashMap<(Asn, Asn), u32> = HashMap::new();
    for p in &cleaned {
        if p.len() < 2 {
            continue;
        }
        let top = (0..p.len())
            .max_by_key(|&k| (degree.get(&p[k]).copied().unwrap_or(0), usize::MAX - k))
            .expect("non-empty");
        for (k, w) in p.windows(2).enumerate() {
            // Edge between positions k and k+1.
            if k < top {
                // Uphill: w[0] is a customer of w[1].
                *customer_votes.entry((w[0], w[1])).or_insert(0) += 1;
            } else {
                // Downhill: w[1] is a customer of w[0].
                *customer_votes.entry((w[1], w[0])).or_insert(0) += 1;
            }
        }
    }
    // Aggregate per undirected edge.
    let mut out = Vec::new();
    for &(x, y) in seen_edges.keys() {
        let xy = customer_votes.get(&(x, y)).copied().unwrap_or(0); // x customer of y
        let yx = customer_votes.get(&(y, x)).copied().unwrap_or(0); // y customer of x
        let total = xy + yx;
        if total == 0 {
            continue;
        }
        let minority = xy.min(yx) as f64 / total as f64;
        let link = if minority >= params.peer_vote_ratio {
            InferredLink {
                a: x.min(y),
                b: x.max(y),
                kind: LinkKind::PeerPeer,
                votes: total,
            }
        } else if xy > yx {
            // x is customer of y: provider side is y.
            InferredLink {
                a: y,
                b: x,
                kind: LinkKind::ProviderCustomer,
                votes: total,
            }
        } else {
            InferredLink {
                a: x,
                b: y,
                kind: LinkKind::ProviderCustomer,
                votes: total,
            }
        };
        out.push(link);
    }
    out.sort_by_key(|l| (l.a, l.b));
    out
}

/// Accuracy of inferred links against a ground-truth topology: returns
/// `(evaluated, exact_matches)` over the inferred links whose endpoints
/// are adjacent in the truth.
pub fn score_inference(topo: &Topology, inferred: &[InferredLink]) -> (usize, usize) {
    let mut evaluated = 0usize;
    let mut correct = 0usize;
    for l in inferred {
        let (Some(ia), Some(ib)) = (topo.index_of(l.a), topo.index_of(l.b)) else {
            continue;
        };
        let Some(rel) = topo.relationship(ia, ib) else {
            continue;
        };
        evaluated += 1;
        let matches = match l.kind {
            // Inferred a as provider of b: truth must see b as a's customer.
            LinkKind::ProviderCustomer => rel == NeighborKind::Customer,
            LinkKind::PeerPeer => rel == NeighborKind::Peer,
        };
        if matches {
            correct += 1;
        }
    }
    (evaluated, correct)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology_from_links;

    fn paths(raw: &[&[u32]]) -> Vec<Vec<Asn>> {
        raw.iter()
            .map(|p| p.iter().map(|&x| Asn(x)).collect())
            .collect()
    }

    #[test]
    fn infers_simple_hierarchy() {
        // Star: AS1 is the high-degree core; stubs 2, 3, 4 below it.
        // Paths go stub -> core -> stub (valley-free through the provider).
        let corpus = paths(&[&[2, 1, 3], &[3, 1, 4], &[4, 1, 2], &[2, 1, 4]]);
        let inferred = infer_relationships(&corpus, &InferenceParams::default());
        assert_eq!(inferred.len(), 3);
        for l in &inferred {
            assert_eq!(l.kind, LinkKind::ProviderCustomer);
            assert_eq!(l.a, Asn(1), "core must be the provider: {l:?}");
        }
    }

    #[test]
    fn infers_peering_between_equal_tops() {
        // Two cores 1 and 2 peer; their stubs route through both.
        let corpus = paths(&[
            &[10, 1, 2, 20],
            &[20, 2, 1, 10],
            &[11, 1, 2, 21],
            &[21, 2, 1, 11],
        ]);
        let inferred = infer_relationships(&corpus, &InferenceParams::default());
        let core_link = inferred
            .iter()
            .find(|l| (l.a, l.b) == (Asn(1), Asn(2)))
            .expect("core link inferred");
        assert_eq!(core_link.kind, LinkKind::PeerPeer);
        // Stub links are customer links under their core.
        for l in &inferred {
            if l.b.0 >= 10 {
                assert_eq!(l.kind, LinkKind::ProviderCustomer);
            }
        }
    }

    #[test]
    fn collapses_prepending() {
        let corpus = paths(&[&[2, 2, 2, 1, 3], &[3, 1, 1, 2]]);
        let inferred = infer_relationships(&corpus, &InferenceParams::default());
        assert!(!inferred.is_empty());
        for l in &inferred {
            assert_ne!(l.a, l.b);
        }
    }

    #[test]
    fn empty_and_singleton_paths_are_ignored() {
        let corpus = paths(&[&[], &[7]]);
        assert!(infer_relationships(&corpus, &InferenceParams::default()).is_empty());
    }

    #[test]
    fn scoring_against_ground_truth() {
        let topo = topology_from_links([
            (Asn(1), Asn(2), LinkKind::ProviderCustomer),
            (Asn(1), Asn(3), LinkKind::ProviderCustomer),
        ])
        .unwrap();
        let inferred = vec![
            InferredLink {
                a: Asn(1),
                b: Asn(2),
                kind: LinkKind::ProviderCustomer,
                votes: 3,
            },
            InferredLink {
                a: Asn(3),
                b: Asn(1),
                kind: LinkKind::ProviderCustomer,
                votes: 2,
            }, // inverted
            InferredLink {
                a: Asn(1),
                b: Asn(9),
                kind: LinkKind::PeerPeer,
                votes: 1,
            }, // unknown AS
        ];
        let (evaluated, correct) = score_inference(&topo, &inferred);
        assert_eq!(evaluated, 2);
        assert_eq!(correct, 1);
    }
}
