//! AS-paths: the ordered AS-level route attribute carried by BGP
//! announcements, including prepending and BGP-poisoning support.

use crate::Asn;
use serde::{Deserialize, Serialize};
use std::fmt;

/// An AS-path as carried in a BGP announcement.
///
/// The path is stored *origin-last*: `path[0]` is the AS that most recently
/// forwarded the announcement (the neighbor you heard it from) and
/// `path[len-1]` is the origin. This matches the on-the-wire AS_SEQUENCE
/// ordering.
///
/// ```
/// use trackdown_topology::{Asn, AsPath};
/// let p = AsPath::from_origin(Asn(47065));
/// let p = p.prepended_by(Asn(1916));
/// assert_eq!(p.origin(), Some(Asn(47065)));
/// assert_eq!(p.first_hop(), Some(Asn(1916)));
/// assert_eq!(p.len(), 2);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct AsPath(Vec<Asn>);

impl AsPath {
    /// An empty AS-path (only valid transiently while building).
    pub fn empty() -> AsPath {
        AsPath(Vec::new())
    }

    /// A path containing just the originating AS.
    pub fn from_origin(origin: Asn) -> AsPath {
        AsPath(vec![origin])
    }

    /// Build from a sequence ordered neighbor-first, origin-last.
    pub fn from_sequence(seq: impl IntoIterator<Item = Asn>) -> AsPath {
        AsPath(seq.into_iter().collect())
    }

    /// Number of AS hops in the path, counting prepend repetitions.
    /// This is the length BGP's tiebreak compares.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// True when the path carries no ASes.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The originating AS (last element), if any.
    pub fn origin(&self) -> Option<Asn> {
        self.0.last().copied()
    }

    /// The most recent forwarder (first element), if any.
    pub fn first_hop(&self) -> Option<Asn> {
        self.0.first().copied()
    }

    /// All ASes in order (neighbor-first, origin-last).
    pub fn as_slice(&self) -> &[Asn] {
        &self.0
    }

    /// Returns a new path with `asn` prepended once (as done by every AS
    /// when propagating an announcement to a neighbor).
    pub fn prepended_by(&self, asn: Asn) -> AsPath {
        let mut v = Vec::with_capacity(self.0.len() + 1);
        v.push(asn);
        v.extend_from_slice(&self.0);
        AsPath(v)
    }

    /// Returns a new path with `asn` prepended `times` times — BGP AS-path
    /// prepending for inbound traffic engineering (§II of the paper).
    pub fn prepended_by_times(&self, asn: Asn, times: usize) -> AsPath {
        let mut v = Vec::with_capacity(self.0.len() + times);
        v.extend(std::iter::repeat_n(asn, times));
        v.extend_from_slice(&self.0);
        AsPath(v)
    }

    /// True if `asn` appears anywhere in the path. BGP loop prevention
    /// rejects announcements whose path contains the receiver's own ASN;
    /// BGP poisoning exploits exactly this check.
    pub fn contains(&self, asn: Asn) -> bool {
        self.0.contains(&asn)
    }

    /// The set of distinct ASes on the path, in first-seen order.
    pub fn distinct(&self) -> Vec<Asn> {
        let mut seen = Vec::new();
        for &a in &self.0 {
            if !seen.contains(&a) {
                seen.push(a);
            }
        }
        seen
    }

    /// Number of distinct ASes (the "AS-hop" length ignoring prepending).
    pub fn distinct_len(&self) -> usize {
        self.distinct().len()
    }

    /// True when the path visits some AS, leaves it, and returns to it
    /// later — a *non-adjacent* repetition. Adjacent repetitions are
    /// ordinary prepending; non-adjacent ones indicate poisoning (the
    /// PEERING `o u o` sandwich) or a malformed path.
    pub fn has_nonadjacent_repeat(&self) -> bool {
        for (i, &a) in self.0.iter().enumerate() {
            for (j, &b) in self.0.iter().enumerate().skip(i + 1) {
                if a == b && self.0[i..j].iter().any(|&c| c != a) {
                    return true;
                }
            }
        }
        false
    }

    /// Build a poisoned origination path, PEERING-style: the origin
    /// sandwiches each poisoned AS with its own ASN so false link inference
    /// is impossible and attribution is trivial (§IV-e of the paper).
    ///
    /// For origin `o` and poisons `[u, v]` the result is `o u o v o`
    /// (neighbor-first ordering; the true origin remains last).
    pub fn poisoned_origin(origin: Asn, poisons: &[Asn]) -> AsPath {
        let mut v = Vec::with_capacity(poisons.len() * 2 + 1);
        v.push(origin);
        for &p in poisons {
            v.push(p);
            v.push(origin);
        }
        AsPath(v)
    }

    /// Extract the poisoned ASes from a path built by
    /// [`AsPath::poisoned_origin`] (possibly after further propagation and
    /// prepending): every AS that appears strictly between two occurrences
    /// of the origin ASN.
    pub fn poisons_of(&self, origin: Asn) -> Vec<Asn> {
        let mut out = Vec::new();
        let idx: Vec<usize> = self
            .0
            .iter()
            .enumerate()
            .filter(|(_, &a)| a == origin)
            .map(|(i, _)| i)
            .collect();
        for w in idx.windows(2) {
            for &a in &self.0[w[0] + 1..w[1]] {
                if a != origin && !out.contains(&a) {
                    out.push(a);
                }
            }
        }
        out
    }
}

impl fmt::Display for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut first = true;
        for a in &self.0 {
            if !first {
                f.write_str(" ")?;
            }
            write!(f, "{}", a.0)?;
            first = false;
        }
        Ok(())
    }
}

impl fmt::Debug for AsPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "AsPath[{}]", self)
    }
}

impl FromIterator<Asn> for AsPath {
    fn from_iter<T: IntoIterator<Item = Asn>>(iter: T) -> Self {
        AsPath(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(v: &[u32]) -> AsPath {
        AsPath::from_sequence(v.iter().map(|&x| Asn(x)))
    }

    #[test]
    fn origin_and_first_hop() {
        let path = p(&[3, 2, 1]);
        assert_eq!(path.origin(), Some(Asn(1)));
        assert_eq!(path.first_hop(), Some(Asn(3)));
        assert_eq!(path.len(), 3);
        assert!(!path.is_empty());
        assert_eq!(AsPath::empty().origin(), None);
    }

    #[test]
    fn prepend_semantics() {
        let path = AsPath::from_origin(Asn(1))
            .prepended_by(Asn(2))
            .prepended_by(Asn(3));
        assert_eq!(path.as_slice(), &[Asn(3), Asn(2), Asn(1)]);
        let traffic_eng = path.prepended_by_times(Asn(4), 4);
        assert_eq!(traffic_eng.len(), 7);
        assert_eq!(traffic_eng.first_hop(), Some(Asn(4)));
        assert_eq!(traffic_eng.distinct_len(), 4);
    }

    #[test]
    fn loop_detection() {
        let path = p(&[3, 2, 1]);
        assert!(path.contains(Asn(2)));
        assert!(!path.contains(Asn(9)));
    }

    #[test]
    fn nonadjacent_repeat() {
        assert!(!p(&[3, 3, 2, 1]).has_nonadjacent_repeat()); // prepending
        assert!(p(&[3, 2, 3, 1]).has_nonadjacent_repeat()); // poison-shaped
        assert!(!p(&[1]).has_nonadjacent_repeat());
        assert!(!p(&[]).has_nonadjacent_repeat());
    }

    #[test]
    fn poison_sandwich_roundtrip() {
        let o = Asn(47065);
        let path = AsPath::poisoned_origin(o, &[Asn(10), Asn(20)]);
        assert_eq!(path.as_slice(), &[o, Asn(10), o, Asn(20), o],);
        assert_eq!(path.origin(), Some(o));
        assert_eq!(path.poisons_of(o), vec![Asn(10), Asn(20)]);
        assert!(path.has_nonadjacent_repeat());
    }

    #[test]
    fn poisons_survive_propagation() {
        let o = Asn(47065);
        let path = AsPath::poisoned_origin(o, &[Asn(10)])
            .prepended_by(Asn(100))
            .prepended_by(Asn(200));
        assert_eq!(path.poisons_of(o), vec![Asn(10)]);
    }

    #[test]
    fn no_poisons_in_clean_path() {
        assert!(p(&[3, 2, 1]).poisons_of(Asn(1)).is_empty());
        assert!(AsPath::from_origin(Asn(1)).poisons_of(Asn(1)).is_empty());
    }

    #[test]
    fn display_format() {
        assert_eq!(p(&[3, 2, 1]).to_string(), "3 2 1");
        assert_eq!(AsPath::empty().to_string(), "");
    }
}
