//! Streaming-ingest benchmarks: the three [`VolumeAccumulator`] backends
//! fed the same ~1M-flow attack stream. The count-min sketch buys a
//! bounded-memory ingest path; these benches keep its per-flow cost
//! honest against the exact backends (plain dense rows and the batched
//! dense accumulator), and the pre-timing asserts keep the timed code
//! equivalent: batched-dense must equal plain-dense bit-for-bit, and
//! every sketch counter must sit in `[exact, exact + error_bound()]`.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use trackdown_bgp::{Catchments, LinkId};
use trackdown_topology::AsIndex;
use trackdown_traffic::{
    ingest_stream, BatchedDenseAccumulator, Flow, SketchAccumulator, VolumeAccumulator,
    DEFAULT_FLOW_BATCH,
};

const SOURCES: usize = 50_000;
const LINKS: usize = 8;
const FLOWS: usize = 1_000_000;
const SKETCH_W: usize = 512;
const SKETCH_D: usize = 4;

/// One observation window: a catchment assignment over 50k sources (with
/// a sprinkling of unobserved ASes) and ~1M flows from a heavy-tailed
/// subset of them — repeated keys throughout, the pattern conservative
/// update has to absorb at line rate.
fn window(seed: u64) -> (Catchments, Vec<Flow>) {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    let mut cat = Catchments::unassigned(SOURCES);
    for i in 0..SOURCES {
        let link = if rng.random_range(0..16u32) == 0 {
            None
        } else {
            Some(LinkId(rng.random_range(0..LINKS as u8)))
        };
        cat.set(AsIndex(i as u32), link);
    }
    let flows = (0..FLOWS)
        .map(|_| {
            // Heavy-tailed source pick: most flows from a small active set.
            let src = if rng.random_range(0..4u32) == 0 {
                rng.random_range(0..SOURCES as u32)
            } else {
                rng.random_range(0..64u32)
            };
            let bytes = 64 * (1 + rng.random_range(0..997u64));
            Flow {
                src_as: AsIndex(src),
                claimed_ip: 0xCB00_7101,
                dst_ip: 0xCB00_7201,
                packets: bytes / 64,
                bytes,
                spoofed: true,
            }
        })
        .collect();
    (cat, flows)
}

fn bench_sketch_ingest(c: &mut Criterion) {
    let (cat, flows) = window(23);

    // The backends must agree before we time them: batched-dense equals
    // plain-dense exactly, and the sketch brackets both from above.
    let mut plain = vec![vec![0u64; LINKS]];
    plain.as_mut_slice().ingest(0, &cat, &flows);
    let mut batched = BatchedDenseAccumulator::new(1, LINKS);
    ingest_stream(&mut batched, 0, &cat, &flows, DEFAULT_FLOW_BATCH);
    let mut sketch = SketchAccumulator::new(1, LINKS, SKETCH_W, SKETCH_D, 23);
    ingest_stream(&mut sketch, 0, &cat, &flows, DEFAULT_FLOW_BATCH);
    let bound = sketch.error_bound();
    for l in 0..LINKS {
        let link = LinkId(l as u8);
        let exact = plain.as_slice().volume(0, link);
        assert_eq!(batched.volume(0, link), exact, "batched dense diverged");
        let est = sketch.volume(0, link);
        assert!(est >= exact, "sketch underestimated link {l}");
        assert!(est - exact <= bound, "sketch bound violated at link {l}");
    }

    let mut group = c.benchmark_group("sketch_ingest");
    group.sample_size(10);
    group.bench_function("plain_dense_1m", |b| {
        let mut acc = vec![vec![0u64; LINKS]];
        b.iter(|| {
            acc[0].fill(0);
            ingest_stream(
                acc.as_mut_slice(),
                0,
                black_box(&cat),
                black_box(&flows),
                DEFAULT_FLOW_BATCH,
            );
            black_box(acc[0][0])
        })
    });
    group.bench_function("batched_dense_1m", |b| {
        let mut acc = BatchedDenseAccumulator::new(1, LINKS);
        b.iter(|| {
            acc.clear();
            ingest_stream(
                &mut acc,
                0,
                black_box(&cat),
                black_box(&flows),
                DEFAULT_FLOW_BATCH,
            );
            black_box(acc.volume(0, LinkId(0)))
        })
    });
    group.bench_function("sketch_1m", |b| {
        let mut acc = SketchAccumulator::new(1, LINKS, SKETCH_W, SKETCH_D, 23);
        b.iter(|| {
            acc.clear();
            ingest_stream(
                &mut acc,
                0,
                black_box(&cat),
                black_box(&flows),
                DEFAULT_FLOW_BATCH,
            );
            black_box(acc.volume(0, LinkId(0)))
        })
    });
    group.finish();
}

criterion_group!(benches, bench_sketch_ingest);
criterion_main!(benches);
