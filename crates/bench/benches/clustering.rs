//! Clustering benchmarks: the incremental refinement (used hundreds of
//! times per campaign and tens of thousands of times by the Figure 8
//! schedulers) and the naive split it replaces.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::{RngExt, SeedableRng};
use rand_chacha::ChaCha8Rng;
use std::hint::black_box;
use trackdown_bgp::{Catchments, LinkId};
use trackdown_core::Clustering;
use trackdown_topology::AsIndex;

fn synthetic_catchments(n: usize, links: u8, configs: usize, seed: u64) -> Vec<Catchments> {
    let mut rng = ChaCha8Rng::seed_from_u64(seed);
    (0..configs)
        .map(|_| {
            let mut c = Catchments::unassigned(n);
            for i in 0..n {
                c.set(AsIndex(i as u32), Some(LinkId(rng.random_range(0..links))));
            }
            c
        })
        .collect()
}

fn bench_refine(c: &mut Criterion) {
    let mut group = c.benchmark_group("clustering");
    for n in [500usize, 2000, 8000] {
        let cats = synthetic_catchments(n, 7, 16, 3);
        let sources: Vec<AsIndex> = (0..n as u32).map(AsIndex).collect();
        group.bench_with_input(BenchmarkId::new("refine_16_configs", n), &n, |b, _| {
            b.iter(|| {
                let mut clustering = Clustering::single(sources.clone());
                for cat in &cats {
                    clustering.refine(black_box(cat));
                }
                black_box(clustering.num_clusters())
            })
        });
    }
    // Fast path vs the paper's literal split loop (small n: the naive
    // version is quadratic).
    let n = 200;
    let cats = synthetic_catchments(n, 4, 4, 9);
    let sources: Vec<AsIndex> = (0..n as u32).map(AsIndex).collect();
    group.bench_function("refine_vs_naive/fast", |b| {
        b.iter(|| {
            let mut clustering = Clustering::single(sources.clone());
            for cat in &cats {
                clustering.refine(cat);
            }
            black_box(clustering.num_clusters())
        })
    });
    group.bench_function("refine_vs_naive/naive", |b| {
        b.iter(|| {
            let mut clustering = Clustering::single(sources.clone());
            for cat in &cats {
                clustering.split_by_naive(cat);
            }
            black_box(clustering.num_clusters())
        })
    });
    group.finish();
}

fn bench_stats(c: &mut Criterion) {
    let n = 2000;
    let cats = synthetic_catchments(n, 7, 32, 5);
    let sources: Vec<AsIndex> = (0..n as u32).map(AsIndex).collect();
    let mut clustering = Clustering::single(sources);
    for cat in &cats {
        clustering.refine(cat);
    }
    c.bench_function("cluster_ccdf_2000as", |b| {
        b.iter(|| black_box(clustering.size_ccdf()))
    });
}

criterion_group!(benches, bench_refine, bench_stats);
criterion_main!(benches);
