//! Measurement-plane benchmarks: traceroute campaigns, hop repair, and
//! the full measure() pipeline per configuration.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use trackdown_bgp::{BgpEngine, EngineConfig, LinkAnnouncement, OriginAs};
use trackdown_measure::{
    repair_campaign, run_campaign as run_traceroutes, IpToAs, IpToAsConfig, MeasurementConfig,
    MeasurementPlane, TracerouteConfig,
};
use trackdown_topology::cone::ConeInfo;
use trackdown_topology::gen::{generate, TopologyConfig};
use trackdown_topology::AsIndex;

fn bench_measurement(c: &mut Criterion) {
    let world = generate(&TopologyConfig::medium(1));
    let origin = OriginAs::peering_style(&world, 5);
    let engine = BgpEngine::new(&world.topology, &EngineConfig::default());
    let anns: Vec<_> = origin.link_ids().map(LinkAnnouncement::plain).collect();
    let outcome = engine.propagate_config(&origin, &anns, 200).unwrap();
    let cones = ConeInfo::compute(&world.topology);

    let db = IpToAs::build(&world.topology, &IpToAsConfig::default());
    let probes: Vec<AsIndex> = world.topology.indices().step_by(4).collect();
    let tr_cfg = TracerouteConfig::default();
    c.bench_function("traceroute_campaign_150probes_3rounds", |b| {
        b.iter(|| {
            black_box(run_traceroutes(
                &world.topology,
                &db,
                &outcome,
                black_box(&probes),
                &tr_cfg,
                7,
            ))
        })
    });

    let campaign = run_traceroutes(&world.topology, &db, &outcome, &probes, &tr_cfg, 7);
    let corpus: Vec<Vec<trackdown_topology::Asn>> = Vec::new();
    c.bench_function("hop_repair_campaign", |b| {
        b.iter(|| black_box(repair_campaign(black_box(&campaign), &corpus)))
    });

    let plane = MeasurementPlane::new(&world.topology, &cones, &MeasurementConfig::default());
    c.bench_function("measure_full_pipeline_per_config", |b| {
        b.iter(|| black_box(plane.measure(&world.topology, &outcome, origin.asn, 3)))
    });
}

criterion_group!(benches, bench_measurement);
criterion_main!(benches);
