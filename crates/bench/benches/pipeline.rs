//! End-to-end pipeline benchmarks, one per evaluation artifact family:
//! the campaign behind Figures 3/4 (deploy + cluster), the Figure 8
//! schedulers, the Figure 10 placement/attribution loop, and the packet
//! codec a deployment would run per received query.

use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use trackdown_bgp::{BgpEngine, EngineConfig, OriginAs, PolicyConfig};
use trackdown_core::generator::{full_schedule, GeneratorParams};
use trackdown_core::localize::{run_campaign, run_campaign_mode, CampaignMode, CatchmentSource};
use trackdown_core::schedule::{greedy_schedule, mean_size_objective, random_schedule_stats};
use trackdown_topology::gen::{generate, TopologyConfig};
use trackdown_topology::AsIndex;
use trackdown_traffic::{
    cumulative_volume_by_cluster_slices, pareto_shape_80_20, place_sources, SourcePlacement,
    UdpPacket,
};

fn bench_fig34_campaign(c: &mut Criterion) {
    let world = generate(&TopologyConfig::small(1));
    let origin = OriginAs::peering_style(&world, 4);
    // Violator-free policies: epoch reuse only engages where fixpoints
    // are history-independent (CampaignSession::warm_reuse), so this is
    // the configuration in which the warm/cold ratio measures the
    // campaign-runner speedup rather than the violator fallback.
    let cfg = EngineConfig {
        policy: PolicyConfig {
            violator_fraction: 0.0,
            ..PolicyConfig::default()
        },
        ..EngineConfig::default()
    };
    let engine = BgpEngine::new(&world.topology, &cfg);
    let schedule = full_schedule(
        &world.topology,
        &origin,
        &GeneratorParams {
            max_removals: 2,
            max_poison_configs: Some(10),
        },
    );
    // Default (warm-start epoch reuse) vs the cold-start reference oracle
    // on the same schedule — the ratio is the campaign-runner speedup.
    c.bench_function("fig3_4_campaign_small", |b| {
        b.iter(|| {
            let campaign = run_campaign(
                &engine,
                &origin,
                black_box(&schedule),
                CatchmentSource::ControlPlane,
                None,
                200,
            );
            black_box(campaign.clustering.mean_size())
        })
    });
    c.bench_function("fig3_4_campaign_small_cold", |b| {
        b.iter(|| {
            let campaign = run_campaign_mode(
                &engine,
                &origin,
                black_box(&schedule),
                CatchmentSource::ControlPlane,
                None,
                200,
                CampaignMode::Cold,
            );
            black_box(campaign.clustering.mean_size())
        })
    });
}

// The paper-scale run: a full three-phase schedule (~705 configurations
// at 7 PoPs) on the full 2000-AS topology, warm executor vs the cold
// oracle. This is the headline number for the epoch-reuse runner.
fn bench_full_campaign(c: &mut Criterion) {
    let world = generate(&TopologyConfig {
        seed: 1,
        ..TopologyConfig::default()
    });
    let origin = OriginAs::peering_style(&world, 7);
    let cfg = EngineConfig {
        policy: PolicyConfig {
            violator_fraction: 0.0,
            ..PolicyConfig::default()
        },
        ..EngineConfig::default()
    };
    let engine = BgpEngine::new(&world.topology, &cfg);
    let schedule = full_schedule(
        &world.topology,
        &origin,
        &GeneratorParams {
            max_removals: 3,
            max_poison_configs: None,
        },
    );
    eprintln!("full campaign schedule: {} configurations", schedule.len());
    c.bench_function("campaign_full_schedule_warm", |b| {
        b.iter(|| {
            let campaign = run_campaign(
                &engine,
                &origin,
                black_box(&schedule),
                CatchmentSource::ControlPlane,
                None,
                200,
            );
            black_box(campaign.clustering.mean_size())
        })
    });
    c.bench_function("campaign_full_schedule_cold", |b| {
        b.iter(|| {
            let campaign = run_campaign_mode(
                &engine,
                &origin,
                black_box(&schedule),
                CatchmentSource::ControlPlane,
                None,
                200,
                CampaignMode::Cold,
            );
            black_box(campaign.clustering.mean_size())
        })
    });
}

fn bench_fig8_schedulers(c: &mut Criterion) {
    let world = generate(&TopologyConfig::small(2));
    let origin = OriginAs::peering_style(&world, 4);
    let engine = BgpEngine::new(&world.topology, &EngineConfig::default());
    let schedule = full_schedule(
        &world.topology,
        &origin,
        &GeneratorParams {
            max_removals: 2,
            max_poison_configs: Some(10),
        },
    );
    let campaign = run_campaign(
        &engine,
        &origin,
        &schedule,
        CatchmentSource::ControlPlane,
        None,
        200,
    );
    c.bench_function("fig8_random_20_sequences", |b| {
        b.iter(|| {
            black_box(random_schedule_stats(
                &campaign.catchments,
                &campaign.tracked,
                20,
                7,
            ))
        })
    });
    c.bench_function("fig8_greedy_10_steps", |b| {
        b.iter(|| {
            black_box(greedy_schedule(
                &campaign.catchments,
                &campaign.tracked,
                10,
                mean_size_objective,
            ))
        })
    });
}

fn bench_fig10_attribution(c: &mut Criterion) {
    let world = generate(&TopologyConfig::small(3));
    let origin = OriginAs::peering_style(&world, 4);
    let engine = BgpEngine::new(&world.topology, &EngineConfig::default());
    let schedule = full_schedule(
        &world.topology,
        &origin,
        &GeneratorParams {
            max_removals: 2,
            max_poison_configs: Some(10),
        },
    );
    let campaign = run_campaign(
        &engine,
        &origin,
        &schedule,
        CatchmentSource::ControlPlane,
        None,
        200,
    );
    let clustering = &campaign.clustering;
    let candidates: Vec<AsIndex> = campaign.tracked.clone();
    c.bench_function("fig10_placement_and_attribution", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let placed = place_sources(
                world.topology.num_ases(),
                &candidates,
                SourcePlacement::Pareto {
                    total: 100,
                    alpha: pareto_shape_80_20(),
                },
                seed,
            );
            let vols = placed.volume_per_as(1_000);
            black_box(cumulative_volume_by_cluster_slices(
                clustering.iter_clusters(),
                &vols,
            ))
        })
    });
}

fn bench_packet_codec(c: &mut Criterion) {
    let pkt = UdpPacket {
        src_ip: 0xCB00_7107,
        dst_ip: 0xB8A4_E001,
        ttl: 251,
        src_port: 4444,
        dst_port: 123,
        payload: Bytes::from_static(b"\x17\x00\x03\x2a\x00\x00\x00\x00"),
    };
    c.bench_function("packet_encode", |b| b.iter(|| black_box(pkt.encode())));
    let wire = pkt.encode();
    c.bench_function("packet_decode", |b| {
        b.iter(|| black_box(UdpPacket::decode(wire.clone()).unwrap()))
    });
}

criterion_group!(
    benches,
    bench_fig34_campaign,
    bench_full_campaign,
    bench_fig8_schedulers,
    bench_fig10_attribution,
    bench_packet_codec
);
criterion_main!(benches);
